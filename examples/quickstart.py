"""Quickstart: an erasure-coded Byzantine atomic register in 30 lines.

Builds the paper's full AtomicNS deployment — n = 4 servers tolerating
t = 1 Byzantine failure, (4, 3) erasure coding, threshold-signed
non-skipping timestamps — writes, reads, and prints what it cost.

Run:  python examples/quickstart.py
"""

from repro.cluster import build_cluster
from repro.config import SystemConfig
from repro.net.schedulers import RandomScheduler


def main() -> None:
    # n > 3t: optimal resilience.  k defaults to n - t = 3, so each
    # server stores about a third of every value.
    config = SystemConfig(n=4, t=1)
    cluster = build_cluster(config, protocol="atomic_ns", num_clients=2,
                            scheduler=RandomScheduler(seed=42))

    # Client C1 writes; the value is dispersed, the timestamp broadcast
    # and threshold-signed, and the write completes after n - t acks.
    value = b"The quick brown fox jumps over the lazy dog." * 500
    write = cluster.write(1, "my-register", "write-1", value)
    print(f"write done: oid={write.oid}")

    # Client C2 reads it back from any n - t servers.
    read = cluster.read(2, "my-register", "read-1")
    assert read.result == value
    print(f"read done: {len(read.result)} bytes, "
          f"timestamp {read.timestamp}")

    # What did it cost?  (The paper's complexity measures, live.)
    metrics = cluster.simulator.metrics
    print(f"total messages: {metrics.total_messages}, "
          f"total bytes: {metrics.total_bytes}")
    per_server = cluster.server(1).register_storage_bytes("my-register")
    blowup = per_server * config.n / len(value)
    print(f"per-server storage: {per_server} B "
          f"(blow-up {blowup:.2f}x vs {config.n}x for replication)")


if __name__ == "__main__":
    main()
