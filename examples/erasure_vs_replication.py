"""Erasure coding vs replication: the storage/communication trade-off.

Side-by-side comparison of the paper's AtomicNS against the
replication-based Martin et al. baseline on the same workload — the
efficiency argument of the paper's introduction, as a runnable script.

Run:  python examples/erasure_vs_replication.py
"""

from repro.cluster import build_cluster
from repro.config import SystemConfig
from repro.experiments.common import fmt_bytes, render_table
from repro.net.schedulers import RandomScheduler

VALUE_SIZE = 64 * 1024


def measure(protocol: str, n: int, t: int):
    cluster = build_cluster(SystemConfig(n=n, t=t), protocol=protocol,
                            num_clients=1,
                            scheduler=RandomScheduler(0))
    value = bytes(i % 251 for i in range(VALUE_SIZE))
    metrics = cluster.simulator.metrics

    before = metrics.snapshot()
    cluster.write(1, "reg", "w", value)
    cluster.run()
    after_write = metrics.snapshot()
    cluster.read(1, "reg", "r")
    cluster.run()
    after_read = metrics.snapshot()

    storage = cluster.server(1).register_storage_bytes("reg")
    return {
        "write_bytes": after_write[1] - before[1],
        "read_bytes": after_read[1] - after_write[1],
        "storage_per_server": storage,
        "blowup": storage * n / VALUE_SIZE,
    }


def main() -> None:
    rows = []
    for protocol, label in (("atomic_ns", "AtomicNS (erasure, n>3t)"),
                            ("martin", "Martin et al. (replication)")):
        for t in (1, 2, 3):
            n = 3 * t + 1
            result = measure(protocol, n, t)
            rows.append([
                label, n, t,
                fmt_bytes(result["storage_per_server"]),
                f"{result['blowup']:.2f}x",
                fmt_bytes(result["write_bytes"]),
                fmt_bytes(result["read_bytes"]),
            ])
    print(render_table(
        ["protocol", "n", "t", "storage/server", "blow-up",
         "write bytes", "read bytes"],
        rows,
        title=f"Erasure coding vs replication ({fmt_bytes(VALUE_SIZE)} "
              f"values)"))
    print("\nTakeaway: per-server storage and read traffic stay ~|F|/k "
          "with erasure\ncoding, but grow with n (replication) — at the "
          "same optimal resilience.")


if __name__ == "__main__":
    main()
