"""A Byzantine fault-tolerant key-value store on top of the register API.

The paper models "a complete storage system ... as an array of these
registers" (Section 1).  This example builds exactly that: a tiny KV
store where every key is one atomic register (tag = key), served by a
single cluster of n = 4 servers of which one is Byzantine, and accessed
by multiple concurrent clients.

Run:  python examples/distributed_kv_store.py
"""

from __future__ import annotations

import itertools

from repro.cluster import Cluster, build_cluster
from repro.config import SystemConfig
from repro.faults.byzantine_servers import EquivocatingReaderServer
from repro.net.schedulers import RandomScheduler


class KvStore:
    """A multi-client KV store: one atomic register per key."""

    def __init__(self, cluster: Cluster):
        self._cluster = cluster
        self._op_counter = itertools.count()

    def put(self, client: int, key: str, value: bytes) -> None:
        oid = f"put-{next(self._op_counter)}"
        self._cluster.write(client, f"kv/{key}", oid, value)

    def get(self, client: int, key: str) -> bytes:
        oid = f"get-{next(self._op_counter)}"
        return self._cluster.read(client, f"kv/{key}", oid).result


def main() -> None:
    config = SystemConfig(n=4, t=1)
    cluster = build_cluster(
        config, protocol="atomic_ns", num_clients=3,
        scheduler=RandomScheduler(seed=7),
        # Server P4 is corrupted: it serves garbage to readers.  With
        # t = 1 tolerated, nobody notices.
        server_overrides={
            4: lambda pid, cfg: EquivocatingReaderServer(pid, cfg)})
    store = KvStore(cluster)

    store.put(1, "users/alice", b'{"role": "admin"}')
    store.put(2, "users/bob", b'{"role": "reader"}')
    store.put(1, "config/flags", b"feature_x=on")

    # Different clients read each other's writes (atomicity across keys).
    assert store.get(3, "users/alice") == b'{"role": "admin"}'
    assert store.get(1, "users/bob") == b'{"role": "reader"}'

    # Overwrites: last write wins, linearizably.
    store.put(3, "config/flags", b"feature_x=off")
    assert store.get(2, "config/flags") == b"feature_x=off"

    print("KV store over atomic registers: all operations linearized")
    metrics = cluster.simulator.metrics
    for key in ("users/alice", "users/bob", "config/flags"):
        print(f"  {key}: {metrics.message_complexity(f'kv/{key}')} "
              f"messages, "
              f"{metrics.communication_complexity(f'kv/{key}')} bytes")


if __name__ == "__main__":
    main()
