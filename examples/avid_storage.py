"""Standalone AVID storage: write-once verifiable dispersal + retrieval.

The substrate below the register protocols is a storage system in its own
right (Cachin–Tessaro's AVID): disperse a file once, store one block per
server, retrieve from any ``n − t`` responders — with write-time
verifiability, so a malicious writer cannot plant inconsistent data.

Run:  python examples/avid_storage.py
"""

import os

from repro import RandomScheduler, Simulator, SystemConfig
from repro.avid import AvidStorageClient, AvidStorageNode
from repro.common.ids import client_id, server_id
from repro.faults.byzantine_clients import InconsistentDisperser


def main() -> None:
    config = SystemConfig(n=4, t=1)
    simulator = Simulator(scheduler=RandomScheduler(21))
    nodes = [simulator.add_process(AvidStorageNode(server_id(j), config))
             for j in range(1, 5)]
    writer = simulator.add_process(AvidStorageClient(client_id(1), config))
    reader = simulator.add_process(AvidStorageClient(client_id(2), config))
    attacker = simulator.add_process(
        InconsistentDisperser(client_id(3), config))

    # Disperse a file: each server ends up with one erasure-code block.
    payload = os.urandom(30_000)
    writer.disperse("files/report.pdf", payload)
    simulator.run()
    per_node = nodes[0].storage_bytes()
    print(f"dispersed {len(payload)} B; each node stores ~{per_node} B "
          f"(1/{config.k} + commitment)")

    # Retrieve from a different client.
    handle = reader.retrieve("files/report.pdf")
    simulator.run()
    assert handle.value == payload
    print("retrieved and verified against the commitment")

    # A malicious writer cannot store inconsistent blocks: the servers'
    # decode/re-encode check refuses to complete the dispersal.
    from repro.avid.disperse import MSG_SEND
    blocks_a = config.coder.encode(b"A" * 100)
    blocks_b = config.coder.encode(b"B" * 100)
    mixed = [blocks_a[0], blocks_b[1], blocks_a[2], blocks_b[3]]
    commitment, witnesses = config.commitment_scheme.commit(mixed)
    for index, server in enumerate(simulator.server_pids, start=1):
        attacker.send(server, "files/evil.bin", MSG_SEND, commitment,
                      mixed[index - 1], witnesses[index - 1])
    simulator.run()
    probe = reader.retrieve("files/evil.bin")
    simulator.run()
    assert probe.value is None
    print("inconsistent dispersal rejected at write time: "
          "nothing was stored under files/evil.bin")

    stored = nodes[0].stored_tags()
    print(f"node P1 stores exactly: {stored}")


if __name__ == "__main__":
    main()
