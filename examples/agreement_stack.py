"""The randomized agreement stack, layer by layer.

The paper's §3.4 aside — registers *could* be serialized with atomic
broadcast — needs a whole consensus stack that the paper's protocols
deliberately avoid.  This example exercises each layer of the one built
here: threshold common coin → binary Byzantine agreement → asynchronous
common subset → atomic broadcast, and ends with the punchline measurement.

Run:  python examples/agreement_stack.py
"""

from repro import RandomScheduler, Simulator, SystemConfig, build_cluster
from repro.agreement import (
    AtomicBroadcast,
    BinaryAgreement,
    CommonCoin,
    CommonSubset,
)
from repro.common.ids import server_id
from repro.net.process import Process


class StackHost(Process):
    """A server running all four layers side by side."""

    def __init__(self, pid, config):
        super().__init__(pid)
        self.coin_values = {}
        self.decisions = {}
        self.subsets = {}
        self.log = []
        self.coin = CommonCoin(self, config, self.coin_values.__setitem__)
        self.aba = BinaryAgreement(self, config,
                                   self.decisions.__setitem__)
        self.acs = CommonSubset(self, config, self.subsets.__setitem__)
        self.abc = AtomicBroadcast(
            self, config, lambda seq, req: self.log.append((seq, req)))


def main() -> None:
    config = SystemConfig(n=4, t=1)
    simulator = Simulator(scheduler=RandomScheduler(17))
    hosts = [simulator.add_process(StackHost(server_id(j), config))
             for j in range(1, 5)]

    # 1. Common coin: one unpredictable shared bit per name.
    for host in hosts:
        host.coin.flip(("epoch", 1))
    simulator.run()
    bits = {host.coin_values[("epoch", 1)] for host in hosts}
    print(f"1. common coin: every server saw the same bit {bits}")

    # 2. Binary agreement: conflicting proposals, one decision.
    for host, bit in zip(hosts, (1, 0, 1, 0)):
        host.aba.provide_input("slot", bit)
    simulator.run(max_steps=500_000)
    decided = {host.decisions["slot"] for host in hosts}
    print(f"2. binary agreement on inputs 1,0,1,0: all decided {decided}")

    # 3. Common subset: whose proposals make the cut.
    for j, host in enumerate(hosts, start=1):
        host.acs.propose("batch", f"tx-from-P{j}")
    simulator.run(max_steps=500_000)
    accepted = hosts[0].subsets["batch"]
    assert all(host.subsets["batch"] == accepted for host in hosts)
    print(f"3. common subset: agreed on proposals from servers "
          f"{sorted(accepted)}")

    # 4. Atomic broadcast: a total order out of concurrent submissions.
    hosts[0].abc.submit("debit(alice, 5)")
    hosts[2].abc.submit("credit(bob, 5)")
    simulator.run(max_steps=500_000)
    logs = [tuple(host.log) for host in hosts]
    assert all(log == logs[0] for log in logs)
    print(f"4. atomic broadcast: identical log everywhere: {logs[0]}")

    # 5. The punchline: a register *on* this stack vs the paper's.
    costs = {}
    for protocol in ("atomic_ns", "abc"):
        cluster = build_cluster(SystemConfig(n=4, t=1),
                                protocol=protocol, num_clients=1,
                                scheduler=RandomScheduler(5))
        cluster.write(1, "reg", "w", b"x" * 512)
        cluster.read(1, "reg", "r")
        cluster.run()
        costs[protocol] = cluster.simulator.metrics.total_messages
    print(f"5. one write + one read: consensus-free register = "
          f"{costs['atomic_ns']} messages, consensus-based = "
          f"{costs['abc']} — the {costs['abc'] // costs['atomic_ns']}x "
          f"gap is why the paper avoids consensus (see experiment F13)")


if __name__ == "__main__":
    main()
