"""Byzantine tolerance tour: every attack from the paper, mounted live.

Shows, in one run each, the failure modes the paper's protocols close:

1. a Byzantine *client* trying to store inconsistent data (refused at
   write time by verifiable dispersal);
2. a Byzantine *client* trying to skip timestamps (refused by threshold
   signatures in AtomicNS);
3. ``t`` Byzantine *servers* inflating timestamps, equivocating to
   readers, or crashing (tolerated; honest clients never notice).

Run:  python examples/byzantine_tolerance.py
"""

from repro.cluster import build_cluster
from repro.config import SystemConfig
from repro.faults.byzantine_clients import (
    InconsistentDisperser,
    SkippingWriter,
)
from repro.faults.byzantine_servers import (
    CrashServer,
    EquivocatingReaderServer,
    InflatorNSServer,
)
from repro.net.schedulers import RandomScheduler

TAG = "reg"


def effected_writes(cluster):
    return sorted({event.payload[0]
                   for event in cluster.simulator.event_log
                   if event.kind == "out"
                   and event.action == "write-accepted"})


def inconsistent_client_demo() -> None:
    print("1) Byzantine client storing inconsistent blocks")
    cluster = build_cluster(
        SystemConfig(n=4, t=1), protocol="atomic_ns", num_clients=2,
        scheduler=RandomScheduler(1),
        client_overrides={
            2: lambda pid, cfg: InconsistentDisperser(pid, cfg)})
    cluster.write(1, TAG, "honest", b"clean data")
    cluster.client(2).attack_write(TAG, "dirty",
                                   [b"junk-A" * 8, b"junk-B" * 8], ts=1)
    cluster.run()
    read = cluster.read(1, TAG, "probe")
    print(f"   effected writes: {effected_writes(cluster)} "
          f"(the inconsistent write never completed dispersal)")
    print(f"   read returned: {read.result!r}\n")
    assert read.result == b"clean data"


def skipping_client_demo() -> None:
    print("2) Byzantine client broadcasting timestamp 10^12")
    cluster = build_cluster(
        SystemConfig(n=4, t=1), protocol="atomic_ns", num_clients=2,
        scheduler=RandomScheduler(2),
        client_overrides={2: lambda pid, cfg: SkippingWriter(pid, cfg)})
    cluster.client(2).attack_write(TAG, "skip", b"evil")
    cluster.run()
    cluster.write(1, TAG, "honest", b"good")
    state = cluster.server(1).register_state(TAG)
    print(f"   register timestamp after the attack + 1 honest write: "
          f"{state.timestamp} (non-skipping held)\n")
    assert state.timestamp.ts == 1


def byzantine_servers_demo() -> None:
    print("3) t = 2 of n = 7 servers Byzantine "
          "(crash + inflator/equivocator)")
    cluster = build_cluster(
        SystemConfig(n=7, t=2), protocol="atomic_ns", num_clients=2,
        scheduler=RandomScheduler(3),
        server_overrides={
            1: lambda pid, cfg: CrashServer(pid, cfg),
            2: lambda pid, cfg: InflatorNSServer(pid, cfg)})
    cluster.write(1, TAG, "w1", b"written despite the faults")
    read = cluster.read(2, TAG, "r1")
    print(f"   read returned: {read.result!r}")
    print(f"   timestamp: {read.timestamp} (no inflation)\n")
    assert read.result == b"written despite the faults"
    assert read.timestamp.ts == 1


def main() -> None:
    inconsistent_client_demo()
    skipping_client_demo()
    byzantine_servers_demo()
    print("all attacks contained — honest clients observed an atomic, "
          "live register throughout")


if __name__ == "__main__":
    main()
