"""A larger deployment: n = 22 servers tolerating t = 7 Byzantine.

Shows that the implementation scales past toy sizes: the quadratic
message complexity is visible (measured live), erasure coding keeps the
storage blow-up near 1.5 while replication would pay 22x, and the whole
write still completes in the same 7 message rounds as at n = 4.

(The erasure substrate itself scales much further: GF(2^16) Reed-Solomon
supports clusters beyond 255 servers — see ``ErasureCoder(field=...)``.)

Run:  python examples/large_cluster.py
"""

import time

from repro import RandomScheduler, SystemConfig, build_cluster
from repro.erasure.coder import ErasureCoder
from repro.faults.byzantine_servers import CrashServer


def main() -> None:
    t = 7
    n = 3 * t + 1  # 22 servers, optimal resilience
    config = SystemConfig(n=n, t=t)
    # A third of the fleet minus one is down from the start.
    overrides = {index: (lambda pid, cfg: CrashServer(pid, cfg))
                 for index in range(1, t + 1)}
    cluster = build_cluster(config, protocol="atomic_ns", num_clients=2,
                            scheduler=RandomScheduler(9),
                            server_overrides=overrides)

    value = bytes(i % 251 for i in range(64 * 1024))
    started = time.perf_counter()
    write = cluster.write(1, "reg", "w1", value)
    read = cluster.read(2, "reg", "r1")
    elapsed = time.perf_counter() - started
    assert read.result == value

    metrics = cluster.simulator.metrics
    per_server = cluster.server(n).register_storage_bytes("reg")
    print(f"n={n}, t={t}, {t} servers crashed, |F|=64 KiB")
    print(f"write: {write.latency_rounds} message rounds; "
          f"read: {read.latency_rounds}")
    print(f"messages: {metrics.total_messages} "
          f"(~{metrics.total_messages / (n * n):.1f} per n^2)")
    print(f"bytes on the wire: {metrics.total_bytes / 1024:.0f} KiB")
    print(f"per-server storage: {per_server / 1024:.1f} KiB "
          f"(blow-up {per_server * n / len(value):.2f}x vs {n}x "
          f"replicated)")
    print(f"simulated in {elapsed:.2f}s wall clock")

    # And the erasure substrate alone goes far beyond n = 255:
    coder = ErasureCoder(400, 280)
    blocks = coder.encode(value)
    restored = coder.decode(
        [(j, blocks[j - 1]) for j in range(100, 380)])
    assert restored == value
    print(f"\nGF(2^16) check: (400, 280) code round-tripped 64 KiB, "
          f"block size {len(blocks[0])} B")


if __name__ == "__main__":
    main()
