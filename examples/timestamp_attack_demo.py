"""Non-skipping timestamps demo (Section 3.4 of the paper).

Runs the same timestamp-inflation attack against Protocol Atomic and
Protocol AtomicNS and prints the resulting timestamp trajectories: with
client-generated timestamps one corrupted server poisons every later
write; with threshold-signed timestamps the attack is inert.

Run:  python examples/timestamp_attack_demo.py
"""

from repro.cluster import build_cluster
from repro.config import SystemConfig
from repro.faults.byzantine_servers import InflatorNSServer, InflatorServer
from repro.net.schedulers import RandomScheduler

TAG = "reg"
WRITES = 5


def attack(protocol: str, inflator) -> list:
    cluster = build_cluster(
        SystemConfig(n=4, t=1), protocol=protocol, num_clients=1,
        scheduler=RandomScheduler(0),
        server_overrides={1: lambda pid, cfg: inflator(pid, cfg)})
    trajectory = []
    for index in range(WRITES):
        cluster.write(1, TAG, f"w{index}", b"v%d" % index)
        cluster.run()
        trajectory.append(
            cluster.server(2).register_state(TAG).timestamp.ts)
    return trajectory


def main() -> None:
    atomic = attack("atomic", InflatorServer)
    atomic_ns = attack("atomic_ns", InflatorNSServer)
    print(f"{WRITES} honest writes; server P1 reports timestamps "
          f"inflated by 10^12\n")
    print("Protocol Atomic   (client-max timestamps):")
    print("   stored ts after each write:", atomic)
    print("   -> a single lying server made timestamps skip by 10^12\n")
    print("Protocol AtomicNS (threshold-signed timestamps):")
    print("   stored ts after each write:", atomic_ns)
    print("   -> inflated replies carry no valid signature and are "
          "discarded;")
    print("      every timestamp equals the number of writes "
          "(non-skipping)")
    assert atomic_ns == list(range(1, WRITES + 1))
    assert atomic[-1] > 10 ** 12


if __name__ == "__main__":
    main()
