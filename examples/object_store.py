"""A chunked BFT object store — the paper's NAS/object-storage motivation.

Stores multi-chunk blobs across an array of atomic registers (one
register per chunk plus a manifest register), on a cluster with a
Byzantine server, and shows versioned overwrite, stat, delete, and the
per-server storage saving from erasure coding.

Run:  python examples/object_store.py
"""

import os

from repro import RandomScheduler, SystemConfig, build_cluster
from repro.faults.byzantine_servers import EquivocatingReaderServer
from repro.store import BlobNotFound, BlobStore


def main() -> None:
    config = SystemConfig(n=4, t=1)
    cluster = build_cluster(
        config, protocol="atomic_ns", num_clients=2,
        scheduler=RandomScheduler(11),
        server_overrides={
            3: lambda pid, cfg: EquivocatingReaderServer(pid, cfg)})
    alice = BlobStore(cluster, 1, chunk_size=8 * 1024)
    bob = BlobStore(cluster, 2, chunk_size=8 * 1024)

    blob = os.urandom(40_000)
    stat = alice.put("datasets/train.bin", blob)
    print(f"alice put {stat.name}: {stat.size} B in "
          f"{stat.chunk_count} chunks (version {stat.version})")

    fetched = bob.get("datasets/train.bin")
    assert fetched == blob
    print(f"bob get: {len(fetched)} B, digests verified "
          f"(server P3 is Byzantine and was ignored)")

    # The efficiency story, measured live.
    chunk_tag = "blob/datasets/train.bin/chunk0"
    per_server = cluster.server(1).register_storage_bytes(chunk_tag)
    print(f"per-server storage for one 8 KiB chunk register: "
          f"{per_server} B (~1/{config.k} of the chunk + commitment)")

    bob.put("datasets/train.bin", b"v2 contents")
    assert alice.get("datasets/train.bin") == b"v2 contents"
    print("bob overwrote; alice sees the new version (linearizable)")

    alice.delete("datasets/train.bin")
    try:
        bob.get("datasets/train.bin")
    except BlobNotFound:
        print("deleted: tombstone manifest visible to everyone")


if __name__ == "__main__":
    main()
