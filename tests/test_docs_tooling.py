"""Documentation tooling: the API-reference generator."""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

import gen_api_docs  # noqa: E402


def test_renders_every_module():
    text = gen_api_docs.render()
    for module in ("repro.core.atomic", "repro.avid.disperse",
                   "repro.crypto.threshold", "repro.baselines.goodson",
                   "repro.net.simulator", "repro.store.blobstore",
                   "repro.lint.engine", "repro.lint.rules.quorum"):
        assert f"## `{module}`" in text, module


def test_documents_key_classes_and_functions():
    text = gen_api_docs.render()
    for symbol in ("class `AtomicNSServer", "class `ShoupThresholdScheme",
                   "class `BlobStore", "`build_cluster(",
                   "`check_atomicity("):
        assert symbol in text, symbol


def test_no_undocumented_public_classes():
    """Every public class in the library carries a docstring."""
    text = gen_api_docs.render()
    assert "*(undocumented)*" not in text


def test_writes_output(tmp_path):
    output = tmp_path / "API.md"
    gen_api_docs.main(output)
    assert output.read_text().startswith("# API reference")


def test_committed_docs_in_sync():
    """docs/API.md matches the current code (regenerate with
    ``python tools/gen_api_docs.py`` when this fails)."""
    committed = (REPO_ROOT / "docs" / "API.md").read_text(encoding="utf-8")
    assert committed == gen_api_docs.render()
