"""Session-cached reads, leases, revalidation, and read sharing.

The load-bearing guarantees tested here:

* **Lease adjacency** — a lease-served read is an interval clone of its
  cache anchor (same invoke/complete ticks, same value) and consumes no
  wire traffic; a session-observed write invalidates the entry eagerly,
  so a session never lease-serves a value it has since overwritten.
* **Revalidation safety** — a metadata-only revalidation round either
  proves the cached pair current (quorum maximum equals the cached
  TIMESTAMP) or falls back to a full protocol read; a cross-session
  writer is always detected because every ``n - t`` validate quorum
  shares an honest server with the write's metadata quorum.
* **Byzantine metadata** — a stale-metadata server cannot lower the
  quorum maximum (revalidation still succeeds); a forged-metadata
  server can only force the full-read fallback (a performance tax,
  never a safety loss).  Both cases stay linearizable end to end.
* **Read sharing** — gets of a key whose read or write is still queued
  join that operation; one wire operation settles every joined handle.
* **Schedule preservation** — caching defaults off, and a *cached* kv
  run must not perturb the single-register golden schedules.
"""

import json
import sys
from pathlib import Path

import pytest

from repro.common.errors import ConfigurationError
from repro.config import SystemConfig
from repro.kv import (
    KvDirectory,
    build_kv_cluster,
    check_kv_histories,
    drive,
    run_kv_case,
)
from repro.kv.session_cache import SessionCache
from repro.lint import run_lint
from repro.lint.config import LintConfig
from repro.workloads.kv import KvOp

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

FLEET = SystemConfig(n=4, t=1)


def _md_cluster(num_sessions=1, cache_size=8, lease_ticks=0,
                num_shards=2):
    directory = KvDirectory(FLEET, num_shards, shard_k=2)
    return build_kv_cluster(directory, protocol="atomic_md",
                            num_sessions=num_sessions,
                            cache_size=cache_size,
                            lease_ticks=lease_ticks)


# -- leases -------------------------------------------------------------------

def test_lease_hit_is_an_interval_clone_of_its_anchor():
    cluster = _md_cluster(lease_ticks=100_000)
    session = cluster.session(1)
    write = session.put("k001", b"v1")
    cluster.settle()  # the ack seeds the cache and opens the lease
    read = session.get("k001")
    assert read.done  # served locally at submission, no settle needed
    assert read.served == "lease"
    assert read.result == b"v1"
    assert read.attempts == 0  # never touched the wire
    assert read.invoke_time == write.invoke_time
    assert read.complete_time == write.complete_time
    assert session.cache.stats["lease_hits"] == 1
    check_kv_histories([session])


def test_write_during_lease_window_invalidates_eagerly():
    cluster = _md_cluster(lease_ticks=100_000)
    session = cluster.session(1)
    session.put("k001", b"v1")
    cluster.settle()
    assert session.get("k001").result == b"v1"  # lease hit
    session.put("k001", b"v2")  # invalidates: no stale lease serves
    read = session.get("k001")
    assert not read.done  # must go through the protocol again
    cluster.settle()
    assert read.result == b"v2"
    assert session.cache.stats["invalidations"] >= 1
    check_kv_histories([session])


def test_reads_queued_behind_a_write_inherit_its_lease_at_admission():
    """A read submitted while the write is queued joins it; a read
    submitted while the write is *in flight* queues, then is served
    from the freshly seeded lease when its turn to admit comes."""
    cluster = _md_cluster(lease_ticks=100_000)
    session = cluster.session(1)
    session.put("k001", b"v1")
    session.pump()  # write in flight: the sharing window is closed
    late = session.get("k001")
    assert not late.done
    cluster.settle()
    assert late.result == b"v1"
    assert late.served == "lease"
    check_kv_histories([session])


# -- revalidation -------------------------------------------------------------

def test_revalidation_confirms_an_unchanged_key_metadata_only():
    cluster = _md_cluster(lease_ticks=0)  # revalidation-only cache
    session = cluster.session(1)
    session.put("k001", b"v1")
    cluster.settle()
    read = session.get("k001")
    cluster.settle()
    assert read.result == b"v1"
    assert read.served == "revalidate"
    assert session.cache.stats["revalidations"] == 1
    assert session.cache.stats["revalidate_hits"] == 1
    assert session.cache.stats["revalidate_fallbacks"] == 0
    check_kv_histories([session])


def test_cross_session_write_forces_full_read_fallback():
    """The staleness case revalidation exists for: another session
    wrote the key, so the quorum maximum exceeds the cached TIMESTAMP
    and the session must re-read in full — never serve its stale pair."""
    cluster = _md_cluster(num_sessions=2, lease_ticks=0)
    alice, bob = cluster.sessions
    alice.put("k001", b"v1")
    cluster.settle()
    bob.put("k001", b"v2")
    cluster.settle()
    read = alice.get("k001")
    cluster.settle()
    assert read.result == b"v2"
    assert read.served is None  # completed as a full protocol read
    assert alice.cache.stats["revalidations"] == 1
    assert alice.cache.stats["revalidate_fallbacks"] == 1
    assert read.attempts == 2  # the validate round plus the fallback
    check_kv_histories(cluster.sessions)


def test_cache_without_metadata_plane_falls_back_to_full_reads():
    """Protocol ``atomic`` exposes no validate round: cached gets must
    degrade to plain reads (and never serve unvalidated entries)."""
    directory = KvDirectory(FLEET, 2)
    cluster = build_kv_cluster(directory, num_sessions=1, cache_size=8,
                               lease_ticks=0)
    session = cluster.session(1)
    session.put("k001", b"v1")
    cluster.settle()
    read = session.get("k001")
    cluster.settle()
    assert read.result == b"v1"
    assert read.served is None
    assert session.cache.stats["revalidations"] == 0
    check_kv_histories([session])


# -- read sharing -------------------------------------------------------------

def test_gets_join_a_still_queued_read():
    cluster = _md_cluster(lease_ticks=0)
    session = cluster.session(1)
    session.put("k002", b"v2")
    cluster.settle()
    first = session.get("k002")
    second = session.get("k002")  # joins first's queue slot
    assert session.queued == 1
    assert second.coalesced
    cluster.settle()
    assert first.result == b"v2" and second.result == b"v2"
    assert session.cache.stats["shared_reads"] == 1
    check_kv_histories([session])


def test_get_joins_a_still_queued_write_and_returns_its_value():
    cluster = _md_cluster(lease_ticks=0)
    session = cluster.session(1)
    write = session.put("k003", b"v3")
    read = session.get("k003")  # write still queued: the read joins it
    assert session.queued == 1
    assert read.coalesced
    cluster.settle()
    assert write.done and read.result == b"v3"
    assert session.cache.stats["shared_reads"] == 1
    check_kv_histories([session])


# -- chaos and Byzantine metadata ---------------------------------------------

def test_cached_run_under_chaos_drops_stays_linearizable():
    row, cluster = run_kv_case(4, protocol="atomic_md", sessions=2,
                               keys=8, ops=24, write_ratio=0.1,
                               plan_name="drops", seed=2, cache_size=8,
                               lease_ticks=64)
    assert row.linearizable
    assert row.completed == 24
    assert row.lease_hits + row.revalidations > 0  # cache exercised
    counters = cluster.simulator.chaos.instruments.snapshot()
    assert counters["chaos.injected[drop]"]["value"] > 0


def test_byzantine_stale_metadata_cannot_defeat_revalidation():
    """An understating liar cannot lower the quorum *maximum*, so
    revalidation still succeeds against the honest majority."""
    row, _ = run_kv_case(2, protocol="atomic_md", sessions=2, keys=4,
                         ops=24, write_ratio=0.1, seed=0,
                         byzantine="stale-meta", cache_size=8,
                         lease_ticks=0)
    assert row.linearizable
    assert row.plan == "byz-stale-meta"
    assert row.revalidations > 0
    assert row.revalidate_hits > 0


def test_byzantine_forged_metadata_only_forces_the_fallback():
    """An inflated TIMESTAMP makes rounds it reaches report a mismatch:
    the session falls back to full reads (a performance tax), and every
    history still linearizes — the forgery names no decodable version."""
    row, _ = run_kv_case(2, protocol="atomic_md", sessions=2, keys=4,
                         ops=24, write_ratio=0.1, seed=0,
                         byzantine="forged-meta", cache_size=8,
                         lease_ticks=0)
    assert row.linearizable
    assert row.plan == "byz-forged-meta"
    assert row.revalidations > 0
    assert row.revalidate_fallbacks > 0


# -- configuration and hygiene ------------------------------------------------

def test_cache_rejects_negative_shapes():
    with pytest.raises(ConfigurationError):
        SessionCache(capacity=-1)
    with pytest.raises(ConfigurationError):
        SessionCache(capacity=4, lease_ticks=-1)


def test_cache_capacity_is_bounded_lru():
    cache = SessionCache(capacity=2, lease_ticks=0)
    for index, key in enumerate(("a", "b", "c")):
        cache.seed(key, b"v", index, anchor_invoke=0, anchor_complete=1)
    assert len(cache) == 2
    assert cache.lookup("a") is None  # oldest evicted
    assert cache.lookup("c") is not None


def test_golden_schedules_byte_identical_after_cached_kv_run():
    """Exercising a *cached* kv cluster (leases, sharing, revalidation
    machinery all live) must not perturb the single-register golden
    schedules — and caching stays off by default everywhere else."""
    import gen_golden_schedules
    cluster = _md_cluster(lease_ticks=100_000)
    session = cluster.session(1)
    drive(cluster, [KvOp(1, "write", "k001", b"x"),
                    KvOp(1, "read", "k001")])
    assert session.get("k001").served == "lease"  # machinery was live
    fixture = json.loads(
        (REPO_ROOT / "tests" / "fixtures" /
         "golden_schedules.json").read_text(encoding="utf-8"))
    case = fixture["cases"][0]
    fresh = gen_golden_schedules.run_case(dict(case["spec"]))
    assert fresh["sha256"] == case["sha256"]


def test_session_cache_module_is_lint_scoped_and_clean():
    """The new module sits on the kv hot path: the determinism, quorum,
    handler, and taint packs must cover it, and it must lint clean."""
    config = LintConfig()
    for pack in ("determinism", "quorum", "handlers", "taint"):
        assert config.in_scope(pack, "repro.kv.session_cache"), pack
    report = run_lint([REPO_ROOT / "src" / "repro" / "kv" /
                       "session_cache.py"])
    rendered = "\n".join(f.render() for f in report.active)
    assert not report.active, rendered
