"""Tier-1 lint gate: the full rule suite over ``src/repro`` is clean.

This is the machine-checked version of the invariants the reproduction
rests on: protocol determinism, quorum arithmetic under ``n > 3t``,
wire-registry completeness, and handler completeness.  A failure here
means a protocol module regressed — fix it or add an explicit
``# lint: disable=<rule>`` waiver with a justification.
"""

from pathlib import Path

from repro.lint import run_lint

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"


def test_source_tree_exists():
    assert (SRC / "lint" / "engine.py").exists()


def test_full_suite_zero_unwaived_findings():
    report = run_lint([SRC])
    rendered = "\n".join(f.render() for f in report.active)
    assert not report.active, f"unwaived lint findings:\n{rendered}"
    assert report.exit_code == 0


def test_gate_covers_all_rule_packs():
    report = run_lint([SRC])
    assert set(report.rules_run) == {
        "determinism", "quorum", "wire", "handlers"}


def test_gate_scans_protocol_modules():
    report = run_lint([SRC])
    # The whole package tree is parsed, not a subset.
    assert report.modules_checked >= 90
