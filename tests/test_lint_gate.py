"""Tier-1 lint gate: the full rule suite over ``src/repro`` is clean.

This is the machine-checked version of the invariants the reproduction
rests on: protocol determinism, quorum arithmetic under ``n > 3t``,
wire-registry completeness, handler completeness, and Byzantine taint
flow (every ``Message.payload`` field verified before it reaches a
sink).  A failure here means a protocol module regressed — fix it or
add an explicit ``# lint: disable=<rule>`` waiver with a justification
(unused waivers are themselves flagged by ``waiver-dead``).

The gate also exercises the CI surface end to end: the SARIF export
and the committed baseline (``benchmarks/LINT_baseline.json``) must
round-trip — baselined findings pass, new findings fail.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint import run_lint

ROOT = Path(__file__).resolve().parent.parent
SRC = ROOT / "src" / "repro"
BASELINE = ROOT / "benchmarks" / "LINT_baseline.json"


def _lint_subprocess(*arguments):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(ROOT / "src")] + env.get("PYTHONPATH", "").split(os.pathsep))
    return subprocess.run(
        [sys.executable, "-m", "repro.lint", *arguments],
        capture_output=True, text=True, cwd=ROOT, env=env)


@pytest.fixture(scope="module")
def full_report():
    return run_lint([SRC])


def test_source_tree_exists():
    assert (SRC / "lint" / "engine.py").exists()


def test_full_suite_zero_unwaived_findings(full_report):
    rendered = "\n".join(f.render() for f in full_report.active)
    assert not full_report.active, \
        f"unwaived lint findings:\n{rendered}"
    assert full_report.exit_code == 0


def test_gate_covers_all_rule_packs(full_report):
    assert set(full_report.rules_run) == {
        "determinism", "quorum", "wire", "handlers", "taint"}


def test_gate_scans_protocol_modules(full_report):
    # The whole package tree is parsed, not a subset.
    assert full_report.modules_checked >= 90


def test_no_dead_waivers_in_source_tree(full_report):
    dead = [f for f in full_report.findings if f.rule == "waiver-dead"]
    rendered = "\n".join(f.render() for f in dead)
    assert not dead, f"stale waiver comments:\n{rendered}"


def test_sarif_baseline_ci_invocation(tmp_path):
    """The documented CI command line succeeds against the committed
    baseline and produces a well-formed SARIF file."""
    sarif_path = tmp_path / "out.sarif"
    result = _lint_subprocess(str(SRC), "--sarif", str(sarif_path),
                              "--baseline", str(BASELINE))
    assert result.returncode == 0, \
        f"baseline gate failed:\n{result.stdout}\n{result.stderr}"
    document = json.loads(sarif_path.read_text(encoding="utf-8"))
    assert document["version"] == "2.1.0"
    [run] = document["runs"]
    assert run["tool"]["driver"]["name"] == "repro-lint"
    # Active findings are all baselined-or-absent; waived ones appear
    # as suppressed results.
    assert all("suppressions" in r or r["ruleId"]
               for r in run["results"])


def test_committed_baseline_matches_clean_tree():
    """The committed baseline records zero accepted findings: the tree
    is clean, so any future finding is 'new' and fails the gate."""
    document = json.loads(BASELINE.read_text(encoding="utf-8"))
    assert document["version"] == 1
    assert document["findings"] == {}


def test_baseline_gate_fails_on_new_finding(tmp_path):
    """End-to-end ratchet check: a fresh violation on top of the
    committed baseline exits nonzero."""
    bad = tmp_path / "bad.py"
    bad.write_text("import time\n\n\ndef now():\n"
                   "    return time.time()\n")
    result = _lint_subprocess(str(SRC), str(bad),
                              "--baseline", str(BASELINE))
    assert result.returncode == 1
    assert "det-wallclock" in result.stdout
