"""Rule-pack tests for :mod:`repro.lint` against violation fixtures.

The fixtures under ``tests/fixtures/lint/`` are scanned as ASTs only —
they are never imported — and each carries deliberate violations whose
rule ids and line numbers are pinned here.
"""

from pathlib import Path

from repro.lint import LintConfig, run_lint
from repro.lint.runner import main as lint_main

FIXTURES = Path(__file__).resolve().parent / "fixtures" / "lint"


def findings_for(filename, only=None):
    report = run_lint([FIXTURES / filename], only=only)
    return report


def locate(report, rule):
    return sorted((f.path, f.line) for f in report.findings
                  if f.rule == rule and not f.waived)


def test_determinism_pack_detects_seeded_violations():
    report = findings_for("det_violations.py", only={"determinism"})
    path = str(FIXTURES / "det_violations.py")
    assert locate(report, "det-entropy") == [
        (path, 6), (path, 19), (path, 34)]
    assert locate(report, "det-wallclock") == [(path, 7), (path, 22)]
    assert locate(report, "det-set-order") == [(path, 26)]
    assert locate(report, "det-id-order") == [(path, 31)]


def test_quorum_pack_detects_seeded_violations():
    report = findings_for("quorum_violations.py", only={"quorum"})
    path = str(FIXTURES / "quorum_violations.py")
    assert locate(report, "quorum-literal") == [(path, 14)]
    assert locate(report, "quorum-intersection") == [(path, 20)]
    assert locate(report, "quorum-unreachable") == [(path, 24)]
    # The canonical n - t wait in the same fixture stays quiet.
    assert len(report.active) == 3


def test_wire_pack_detects_unregistered_payload():
    report = run_lint([FIXTURES / "wire_violations.py"], only={"wire"})
    path = str(FIXTURES / "wire_violations.py")
    assert locate(report, "wire-unregistered") == [(path, 21), (path, 25)]


def test_wire_pack_detects_dead_registration():
    report = run_lint([FIXTURES / "wire_dead.py"], only={"wire"})
    path = str(FIXTURES / "wire_dead.py")
    assert locate(report, "wire-dead") == [(path, 13)]
    [finding] = report.active
    assert finding.severity == "warning"


def test_handler_pack_detects_orphans_and_unhandled():
    report = run_lint([FIXTURES / "handler_violations.py"],
                      only={"handlers"})
    path = str(FIXTURES / "handler_violations.py")
    assert locate(report, "handler-orphan") == [(path, 14)]
    assert locate(report, "handler-unhandled") == [(path, 19)]
    # The matched ping send/handler pair stays quiet.
    assert len(report.active) == 2


def test_waiver_comments_suppress_findings():
    report = run_lint([FIXTURES / "waiver_example.py"],
                      only={"determinism"})
    path = str(FIXTURES / "waiver_example.py")
    # Same-line waiver (line 6) and standalone previous-line waiver
    # (line 10) are honoured; line 7 stays active.
    assert sorted((f.line, f.waived) for f in report.findings) == [
        (6, True), (7, False), (10, True)]
    assert locate(report, "det-wallclock") == [(path, 7)]
    assert report.exit_code == 1


def test_fixture_directory_exits_nonzero():
    report = run_lint([FIXTURES])
    assert report.exit_code == 1
    assert len(report.active) >= 14


def test_runner_cli_on_fixture(capsys):
    code = lint_main([str(FIXTURES / "det_violations.py")])
    out = capsys.readouterr().out
    assert code == 1
    assert "det_violations.py:6: error: [det-entropy]" in out


def test_runner_cli_json_output(capsys):
    code = lint_main([str(FIXTURES / "quorum_violations.py"),
                      "--rules", "quorum", "--format", "json"])
    out = capsys.readouterr().out
    assert code == 1
    import json

    payload = json.loads(out)
    assert payload["active"] == 3
    rules = {f["rule"] for f in payload["findings"]}
    assert rules == {"quorum-literal", "quorum-intersection",
                     "quorum-unreachable"}


def test_runner_lists_rules(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for pack in ("determinism", "quorum", "wire", "handlers", "taint"):
        assert pack in out
    assert "waiver-dead" in out


def test_rule_filter_limits_packs():
    report = run_lint([FIXTURES / "det_violations.py"], only={"quorum"})
    assert report.findings == []


def test_scoping_exempts_non_protocol_repro_modules(tmp_path):
    # A module whose dotted name falls outside the protocol prefixes
    # (e.g. repro.workloads) may seed RNGs freely.
    package = tmp_path / "repro"
    (package / "workloads").mkdir(parents=True)
    (package / "__init__.py").write_text("")
    (package / "workloads" / "__init__.py").write_text("")
    (package / "workloads" / "gen.py").write_text(
        "import random\n\n\ndef draw():\n    return random.random()\n")
    report = run_lint([package], only={"determinism"})
    assert report.findings == []
    # The same file inside a protocol prefix is flagged.
    (package / "core").mkdir()
    (package / "core" / "__init__.py").write_text("")
    (package / "core" / "gen.py").write_text(
        "import random\n\n\ndef draw():\n    return random.random()\n")
    report = run_lint([package], only={"determinism"})
    assert [f.rule for f in report.active] == ["det-entropy"]


def test_seeded_rng_and_canonical_thresholds_stay_quiet(tmp_path):
    clean = tmp_path / "clean.py"
    clean.write_text(
        "import random\n"
        "\n"
        "\n"
        "class Fine:\n"
        "    def __init__(self, config, process, seed):\n"
        "        self.config = config\n"
        "        self.process = process\n"
        "        self.rng = random.Random(seed)\n"
        "\n"
        "    def wait(self, tag, acks):\n"
        "        quorum = self.config.quorum\n"
        "        ok = len(acks) >= 2 * self.config.t + 1\n"
        "        amplify = len(acks) >= self.config.t + 1\n"
        "        coded = len(acks) >= self.config.k\n"
        "        cond = self.process.condition_quorum(tag, 'ack', quorum)\n"
        "        self.process.send(None, tag, 'ack', b'')\n"
        "        for item in sorted({'a', 'b'}):\n"
        "            pass\n"
        "        return ok, amplify, coded, cond\n")
    report = run_lint([clean], only={"determinism", "quorum"})
    assert report.findings == []


def test_lint_config_scope_defaults():
    config = LintConfig()
    assert config.in_scope("determinism", "repro.core.atomic")
    assert not config.in_scope("determinism", "repro.workloads.generator")
    assert config.in_scope("wire", "repro.workloads.generator")
    assert config.in_scope("determinism", "some_fixture_module")
    # The linter exempts itself from protocol-only packs.
    assert not config.in_scope("determinism", "repro.lint.engine")


def test_determinism_pack_flags_functools_caches():
    report = findings_for("cache_violations.py", only={"determinism"})
    path = str(FIXTURES / "cache_violations.py")
    assert locate(report, "det-cache-order") == [
        (path, 8), (path, 11), (path, 16)]
    # The sanctioned repro.common.lru.LruCache usage stays quiet: the
    # only findings in the fixture are the functools memoizers.
    assert {f.rule for f in report.active} == {"det-cache-order"}


def test_cache_rule_exempts_sanctioned_lru_module():
    """The one place allowed to implement caching is repro.common.lru —
    the rule exempts it by dotted name, not by waiver comments."""
    import ast as _ast

    from repro.lint.engine import ModuleInfo, Project
    from repro.lint.rules.determinism import (
        _SANCTIONED_CACHE_MODULES,
        DeterminismRule,
    )

    assert "repro.common.lru" in _SANCTIONED_CACHE_MODULES
    source = "import functools\n\n@functools.lru_cache\ndef f(x):\n    return x\n"

    def module_named(dotted):
        return ModuleInfo(path=Path(f"{dotted}.py"), dotted=dotted,
                          tree=_ast.parse(source),
                          source_lines=source.splitlines())

    rule = DeterminismRule()
    config = LintConfig(scope_all_packages=False)
    flagged = list(rule.run(
        Project(modules=[module_named("repro.net.example")]), config))
    assert [f.rule for f in flagged] == ["det-cache-order"]
    exempt = list(rule.run(
        Project(modules=[module_named("repro.common.lru")]), config))
    assert exempt == []


def test_determinism_scope_covers_kernel_and_common_modules():
    config = LintConfig()
    assert config.in_scope("determinism", "repro.erasure.reed_solomon")
    assert config.in_scope("determinism", "repro.crypto.hashing")
    assert config.in_scope("determinism", "repro.common.lru")
    # The quorum/handler packs keep their protocol-only scope.
    assert not config.in_scope("quorum", "repro.erasure.reed_solomon")


def test_determinism_scope_covers_health_plane():
    """The health/SLO/time-series plane runs entirely on the logical
    clock, so it is held to the protocol determinism bar; wall-clock
    reads stay quarantined in ``repro.obs.clock`` behind its waivers."""
    config = LintConfig()
    for dotted in ("repro.obs.health", "repro.obs.slo",
                   "repro.obs.timeseries", "repro.obs.export",
                   "repro.obs.clock"):
        assert config.in_scope("determinism", dotted)


def test_health_plane_modules_lint_clean():
    src = Path(__file__).resolve().parent.parent / "src" / "repro" / "obs"
    report = run_lint(
        [src / "health.py", src / "slo.py", src / "timeseries.py"],
        only={"determinism", "handlers", "quorum"})
    assert report.findings == []
