"""Wire compatibility: every message any protocol sends must survive a
canonical serialize/deserialize roundtrip (the simulator normally only
*sizes* payloads; a real network would transport the encodings)."""

import pytest

from repro.cluster import build_cluster
from repro.common.serialization import decode, encode
from repro.config import SystemConfig
from repro.net.schedulers import RandomScheduler
from repro.workloads.generator import random_workload, run_workload

TAG = "reg"


def _assert_all_payloads_roundtrip(cluster):
    seen = 0
    for process in cluster.simulator.processes:
        for key in list(process.inbox._by_key):
            for message in process.inbox._by_key[key]:
                wire = encode((message.tag, message.mtype,
                               message.payload))
                tag, mtype, payload = decode(wire)
                assert (tag, mtype, payload) == (
                    message.tag, message.mtype, message.payload)
                seen += 1
    assert seen > 0


@pytest.mark.parametrize("protocol,n", [
    ("atomic", 4), ("atomic_ns", 4), ("martin", 4),
    ("bazzi_ding", 5), ("goodson", 5), ("phalanx", 5),
    ("no_listeners", 4),
    ("abc", 4),
])
def test_all_protocol_messages_roundtrip(protocol, n):
    cluster = build_cluster(SystemConfig(n=n, t=1), protocol=protocol,
                            num_clients=2,
                            scheduler=RandomScheduler(1))
    operations = random_workload(2, writes=2, reads=2, seed=1)
    run_workload(cluster, TAG, operations, seed=1)
    _assert_all_payloads_roundtrip(cluster)


def test_merkle_mode_messages_roundtrip():
    cluster = build_cluster(
        SystemConfig(n=4, t=1, commitment="merkle"), protocol="atomic_ns",
        num_clients=1, scheduler=RandomScheduler(2))
    cluster.write(1, TAG, "w1", b"merkle wire test")
    cluster.read(1, TAG, "r1")
    cluster.run()
    _assert_all_payloads_roundtrip(cluster)


def test_shoup_mode_messages_roundtrip():
    cluster = build_cluster(
        SystemConfig(n=4, t=1, threshold_backend="shoup"),
        protocol="atomic_ns", num_clients=1,
        scheduler=RandomScheduler(3))
    cluster.write(1, TAG, "w1", b"rsa wire test")
    cluster.run()
    _assert_all_payloads_roundtrip(cluster)
