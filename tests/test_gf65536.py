"""GF(2^16) field and the large-cluster Reed-Solomon code."""

import itertools
import os
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ConfigurationError, DecodingError
from repro.erasure import gf65536
from repro.erasure.coder import ErasureCoder
from repro.erasure.reed_solomon16 import ReedSolomonCode16

elements = st.integers(min_value=0, max_value=65535)
nonzero = st.integers(min_value=1, max_value=65535)


def test_mul_identity_and_zero():
    for a in (0, 1, 2, 255, 256, 65535):
        assert gf65536.gf_mul(a, 1) == a
        assert gf65536.gf_mul(a, 0) == 0


def test_generator_reduction():
    # 2 * 0x8000 overflows and reduces by the primitive polynomial.
    assert gf65536.gf_mul(0x8000, 2) == (0x10000 ^ gf65536.PRIMITIVE_POLY)


def test_div_and_inv_errors():
    with pytest.raises(ZeroDivisionError):
        gf65536.gf_div(1, 0)
    with pytest.raises(ZeroDivisionError):
        gf65536.gf_inv(0)
    with pytest.raises(ZeroDivisionError):
        gf65536.gf_pow(0, -2)


def test_pow_base_cases():
    assert gf65536.gf_pow(0, 0) == 1
    assert gf65536.gf_pow(0, 3) == 0
    assert gf65536.gf_pow(7, 0) == 1
    assert gf65536.gf_mul(gf65536.gf_pow(9, -1), 9) == 1


@given(elements, elements)
def test_mul_commutative(a, b):
    assert gf65536.gf_mul(a, b) == gf65536.gf_mul(b, a)


@given(elements, elements, elements)
def test_distributive(a, b, c):
    left = gf65536.gf_mul(a, b ^ c)
    right = gf65536.gf_mul(a, b) ^ gf65536.gf_mul(a, c)
    assert left == right


@given(nonzero)
def test_inverse(a):
    assert gf65536.gf_mul(a, gf65536.gf_inv(a)) == 1


@given(elements, nonzero)
def test_div_matches_inverse(a, b):
    assert gf65536.gf_div(a, b) == gf65536.gf_mul(a, gf65536.gf_inv(b))


def test_matrix_invert_roundtrip():
    rng = random.Random(5)
    matrix = [[rng.randrange(65536) for _ in range(4)] for _ in range(4)]
    try:
        inverse = gf65536.matrix_invert(matrix)
    except ValueError:
        pytest.skip("randomly singular")
    product = gf65536.matrix_multiply(matrix, inverse)
    assert product == gf65536.identity_matrix(4)


def test_vandermonde_limit():
    with pytest.raises(ValueError):
        gf65536.vandermonde_matrix(70000, 2)


# -- Reed-Solomon over GF(2^16) --------------------------------------------------

def test_rs16_systematic_roundtrip():
    code = ReedSolomonCode16(6, 3)
    data = [os.urandom(12) for _ in range(3)]
    blocks = code.encode_blocks(data)
    assert blocks[:3] == data
    for subset in itertools.combinations(range(6), 3):
        recovered = code.decode_blocks(
            {index: blocks[index] for index in subset})
        assert recovered == data


def test_rs16_beyond_255():
    code = ReedSolomonCode16(300, 5)
    data = [os.urandom(8) for _ in range(5)]
    blocks = code.encode_blocks(data)
    assert len(blocks) == 300
    recovered = code.decode_blocks(
        {299: blocks[299], 256: blocks[256], 17: blocks[17],
         255: blocks[255], 123: blocks[123]})
    assert recovered == data


def test_rs16_odd_length_rejected():
    code = ReedSolomonCode16(4, 2)
    with pytest.raises(ConfigurationError):
        code.encode_blocks([b"abc", b"def"])
    with pytest.raises(DecodingError):
        code.decode_blocks({0: b"abc", 1: b"def"})


def test_rs16_parameter_validation():
    with pytest.raises(ConfigurationError):
        ReedSolomonCode16(3, 4)
    with pytest.raises(ConfigurationError):
        ReedSolomonCode16(70000, 2)


def test_rs16_numpy_matches_python():
    fast = ReedSolomonCode16(7, 4, use_numpy=True)
    slow = ReedSolomonCode16(7, 4, use_numpy=False)
    data = [os.urandom(20) for _ in range(4)]
    assert fast.encode_blocks(data) == slow.encode_blocks(data)
    blocks = fast.encode_blocks(data)
    subset = {6: blocks[6], 5: blocks[5], 4: blocks[4], 2: blocks[2]}
    assert fast.decode_blocks(subset) == slow.decode_blocks(subset)


# -- coder integration ---------------------------------------------------------------

def test_coder_field_auto_selection():
    assert ErasureCoder(255, 100).field == "gf256"
    assert ErasureCoder(256, 100).field == "gf65536"


def test_coder_explicit_field_roundtrip():
    coder = ErasureCoder(7, 3, field="gf65536")
    value = os.urandom(1001)  # odd length exercises symbol padding
    blocks = coder.encode(value)
    assert len(blocks[0]) % 2 == 0
    assert coder.decode([(2, blocks[1]), (5, blocks[4]),
                         (7, blocks[6])]) == value


def test_coder_unknown_field():
    with pytest.raises(ConfigurationError):
        ErasureCoder(4, 2, field="gf4")


def test_large_cluster_value_roundtrip():
    coder = ErasureCoder(400, 280)
    value = os.urandom(4096)
    blocks = coder.encode(value)
    pairs = [(j, blocks[j - 1]) for j in range(50, 50 + 280)]
    assert coder.decode(pairs) == value
    assert coder.storage_blowup(4096) < 1.6


@settings(max_examples=15)
@given(st.data())
def test_property_rs16_roundtrip(data):
    n = data.draw(st.integers(min_value=1, max_value=9))
    k = data.draw(st.integers(min_value=1, max_value=n))
    length = 2 * data.draw(st.integers(min_value=0, max_value=10))
    blocks_in = [data.draw(st.binary(min_size=length, max_size=length))
                 for _ in range(k)]
    code = ReedSolomonCode16(n, k)
    encoded = code.encode_blocks(blocks_in)
    chosen = data.draw(st.permutations(list(range(n))))[:k]
    assert code.decode_blocks(
        {index: encoded[index] for index in chosen}) == blocks_in
