"""The listener set L."""

from repro.common.ids import client_id
from repro.core.listeners import ListenerSet
from repro.core.timestamps import Timestamp


def test_add_and_contains():
    listeners = ListenerSet()
    assert listeners.add("r1", Timestamp(1, "w"), client_id(1))
    assert "r1" in listeners
    assert len(listeners) == 1


def test_duplicate_add_refused():
    listeners = ListenerSet()
    listeners.add("r1", Timestamp(1, "w"), client_id(1))
    assert not listeners.add("r1", Timestamp(2, "w"), client_id(2))
    assert len(listeners) == 1


def test_retired_oid_refused_forever():
    listeners = ListenerSet()
    listeners.add("r1", Timestamp(1, "w"), client_id(1))
    listeners.retire("r1")
    assert "r1" not in listeners
    assert not listeners.add("r1", Timestamp(1, "w"), client_id(1))


def test_retire_unknown_is_noop():
    listeners = ListenerSet()
    listeners.retire("ghost")
    assert len(listeners) == 0


def test_below_strictly_smaller():
    listeners = ListenerSet()
    listeners.add("r1", Timestamp(1, "a"), client_id(1))
    listeners.add("r2", Timestamp(3, "a"), client_id(2))
    listeners.add("r3", Timestamp(2, "a"), client_id(3))
    below = dict(listeners.below(Timestamp(2, "a")))
    assert below == {"r1": client_id(1)}
    below_all = dict(listeners.below(Timestamp(99, "z")))
    assert set(below_all) == {"r1", "r2", "r3"}


def test_below_excludes_equal():
    listeners = ListenerSet()
    listeners.add("r1", Timestamp(2, "a"), client_id(1))
    assert list(listeners.below(Timestamp(2, "a"))) == []


def test_storage_bytes_grows():
    listeners = ListenerSet()
    empty = listeners.storage_bytes()
    listeners.add("r1", Timestamp(1, "a"), client_id(1))
    assert listeners.storage_bytes() > empty
