"""Smoke tests for the benchmark harness (``repro bench --quick``).

These run next to the tier-1 suite so a broken benchmark path is caught
at test time, not when someone needs performance numbers.  The quick
variants use tiny iteration counts — the point is that every benchmark
*runs* and emits well-formed rows, not that the numbers mean anything.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.obs.bench import (
    BenchRow,
    compare_rows,
    run_macro_benchmarks,
    run_micro_benchmarks,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_quick_micro_benchmarks_emit_rows():
    rows = run_micro_benchmarks(quick=True)
    names = [row.name for row in rows]
    assert "micro.decode_repeated" in names
    assert "micro.gf_matvec_encode" in names
    for row in rows:
        assert isinstance(row, BenchRow)
        assert row.iterations >= 1
        assert row.seconds >= 0


def test_quick_macro_benchmark_emits_atomic_row():
    rows = run_macro_benchmarks(quick=True)
    assert [row.name for row in rows] == ["macro.atomic_rw",
                                          "macro.atomic_md_rw"]
    for row in rows:
        assert row.params["messages"] > 0
        assert row.params["message_bytes"] > 0


def test_quick_macro_md_row_moves_fewer_bytes_than_atomic():
    """The deterministic communication-complexity gate: the same seeded
    workload moves at least 2x fewer wire bytes under the metadata/data
    separation than under full AVID dispersal."""
    rows = {row.name: row for row in run_macro_benchmarks(quick=True)}
    atomic = rows["macro.atomic_rw"].params["message_bytes"]
    md = rows["macro.atomic_md_rw"].params["message_bytes"]
    assert md * 2 <= atomic


def test_compare_rows_joins_on_name_and_params():
    baseline = [{"name": "x", "params": {"n": 4}, "iterations": 2,
                 "seconds": 2.0, "per_iteration_us": 1_000_000.0}]
    after = [{"name": "x", "params": {"n": 4, "messages": 9},
              "iterations": 4, "seconds": 1.0,
              "per_iteration_us": 250_000.0}]
    joined = compare_rows(baseline, after)
    assert len(joined) == 1
    assert joined[0]["speedup"] == 4.0


def test_cli_bench_quick_writes_json(tmp_path):
    """The end-to-end smoke target: ``repro bench --quick`` must run and
    write a ``BENCH_*.json`` document."""
    result = subprocess.run(
        [sys.executable, "-m", "repro.cli", "bench", "--quick",
         "--label", "smoke", "--out", str(tmp_path)],
        capture_output=True, text=True, timeout=600, cwd=REPO_ROOT,
        env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")})
    assert result.returncode == 0, result.stderr
    written = list(tmp_path.glob("BENCH_*smoke*.json"))
    assert written, (result.stdout, result.stderr)
    document = json.loads(written[0].read_text())
    rows = document["data"]["rows"]
    assert any(row["name"] == "macro.atomic_rw" for row in rows)
    assert any(row["name"].startswith("micro.") for row in rows)


def test_checked_in_benchmark_pair_meets_acceptance_gates():
    """The committed baseline/after pair documents the PR's speedups:
    >= 3x on the n=16 Atomic macrobench, >= 5x on repeated decode."""
    bench_dir = REPO_ROOT / "benchmarks"
    baseline = json.loads(
        (bench_dir / "BENCH_baseline_perf.json").read_text())
    after = json.loads((bench_dir / "BENCH_after_perf.json").read_text())
    joined = compare_rows(baseline["data"]["rows"], after["data"]["rows"])
    by_key = {(row["name"], row["params"].get("n")): row["speedup"]
              for row in joined}
    assert by_key[("macro.atomic_rw", 16)] >= 3.0
    assert by_key[("micro.decode_repeated", 16)] >= 5.0


def test_cli_kv_bench_smoke_writes_json(tmp_path):
    """``repro kv-bench --smoke`` must run the sharded load harness end
    to end (n=4, shards 1 and 2, plus one chaos case) and write a
    well-formed ``BENCH_*.json`` document."""
    result = subprocess.run(
        [sys.executable, "-m", "repro.cli", "kv-bench", "--smoke",
         "--label", "kv_smoke", "--out", str(tmp_path)],
        capture_output=True, text=True, timeout=600, cwd=REPO_ROOT,
        env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")})
    assert result.returncode == 0, result.stderr
    written = list(tmp_path.glob("BENCH_*kv_smoke*.json"))
    assert written, (result.stdout, result.stderr)
    rows = json.loads(written[0].read_text())["data"]["rows"]
    fault_free = [row for row in rows if row["plan"] is None]
    assert [row["shards"] for row in fault_free] == [1, 2]
    assert all(row["linearizable"] for row in rows)
    assert any(row["plan"] is not None for row in rows)
    assert fault_free[1]["ops_per_tick"] > fault_free[0]["ops_per_tick"]


def test_cli_kv_bench_smoke_runs_atomic_md(tmp_path):
    """The smoke path must exercise the metadata/data-separated
    protocol too: ``repro kv-bench --smoke --protocol atomic_md``
    resolves ``k = t + 1`` automatically and stays linearizable."""
    result = subprocess.run(
        [sys.executable, "-m", "repro.cli", "kv-bench", "--smoke",
         "--protocol", "atomic_md", "--label", "kv_md_smoke",
         "--out", str(tmp_path)],
        capture_output=True, text=True, timeout=600, cwd=REPO_ROOT,
        env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")})
    assert result.returncode == 0, result.stderr
    written = list(tmp_path.glob("BENCH_*kv_md_smoke*.json"))
    assert written, (result.stdout, result.stderr)
    rows = json.loads(written[0].read_text())["data"]["rows"]
    assert all(row["linearizable"] for row in rows)
    assert all(row["block_fetches"] > 0 for row in rows)


def test_checked_in_kv_md_comparison_meets_acceptance_gates():
    """The committed metadata/data-separation benchmark documents the
    PR's claim: under the 90/10 read-mostly mix ``atomic_md`` reads
    move >= 2x fewer data-plane bytes than ``atomic_ns`` at n=7/t=2,
    every sampled key linearizes, and the Byzantine corrupt-block case
    actually exercised read escalation (verification failures > 0)."""
    document = json.loads(
        (REPO_ROOT / "benchmarks" / "BENCH_kv_md.json").read_text())
    rows = document["data"]["rows"]
    assert all(row["linearizable"] for row in rows)
    summary = {(entry["n"], entry["t"]): entry
               for entry in document["data"]["summary"]}
    for deployment in ((4, 1), (7, 2)):
        entry = summary[deployment]
        assert entry["read_data_bytes_atomic_ns"] > 0
        assert entry["read_data_bytes_atomic_md"] > 0
    big = summary[(7, 2)]
    assert (big["read_data_bytes_atomic_ns"]
            >= 2 * big["read_data_bytes_atomic_md"])
    byzantine = [row for row in rows
                 if row["plan"] and row["plan"].startswith("byz-")]
    assert byzantine, "comparison must include a Byzantine chaos case"
    assert any(row["verify_failures"] > 0 for row in byzantine)
    fault_free_md = [row for row in rows
                     if row["protocol"] == "atomic_md"
                     and row["plan"] is None]
    assert all(row["block_fetches"] > 0 for row in fault_free_md)


def test_cli_kv_bench_smoke_with_session_cache(tmp_path):
    """``repro kv-bench --smoke --cache N --lease-ticks T`` must thread
    the cache configuration end to end: rows stay linearizable and the
    cache actually fires (lease hits or revalidations observed)."""
    result = subprocess.run(
        [sys.executable, "-m", "repro.cli", "kv-bench", "--smoke",
         "--protocol", "atomic_md", "--cache", "16",
         "--lease-ticks", "8", "--label", "kv_cache_smoke",
         "--out", str(tmp_path)],
        capture_output=True, text=True, timeout=600, cwd=REPO_ROOT,
        env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")})
    assert result.returncode == 0, result.stderr
    written = list(tmp_path.glob("BENCH_*kv_cache_smoke*.json"))
    assert written, (result.stdout, result.stderr)
    rows = json.loads(written[0].read_text())["data"]["rows"]
    assert all(row["linearizable"] for row in rows)
    assert all(row["cache_size"] == 16 for row in rows)
    activity = sum(row["lease_hits"] + row["revalidations"]
                   for row in rows)
    assert activity > 0, rows


def test_checked_in_kv_readheavy_meets_acceptance_gates():
    """The committed read-heavy comparison documents the PR's claim:
    session caching lifts read throughput by more than 5x on the 90/10
    Zipf mix over uncached ``atomic_md``, every row linearizes —
    including the chaos and Byzantine-metadata cases — and the
    forged-metadata attacker only ever forces full-read fallbacks."""
    document = json.loads(
        (REPO_ROOT / "benchmarks" /
         "BENCH_kv_readheavy.json").read_text())
    data = document["data"]
    cases = {row["case"]: row for row in data["rows"]}
    assert set(cases) == {"uncached", "cached", "cached+chaos",
                          "cached+byz-stale", "cached+byz-forged"}
    assert all(row["linearizable"] for row in cases.values())
    summary = data["summary"]
    assert summary["all_linearizable"] is True
    assert summary["read_throughput_ratio"] > 5.0
    assert summary["lease_hits_cached"] > 0
    assert cases["cached"]["revalidate_hits"] > 0
    assert cases["cached+byz-forged"]["revalidate_fallbacks"] > 0


def test_cli_kv_bench_check_pins_the_committed_readheavy_document():
    """CI entry point: ``repro kv-bench --check`` re-validates the
    committed read-heavy document's acceptance gates."""
    result = subprocess.run(
        [sys.executable, "-m", "repro.cli", "kv-bench", "--check",
         str(REPO_ROOT / "benchmarks" / "BENCH_kv_readheavy.json")],
        capture_output=True, text=True, timeout=600, cwd=REPO_ROOT,
        env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")})
    assert result.returncode == 0, (result.stdout, result.stderr)
    assert "readheavy check ok" in result.stdout


def test_checked_in_kv_baseline_shows_shard_scaling():
    """The committed kv baseline documents the PR's scaling claim:
    strictly increasing ops/tick over shards 1, 4, 16."""
    document = json.loads(
        (REPO_ROOT / "benchmarks" / "BENCH_kv_baseline.json").read_text())
    rows = document["data"]["rows"]
    fault_free = [row for row in rows if row["plan"] is None]
    assert [row["shards"] for row in fault_free] == [1, 4, 16]
    rates = [row["ops_per_tick"] for row in fault_free]
    assert rates[0] < rates[1] < rates[2]
    assert all(row["linearizable"] for row in rows)
    chaos_rows = [row for row in rows if row["plan"] is not None]
    assert chaos_rows and chaos_rows[0]["plan"] == "delays"


def test_cli_kv_bench_churn_smoke_writes_json(tmp_path):
    """``repro kv-bench --churn --smoke`` runs the crash-replace storm
    comparison end to end and writes a well-formed document whose
    repaired case survives what the unrepaired case does not."""
    result = subprocess.run(
        [sys.executable, "-m", "repro.cli", "kv-bench", "--churn",
         "--smoke", "--out", str(tmp_path)],
        capture_output=True, text=True, timeout=600, cwd=REPO_ROOT,
        env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")})
    assert result.returncode == 0, result.stderr
    written = list(tmp_path.glob("BENCH_*kv_churn*.json"))
    assert written, (result.stdout, result.stderr)
    data = json.loads(written[0].read_text())["data"]
    cases = {row["case"]: row for row in data["rows"]}
    assert set(cases) == {"faultfree", "churn+repair", "churn-norepair"}
    assert cases["churn+repair"]["linearizable"]
    assert not cases["churn+repair"]["liveness_violation"]
    assert cases["churn+repair"]["replacements"] == 3
    assert data["summary"]["repair_lag_final"] == 0


def test_checked_in_kv_churn_meets_acceptance_gates():
    """The committed churn comparison documents the PR's claim: under a
    ``t + 1`` crash-replace storm at n=7/t=2 the repaired fleet
    finishes every operation linearizably at >= 90% of fault-free
    throughput with repair lag pinned back to zero, while the identical
    unrepaired storm loses liveness (or ends below quorum)."""
    document = json.loads(
        (REPO_ROOT / "benchmarks" / "BENCH_kv_churn.json").read_text())
    data = document["data"]
    cases = {row["case"]: row for row in data["rows"]}
    assert set(cases) == {"faultfree", "churn+repair", "churn-norepair"}
    repaired = cases["churn+repair"]
    assert repaired["linearizable"]
    assert not repaired["liveness_violation"]
    assert repaired["completed"] == data["config"]["ops"]
    assert repaired["repair_lag_final"] == 0
    assert repaired["repairs_completed"] > 0
    summary = data["summary"]
    assert summary["throughput_retention"] >= 0.9
    assert summary["replacements"] >= data["config"]["t"] + 1
    assert (summary["norepair_liveness_violation"]
            or summary["norepair_below_quorum"])


def test_cli_kv_bench_check_pins_the_committed_churn_document():
    """CI entry point: ``repro kv-bench --churn --check`` re-validates
    the committed churn document's acceptance gates."""
    result = subprocess.run(
        [sys.executable, "-m", "repro.cli", "kv-bench", "--churn",
         "--check",
         str(REPO_ROOT / "benchmarks" / "BENCH_kv_churn.json")],
        capture_output=True, text=True, timeout=600, cwd=REPO_ROOT,
        env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")})
    assert result.returncode == 0, (result.stdout, result.stderr)
    assert "churn check ok" in result.stdout
