"""Smoke tests for the benchmark harness (``repro bench --quick``).

These run next to the tier-1 suite so a broken benchmark path is caught
at test time, not when someone needs performance numbers.  The quick
variants use tiny iteration counts — the point is that every benchmark
*runs* and emits well-formed rows, not that the numbers mean anything.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.obs.bench import (
    BenchRow,
    compare_rows,
    run_macro_benchmarks,
    run_micro_benchmarks,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_quick_micro_benchmarks_emit_rows():
    rows = run_micro_benchmarks(quick=True)
    names = [row.name for row in rows]
    assert "micro.decode_repeated" in names
    assert "micro.gf_matvec_encode" in names
    for row in rows:
        assert isinstance(row, BenchRow)
        assert row.iterations >= 1
        assert row.seconds >= 0


def test_quick_macro_benchmark_emits_atomic_row():
    rows = run_macro_benchmarks(quick=True)
    assert [row.name for row in rows] == ["macro.atomic_rw"]
    params = rows[0].params
    assert params["messages"] > 0 and params["message_bytes"] > 0


def test_compare_rows_joins_on_name_and_params():
    baseline = [{"name": "x", "params": {"n": 4}, "iterations": 2,
                 "seconds": 2.0, "per_iteration_us": 1_000_000.0}]
    after = [{"name": "x", "params": {"n": 4, "messages": 9},
              "iterations": 4, "seconds": 1.0,
              "per_iteration_us": 250_000.0}]
    joined = compare_rows(baseline, after)
    assert len(joined) == 1
    assert joined[0]["speedup"] == 4.0


def test_cli_bench_quick_writes_json(tmp_path):
    """The end-to-end smoke target: ``repro bench --quick`` must run and
    write a ``BENCH_*.json`` document."""
    result = subprocess.run(
        [sys.executable, "-m", "repro.cli", "bench", "--quick",
         "--label", "smoke", "--out", str(tmp_path)],
        capture_output=True, text=True, timeout=600, cwd=REPO_ROOT,
        env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")})
    assert result.returncode == 0, result.stderr
    written = list(tmp_path.glob("BENCH_*smoke*.json"))
    assert written, (result.stdout, result.stderr)
    document = json.loads(written[0].read_text())
    rows = document["data"]["rows"]
    assert any(row["name"] == "macro.atomic_rw" for row in rows)
    assert any(row["name"].startswith("micro.") for row in rows)


def test_checked_in_benchmark_pair_meets_acceptance_gates():
    """The committed baseline/after pair documents the PR's speedups:
    >= 3x on the n=16 Atomic macrobench, >= 5x on repeated decode."""
    bench_dir = REPO_ROOT / "benchmarks"
    baseline = json.loads(
        (bench_dir / "BENCH_baseline_perf.json").read_text())
    after = json.loads((bench_dir / "BENCH_after_perf.json").read_text())
    joined = compare_rows(baseline["data"]["rows"], after["data"]["rows"])
    by_key = {(row["name"], row["params"].get("n")): row["speedup"]
              for row in joined}
    assert by_key[("macro.atomic_rw", 16)] >= 3.0
    assert by_key[("micro.decode_repeated", 16)] >= 5.0


def test_cli_kv_bench_smoke_writes_json(tmp_path):
    """``repro kv-bench --smoke`` must run the sharded load harness end
    to end (n=4, shards 1 and 2, plus one chaos case) and write a
    well-formed ``BENCH_*.json`` document."""
    result = subprocess.run(
        [sys.executable, "-m", "repro.cli", "kv-bench", "--smoke",
         "--label", "kv_smoke", "--out", str(tmp_path)],
        capture_output=True, text=True, timeout=600, cwd=REPO_ROOT,
        env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")})
    assert result.returncode == 0, result.stderr
    written = list(tmp_path.glob("BENCH_*kv_smoke*.json"))
    assert written, (result.stdout, result.stderr)
    rows = json.loads(written[0].read_text())["data"]["rows"]
    fault_free = [row for row in rows if row["plan"] is None]
    assert [row["shards"] for row in fault_free] == [1, 2]
    assert all(row["linearizable"] for row in rows)
    assert any(row["plan"] is not None for row in rows)
    assert fault_free[1]["ops_per_tick"] > fault_free[0]["ops_per_tick"]


def test_checked_in_kv_baseline_shows_shard_scaling():
    """The committed kv baseline documents the PR's scaling claim:
    strictly increasing ops/tick over shards 1, 4, 16."""
    document = json.loads(
        (REPO_ROOT / "benchmarks" / "BENCH_kv_baseline.json").read_text())
    rows = document["data"]["rows"]
    fault_free = [row for row in rows if row["plan"] is None]
    assert [row["shards"] for row in fault_free] == [1, 4, 16]
    rates = [row["ops_per_tick"] for row in fault_free]
    assert rates[0] < rates[1] < rates[2]
    assert all(row["linearizable"] for row in rows)
    chaos_rows = [row for row in rows if row["plan"] is not None]
    assert chaos_rows and chaos_rows[0]["plan"] == "delays"
