"""The atomicity checker itself: accepts valid histories, rejects bad."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis.linearizability import (
    HistoryOp,
    check_atomicity,
)
from repro.common.errors import AtomicityViolation


def W(oid, value, invoke=None, complete=None):
    return HistoryOp(kind="write", oid=oid, value=value, invoke=invoke,
                     complete=complete)


def R(oid, value, invoke=None, complete=None):
    return HistoryOp(kind="read", oid=oid, value=value, invoke=invoke,
                     complete=complete)


def test_empty_history():
    assert check_atomicity([]) == []


def test_sequential_write_read():
    order = check_atomicity([
        W("w1", b"a", 1, 2),
        R("r1", b"a", 3, 4),
    ])
    assert order == ["w1", "r1"]


def test_read_of_initial_value():
    check_atomicity([R("r1", b"", 1, 2)])
    check_atomicity([R("r1", b"init", 1, 2)], initial_value=b"init")


def test_unknown_value_rejected():
    with pytest.raises(AtomicityViolation):
        check_atomicity([R("r1", b"ghost", 1, 2)])


def test_stale_read_rejected():
    """w1 completes, then w2 completes, then a read returns w1's value."""
    with pytest.raises(AtomicityViolation):
        check_atomicity([
            W("w1", b"a", 1, 2),
            W("w2", b"b", 3, 4),
            R("r1", b"a", 5, 6),
        ])


def test_read_from_future_write_rejected():
    with pytest.raises(AtomicityViolation):
        check_atomicity([
            R("r1", b"a", 1, 2),
            W("w1", b"a", 3, 4),
        ])


def test_concurrent_write_read_either_value_ok():
    base = [W("w1", b"a", 1, 2), W("w2", b"b", 3, 10)]
    check_atomicity(base + [R("r1", b"a", 4, 5)])
    check_atomicity(base + [R("r1", b"b", 4, 5)])


def test_new_old_inversion_rejected():
    """Two sequential reads during one write must not go new-then-old."""
    history = [
        W("w1", b"a", 1, 2),
        W("w2", b"b", 3, 20),
        R("r1", b"b", 4, 5),
        R("r2", b"a", 6, 7),
    ]
    with pytest.raises(AtomicityViolation):
        check_atomicity(history)


def test_old_new_order_accepted():
    history = [
        W("w1", b"a", 1, 2),
        W("w2", b"b", 3, 20),
        R("r1", b"a", 4, 5),
        R("r2", b"b", 6, 7),
    ]
    order = check_atomicity(history)
    assert order.index("r1") < order.index("r2")


def test_byzantine_write_no_interval_flexible():
    """A write without an interval can be linearized anywhere needed."""
    history = [
        W("w1", b"a", 1, 2),
        W("byz", b"evil"),         # no interval: Byzantine effect
        R("r1", b"evil", 3, 4),
        R("r2", b"evil", 5, 6),
    ]
    check_atomicity(history)


def test_byzantine_write_cannot_save_real_time_violation():
    history = [
        W("w1", b"a", 1, 2),
        W("byz", b"evil"),
        R("r1", b"evil", 3, 4),
        R("r2", b"a", 5, 6),       # stale again after evil was read
    ]
    with pytest.raises(AtomicityViolation):
        check_atomicity(history)


def test_duplicate_write_values_rejected():
    with pytest.raises(ValueError):
        check_atomicity([W("w1", b"same", 1, 2), W("w2", b"same", 3, 4)])


def test_write_of_initial_value_rejected():
    with pytest.raises(ValueError):
        check_atomicity([W("w1", b"", 1, 2)])


def test_unknown_kind_rejected():
    with pytest.raises(ValueError):
        check_atomicity([HistoryOp(kind="cas", oid="x", value=b"v")])


def test_interleaved_writers():
    history = [
        W("w1", b"a", 1, 10),
        W("w2", b"b", 2, 11),
        R("r1", b"a", 12, 13),
    ]
    with pytest.raises(AtomicityViolation):
        # r1 is stale only if w2 is ordered after w1... both orders must
        # be considered: w2 < w1 < r1 makes this valid.
        check_atomicity(history + [R("r2", b"b", 14, 15)])


def test_concurrent_reads_same_point():
    history = [
        W("w1", b"a", 1, 2),
        R("r1", b"a", 3, 6),
        R("r2", b"a", 4, 5),
    ]
    check_atomicity(history)


def test_witness_order_is_a_permutation():
    history = [
        W("w1", b"a", 1, 2),
        R("r1", b"a", 3, 4),
        W("w2", b"b", 5, 6),
        R("r2", b"b", 7, 8),
    ]
    order = check_atomicity(history)
    assert sorted(order) == ["r1", "r2", "w1", "w2"]


@given(st.integers(min_value=1, max_value=8))
def test_property_sequential_histories_always_atomic(count):
    """Strictly sequential alternating write/read histories linearize."""
    history = []
    time = 0
    for index in range(count):
        value = b"v%d" % index
        history.append(W(f"w{index}", value, time, time + 1))
        history.append(R(f"r{index}", value, time + 2, time + 3))
        time += 4
    order = check_atomicity(history)
    assert len(order) == 2 * count
