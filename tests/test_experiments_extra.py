"""The extension experiments (F9-F12) at reduced scale, plus CLI
registration checks."""

from repro.cli import _EXPERIMENTS
from repro.experiments import (
    broadcast_comparison,
    latency_rounds,
    listeners_ablation,
    scheduler_sensitivity,
)


def test_all_experiments_registered_in_cli():
    assert set(_EXPERIMENTS) == {
        "t1", "t2", "f1", "f2", "f3", "f4", "f5", "f6", "f7", "f8",
        "f9", "f10", "f11", "f12", "f13"}


def test_f9_listeners_ablation_small():
    rows = listeners_ablation.run(write_counts=(0, 4), reads=2)
    by_key = {(row.variant, row.concurrent_writes): row for row in rows}
    assert by_key[("atomic", 0)].rounds_per_read == 1.0
    assert by_key[("atomic", 4)].rounds_per_read == 1.0
    assert by_key[("no_listeners", 4)].rounds_per_read >= 1.0
    assert all(row.atomic for row in rows)
    assert listeners_ablation.render(rows)


def test_f10_latency_rounds_small():
    rows = latency_rounds.run(t=1, protocols=("martin", "atomic"))
    by_protocol = {row.protocol: row for row in rows}
    assert by_protocol["martin"].write_rounds == 4
    assert by_protocol["atomic"].write_rounds in (6, 7)
    assert latency_rounds.render(rows)


def test_f10b_rollback_latency_small():
    rows = latency_rounds.run_goodson_rollback_latency(counts=(0, 1))
    assert rows[0].read_rounds == 2
    assert rows[1].read_rounds == 4
    assert latency_rounds.render_rollback(rows)


def test_f11_scheduler_sensitivity_small():
    rows = scheduler_sensitivity.run(writes=2, reads=2)
    assert len(rows) == 4
    assert all(row.terminated and row.atomic for row in rows)
    assert all(row.load_imbalance < 1.5 for row in rows)
    assert scheduler_sensitivity.render(rows)


def test_f12_broadcast_comparison_small():
    rows = broadcast_comparison.run(ts=(1, 2), value_size=4096)
    assert all(row.avid_rbc_bytes < row.bracha_bytes for row in rows)
    assert rows[1].ratio > rows[0].ratio
    assert broadcast_comparison.render(rows)
