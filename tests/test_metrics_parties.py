"""Per-party traffic accounting and load-balance metrics."""

from hypothesis import given, strategies as st

from repro.common.errors import SerializationError
from repro.common.ids import client_id, server_id
from repro.common.serialization import decode
from repro.net.message import Message
from repro.net.metrics import Metrics


def _msg(sender, recipient, payload=(b"x",), tag="t"):
    return Message(tag=tag, mtype="m", sender=sender, recipient=recipient,
                   payload=payload, msg_id=0)


def test_sent_and_received_bytes():
    metrics = Metrics()
    message = _msg(server_id(1), server_id(2))
    metrics.record(message)
    size = message.wire_size()
    assert metrics.sent_bytes(server_id(1)) == size
    assert metrics.received_bytes(server_id(2)) == size
    assert metrics.sent_bytes(server_id(2)) == 0
    assert metrics.received_bytes(client_id(1)) == 0


def test_load_imbalance_balanced():
    metrics = Metrics()
    for j in (1, 2, 3):
        metrics.record(_msg(client_id(1), server_id(j)))
    servers = [server_id(j) for j in (1, 2, 3)]
    assert metrics.load_imbalance(servers) == 1.0


def test_load_imbalance_skewed():
    metrics = Metrics()
    for _ in range(3):
        metrics.record(_msg(client_id(1), server_id(1)))
    metrics.record(_msg(client_id(1), server_id(2)))
    servers = [server_id(1), server_id(2)]
    assert metrics.load_imbalance(servers) == 1.5


def test_load_imbalance_empty():
    metrics = Metrics()
    assert metrics.load_imbalance([server_id(1)]) == 1.0
    assert metrics.load_imbalance([]) == 1.0


def test_end_to_end_server_load_uniform():
    from repro.cluster import build_cluster
    from repro.config import SystemConfig
    from repro.net.schedulers import RandomScheduler

    cluster = build_cluster(SystemConfig(n=4, t=1), protocol="atomic_ns",
                            num_clients=1, scheduler=RandomScheduler(3))
    for index in range(3):
        cluster.write(1, "reg", f"w{index}", b"v%d" % index)
    cluster.run()
    metrics = cluster.simulator.metrics
    assert metrics.load_imbalance(cluster.simulator.server_pids) < 1.2
    # Clients send and receive too.
    assert metrics.sent_bytes(client_id(1)) > 0
    assert metrics.received_bytes(client_id(1)) > 0


# -- serialization decoder fuzzing (hardening for untrusted wire data) -------

@given(st.binary(min_size=0, max_size=64))
def test_decoder_never_crashes_on_garbage(data):
    """Arbitrary bytes either decode to a value or raise the library's
    SerializationError — never an uncontrolled exception."""
    try:
        decode(data)
    except SerializationError:
        pass
    except UnicodeDecodeError:
        # Raised for invalid UTF-8 inside string payloads; acceptable and
        # deterministic, but document it here.
        pass
