"""Baseline protocols: Martin et al., Bazzi-Ding, Goodson et al."""

import pytest

from repro.analysis.history import HistoryRecorder
from repro.cluster import build_cluster
from repro.common.errors import ConfigurationError
from repro.config import SystemConfig
from repro.core.timestamps import Timestamp
from repro.faults.byzantine_clients import PoisonousGoodsonWriter
from repro.faults.byzantine_servers import MartinInflatorServer
from repro.net.schedulers import RandomScheduler
from repro.workloads.generator import (
    make_values,
    random_workload,
    run_workload,
)

TAG = "reg"


def _cluster(protocol, n, t, seed=0, clients=2, **kwargs):
    config = SystemConfig(n=n, t=t, seed=seed)
    return build_cluster(config, protocol=protocol, num_clients=clients,
                         scheduler=RandomScheduler(seed), **kwargs)


# -- Martin et al. (SBQ-L) ------------------------------------------------------

def test_martin_write_read():
    cluster = _cluster("martin", 4, 1)
    cluster.write(1, TAG, "w1", b"replicated")
    assert cluster.read(2, TAG, "r1").result == b"replicated"


def test_martin_full_replication_storage():
    cluster = _cluster("martin", 4, 1)
    value = b"v" * 5000
    cluster.write(1, TAG, "w1", value)
    cluster.run()
    for server in cluster.servers:
        assert server.register_storage_bytes(TAG) >= len(value)


def test_martin_concurrent_atomicity():
    for seed in range(4):
        cluster = _cluster("martin", 4, 1, seed=seed, clients=3)
        operations = random_workload(3, writes=4, reads=4, seed=seed)
        run_workload(cluster, TAG, operations, seed=seed)
        HistoryRecorder(cluster, TAG).check()


def test_martin_crash_tolerance():
    from repro.faults.byzantine_servers import CrashServer
    cluster = _cluster(
        "martin", 4, 1,
        server_overrides={4: lambda pid, cfg: CrashServer(pid, cfg)})
    cluster.write(1, TAG, "w1", b"three respond")
    assert cluster.read(2, TAG, "r1").result == b"three respond"


def test_martin_inflation_succeeds():
    """The skipping weakness the paper fixes."""
    cluster = _cluster(
        "martin", 4, 1,
        server_overrides={
            1: lambda pid, cfg: MartinInflatorServer(pid, cfg)})
    cluster.write(1, TAG, "w1", b"x")
    cluster.run()
    assert cluster.server(2).register_state(TAG).timestamp.ts > 10 ** 6


def test_martin_initial_value():
    cluster = build_cluster(SystemConfig(n=4, t=1), protocol="martin",
                            num_clients=1,
                            scheduler=RandomScheduler(0),
                            initial_value=b"seed value")
    assert cluster.read(1, TAG, "r1").result == b"seed value"


# -- Bazzi-Ding -----------------------------------------------------------------

def test_bazzi_ding_requires_n_gt_4t():
    with pytest.raises(ConfigurationError):
        _cluster("bazzi_ding", 4, 1)


def test_bazzi_ding_write_read():
    cluster = _cluster("bazzi_ding", 5, 1)
    cluster.write(1, TAG, "w1", b"non-skipping replication")
    assert cluster.read(2, TAG, "r1").result == \
        b"non-skipping replication"


def test_bazzi_ding_concurrent_atomicity():
    for seed in range(3):
        cluster = _cluster("bazzi_ding", 5, 1, seed=seed, clients=3)
        operations = random_workload(3, writes=3, reads=4, seed=seed)
        run_workload(cluster, TAG, operations, seed=seed)
        HistoryRecorder(cluster, TAG).check()


def test_bazzi_ding_resists_server_inflation():
    cluster = _cluster(
        "bazzi_ding", 5, 1,
        server_overrides={
            1: lambda pid, cfg: MartinInflatorServer(pid, cfg)})
    for index in range(3):
        cluster.write(1, TAG, f"w{index}", b"v%d" % index)
    cluster.run()
    ts = cluster.server(2).register_state(TAG).timestamp.ts
    assert ts == 3  # the (t+1)-st largest rule filtered the lies


def test_bazzi_ding_monotonic_across_writers():
    cluster = _cluster("bazzi_ding", 5, 1, clients=2)
    cluster.write(1, TAG, "w1", b"first")
    cluster.write(2, TAG, "w2", b"second")
    read = cluster.read(1, TAG, "r1")
    assert read.result == b"second"
    assert read.timestamp.ts == 2


# -- Goodson et al. ----------------------------------------------------------------

def test_goodson_requires_n_gt_4t():
    with pytest.raises(ConfigurationError):
        _cluster("goodson", 4, 1)


def test_goodson_write_read():
    cluster = _cluster("goodson", 5, 1)
    cluster.write(1, TAG, "w1", b"erasure coded, validated at read")
    assert cluster.read(2, TAG, "r1").result == \
        b"erasure coded, validated at read"


def test_goodson_versions_accumulate():
    cluster = _cluster("goodson", 5, 1)
    for index in range(3):
        cluster.write(1, TAG, f"w{index}", b"v%d" % index)
    cluster.run()
    assert cluster.server(1).version_count(TAG) == 4  # initial + 3


def test_goodson_concurrent_atomicity():
    for seed in range(3):
        cluster = _cluster("goodson", 5, 1, seed=seed, clients=3)
        operations = random_workload(3, writes=3, reads=3, seed=seed)
        run_workload(cluster, TAG, operations, seed=seed)
        HistoryRecorder(cluster, TAG).check()


def test_goodson_poison_rolls_back():
    cluster = _cluster(
        "goodson", 5, 1,
        client_overrides={
            2: lambda pid, cfg: PoisonousGoodsonWriter(pid, cfg)})
    cluster.write(1, TAG, "honest", b"good value")
    garbage = make_values(2, size=64, prefix=b"bad")
    cluster.client(2).attack_write(TAG, "poison", 50, garbage)
    cluster.run()
    read = cluster.read(1, TAG, "probe")
    assert read.result == b"good value"
    assert cluster.client(1).rollback_counts["probe"] == 1


def test_goodson_stacked_poison_costs_linear_rollbacks():
    cluster = _cluster(
        "goodson", 5, 1,
        client_overrides={
            2: lambda pid, cfg: PoisonousGoodsonWriter(pid, cfg)})
    cluster.write(1, TAG, "honest", b"good value")
    garbage = make_values(2, size=64, prefix=b"bad")
    for index in range(3):
        cluster.client(2).attack_write(TAG, f"p{index}", 50 + index,
                                       garbage)
    cluster.run()
    read = cluster.read(1, TAG, "probe")
    assert read.result == b"good value"
    assert cluster.client(1).rollback_counts["probe"] == 3


def test_goodson_crash_tolerance():
    from repro.faults.byzantine_servers import CrashServer
    cluster = _cluster(
        "goodson", 5, 1,
        server_overrides={5: lambda pid, cfg: CrashServer(pid, cfg)})
    cluster.write(1, TAG, "w1", b"alive")
    assert cluster.read(2, TAG, "r1").result == b"alive"


def test_goodson_storage_grows_with_history():
    cluster = _cluster("goodson", 5, 1)
    cluster.write(1, TAG, "w1", b"v" * 1000)
    cluster.run()
    first = cluster.server(1).register_storage_bytes(TAG)
    for index in range(3):
        cluster.write(1, TAG, f"more{index}", b"x" * 1000)
    cluster.run()
    assert cluster.server(1).register_storage_bytes(TAG) > first * 2
