"""SystemConfig validation and derived quantities."""

import pytest

from repro.common.errors import ConfigurationError
from repro.config import SystemConfig
from repro.crypto.commitment import MerkleCommitment, VectorCommitment
from repro.crypto.threshold import IdealThresholdScheme, ShoupThresholdScheme


def test_minimal_optimal_resilience():
    config = SystemConfig(n=4, t=1)
    assert config.quorum == 3
    assert config.ready_amplify == 2
    assert config.deliver_quorum == 3
    assert config.k == 3  # defaults to n - t


def test_n_3t_rejected():
    with pytest.raises(ConfigurationError):
        SystemConfig(n=3, t=1)
    with pytest.raises(ConfigurationError):
        SystemConfig(n=6, t=2)


def test_t_zero_allowed():
    config = SystemConfig(n=1, t=0)
    assert config.quorum == 1


def test_k_bounds():
    SystemConfig(n=7, t=2, k=1)
    SystemConfig(n=7, t=2, k=5)
    with pytest.raises(ConfigurationError):
        SystemConfig(n=7, t=2, k=6)
    with pytest.raises(ConfigurationError):
        SystemConfig(n=7, t=2, k=0)


def test_coder_matches_config():
    config = SystemConfig(n=7, t=2, k=4)
    assert config.coder.n == 7
    assert config.coder.k == 4


def test_commitment_selection():
    assert isinstance(SystemConfig(n=4, t=1).commitment_scheme,
                      VectorCommitment)
    assert isinstance(
        SystemConfig(n=4, t=1, commitment="merkle").commitment_scheme,
        MerkleCommitment)
    with pytest.raises(ConfigurationError):
        SystemConfig(n=4, t=1, commitment="sparse")


def test_threshold_scheme_lazy_and_cached():
    config = SystemConfig(n=4, t=1)
    scheme = config.threshold_scheme
    assert isinstance(scheme, IdealThresholdScheme)
    assert config.threshold_scheme is scheme


def test_shoup_backend():
    config = SystemConfig(n=4, t=1, threshold_backend="shoup")
    assert isinstance(config.threshold_scheme, ShoupThresholdScheme)


def test_seed_differentiates_key_material():
    a = SystemConfig(n=4, t=1, seed=1)
    b = SystemConfig(n=4, t=1, seed=2)
    share = a.threshold_scheme.sign(("m",), 1)
    assert not b.threshold_scheme.verify_share(("m",), share)
