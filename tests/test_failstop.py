"""Fail-stop faults at every protocol point: liveness must never depend
on *when* a tolerated server dies."""

import pytest

from repro.analysis.history import HistoryRecorder
from repro.cluster import build_cluster
from repro.config import SystemConfig
from repro.faults.failstop import (
    FailStopMartinServer,
    FailStopNSServer,
    FailStopServer,
)
from repro.net.schedulers import RandomScheduler
from repro.workloads.generator import random_workload, run_workload

TAG = "reg"


def _run_with_crash_point(protocol, server_cls, crash_after, seed=0):
    config = SystemConfig(n=4, t=1, seed=seed)
    cluster = build_cluster(
        config, protocol=protocol, num_clients=2,
        scheduler=RandomScheduler(seed),
        server_overrides={
            2: lambda pid, cfg: server_cls(pid, cfg,
                                           crash_after=crash_after)})
    operations = random_workload(2, writes=2, reads=2, seed=seed)
    run_workload(cluster, TAG, operations, seed=seed)
    honest = [server.pid for index, server
              in enumerate(cluster.servers, start=1) if index != 2]
    HistoryRecorder(cluster, TAG, honest_servers=honest).check()
    return cluster


def test_crash_at_time_zero():
    cluster = _run_with_crash_point("atomic", FailStopServer, 0)
    assert cluster.server(2).crashed


@pytest.mark.parametrize("crash_after", [1, 3, 7, 15, 40, 100])
def test_atomic_survives_every_crash_point(crash_after):
    _run_with_crash_point("atomic", FailStopServer, crash_after)


@pytest.mark.parametrize("crash_after", [1, 5, 20, 60])
def test_atomic_ns_survives_every_crash_point(crash_after):
    _run_with_crash_point("atomic_ns", FailStopNSServer, crash_after)


@pytest.mark.parametrize("crash_after", [1, 4, 12])
def test_martin_survives_every_crash_point(crash_after):
    _run_with_crash_point("martin", FailStopMartinServer, crash_after)


def test_dense_crash_point_sweep():
    """Walk the crash point across the whole first write of a run —
    mid-echo, mid-ready, mid-share — liveness holds at each."""
    for crash_after in range(0, 30, 2):
        _run_with_crash_point("atomic_ns", FailStopNSServer, crash_after,
                              seed=crash_after)


def test_server_that_never_crashes_counts_as_honest():
    cluster = _run_with_crash_point("atomic", FailStopServer, 10 ** 9)
    assert not cluster.server(2).crashed


def test_crashed_server_buffers_but_ignores():
    cluster = _run_with_crash_point("atomic", FailStopServer, 1)
    server = cluster.server(2)
    assert server.crashed
    assert len(server.inbox) > 1  # deliveries continued into the buffer


def _run_with_recovery(protocol, server_cls, crash_after, recover_after,
                       seed=0):
    config = SystemConfig(n=4, t=1, seed=seed)
    cluster = build_cluster(
        config, protocol=protocol, num_clients=2,
        scheduler=RandomScheduler(seed),
        server_overrides={
            2: lambda pid, cfg: server_cls(
                pid, cfg, crash_after=crash_after,
                recover_after=recover_after)})
    operations = random_workload(2, writes=2, reads=2, seed=seed)
    run_workload(cluster, TAG, operations, seed=seed)
    HistoryRecorder(cluster, TAG).check()
    return cluster


@pytest.mark.parametrize("protocol,server_cls,recover_after", [
    ("atomic", FailStopServer, 8),
    ("atomic_ns", FailStopNSServer, 8),
    ("martin", FailStopMartinServer, 3),  # replication runs are short
])
def test_crash_then_recover_rejoins(protocol, server_cls, recover_after):
    """A transiently crashed server replays its down-time backlog and
    rejoins; the run stays atomic and wait-free throughout."""
    cluster = _run_with_recovery(protocol, server_cls,
                                 crash_after=5,
                                 recover_after=recover_after)
    server = cluster.server(2)
    assert server.recovered
    assert not server.crashed
    # The backlog really was replayed: deliveries counted past both the
    # crash point and the down window.
    assert server._delivered >= 5 + recover_after


def test_recovery_requires_enough_traffic():
    """A server whose down window outlasts the run never recovers (the
    permanent-crash behaviour is the limit case)."""
    config = SystemConfig(n=4, t=1, seed=0)
    cluster = build_cluster(
        config, protocol="atomic_ns", num_clients=2,
        scheduler=RandomScheduler(0),
        server_overrides={
            2: lambda pid, cfg: FailStopNSServer(
                pid, cfg, crash_after=1, recover_after=10 ** 9)})
    operations = random_workload(2, writes=2, reads=2, seed=0)
    run_workload(cluster, TAG, operations, seed=0)
    server = cluster.server(2)
    assert server.crashed and not server.recovered


# -- trigger clocks -----------------------------------------------------------

def test_unknown_trigger_is_rejected():
    from repro.common.errors import ConfigurationError
    from repro.common.ids import server_id
    with pytest.raises(ConfigurationError):
        FailStopServer(server_id(2), SystemConfig(n=4, t=1),
                       crash_after=1, trigger="wallclock")


def test_decision_trigger_crashes_on_the_global_clock():
    """With ``trigger="decisions"`` the crash point reads the global
    scheduling clock, not the server's own delivery count — the server
    goes down at the appointed time even if it was starved of traffic,
    and liveness still holds."""
    config = SystemConfig(n=4, t=1, seed=0)
    cluster = build_cluster(
        config, protocol="atomic", num_clients=2,
        scheduler=RandomScheduler(0),
        server_overrides={
            2: lambda pid, cfg: FailStopServer(
                pid, cfg, crash_after=20, trigger="decisions")})
    operations = random_workload(2, writes=2, reads=2, seed=0)
    run_workload(cluster, TAG, operations, seed=0)
    server = cluster.server(2)
    assert server.crashed
    # Decision clock ran ahead of the delivery count: the server
    # crashed having delivered fewer messages than the crash point.
    assert server._delivered < 20
    honest = [s.pid for index, s in enumerate(cluster.servers, start=1)
              if index != 2]
    HistoryRecorder(cluster, TAG, honest_servers=honest).check()


def test_decision_trigger_recovery_window_is_global_too():
    config = SystemConfig(n=4, t=1, seed=1)
    cluster = build_cluster(
        config, protocol="atomic_ns", num_clients=2,
        scheduler=RandomScheduler(1),
        server_overrides={
            2: lambda pid, cfg: FailStopNSServer(
                pid, cfg, crash_after=5, recover_after=30,
                trigger="decisions")})
    operations = random_workload(2, writes=2, reads=2, seed=1)
    run_workload(cluster, TAG, operations, seed=1)
    server = cluster.server(2)
    assert server.recovered and not server.crashed
    HistoryRecorder(cluster, TAG).check()


def test_decision_trigger_crash_spec_round_trips_in_campaigns():
    from repro.chaos import CrashSpec, FaultPlan, RunSpec, execute_run
    plan = FaultPlan(
        name="decision-crash", seed=0, faulty=(4,),
        crashes=(CrashSpec(server=4, after=10, trigger="decisions"),))
    assert FaultPlan.from_json(plan.to_json()) == plan
    # The historical default stays implicit in serialized reproducers.
    default = FaultPlan(faulty=(4,), crashes=(CrashSpec(server=4),))
    assert "trigger" not in default.to_json()["crashes"][0]
    result = execute_run(RunSpec(protocol="atomic", plan=plan))
    assert result.status == "ok"
