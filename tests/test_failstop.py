"""Fail-stop faults at every protocol point: liveness must never depend
on *when* a tolerated server dies."""

import pytest

from repro.analysis.history import HistoryRecorder
from repro.cluster import build_cluster
from repro.config import SystemConfig
from repro.faults.failstop import (
    FailStopMartinServer,
    FailStopNSServer,
    FailStopServer,
)
from repro.net.schedulers import RandomScheduler
from repro.workloads.generator import random_workload, run_workload

TAG = "reg"


def _run_with_crash_point(protocol, server_cls, crash_after, seed=0):
    config = SystemConfig(n=4, t=1, seed=seed)
    cluster = build_cluster(
        config, protocol=protocol, num_clients=2,
        scheduler=RandomScheduler(seed),
        server_overrides={
            2: lambda pid, cfg: server_cls(pid, cfg,
                                           crash_after=crash_after)})
    operations = random_workload(2, writes=2, reads=2, seed=seed)
    run_workload(cluster, TAG, operations, seed=seed)
    honest = [server.pid for index, server
              in enumerate(cluster.servers, start=1) if index != 2]
    HistoryRecorder(cluster, TAG, honest_servers=honest).check()
    return cluster


def test_crash_at_time_zero():
    cluster = _run_with_crash_point("atomic", FailStopServer, 0)
    assert cluster.server(2).crashed


@pytest.mark.parametrize("crash_after", [1, 3, 7, 15, 40, 100])
def test_atomic_survives_every_crash_point(crash_after):
    _run_with_crash_point("atomic", FailStopServer, crash_after)


@pytest.mark.parametrize("crash_after", [1, 5, 20, 60])
def test_atomic_ns_survives_every_crash_point(crash_after):
    _run_with_crash_point("atomic_ns", FailStopNSServer, crash_after)


@pytest.mark.parametrize("crash_after", [1, 4, 12])
def test_martin_survives_every_crash_point(crash_after):
    _run_with_crash_point("martin", FailStopMartinServer, crash_after)


def test_dense_crash_point_sweep():
    """Walk the crash point across the whole first write of a run —
    mid-echo, mid-ready, mid-share — liveness holds at each."""
    for crash_after in range(0, 30, 2):
        _run_with_crash_point("atomic_ns", FailStopNSServer, crash_after,
                              seed=crash_after)


def test_server_that_never_crashes_counts_as_honest():
    cluster = _run_with_crash_point("atomic", FailStopServer, 10 ** 9)
    assert not cluster.server(2).crashed


def test_crashed_server_buffers_but_ignores():
    cluster = _run_with_crash_point("atomic", FailStopServer, 1)
    server = cluster.server(2)
    assert server.crashed
    assert len(server.inbox) > 1  # deliveries continued into the buffer
