"""The chaos plane: plans, injection, determinism, campaigns, shrink.

The two load-bearing guarantees tested here:

* **Schedule transparency** — attaching an injector with an *empty*
  plan leaves the event log byte-identical to a run with no injector
  at all (checked against the golden-schedule fixtures).
* **Replay determinism** — the same ``(seed, plan)`` always produces
  the same event log, so serialized reproducers replay bit-for-bit.

Plus the acceptance sweep: within the resilience bound every builtin
plan leaves all three campaign protocols atomic and wait-free, and the
deliberate ``n = 3t`` boundary probe is *detected* as a wait-freedom
violation, shrunk, and faithfully replayed.
"""

import json
from pathlib import Path

import pytest

from repro.chaos import (
    DEFAULT_BATTERY,
    STATUS_OK,
    STATUS_STALLED,
    FaultInjector,
    FaultPlan,
    FaultRule,
    CrashSpec,
    PartitionSpec,
    RunSpec,
    builtin_plan,
    campaign_report,
    execute_run,
    replay_reproducer,
    save_reproducer,
    shrink_plan,
    sweep,
)
from repro.cluster import build_cluster
from repro.common.errors import ConfigurationError, SimulationError
from repro.config import SystemConfig
from repro.net.schedulers import RandomScheduler
from repro.workloads.generator import random_workload, run_workload

FIXTURES = Path(__file__).parent / "fixtures"

TAG = "reg"


# -- plans ---------------------------------------------------------------------

def test_plan_json_round_trip():
    plan = FaultPlan(
        name="everything", seed=9, faulty=(3, 4), exceeds_t=True,
        rules=(FaultRule(kind="drop", party=3, limit=2),
               FaultRule(kind="delay", party=4, mtype="echo",
                         limit=1, delay=7)),
        partition=PartitionSpec(group=(1, 2), heal_at=30),
        crashes=(CrashSpec(server=3, after=4, recover_after=6),))
    assert FaultPlan.from_json(plan.to_json()) == plan
    # And through actual JSON text, as reproducer files store it.
    assert FaultPlan.from_json(json.loads(json.dumps(plan.to_json()))) \
        == plan


def test_plan_validation_rejects_rule_at_honest_party():
    plan = FaultPlan(faulty=(4,),
                     rules=(FaultRule(kind="drop", party=2, limit=1),))
    with pytest.raises(ConfigurationError):
        plan.validate(n=4, t=1)


def test_plan_validation_rejects_faulty_beyond_t():
    plan = FaultPlan(faulty=(3, 4))
    with pytest.raises(ConfigurationError):
        plan.validate(n=4, t=1)
    # ... unless the plan declares the boundary probe explicitly.
    FaultPlan(faulty=(3, 4), exceeds_t=True).validate(n=4, t=1)


def test_plan_validation_rejects_unbounded_delay_and_healless_partition():
    with pytest.raises(ConfigurationError):
        FaultPlan(faulty=(4,),
                  rules=(FaultRule(kind="delay", party=4,
                                   limit=1, delay=0),)).validate(4, 1)
    with pytest.raises(ConfigurationError):
        PartitionSpec(group=(1,), heal_at=0).validate()


def test_plan_validation_rejects_crash_of_undesignated_server():
    plan = FaultPlan(faulty=(), crashes=(CrashSpec(server=2),))
    with pytest.raises(ConfigurationError):
        plan.validate(n=4, t=1)


def test_crash_replace_after_round_trips_and_excludes_recovery():
    plan = FaultPlan(name="swap", faulty=(4,), crashes=(
        CrashSpec(server=4, after=10, trigger="decisions",
                  replace_after=20),))
    plan.validate(n=4, t=1)
    assert FaultPlan.from_json(plan.to_json()) == plan
    # A server either recovers with its state or is replaced amnesiac,
    # never both; and the replacement deadline must be positive.
    with pytest.raises(ConfigurationError):
        CrashSpec(server=4, after=10, recover_after=5,
                  replace_after=5).validate()
    with pytest.raises(ConfigurationError):
        CrashSpec(server=4, after=10, replace_after=0).validate()


def test_churn_builtin_plan_declares_a_replacement_deadline():
    plan = builtin_plan("churn", 4, 1, seed=3)
    plan.validate(n=4, t=1)
    [crash] = plan.crashes
    assert crash.replace_after is not None
    assert crash.recover_after is None
    assert crash.trigger == "decisions"
    assert not plan.exceeds_t  # within budget even with repair off
    assert FaultPlan.from_json(plan.to_json()) == plan


def test_byzantine_spec_selects_registered_behaviours():
    from repro.chaos.plan import ByzantineSpec
    from repro.faults.byzantine_servers import BYZANTINE_BEHAVIOURS
    for name, server_cls in sorted(BYZANTINE_BEHAVIOURS.items()):
        spec = ByzantineSpec(server=4, behaviour=name)
        spec.validate()
        assert spec.server_class() is server_cls
        plan = FaultPlan(name="byz", faulty=(4,), byzantine=(spec,))
        plan.validate(n=4, t=1)
        assert FaultPlan.from_json(plan.to_json()) == plan
    with pytest.raises(ConfigurationError):
        ByzantineSpec(server=4, behaviour="no-such").validate()
    with pytest.raises(ConfigurationError):
        ByzantineSpec(server=0, behaviour="corrupt-block").validate()


# -- scheduler composition ------------------------------------------------------

def test_scheduler_spec_round_trips_and_builds():
    from repro.chaos import SchedulerSpec
    from repro.net.schedulers import (
        PartitionScheduler,
        SlowPartiesScheduler,
    )
    expected = {"slow-parties": SlowPartiesScheduler,
                "partition": PartitionScheduler}
    for spec in (SchedulerSpec(name="slow-parties", slow_servers=(4,)),
                 SchedulerSpec(name="partition", group=(1,),
                               heal_after=60)):
        plan = FaultPlan(name="sched", scheduler=spec)
        assert FaultPlan.from_json(plan.to_json()) == plan
        assert isinstance(spec.build(seed=3), expected[spec.name])


def test_scheduler_spec_validation():
    from repro.chaos import SchedulerSpec
    with pytest.raises(ConfigurationError):
        SchedulerSpec(name="slow-parties").validate()  # no slow servers
    with pytest.raises(ConfigurationError):
        SchedulerSpec(name="partition", group=(1,)).validate()  # no heal
    with pytest.raises(ConfigurationError):
        SchedulerSpec(name="lifo").validate()
    with pytest.raises(ConfigurationError):
        FaultPlan(scheduler=SchedulerSpec(
            name="slow-parties", slow_servers=(9,))).validate(4, 1)


def test_plans_compose_adversarial_scheduler_with_message_faults():
    """The ``slow-server`` plan starves party n *and* drops some of its
    traffic; within the bound the run must still be clean."""
    plan = builtin_plan("slow-server", 4, 1, seed=0)
    assert plan.scheduler is not None and plan.rules
    result = execute_run(RunSpec(protocol="atomic_ns", plan=plan))
    assert result.status == STATUS_OK
    assert result.faults.get("chaos.injected[drop]", 0) > 0


def test_scheduler_only_plan_counts_as_empty_injection():
    plan = builtin_plan("sched-partition", 4, 1, seed=0)
    assert plan.empty  # starving is not a Byzantine budget spend
    result = execute_run(RunSpec(protocol="atomic", plan=plan))
    assert result.status == STATUS_OK
    assert sum(result.faults.values()) == 0


# -- schedule transparency ------------------------------------------------------

def test_empty_plan_is_byte_identical_to_no_injector():
    """The tentpole invariant: the interposition hook itself must be
    schedule-preserving.  Replays every golden-schedule fixture case
    with an empty-plan injector attached and requires the recorded
    digests to match exactly."""
    import sys
    sys.path.insert(0, str(Path(__file__).parent.parent / "tools"))
    try:
        from gen_golden_schedules import run_case
    finally:
        sys.path.pop(0)
    document = json.loads(
        (FIXTURES / "golden_schedules.json").read_text())

    def attach_empty(cluster):
        cluster.simulator.attach_injector(
            FaultInjector(FaultPlan(name="none")))

    for record in document["cases"]:
        replayed = run_case(dict(record["spec"]), prepare=attach_empty)
        assert replayed["sha256"] == record["sha256"], \
            f"case {record['spec']['name']} diverged with an " \
            f"empty-plan injector attached"
        assert replayed["events"] == record["events"]


def test_same_seed_and_plan_reproduce_identical_event_logs():
    spec = RunSpec(protocol="atomic_ns",
                   plan=builtin_plan("mixed", 4, 1, seed=5), seed=5)
    first = execute_run(spec)
    second = execute_run(spec)
    assert first.digest == second.digest
    assert first.faults == second.faults
    assert first.steps == second.steps


def test_different_plan_seed_changes_injected_schedule():
    base = RunSpec(protocol="atomic_ns",
                   plan=builtin_plan("corruption", 4, 1, seed=1), seed=1)
    other = RunSpec(protocol="atomic_ns",
                    plan=builtin_plan("corruption", 4, 1, seed=2), seed=1)
    # Same workload seed, different corruption keystream: the logs
    # record different corrupted payloads.
    assert execute_run(base).digest != execute_run(other).digest


# -- injector mechanics ---------------------------------------------------------

def _chaos_cluster(plan, seed=0, protocol="atomic_ns"):
    config = SystemConfig(n=4, t=1, seed=seed)
    cluster = build_cluster(config, protocol=protocol, num_clients=2,
                            scheduler=RandomScheduler(seed))
    injector = FaultInjector(plan)
    cluster.simulator.attach_injector(injector)
    return cluster, injector


def test_drops_are_recorded_and_counted():
    plan = FaultPlan(name="d", faulty=(4,),
                     rules=(FaultRule(kind="drop", party=4, limit=3),))
    cluster, injector = _chaos_cluster(plan)
    operations = random_workload(2, writes=2, reads=2, seed=0)
    run_workload(cluster, TAG, operations, seed=0)
    counter = injector.instruments.counter("chaos.injected[drop]")
    assert counter.value == 3  # the budget is exhausted, then honored
    chaos_events = [event for event in cluster.simulator.event_log
                    if event.kind == "chaos"]
    assert len([e for e in chaos_events if e.action == "drop"]) == 3


def test_duplicates_get_fresh_message_ids():
    plan = FaultPlan(name="d", faulty=(4,),
                     rules=(FaultRule(kind="duplicate", party=4,
                                      limit=2),))
    cluster, injector = _chaos_cluster(plan)
    operations = random_workload(2, writes=2, reads=2, seed=0)
    run_workload(cluster, TAG, operations, seed=0)
    assert injector.instruments.counter(
        "chaos.injected[duplicate]").value == 2


def test_delayed_messages_are_eventually_released():
    plan = FaultPlan(name="d", faulty=(4,),
                     rules=(FaultRule(kind="delay", party=4, limit=4,
                                      delay=30),))
    cluster, injector = _chaos_cluster(plan)
    operations = random_workload(2, writes=2, reads=2, seed=0)
    handles = run_workload(cluster, TAG, operations, seed=0)
    assert all(handle.done for handle in handles.values())
    assert injector.held_count == 0  # nothing held at quiescence
    released = sum(
        injector.instruments.counter(f"chaos.released[{reason}]").value
        for reason in ("delay-expired", "forced"))
    assert released == injector.instruments.counter(
        "chaos.injected[delay]").value == 4


def test_partition_heals_and_releases_in_order():
    plan = FaultPlan(name="p",
                     partition=PartitionSpec(group=(1,), heal_at=25))
    cluster, injector = _chaos_cluster(plan)
    operations = random_workload(2, writes=2, reads=2, seed=0)
    handles = run_workload(cluster, TAG, operations, seed=0)
    assert all(handle.done for handle in handles.values())
    assert injector.held_count == 0
    held = injector.instruments.counter(
        "chaos.injected[partition-hold]").value
    assert held > 0


def test_injector_attach_is_one_shot():
    cluster, injector = _chaos_cluster(FaultPlan(name="none"))
    with pytest.raises(SimulationError):
        cluster.simulator.attach_injector(FaultInjector(FaultPlan()))


# -- campaigns ------------------------------------------------------------------

def test_campaign_within_bound_is_clean():
    """Acceptance sweep: >= 20 runs across Atomic, AtomicNS and Martin
    under the full within-budget battery report zero atomicity or
    wait-freedom violations (the n > 3t guarantee, exercised under
    every fault kind the plane supports)."""
    results = sweep(["atomic", "atomic_ns", "martin"], DEFAULT_BATTERY,
                    seeds=[0])
    assert len(results) >= 20
    assert all(result.status == STATUS_OK for result in results), \
        [(r.spec.protocol, r.spec.plan.name, r.status, r.detail)
         for r in results if r.status != STATUS_OK]
    report = campaign_report(results)
    assert report["unexpected"] == 0
    assert report["by_status"] == {STATUS_OK: len(results)}


def test_boundary_probe_finds_violation_and_reproduces(tmp_path):
    """The negative control: crashing t+1 servers in an n=3t+1
    deployment models n=3t, where the paper proves storage impossible —
    the campaign must detect the wait-freedom violation, shrink the
    plan to a minimal failing core, and replay it bit-for-bit."""
    spec = RunSpec(protocol="atomic_ns",
                   plan=builtin_plan("boundary", 4, 1, seed=0), seed=0)
    result = execute_run(spec)
    assert result.status == STATUS_STALLED
    assert result.expected  # failing beyond the bound is the model
    shrunk = shrink_plan(spec, result.status)
    # The minimal plan is exactly the t+1 crashes: every one is needed.
    assert len(shrunk.spec.plan.crashes) == 2
    assert not shrunk.spec.plan.rules
    path = tmp_path / "reproducer.json"
    save_reproducer(shrunk.result, path)
    replayed, faithful = replay_reproducer(path)
    assert faithful
    assert replayed.status == STATUS_STALLED
    assert replayed.digest == shrunk.result.digest


def test_shrink_removes_irrelevant_components():
    plan = FaultPlan(
        name="fat", seed=0, faulty=(3, 4), exceeds_t=True,
        rules=(FaultRule(kind="drop", party=3, limit=4),
               FaultRule(kind="duplicate", party=4, limit=4)),
        crashes=(CrashSpec(server=3, after=0),
                 CrashSpec(server=4, after=0)))
    spec = RunSpec(protocol="atomic", plan=plan, seed=1)
    assert execute_run(spec).status == STATUS_STALLED
    shrunk = shrink_plan(spec, STATUS_STALLED)
    # The message faults are noise; only the two crashes matter.
    assert not shrunk.spec.plan.rules
    assert len(shrunk.spec.plan.crashes) == 2
    assert shrunk.removed >= 2


def test_shrink_chunked_removal_beats_one_at_a_time():
    """ddmin removes the whole irrelevant rule block in one candidate
    run: the fat plan's two message rules vanish together, so total
    attempts stay below the one-at-a-time cost (1 baseline + 1 chunk
    + the failed single-crash reductions + workload shrinks)."""
    plan = FaultPlan(
        name="fat", seed=0, faulty=(3, 4), exceeds_t=True,
        rules=(FaultRule(kind="drop", party=3, limit=4),
               FaultRule(kind="duplicate", party=4, limit=4)),
        crashes=(CrashSpec(server=3, after=0),
                 CrashSpec(server=4, after=0)))
    spec = RunSpec(protocol="atomic", plan=plan, seed=1)
    shrunk = shrink_plan(spec, STATUS_STALLED)
    assert not shrunk.spec.plan.rules
    assert len(shrunk.spec.plan.crashes) == 2
    assert shrunk.removed == 2


def test_shrink_drops_irrelevant_scheduler_component():
    plan = FaultPlan(
        name="sched-noise", seed=0, faulty=(3, 4), exceeds_t=True,
        crashes=(CrashSpec(server=3, after=0),
                 CrashSpec(server=4, after=0)),
        scheduler=builtin_plan("slow-server", 4, 1).scheduler)
    spec = RunSpec(protocol="atomic", plan=plan, seed=1)
    shrunk = shrink_plan(spec, STATUS_STALLED)
    # The crashes alone stall the run; the scheduler entry is noise.
    assert shrunk.spec.plan.scheduler is None
    assert len(shrunk.spec.plan.crashes) == 2


def test_shrink_reduces_the_workload_cross_field():
    """Cross-field shrinking minimizes the RunSpec itself: a boundary
    stall needs only one client and (nearly) no operations."""
    spec = RunSpec(protocol="atomic",
                   plan=builtin_plan("boundary", 4, 1, seed=0),
                   seed=0, clients=4, writes=8, reads=8)
    shrunk = shrink_plan(spec, STATUS_STALLED)
    assert shrunk.spec.clients == 1
    assert shrunk.spec.writes + shrunk.spec.reads \
        < spec.writes + spec.reads
    assert shrunk.spec.writes + shrunk.spec.reads >= 1
    # The minimized spec still reproduces and still replays.
    assert execute_run(shrunk.spec).digest == shrunk.result.digest


def test_shrink_rejects_non_failing_baseline():
    spec = RunSpec(protocol="atomic_ns",
                   plan=builtin_plan("drops", 4, 1, seed=0), seed=0)
    with pytest.raises(ValueError):
        shrink_plan(spec, STATUS_STALLED)


# -- CLI ------------------------------------------------------------------------

def test_cli_chaos_smoke(capsys):
    """The tier-1 smoke entry point: a small clean campaign exits 0."""
    from repro.cli import main
    assert main(["chaos", "--smoke"]) == 0
    out = capsys.readouterr().out
    assert "0 unexpected" in out


def test_cli_chaos_boundary_replay_round_trip(tmp_path, capsys):
    from repro.cli import main
    out_file = tmp_path / "report.json"
    code = main(["chaos", "--protocols", "atomic_ns", "--plans", "none",
                 "--boundary", "--seeds", "1",
                 "--out", str(out_file),
                 "--reproducer-dir", str(tmp_path)])
    assert code == 0  # the boundary failure is expected, not a defect
    report = json.loads(out_file.read_text())
    assert report["runs"] == 2
    assert report["unexpected"] == 0
    reproducer = tmp_path / "chaos_atomic_ns_boundary_s0.json"
    assert reproducer.exists()
    capsys.readouterr()
    assert main(["chaos", "--replay", str(reproducer)]) == 0
    assert "bit-for-bit" in capsys.readouterr().out
