"""Canonical serialization: roundtrips, determinism, error handling."""

import dataclasses

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import SerializationError
from repro.common.ids import client_id, server_id
from repro.common.serialization import (
    decode,
    encode,
    encoded_size,
    register_wire_type,
)
from repro.core.timestamps import Timestamp


def test_roundtrip_primitives():
    for value in (None, True, False, 0, -1, 42, 2 ** 200, -(2 ** 200),
                  b"", b"bytes", "", "text", "uniçode"):
        assert decode(encode(value)) == value


def test_roundtrip_containers():
    value = [1, (2, 3), {"a": b"x", "b": [None, True]}, "s"]
    assert decode(encode(value)) == value


def test_list_and_tuple_distinct():
    assert encode([1, 2]) != encode((1, 2))
    assert decode(encode((1, 2))) == (1, 2)
    assert decode(encode([1, 2])) == [1, 2]


def test_dict_key_order_is_canonical():
    assert encode({"a": 1, "b": 2}) == encode({"b": 2, "a": 1})


def test_int_bool_distinct():
    assert encode(1) != encode(True)
    assert encode(0) != encode(False)


def test_str_bytes_distinct():
    assert encode("abc") != encode(b"abc")


def test_encoded_size_matches_len():
    value = {"key": [1, b"payload", "text"]}
    assert encoded_size(value) == len(encode(value))


def test_registered_dataclass_roundtrip():
    timestamp = Timestamp(7, "op-3")
    assert decode(encode(timestamp)) == timestamp


def test_party_id_roundtrip():
    for pid in (server_id(3), client_id(12)):
        assert decode(encode(pid)) == pid


def test_nested_wire_types():
    value = {"ts": Timestamp(1, "a"), "who": server_id(2)}
    assert decode(encode(value)) == value


def test_unserializable_raises():
    with pytest.raises(SerializationError):
        encode(object())


def test_unserializable_float_raises():
    with pytest.raises(SerializationError):
        encode(3.14)


def test_truncated_data_raises():
    data = encode([1, 2, 3])
    with pytest.raises(SerializationError):
        decode(data[:-1])


def test_trailing_bytes_raises():
    with pytest.raises(SerializationError):
        decode(encode(1) + b"x")


def test_unknown_tag_raises():
    with pytest.raises(SerializationError):
        decode(b"zjunk")


def test_register_non_dataclass_rejected():
    with pytest.raises(SerializationError):
        register_wire_type(int)


def test_unknown_wire_type_name_raises():
    @register_wire_type
    @dataclasses.dataclass(frozen=True)
    class Transient:
        x: int

    data = encode(Transient(1))
    corrupted = data.replace(b"Transient", b"Transieee")
    with pytest.raises(SerializationError):
        decode(corrupted)


json_like = st.recursive(
    st.none() | st.booleans() | st.integers() | st.binary(max_size=64)
    | st.text(max_size=32),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=8), children, max_size=4),
    max_leaves=20,
)


@given(json_like)
def test_roundtrip_property(value):
    assert decode(encode(value)) == value


@given(json_like, json_like)
def test_determinism_and_injectivity(a, b):
    assert encode(a) == encode(a)
    if encode(a) == encode(b):
        assert a == b


def test_reregistering_same_class_is_idempotent():
    @register_wire_type
    @dataclasses.dataclass(frozen=True)
    class Stable:
        x: int

    assert register_wire_type(Stable) is Stable
    assert decode(encode(Stable(3))) == Stable(3)


def test_duplicate_name_with_different_class_rejected():
    @register_wire_type
    @dataclasses.dataclass(frozen=True)
    class Original:
        x: int

    @dataclasses.dataclass(frozen=True)
    class Impostor:
        x: int
        y: int

    Impostor.__qualname__ = Original.__qualname__
    with pytest.raises(SerializationError):
        register_wire_type(Impostor)
    # The registry still decodes the original layout.
    assert decode(encode(Original(5))) == Original(5)
