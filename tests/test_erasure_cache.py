"""Property tests for the hot-path caches of the erasure/crypto kernels.

The decode-plan cache, the coder's value memos, and the hashing/Merkle
caches are pure-performance features: a cached answer must be *identical*
to the answer a cold component computes.  These tests drive the caches
with randomized (but seeded) inputs and compare cached results against
fresh, cache-cold computations.
"""

import random

import pytest

from repro.common.lru import LruCache, memoize_unary
from repro.crypto.hashing import hash_bytes, hash_vector
from repro.crypto.merkle import MerkleTree
from repro.erasure.coder import ErasureCoder
from repro.erasure.reed_solomon import ReedSolomonCode
from repro.erasure.reed_solomon16 import ReedSolomonCode16


def _random_value(rng, size):
    return bytes(rng.getrandbits(8) for _ in range(size))


# -- decode-plan cache ----------------------------------------------------


@pytest.mark.parametrize("code_cls,n,k,block_bytes", [
    (ReedSolomonCode, 7, 3, 32),
    (ReedSolomonCode, 16, 11, 64),
    (ReedSolomonCode16, 10, 4, 32),
])
def test_cached_decode_plans_match_fresh_inversions(code_cls, n, k,
                                                    block_bytes):
    """For random k-subsets, a warm coder (plan-cache hits) and a cold
    coder (fresh matrix inversions) decode identically."""
    rng = random.Random(1234)
    warm = code_cls(n=n, k=k)
    for trial in range(40):
        data_blocks = [_random_value(rng, block_bytes) for _ in range(k)]
        encoded = warm.encode_blocks(data_blocks)
        subset = rng.sample(range(n), k)  # 0-based block indices
        supplied = {index: encoded[index] for index in subset}
        cold = code_cls(n=n, k=k)  # fresh plan cache every trial
        got_warm = warm.decode_blocks(supplied)
        got_cold = cold.decode_blocks(supplied)
        assert got_warm == got_cold
        assert got_warm == data_blocks


def test_repeated_decode_hits_plan_cache():
    code = ReedSolomonCode(n=8, k=4)
    blocks = code.encode_blocks([bytes([i]) * 16 for i in range(4)])
    supplied = {index: blocks[index] for index in (1, 4, 6, 7)}
    first = code.decode_blocks(supplied)
    hits_before = code._plan_cache.hits
    second = code.decode_blocks(supplied)
    assert second == first
    assert code._plan_cache.hits > hits_before


def test_plan_cache_shares_plans_across_equal_index_subsets():
    """Plans are keyed by the chosen index tuple, not by block contents."""
    code = ReedSolomonCode(n=8, k=4)
    subset = (0, 2, 5, 7)
    for fill in (0x11, 0x22, 0x33):
        blocks = code.encode_blocks([bytes([fill + i]) * 8
                                     for i in range(4)])
        supplied = {index: blocks[index] for index in subset}
        decoded = code.decode_blocks(supplied)
        assert decoded == [bytes([fill + i]) * 8 for i in range(4)]
    assert len(code._plan_cache) == 1


def test_reconstruct_all_short_circuits_on_full_vector():
    code = ReedSolomonCode(n=6, k=3)
    blocks = code.encode_blocks([b"ab", b"cd", b"ef"])
    supplied = dict(enumerate(blocks))
    assert code.reconstruct_all(supplied) == blocks
    # No plan is ever built when every block is already present.
    assert len(code._plan_cache) == 0


# -- coder value memos ----------------------------------------------------


def test_coder_encode_memo_returns_equal_blocks():
    rng = random.Random(99)
    coder = ErasureCoder(n=10, k=4)
    for _ in range(10):
        value = _random_value(rng, rng.randrange(1, 400))
        first = coder.encode(value)
        second = coder.encode(value)  # memo hit
        assert first == second
        assert ErasureCoder(n=10, k=4).encode(value) == first
        # Returned lists are fresh: callers may mutate them freely.
        second[0] = b"clobbered"
        assert coder.encode(value) == first


def test_coder_decode_memo_matches_cold_decode():
    rng = random.Random(7)
    coder = ErasureCoder(n=9, k=5)
    value = _random_value(rng, 333)
    blocks = coder.encode(value)
    subset = rng.sample(range(1, 10), 5)
    supplied = [(index, blocks[index - 1]) for index in subset]
    assert coder.decode(supplied) == value
    assert coder.decode(supplied) == value  # memo hit
    assert ErasureCoder(n=9, k=5).decode(supplied) == value


def test_coder_decode_accepts_bytes_like_blocks():
    coder = ErasureCoder(n=5, k=2)
    value = b"bytearray-input-roundtrip"
    blocks = coder.encode(value)
    supplied = [(1, bytearray(blocks[0])), (4, memoryview(blocks[3]))]
    assert coder.decode(supplied) == value


def test_coder_decode_conflicting_duplicates_still_raise():
    """Validation is never memoized away: conflicting resubmissions of
    the same index must fail on every call."""
    coder = ErasureCoder(n=5, k=2)
    blocks = coder.encode(b"payload")
    good = [(1, blocks[0]), (2, blocks[1])]
    assert coder.decode(good) == b"payload"
    bad = [(1, blocks[0]), (1, b"\x00" * len(blocks[0])), (2, blocks[1])]
    for _ in range(2):
        with pytest.raises(Exception):
            coder.decode(bad)


# -- hashing / Merkle caches ----------------------------------------------


def test_hash_bytes_memo_is_content_keyed():
    import hashlib
    rng = random.Random(5)
    for _ in range(20):
        data = _random_value(rng, rng.randrange(0, 200))
        assert hash_bytes(data) == hashlib.sha256(data).digest()
        assert hash_bytes(bytes(data)) == hashlib.sha256(data).digest()


def test_hash_vector_memo_returns_fresh_lists():
    blocks = [b"a" * 10, b"b" * 10, b"c" * 10]
    first = hash_vector(blocks)
    assert first == [hash_bytes(b) for b in blocks]
    first[0] = b"clobbered"
    assert hash_vector(blocks) == [hash_bytes(b) for b in blocks]


def test_hash_vector_unhashable_blocks_bypass_cache():
    blocks = [bytearray(b"xyz"), bytearray(b"pqr")]
    assert hash_vector(blocks) == [hash_bytes(bytes(b)) for b in blocks]


def test_merkle_levels_cache_preserves_roots_and_proofs():
    rng = random.Random(42)
    leaves = [_random_value(rng, 24) for _ in range(8)]
    first = MerkleTree(leaves)
    second = MerkleTree(list(leaves))  # cache hit shares levels
    assert first.root == second.root
    for index in range(8):
        assert first.proof(index) == second.proof(index)


# -- the cache primitive itself -------------------------------------------


def test_lru_eviction_is_insertion_ordered():
    cache = LruCache(capacity=2)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.get("a") == 1  # refreshes "a"; "b" is now oldest
    cache.put("c", 3)
    assert "b" not in cache
    assert cache.get("a") == 1 and cache.get("c") == 3


def test_memoize_unary_bypasses_unhashable_arguments():
    calls = []

    @memoize_unary(capacity=4)
    def probe(argument):
        calls.append(argument)
        return len(argument)

    assert probe((1, 2)) == 2
    assert probe((1, 2)) == 2
    assert len(calls) == 1  # hashable: second call was a hit
    assert probe([1, 2, 3]) == 3
    assert probe([1, 2, 3]) == 3
    assert len(calls) == 3  # unhashable: computed every time
