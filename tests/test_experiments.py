"""Experiment harness: each table/figure module runs and asserts its
paper-claim at reduced scale (the benchmarks run the full versions)."""

import pytest

from repro.experiments import (
    common,
    communication_sweep,
    comparison_table,
    complexity_table,
    concurrency_sweep,
    message_complexity,
    poisonous_writes,
    resilience_matrix,
    storage_blowup,
    threshold_bench,
    timestamp_attack,
)


def test_measure_isolated_costs():
    costs = common.measure_isolated_costs("atomic", n=4, t=1,
                                          value_size=256)
    assert costs.write.messages > costs.read.messages
    assert costs.write.message_bytes > 0
    assert costs.storage_per_server > 0


def test_render_table():
    table = common.render_table(["a", "bb"], [[1, 22], [333, 4]],
                                title="T")
    lines = table.splitlines()
    assert lines[0] == "T"
    assert "333" in table


def test_fmt_bytes():
    assert common.fmt_bytes(100) == "100 B"
    assert common.fmt_bytes(2048) == "2.0 KiB"
    assert common.fmt_bytes(3 * 1024 * 1024) == "3.0 MiB"


def test_t1_comparison_claims():
    rows = comparison_table.run(t=1, value_size=2048)
    by_protocol = {row.protocol: row for row in rows}
    assert by_protocol["atomic_ns"].resilience == "n > 3t"
    assert by_protocol["atomic_ns"].non_skipping
    assert by_protocol["atomic_ns"].byzantine_clients
    # Erasure coding beats replication on storage by a wide margin.
    assert by_protocol["atomic_ns"].measured.storage_blowup < \
        by_protocol["martin"].measured.storage_blowup / 2
    assert comparison_table.render(rows)


def test_t2_model_tracks_measurement():
    rows = complexity_table.run(ts=(1,), value_sizes=(1024, 8192))
    for row in rows:
        assert 0.5 < row.write_bytes_ratio < 2.0
        assert 0.5 < row.read_bytes_ratio < 2.0
        assert 0.8 < row.write_messages_ratio < 1.2
    assert complexity_table.render(rows)


def test_f1_storage_blowup_shape():
    rows = storage_blowup.run(ts=(1, 2), value_size=4096)
    erasure = [row for row in rows if row.protocol == "atomic_ns"]
    replicated = [row for row in rows if row.protocol == "martin"]
    for erasure_row, replicated_row in zip(erasure, replicated):
        assert erasure_row.measured_blowup < \
            replicated_row.measured_blowup / 1.8
    # Replication blow-up grows with n; erasure stays near n/(n-t).
    assert replicated[1].measured_blowup > replicated[0].measured_blowup
    assert storage_blowup.render(rows)


def test_f1_k_sweep_monotone():
    rows = storage_blowup.run_k_sweep(n=4, t=1, value_size=4096)
    blowups = [row.measured_blowup for row in rows]
    assert blowups == sorted(blowups, reverse=True)


def test_f2_crossover_exists():
    points = communication_sweep.run(value_sizes=(64, 32768), seed=0)
    crossover = communication_sweep.read_crossover(points)
    assert crossover == 32768  # erasure wins reads for large values
    assert communication_sweep.render(points)


def test_f3_quadratic_vs_linear():
    rows = message_complexity.run(ts=(1, 2), value_size=256)
    series = message_complexity.coefficients(rows)
    # Erasure write msgs / n^2 stays roughly flat...
    atomic = series["atomic"]
    assert 0.6 < atomic[1] / atomic[0] < 1.4
    # ...while replication's per-n^2 coefficient decays like 1/n.
    martin = series["martin"]
    assert martin[1] < martin[0] * 0.75
    assert message_complexity.render(rows)


def test_f4_attack_outcomes():
    outcomes = timestamp_attack.run(t=1, honest_writes=3)
    by_key = {(o.scenario, o.protocol): o for o in outcomes}
    assert not by_key[("server-inflation", "atomic")].non_skipping
    assert by_key[("server-inflation", "atomic_ns")].non_skipping
    assert not by_key[("server-inflation", "martin")].non_skipping
    assert by_key[("server-inflation", "bazzi_ding")].non_skipping
    assert not by_key[("client-skipping", "atomic")].non_skipping
    assert by_key[("client-skipping", "atomic_ns")].non_skipping
    assert not by_key[("client-skipping", "bazzi_ding")].non_skipping
    assert by_key[("client-replay", "atomic_ns")].non_skipping
    assert timestamp_attack.render(outcomes)


def test_f5_matrix_boundary():
    cells = resilience_matrix.run(ts=(1,))
    by_key = {(cell.protocol, cell.faulty): cell.verdict for cell in cells}
    assert by_key[("atomic_ns", 0)] == resilience_matrix.OK
    assert by_key[("atomic_ns", 1)] == resilience_matrix.OK
    assert by_key[("atomic_ns", 2)] == resilience_matrix.STALLED
    assert by_key[("bazzi_ding", 0)] == resilience_matrix.NOT_APPLICABLE
    assert all(cell.verdict != resilience_matrix.VIOLATION
               for cell in cells)
    assert resilience_matrix.render(cells)


def test_f6_rollback_linear_vs_flat():
    rows = poisonous_writes.run(counts=(0, 2), t=1, value_size=128)
    goodson = {row.poisonous_writes: row for row in rows
               if row.protocol == "goodson"}
    atomic_ns = {row.poisonous_writes: row for row in rows
                 if row.protocol == "atomic_ns"}
    assert goodson[2].rollback_rounds == 2
    assert goodson[2].read_messages > goodson[0].read_messages
    assert atomic_ns[2].rollback_rounds == 0
    assert abs(atomic_ns[2].read_messages
               - atomic_ns[0].read_messages) <= 2
    assert goodson[2].poison_took_effect
    assert not atomic_ns[2].poison_took_effect
    assert poisonous_writes.render(rows)


def test_f7_concurrency():
    rows = concurrency_sweep.run(writer_counts=(1, 2), readers=2,
                                 writes_per_writer=1)
    assert all(row.all_terminated and row.atomic for row in rows)
    assert concurrency_sweep.render(rows)


def test_f8_threshold_costs():
    costs = threshold_bench.run(group_sizes=(4,), prime_bits=(128,),
                                repeat=1)
    by_backend = {cost.backend: cost for cost in costs}
    assert by_backend["shoup-256b"].sign_ms > \
        by_backend["ideal"].sign_ms
    assert threshold_bench.render(costs)
