"""Instance-hijacking (front-running) attacks on the write sub-protocols.

A Byzantine party that learns an operation identifier (e.g. from the
``get-ts`` query) may race its own ``send`` messages onto the write's
dispersal/broadcast tags.  Origin-scoped instances make this harmless:
the forgery opens a separate session attributed to the forger, server
origins are rejected outright, and the register join only pairs a
dispersal and a broadcast from the *same* party.
"""

import pytest

from repro.avid.disperse import MSG_SEND as AVID_SEND
from repro.broadcast.reliable import MSG_SEND as RBC_SEND
from repro.cluster import build_cluster
from repro.common.ids import server_id
from repro.config import SystemConfig
from repro.core.atomic import AtomicServer, disp_tag, rbc_tag
from repro.core.timestamps import Timestamp
from repro.faults.byzantine_clients import ByzantineClientBase
from repro.net.message import Message
from repro.net.schedulers import FifoScheduler, RandomScheduler

TAG = "reg"


class FrontRunningServer(AtomicServer):
    """Byzantine server: the moment it sees a ``get-ts`` query, it races
    forged ``send`` messages onto the operation's sub-protocol tags,
    trying to bind the instance before the honest client can."""

    def __init__(self, pid, config, initial_value=b""):
        super().__init__(pid, config, initial_value)
        self.on("get-ts", self._front_run)

    def _front_run(self, message: Message) -> None:
        if len(message.payload) != 1:
            return
        (oid,) = message.payload
        # Forged broadcast: a tiny timestamp, to drag the write backwards.
        self.send_to_servers(rbc_tag(message.tag, oid), RBC_SEND, 0)
        # Forged dispersal of a garbage value.
        blocks = self.config.coder.encode(b"HIJACKED")
        commitment, witnesses = self.config.commitment_scheme.commit(blocks)
        for index, server in enumerate(self.simulator.server_pids,
                                       start=1):
            self.send(server, disp_tag(message.tag, oid), AVID_SEND,
                      commitment, blocks[index - 1], witnesses[index - 1])


class FrontRunningClient(ByzantineClientBase):
    """Byzantine client racing complete sessions (its own origin) onto an
    honest write's tags — a model-violating oid reuse, shown here to at
    worst add a competing write, never to block the honest one."""

    def __init__(self, pid, config):
        super().__init__(pid, config)
        self.on("race", self._ignored)

    def _ignored(self, message):
        pass

    def race(self, register_tag: str, oid: str) -> None:
        from repro.avid.disperse import disperse
        from repro.broadcast.reliable import r_broadcast
        disperse(self, disp_tag(register_tag, oid), b"RACED", self.config)
        r_broadcast(self, rbc_tag(register_tag, oid), 0)


@pytest.mark.parametrize("scheduler_cls,seed", [
    (FifoScheduler, 0), (RandomScheduler, 1), (RandomScheduler, 2),
])
def test_front_running_server_cannot_hijack_write(scheduler_cls, seed):
    """FIFO delivery guarantees the forged sends arrive *before* the
    honest client's — the strongest version of the race — yet the write
    completes with the honest value and timestamp."""
    scheduler = scheduler_cls() if scheduler_cls is FifoScheduler \
        else scheduler_cls(seed)
    cluster = build_cluster(
        SystemConfig(n=4, t=1, seed=seed), protocol="atomic",
        num_clients=2, scheduler=scheduler,
        server_overrides={
            1: lambda pid, cfg: FrontRunningServer(pid, cfg)})
    cluster.write(1, TAG, "prime", b"priming write")
    write = cluster.write(1, TAG, "w1", b"honest value")
    assert write.done
    read = cluster.read(2, TAG, "r1")
    assert read.result == b"honest value"
    # The forged ts=0 broadcast could have dragged the write to ts 1;
    # the honest client queried max >= 1 and broadcast it, so ts = 2.
    assert read.timestamp == Timestamp(2, "w1")


def test_front_running_server_forged_sends_are_rejected_outright():
    """Server-originated sends never even open a session."""
    cluster = build_cluster(
        SystemConfig(n=4, t=1), protocol="atomic", num_clients=1,
        scheduler=FifoScheduler(),
        server_overrides={
            1: lambda pid, cfg: FrontRunningServer(pid, cfg)})
    write = cluster.write(1, TAG, "w1", b"honest value")
    cluster.run()
    # No server ever accepted anything but the honest write, exactly once.
    accepted = [event for event in cluster.simulator.event_log
                if event.kind == "out"
                and event.action == "write-accepted"]
    assert {event.payload[0] for event in accepted} == {"w1"}
    values = {event.payload[1] for event in accepted}
    assert values == {Timestamp(1, "w1")}


def test_racing_byzantine_client_breaks_liveness_not_safety():
    """A *client*-originated race reuses the honest write's oid — which
    the model explicitly forbids ("must be unique in the system").  This
    test documents what actually happens if the assumption is violated:
    each server accepts only one write per oid, so the honest write can
    starve (liveness is the casualty — this is *why* the model demands
    unique oids), but safety never budges: reads terminate and return a
    well-defined, actually-written value.
    """
    for seed in range(4):
        cluster = build_cluster(
            SystemConfig(n=4, t=1, seed=seed), protocol="atomic",
            num_clients=2, scheduler=RandomScheduler(seed),
            client_overrides={
                2: lambda pid, cfg: FrontRunningClient(pid, cfg)})
        cluster.client(2).race(TAG, "w1")
        cluster.run()
        handle = cluster.client(1).invoke_write(TAG, "w1",
                                                b"honest value")
        cluster.run()
        # Whichever session won, exactly one write took effect per
        # server, with one consistent TIMESTAMP...
        accepted = [event for event in cluster.simulator.event_log
                    if event.kind == "out"
                    and event.action == "write-accepted"]
        assert len(accepted) == 4
        assert len({event.payload[1] for event in accepted}) == 1
        # ...and reads stay live and well-defined.
        read = cluster.read(1, TAG, "r1")
        assert read.result in (b"honest value", b"RACED")
        if not handle.done:
            # The documented liveness loss: the racer's session was
            # accepted first somewhere, starving the honest acks.
            assert read.result == b"RACED"
