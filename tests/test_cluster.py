"""Cluster builder facade."""

import pytest

from repro.cluster import PROTOCOLS, Cluster, build_cluster
from repro.common.errors import ConfigurationError
from repro.common.ids import client_id, server_id
from repro.config import SystemConfig
from repro.faults.byzantine_servers import CrashServer


def test_all_protocols_registered():
    assert set(PROTOCOLS) == {"atomic", "atomic_ns", "atomic_md",
                              "martin", "bazzi_ding", "goodson",
                              "phalanx", "abc", "no_listeners"}


def test_build_default():
    cluster = build_cluster(SystemConfig(n=4, t=1))
    assert len(cluster.servers) == 4
    assert len(cluster.clients) == 1
    assert cluster.server(1).pid == server_id(1)
    assert cluster.client(1).pid == client_id(1)


def test_unknown_protocol_rejected():
    with pytest.raises(ConfigurationError):
        build_cluster(SystemConfig(n=4, t=1), protocol="raft")


def test_overrides_replace_processes():
    cluster = build_cluster(
        SystemConfig(n=4, t=1),
        server_overrides={2: lambda pid, cfg: CrashServer(pid, cfg)})
    assert isinstance(cluster.server(2), CrashServer)
    assert not isinstance(cluster.server(1), CrashServer)


def test_initial_value_propagates():
    cluster = build_cluster(SystemConfig(n=4, t=1), protocol="atomic",
                            initial_value=b"boot")
    assert cluster.read(1, "anything", "r1").result == b"boot"


def test_write_read_helpers_return_handles():
    cluster = build_cluster(SystemConfig(n=4, t=1), num_clients=2)
    write = cluster.write(1, "reg", "w1", b"payload")
    assert write.done and write.kind == "write"
    read = cluster.read(2, "reg", "r1")
    assert read.done and read.result == b"payload"
