"""Property-based testing of the agreement stack: agreement, validity,
and totality must hold for every input vector and every schedule."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.agreement.binary import BinaryAgreement
from repro.common.ids import server_id
from repro.config import SystemConfig
from repro.net.process import Process
from repro.net.schedulers import RandomScheduler
from repro.net.simulator import Simulator

SLOW = settings(max_examples=20, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


class AbaHost(Process):
    def __init__(self, pid, config):
        super().__init__(pid)
        self.decisions = {}
        self.aba = BinaryAgreement(self, config,
                                   self.decisions.__setitem__)


@SLOW
@given(
    inputs=st.lists(st.integers(min_value=0, max_value=1),
                    min_size=4, max_size=4),
    seed=st.integers(min_value=0, max_value=10 ** 6),
)
def test_aba_agreement_validity_totality(inputs, seed):
    config = SystemConfig(n=4, t=1, seed=seed)
    simulator = Simulator(scheduler=RandomScheduler(seed))
    hosts = [simulator.add_process(AbaHost(server_id(j), config))
             for j in range(1, 5)]
    for host, bit in zip(hosts, inputs):
        host.aba.provide_input("x", bit)
    simulator.run(max_steps=600_000)
    decisions = [host.decisions.get("x") for host in hosts]
    # Totality: everyone decided.  Agreement: on one value.
    assert None not in decisions
    assert len(set(decisions)) == 1
    # Validity: the decision was somebody's input.
    assert decisions[0] in set(inputs)


@SLOW
@given(
    seed=st.integers(min_value=0, max_value=10 ** 6),
    proposer_count=st.integers(min_value=3, max_value=4),
)
def test_acs_agreement_and_inclusion(seed, proposer_count):
    from repro.agreement.acs import CommonSubset

    class AcsHost(Process):
        def __init__(self, pid, config):
            super().__init__(pid)
            self.outputs = {}
            self.acs = CommonSubset(self, config,
                                    self.outputs.__setitem__)

    config = SystemConfig(n=4, t=1, seed=seed)
    simulator = Simulator(scheduler=RandomScheduler(seed))
    hosts = [simulator.add_process(AcsHost(server_id(j), config))
             for j in range(1, 5)]
    for j, host in enumerate(hosts[:proposer_count], start=1):
        host.acs.propose("s", f"p{j}")
    # Non-proposers still participate once they see traffic; with fewer
    # than n - t proposers the session cannot complete, so propose for
    # the stragglers too (the ABC layer does this automatically).
    for j, host in enumerate(hosts[proposer_count:],
                             start=proposer_count + 1):
        host.acs.propose("s", f"p{j}")
    simulator.run(max_steps=800_000)
    outputs = [host.outputs.get("s") for host in hosts]
    assert None not in outputs
    assert all(output == outputs[0] for output in outputs)
    assert len(outputs[0]) >= 3
    for index, proposal in outputs[0].items():
        assert proposal == f"p{index}"  # outputs are real proposals
