"""Protocol Disperse (AVID): termination, agreement, verifiability."""

import pytest

from repro.avid.disperse import MSG_SEND, AvidServer, disperse
from repro.common.ids import client_id, server_id
from repro.common.serialization import encode
from repro.config import SystemConfig
from repro.net.process import Process
from repro.net.schedulers import PriorityScheduler, RandomScheduler
from repro.net.simulator import Simulator


class AvidHost(Process):
    """A server hosting only the dispersal component."""

    def __init__(self, pid, config):
        super().__init__(pid)
        self.config = config
        self.completions = {}
        self.avid = AvidServer(self, config, self._complete)

    def _complete(self, tag, commitment, client, block, witness):
        assert tag not in self.completions
        self.completions[tag] = (commitment, client, block, witness)


class Disperser(Process):
    pass


def _network(n=4, t=1, k=None, seed=0, commitment="vector", crashed=0,
             scheduler=None):
    config = SystemConfig(n=n, t=t, k=k, commitment=commitment)
    simulator = Simulator(
        scheduler=scheduler or RandomScheduler(seed))
    servers = []
    for j in range(1, n + 1):
        if j <= crashed:
            servers.append(simulator.add_process(Disperser(server_id(j))))
        else:
            servers.append(simulator.add_process(
                AvidHost(server_id(j), config)))
    client = simulator.add_process(Disperser(client_id(1)))
    return simulator, servers, client, config


def _honest(servers):
    return [s for s in servers if isinstance(s, AvidHost)]


def _decode_from_completions(config, servers, tag):
    pairs = [(server.pid.index, server.completions[tag][2])
             for server in _honest(servers)][: config.k]
    return config.coder.decode(pairs)


@pytest.mark.parametrize("commitment", ["vector", "merkle"])
def test_honest_dispersal_completes_everywhere(commitment):
    simulator, servers, client, config = _network(commitment=commitment)
    disperse(client, "d", b"the dispersed value", config)
    simulator.run()
    for server in _honest(servers):
        assert "d" in server.completions
        _, who, block, witness = server.completions["d"]
        assert who == client.pid
        assert config.commitment_scheme.verify(
            server.completions["d"][0], server.pid.index, block, witness)


def test_blocks_reconstruct_value():
    simulator, servers, client, config = _network(seed=2)
    value = bytes(range(256)) * 3
    disperse(client, "d", value, config)
    simulator.run()
    assert _decode_from_completions(config, servers, "d") == value


def test_agreement_on_commitment():
    simulator, servers, client, config = _network(seed=4)
    disperse(client, "d", b"v", config)
    simulator.run()
    commitments = {encode(s.completions["d"][0]) for s in _honest(servers)}
    assert len(commitments) == 1


def test_completes_with_t_crashed_servers():
    simulator, servers, client, config = _network(crashed=1, seed=7)
    disperse(client, "d", b"resilient", config)
    simulator.run()
    for server in _honest(servers):
        assert "d" in server.completions
    assert _decode_from_completions(config, servers, "d") == b"resilient"


def test_many_schedules():
    for seed in range(8):
        simulator, servers, client, config = _network(seed=seed)
        disperse(client, "d", b"value-%d" % seed, config)
        simulator.run()
        assert _decode_from_completions(
            config, servers, "d") == b"value-%d" % seed


def test_withheld_sends_still_complete_everywhere():
    """Agreement: the client sends valid blocks to only t+1 servers; if
    any honest server completes, all must (personalized readys carry the
    missing blocks)."""
    for seed in range(8):
        simulator, servers, client, config = _network(seed=seed)
        value = b"partially distributed"
        blocks = config.coder.encode(value)
        commitment, witnesses = config.commitment_scheme.commit(blocks)
        # Valid sends only to the first 3 (= n - t) servers; the echo
        # quorum can be met, the last server never gets its send.
        for index in (1, 2, 3):
            client.send(server_id(index), "d", MSG_SEND, commitment,
                        blocks[index - 1], witnesses[index - 1])
        simulator.run()
        completed = [s for s in _honest(servers) if "d" in s.completions]
        assert len(completed) in (0, len(_honest(servers))), seed
        if completed:
            assert _decode_from_completions(config, servers, "d") == value


def test_inconsistent_encoding_never_completes():
    """Verifiability: commitments over blocks that are not an encoding of
    any value are refused (no honest server ever sends ready)."""
    simulator, servers, client, config = _network(seed=1)
    blocks_a = config.coder.encode(b"A" * 50)
    blocks_b = config.coder.encode(b"B" * 50)
    mixed = [blocks_a[0], blocks_b[1], blocks_a[2], blocks_b[3]]
    commitment, witnesses = config.commitment_scheme.commit(mixed)
    for index, server in enumerate(simulator.server_pids, start=1):
        client.send(server, "d", MSG_SEND, commitment, mixed[index - 1],
                    witnesses[index - 1])
    simulator.run()
    assert all("d" not in s.completions for s in _honest(servers))


def test_corrupted_send_ignored():
    simulator, servers, client, config = _network()
    blocks = config.coder.encode(b"value")
    commitment, witnesses = config.commitment_scheme.commit(blocks)
    # Block does not match the commitment slot.
    client.send(server_id(1), "d", MSG_SEND, commitment, b"garbage",
                witnesses[0])
    simulator.run()
    assert all("d" not in s.completions for s in _honest(servers))


def test_byzantine_echo_flood_harmless():
    simulator, servers, client, config = _network(crashed=1, seed=3)
    byzantine = servers[0]
    disperse(client, "d", b"value", config)
    for _ in range(5):
        byzantine.send_to_servers(
            "d", "avid-echo",
            tuple(b"\x00" * 32 for _ in range(config.n)),
            client.pid, b"junk", None)
        byzantine.send_to_servers(
            "d", "avid-ready",
            tuple(b"\x00" * 32 for _ in range(config.n)),
            client.pid, None, None)
    simulator.run()
    assert _decode_from_completions(config, servers, "d") == b"value"


def test_equivocating_client_at_most_one_commitment():
    """Different (send) commitments to different servers: at most one can
    ever complete, and all honest completions agree."""
    for seed in range(6):
        simulator, servers, client, config = _network(seed=seed)
        value_a, value_b = b"A" * 40, b"B" * 40
        for value, targets in ((value_a, (1, 2)), (value_b, (3, 4))):
            blocks = config.coder.encode(value)
            commitment, witnesses = config.commitment_scheme.commit(blocks)
            for index in targets:
                client.send(server_id(index), "d", MSG_SEND, commitment,
                            blocks[index - 1], witnesses[index - 1])
        simulator.run()
        commitments = {encode(s.completions["d"][0])
                       for s in _honest(servers) if "d" in s.completions}
        assert len(commitments) <= 1


def test_k_values_sweep():
    for k in (1, 2, 3):
        simulator, servers, client, config = _network(k=k, seed=k)
        disperse(client, "d", b"k-sweep", config)
        simulator.run()
        assert _decode_from_completions(config, servers, "d") == b"k-sweep"


def test_empty_value():
    simulator, servers, client, config = _network()
    disperse(client, "d", b"", config)
    simulator.run()
    assert _decode_from_completions(config, servers, "d") == b""


def test_adversarial_scheduler_starving_one_server():
    """A server whose traffic is maximally delayed still completes."""
    victim = server_id(4)
    scheduler = PriorityScheduler(
        lambda m: victim in (m.sender, m.recipient), seed=2)
    simulator, servers, client, config = _network(scheduler=scheduler)
    disperse(client, "d", b"starved", config)
    simulator.run()
    assert all("d" in s.completions for s in _honest(servers))


def test_storage_released_after_completion():
    simulator, servers, client, config = _network()
    disperse(client, "d", b"x" * 1000, config)
    simulator.run()
    for server in _honest(servers):
        assert server.avid.storage_bytes() == 0
