"""Protocol AtomicNS: the share round, signatures, non-skipping bookkeeping."""

import pytest

from repro.analysis.history import HistoryRecorder
from repro.cluster import build_cluster
from repro.config import SystemConfig
from repro.core.atomic_ns import timestamp_signature_valid
from repro.core.timestamps import Timestamp
from repro.crypto.threshold import ThresholdSignature
from repro.net.schedulers import RandomScheduler
from repro.workloads.generator import random_workload, run_workload


def _cluster(n=4, t=1, seed=0, clients=2, backend="ideal"):
    config = SystemConfig(n=n, t=t, seed=seed,
                          threshold_backend=backend)
    return build_cluster(config, protocol="atomic_ns", num_clients=clients,
                         scheduler=RandomScheduler(seed))


def test_write_then_read():
    cluster = _cluster()
    cluster.write(1, "reg", "w1", b"signed value")
    assert cluster.read(2, "reg", "r1").result == b"signed value"


def test_servers_store_valid_signatures():
    cluster = _cluster()
    cluster.write(1, "reg", "w1", b"x")
    cluster.run()
    scheme = cluster.config.threshold_scheme
    for server in cluster.servers:
        state = server.register_state("reg")
        assert state.timestamp == Timestamp(1, "w1")
        assert timestamp_signature_valid(scheme, "reg",
                                         state.timestamp.ts,
                                         state.signature)


def test_initial_bottom_signature_convention():
    config = SystemConfig(n=4, t=1)
    scheme = config.threshold_scheme
    assert timestamp_signature_valid(scheme, "reg", 0, None)
    assert not timestamp_signature_valid(scheme, "reg", 1, None)
    assert not timestamp_signature_valid(scheme, "reg", -1, None)
    assert not timestamp_signature_valid(scheme, "reg", "0", None)


def test_forged_signature_rejected():
    config = SystemConfig(n=4, t=1)
    scheme = config.threshold_scheme
    forged = ThresholdSignature(value=b"\x00" * 32)
    assert not timestamp_signature_valid(scheme, "reg", 3, forged)


def test_signature_from_other_register_rejected():
    cluster = _cluster()
    cluster.write(1, "alpha", "w1", b"x")
    cluster.run()
    scheme = cluster.config.threshold_scheme
    state = cluster.server(1).register_state("alpha")
    assert timestamp_signature_valid(scheme, "alpha", 1, state.signature)
    assert not timestamp_signature_valid(scheme, "beta", 1,
                                         state.signature)


def test_sequential_writes_increment_by_one():
    """Non-skipping in the honest case: timestamps are 1, 2, 3, ..."""
    cluster = _cluster()
    for index in range(1, 5):
        cluster.write(1, "reg", f"w{index}", b"v%d" % index)
        state = cluster.server(1).register_state("reg")
        assert state.timestamp.ts == index


def test_concurrent_writers_may_share_ts_value():
    """Two concurrent writes may both use ts+1; the oid breaks the tie and
    both take effect."""
    cluster = _cluster(seed=5, clients=3)
    h1 = cluster.client(1).invoke_write("reg", "aa", b"from-1")
    h2 = cluster.client(2).invoke_write("reg", "bb", b"from-2")
    cluster.run()
    assert h1.done and h2.done
    read = cluster.read(3, "reg", "r")
    assert read.result == b"from-2" if read.timestamp.oid == "bb" \
        else b"from-1"


def test_concurrent_workload_atomic():
    for seed in range(5):
        cluster = _cluster(seed=seed, clients=3)
        operations = random_workload(3, writes=4, reads=5, seed=seed)
        run_workload(cluster, "reg", operations, seed=seed)
        HistoryRecorder(cluster, "reg").check()


def test_shoup_backend_end_to_end():
    cluster = _cluster(backend="shoup")
    cluster.write(1, "reg", "w1", b"rsa-signed")
    assert cluster.read(2, "reg", "r1").result == b"rsa-signed"
    state = cluster.server(2).register_state("reg")
    scheme = cluster.config.threshold_scheme
    assert scheme.verify(("reg", 1), state.signature)


def test_larger_deployment():
    cluster = _cluster(n=7, t=2, seed=3)
    cluster.write(1, "reg", "w1", b"seven")
    assert cluster.read(2, "reg", "r1").result == b"seven"


def test_share_messages_present():
    cluster = _cluster()
    cluster.write(1, "reg", "w1", b"x")
    cluster.run()
    counts = cluster.simulator.metrics.messages_by_mtype("reg")
    assert counts.get("share", 0) == 16  # n^2 share messages


def test_ack_carries_timestamp():
    cluster = _cluster()
    cluster.write(1, "reg", "w1", b"x")
    acks = cluster.client(1).inbox.messages("reg", "ack")
    assert all(message.payload == ("w1", 1) for message in acks)
