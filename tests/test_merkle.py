"""Merkle trees: proofs, tampering, odd shapes."""

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import ReproError
from repro.common.serialization import decode, encode
from repro.crypto.merkle import (
    MerkleProof,
    MerkleTree,
    merkle_root,
    verify_merkle_proof,
)


def test_single_leaf():
    tree = MerkleTree([b"only"])
    assert verify_merkle_proof(tree.root, b"only", tree.proof(0))


def test_all_leaves_verify_various_sizes():
    for count in (1, 2, 3, 4, 5, 7, 8, 9, 16, 17):
        leaves = [bytes([i]) * 4 for i in range(count)]
        tree = MerkleTree(leaves)
        for index, leaf in enumerate(leaves):
            assert verify_merkle_proof(tree.root, leaf, tree.proof(index)), \
                (count, index)


def test_wrong_leaf_rejected():
    leaves = [b"a", b"b", b"c"]
    tree = MerkleTree(leaves)
    assert not verify_merkle_proof(tree.root, b"x", tree.proof(0))


def test_wrong_index_rejected():
    leaves = [b"a", b"b", b"c", b"d"]
    tree = MerkleTree(leaves)
    proof = tree.proof(1)
    assert not verify_merkle_proof(tree.root, b"a", proof)


def test_wrong_root_rejected():
    leaves = [b"a", b"b", b"c", b"d"]
    tree = MerkleTree(leaves)
    other = MerkleTree([b"w", b"x", b"y", b"z"])
    assert not verify_merkle_proof(other.root, b"a", tree.proof(0))


def test_tampered_path_rejected():
    leaves = [b"a", b"b", b"c", b"d"]
    tree = MerkleTree(leaves)
    proof = tree.proof(2)
    bad_path = tuple(
        bytes(32) if i == 0 else node for i, node in enumerate(proof.path))
    tampered = MerkleProof(index=proof.index, leaf_count=proof.leaf_count,
                           path=bad_path, directions=proof.directions)
    assert not verify_merkle_proof(tree.root, b"c", tampered)


def test_tampered_directions_rejected():
    leaves = [b"a", b"b", b"c", b"d"]
    tree = MerkleTree(leaves)
    proof = tree.proof(2)
    flipped = tuple(not d for d in proof.directions)
    tampered = MerkleProof(index=proof.index, leaf_count=proof.leaf_count,
                           path=proof.path, directions=flipped)
    assert not verify_merkle_proof(tree.root, b"c", tampered)


def test_out_of_range_index_rejected():
    tree = MerkleTree([b"a", b"b"])
    proof = tree.proof(0)
    bogus = MerkleProof(index=5, leaf_count=2, path=proof.path,
                        directions=proof.directions)
    assert not verify_merkle_proof(tree.root, b"a", bogus)


def test_proof_for_internal_node_cannot_pose_as_leaf():
    # Domain separation: an internal node's hash never verifies as a leaf.
    leaves = [b"a", b"b", b"c", b"d"]
    tree = MerkleTree(leaves)
    proof2 = tree.proof(2)
    # Use level-1 node (hash of a,b) as a fake leaf with a shortened path.
    fake_leaf = proof2.path[-1]
    short = MerkleProof(index=0, leaf_count=2, path=proof2.path[:1],
                        directions=proof2.directions[:1])
    assert not verify_merkle_proof(tree.root, fake_leaf, short)


def test_empty_tree_rejected():
    with pytest.raises(ReproError):
        MerkleTree([])


def test_proof_index_out_of_range():
    tree = MerkleTree([b"a"])
    with pytest.raises(IndexError):
        tree.proof(1)


def test_merkle_root_helper():
    leaves = [b"a", b"b", b"c"]
    assert merkle_root(leaves) == MerkleTree(leaves).root


def test_proof_is_wire_serializable():
    tree = MerkleTree([b"a", b"b", b"c", b"d", b"e"])
    proof = tree.proof(3)
    assert decode(encode(proof)) == proof


def test_duplicate_leaves_still_positional():
    tree = MerkleTree([b"same", b"same", b"same"])
    for index in range(3):
        assert verify_merkle_proof(tree.root, b"same", tree.proof(index))


@given(st.lists(st.binary(min_size=1, max_size=16), min_size=1,
                max_size=33))
def test_property_all_proofs_verify(leaves):
    tree = MerkleTree(leaves)
    for index, leaf in enumerate(leaves):
        assert verify_merkle_proof(tree.root, leaf, tree.proof(index))


@given(st.lists(st.binary(min_size=1, max_size=8), min_size=2, max_size=16),
       st.data())
def test_property_cross_index_rejected(leaves, data):
    tree = MerkleTree(leaves)
    i = data.draw(st.integers(min_value=0, max_value=len(leaves) - 1))
    j = data.draw(st.integers(min_value=0, max_value=len(leaves) - 1))
    if leaves[i] != leaves[j]:
        assert not verify_merkle_proof(tree.root, leaves[i], tree.proof(j))
