"""Safety and regularity checkers (Lamport's weaker conditions)."""

import pytest

from repro.analysis.consistency import (
    ConsistencyViolation,
    check_regularity,
    check_safety,
)
from repro.analysis.linearizability import HistoryOp


def W(oid, value, invoke=None, complete=None):
    return HistoryOp(kind="write", oid=oid, value=value, invoke=invoke,
                     complete=complete)


def R(oid, value, invoke=None, complete=None):
    return HistoryOp(kind="read", oid=oid, value=value, invoke=invoke,
                     complete=complete)


SEQUENTIAL = [W("w1", b"a", 1, 2), R("r1", b"a", 3, 4)]


def test_sequential_passes_both():
    check_regularity(SEQUENTIAL)
    check_safety(SEQUENTIAL)


def test_initial_value_read():
    check_regularity([R("r1", b"", 1, 2)])
    check_safety([R("r1", b"init", 1, 2)], initial_value=b"init")


def test_unknown_value_fails_both():
    for checker in (check_regularity, check_safety):
        with pytest.raises(ConsistencyViolation):
            checker([R("r1", b"ghost", 1, 2)])


def test_stale_read_fails_both():
    history = [W("w1", b"a", 1, 2), W("w2", b"b", 3, 4),
               R("r1", b"a", 5, 6)]
    with pytest.raises(ConsistencyViolation):
        check_regularity(history)
    with pytest.raises(ConsistencyViolation):
        check_safety(history)


def test_concurrent_read_regular_allows_either():
    history = [W("w1", b"a", 1, 2), W("w2", b"b", 3, 10)]
    check_regularity(history + [R("r1", b"a", 4, 5)])
    check_regularity(history + [R("r1", b"b", 4, 5)])


def test_new_old_inversion_is_regular_but_not_atomic():
    """The canonical gap between regular and atomic."""
    history = [
        W("w1", b"a", 1, 2),
        W("w2", b"b", 3, 20),
        R("r1", b"b", 4, 5),
        R("r2", b"a", 6, 7),
    ]
    check_regularity(history)  # both reads concurrent with w2: allowed
    from repro.analysis.linearizability import check_atomicity
    from repro.common.errors import AtomicityViolation
    with pytest.raises(AtomicityViolation):
        check_atomicity(history)


def test_safe_allows_garbage_under_concurrency_but_not_unwritten():
    history = [
        W("w1", b"a", 1, 2),
        W("w2", b"b", 3, 20),
        R("r1", b"a", 4, 5),   # concurrent with w2: any written value ok
    ]
    check_safety(history)
    with pytest.raises(ConsistencyViolation):
        check_safety([W("w1", b"a", 1, 2), W("w2", b"b", 3, 20),
                      R("r1", b"zzz", 4, 5)])


def test_safe_rejects_stale_uncontended_read():
    history = [W("w1", b"a", 1, 2), R("r1", b"", 3, 4)]
    with pytest.raises(ConsistencyViolation):
        check_safety(history)


def test_regular_rejects_initial_after_completed_write():
    with pytest.raises(ConsistencyViolation):
        check_regularity([W("w1", b"a", 1, 2), R("r1", b"", 3, 4)])


def test_concurrent_writes_multiple_latest():
    """Two overlapping writes both completing before the read: either
    may be 'latest' (neither is strictly after the other)."""
    history = [W("w1", b"a", 1, 10), W("w2", b"b", 2, 11)]
    check_regularity(history + [R("r1", b"a", 12, 13)])
    check_regularity(history + [R("r1", b"b", 12, 13)])
    check_safety(history + [R("r1", b"a", 12, 13)])


def test_duplicate_values_rejected():
    with pytest.raises(ValueError):
        check_regularity([W("w1", b"x", 1, 2), W("w2", b"x", 3, 4)])


def test_unknown_kind_rejected():
    with pytest.raises(ValueError):
        check_safety([HistoryOp(kind="rmw", oid="x", value=b"v")])


def test_atomic_protocol_histories_are_regular_too():
    """Sanity: the hierarchy holds on real runs."""
    from repro.analysis.history import HistoryRecorder
    from repro.cluster import build_cluster
    from repro.config import SystemConfig
    from repro.net.schedulers import RandomScheduler
    from repro.workloads.generator import random_workload, run_workload

    cluster = build_cluster(SystemConfig(n=4, t=1), protocol="atomic",
                            num_clients=3,
                            scheduler=RandomScheduler(3))
    operations = random_workload(3, writes=4, reads=4, seed=3)
    run_workload(cluster, "reg", operations, seed=3)
    history = HistoryRecorder(cluster, "reg").operations()
    check_regularity(history)
    check_safety(history)
