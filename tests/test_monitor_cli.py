"""The ``repro monitor`` command: smoke coverage of every source and
byte-identical output across repeated runs of the same seed."""

import json

import pytest

from repro.cli import main


def run_cli(argv, capsys):
    code = main(argv)
    return code, capsys.readouterr().out


# -- simulate source -----------------------------------------------------------

def test_monitor_simulate_smoke(capsys, tmp_path):
    code, out = run_cli(
        ["monitor", "--plan", "none", "--writes", "2", "--reads", "2",
         "--out", str(tmp_path)], capsys)
    assert code == 0
    assert "== fleet health ==" in out
    assert "== slos ==" in out
    assert "== planes ==" in out
    payload = json.loads(
        (tmp_path / "BENCH_health.json").read_text())
    assert payload["data"]["source"] == "simulate"
    assert payload["data"]["telemetry"]["health"]


def test_monitor_rejects_unknown_plan(capsys):
    code, _ = run_cli(["monitor", "--plan", "no-such-plan"], capsys)
    assert code == 2


def test_monitor_output_byte_identical(capsys):
    outputs = []
    for _ in range(2):
        code, out = run_cli(
            ["monitor", "--plan", "slow-server"], capsys)
        assert code == 0
        outputs.append(out)
    assert outputs[0] == outputs[1]
    assert "replication-skew" in outputs[0]


def test_monitor_writes_html_and_prometheus(capsys, tmp_path):
    html = tmp_path / "health.html"
    prom = tmp_path / "health.prom"
    code, _ = run_cli(
        ["monitor", "--plan", "none", "--writes", "2", "--reads", "2",
         "--html", str(html), "--prom", str(prom)], capsys)
    assert code == 0
    assert "<html" in html.read_text().lower()
    assert "repro_health_suspicion" in prom.read_text()


# -- kv-bench source -----------------------------------------------------------

def test_monitor_kv_bench_smoke(capsys, tmp_path):
    code, out = run_cli(
        ["monitor", "--source", "kv-bench", "--smoke", "--shards", "2",
         "--out", str(tmp_path), "--label", "kv_health"], capsys)
    assert code == 0
    assert "== series ==" in out
    payload = json.loads(
        (tmp_path / "BENCH_kv_health.json").read_text())
    assert payload["data"]["source"] == "kv-bench"
    assert payload["data"]["row"]["linearizable"] is True


def test_monitor_kv_bench_reports_session_cache_section(capsys, tmp_path):
    code, out = run_cli(
        ["monitor", "--source", "kv-bench", "--smoke", "--protocol",
         "atomic_md", "--cache", "16", "--lease-ticks", "8",
         "--out", str(tmp_path)], capsys)
    assert code == 0
    assert "== session cache ==" in out
    assert "seed" in out and "lease" in out  # decisions were recorded


def test_monitor_kv_bench_uncached_shows_inactive_cache_section(
        capsys, tmp_path):
    code, out = run_cli(
        ["monitor", "--source", "kv-bench", "--smoke", "--shards", "2",
         "--out", str(tmp_path)], capsys)
    assert code == 0
    assert "(no session-cache activity)" in out


# -- chaos source --------------------------------------------------------------

def test_monitor_chaos_sweep_smoke(capsys, tmp_path):
    code, out = run_cli(
        ["monitor", "--source", "chaos", "--plans", "none", "boundary",
         "--seeds", "1", "--out", str(tmp_path)], capsys)
    assert code == 0
    assert "separation" in out
    payload = json.loads(
        (tmp_path / "BENCH_health.json").read_text())
    runs = {run["plan"]: run for run in payload["data"]["runs"]}
    assert runs["none"]["alerts"] == []
    assert runs["boundary"]["separated"] is True
