"""The bounded client-memory read mode (Martin et al.'s scheme, §3.2)."""

import pytest

from repro.analysis.history import HistoryRecorder
from repro.cluster import build_cluster
from repro.common.ids import client_id
from repro.config import SystemConfig
from repro.core.atomic import AtomicClient
from repro.core.atomic_ns import AtomicNSClient
from repro.net.schedulers import RandomScheduler
from repro.workloads.generator import random_workload, run_workload

TAG = "reg"


def _cluster(protocol="atomic", seed=0, clients=3):
    client_cls = AtomicClient if protocol == "atomic" else AtomicNSClient
    overrides = {
        index: (lambda pid, cfg: client_cls(pid, cfg,
                                            bounded_memory=True))
        for index in range(1, clients + 1)
    }
    return build_cluster(SystemConfig(n=4, t=1, seed=seed),
                         protocol=protocol, num_clients=clients,
                         scheduler=RandomScheduler(seed),
                         client_overrides=overrides)


def test_flag_set():
    cluster = _cluster()
    assert all(client.bounded_memory for client in cluster.clients)
    default = build_cluster(SystemConfig(n=4, t=1))
    assert not default.client(1).bounded_memory


def test_quiet_reads_identical():
    cluster = _cluster()
    cluster.write(1, TAG, "w1", b"bounded B")
    read = cluster.read(2, TAG, "r1")
    assert read.result == b"bounded B"


@pytest.mark.parametrize("protocol", ["atomic", "atomic_ns"])
def test_concurrent_histories_linearize(protocol):
    for seed in range(6):
        cluster = _cluster(protocol=protocol, seed=seed)
        operations = random_workload(3, writes=4, reads=5, seed=seed)
        run_workload(cluster, TAG, operations, seed=seed)
        HistoryRecorder(cluster, TAG).check()


def test_read_during_write_burst():
    """The per-server-maximum rule still finds a quorum while listeners
    keep pushing newer values."""
    cluster = _cluster(seed=9)
    cluster.write(1, TAG, "w0", b"base value")
    read_handle = cluster.client(3).invoke_read(TAG, "r1")
    for index in range(1, 4):
        cluster.client(1).invoke_write(TAG, f"w{index}",
                                       b"burst %d" % index)
    cluster.run()
    assert read_handle.done
    assert read_handle.result in (
        b"base value", b"burst 1", b"burst 2", b"burst 3")
