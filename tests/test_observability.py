"""The causal tracing plane: recorder, spans, critical paths,
instruments, and bench emission."""

import json

import pytest

from repro.cluster import build_cluster
from repro.common.errors import SimulationError
from repro.config import SystemConfig
from repro.net.schedulers import FifoScheduler, RandomScheduler
from repro.obs import (
    KIND_OPERATION,
    KIND_PHASE,
    PHASE_DISPERSE,
    PHASE_LOCAL,
    PHASE_QUORUM_WAIT,
    PHASE_RBC,
    PHASE_RETRIEVE,
    PHASE_TS_QUERY,
    Counter,
    Gauge,
    Histogram,
    Registry,
    TraceRecorder,
    attribution_summary,
    build_spans,
    classify_phase,
    critical_path,
    emit_bench,
    to_jsonable,
    wall_seconds,
)
from repro.obs.clock import WallTimer


@pytest.fixture
def traced_cluster():
    """A small Atomic run (n=4, t=1) with a tracer attached: one write
    and one read from different clients."""
    cluster = build_cluster(SystemConfig(n=4, t=1), protocol="atomic",
                            num_clients=2,
                            scheduler=RandomScheduler(0))
    recorder = TraceRecorder().attach(cluster.simulator)
    write = cluster.write(1, "reg", "w1", b"traced value")
    cluster.run()
    read = cluster.read(2, "reg", "r1")
    cluster.run()
    return cluster, recorder, write, read


# -- causal stamping -----------------------------------------------------------

def test_cause_links_point_to_earlier_deliveries(traced_cluster):
    _, recorder, _, _ = traced_cluster
    assert recorder.messages
    for record in recorder.messages.values():
        if record.cause_id is None:
            continue
        cause = recorder.record(record.cause_id)
        assert cause.deliver_time is not None
        assert cause.deliver_time <= record.send_time


def test_causal_chain_roots_at_spontaneous_send(traced_cluster):
    _, recorder, write, _ = traced_cluster
    assert write.completion_cause is not None
    chain = recorder.causal_chain(write.completion_cause)
    assert len(chain) >= 2
    assert chain[0].cause_id is None  # the client's own first send
    for earlier, later in zip(chain, chain[1:]):
        assert later.cause_id == earlier.msg_id
    # depth counts the hops of the causal spine
    assert chain[-1].depth == write.latency_rounds


def test_causal_chain_handles_missing_and_none():
    recorder = TraceRecorder()
    assert recorder.causal_chain(None) == []
    assert recorder.causal_chain(12345) == []
    with pytest.raises(SimulationError):
        recorder.record(12345)


def test_attach_twice_rejected(traced_cluster):
    cluster, _, _, _ = traced_cluster
    with pytest.raises(SimulationError):
        TraceRecorder().attach(cluster.simulator)


def test_untraced_simulator_pays_nothing():
    cluster = build_cluster(SystemConfig(n=4, t=1), protocol="atomic",
                            num_clients=1, scheduler=FifoScheduler())
    assert cluster.simulator.obs is None
    cluster.write(1, "reg", "w1", b"value")
    cluster.run()  # no tracer attached: nothing recorded, nothing broken


# -- spans ---------------------------------------------------------------------

def test_operation_spans_nest_phases(traced_cluster):
    _, recorder, _, _ = traced_cluster
    spans = build_spans(recorder)
    assert [span.kind for span in spans] == [KIND_OPERATION] * 2
    write_span = next(s for s in spans if s.annotations["op"] == "write")
    read_span = next(s for s in spans if s.annotations["op"] == "read")

    phases = {child.name for child in write_span.children}
    assert {PHASE_TS_QUERY, PHASE_DISPERSE, PHASE_RBC,
            PHASE_QUORUM_WAIT} <= phases
    for child in write_span.children:
        assert child.kind == KIND_PHASE
        assert child.messages > 0
        assert child.message_bytes > 0
        assert child.open_time >= write_span.open_time
        assert sum(child.annotations["mtypes"].values()) == child.messages

    assert read_span.child(PHASE_RETRIEVE) is not None
    assert read_span.child(PHASE_DISPERSE) is None
    assert read_span.duration > 0


def test_span_annotations(traced_cluster):
    _, recorder, write, _ = traced_cluster
    spans = build_spans(recorder)
    write_span = next(s for s in spans if s.annotations["op"] == "write")
    annotations = write_span.annotations
    assert annotations["oid"] == "w1"
    assert annotations["client"] == "C1"
    assert annotations["completion_cause"] == write.completion_cause
    assert annotations["latency_rounds"] == write.latency_rounds
    assert annotations["tail_time"] >= 0
    # all n - t = 3 honest acks arrive before completion in a clean run
    assert len(annotations["accepted_by"]) >= 3


def test_quorum_releases_bound_to_operations(traced_cluster):
    _, recorder, _, _ = traced_cluster
    assert recorder.quorum_releases
    spans = build_spans(recorder)
    write_span = next(s for s in spans if s.annotations["op"] == "write")
    releases = write_span.annotations["quorum_releases"]
    ack_releases = [r for r in releases if r["mtype"] == "ack"]
    assert len(ack_releases) == 1
    assert ack_releases[0]["threshold"] == 3  # n - t
    released_by = ack_releases[0]["released_by"]
    if released_by is not None:
        assert recorder.record(released_by).mtype == "ack"


def test_classify_phase_fallback():
    assert classify_phase("reg", "avid-echo", "reg") == PHASE_DISPERSE
    assert classify_phase("reg|rbc.w1", "rbc-ready", "reg") == PHASE_RBC
    assert classify_phase("reg|disp.w1", "unknown-sub",
                          "reg") == PHASE_DISPERSE
    assert classify_phase("reg", "ack", "reg") == PHASE_QUORUM_WAIT
    # unknown register-tag mtypes name their own phase (baselines)
    assert classify_phase("reg", "store", "reg") == "store"
    # traffic of an unrelated instance never inherits sub-tag phases
    assert classify_phase("other|disp.w1", "unknown-sub", "reg") \
        == "unknown-sub"


def test_spans_on_overlapping_operations():
    cluster = build_cluster(SystemConfig(n=4, t=1), protocol="atomic",
                            num_clients=2,
                            scheduler=RandomScheduler(7))
    recorder = TraceRecorder().attach(cluster.simulator)
    cluster.write(1, "reg", "w-a", b"a" * 64)  # concurrent writers
    cluster.write(2, "reg", "w-b", b"b" * 64)
    cluster.run()
    spans = build_spans(recorder)
    assert {span.annotations["oid"] for span in spans} == {"w-a", "w-b"}
    # concurrent spans overlap in logical time yet keep their own traffic
    for span in spans:
        assert span.messages > 0
        path = critical_path(recorder, span)
        assert sum(path.attribution.values()) == span.duration


def test_spans_empty_run():
    recorder = TraceRecorder()
    assert build_spans(recorder) == []


# -- critical paths ------------------------------------------------------------

def test_critical_path_sums_to_duration(traced_cluster):
    _, recorder, _, _ = traced_cluster
    for span in build_spans(recorder):
        path = critical_path(recorder, span)
        assert path is not None
        assert sum(path.attribution.values()) == path.duration \
            == span.duration
        assert path.rounds == len(path.hops) > 0
        assert path.rounds == span.annotations["latency_rounds"]
        # the hop intervals telescope: queue waits + local gaps + the
        # final completion step reconstruct the duration exactly
        final_local = path.duration - sum(
            h.local_gap + h.queue_wait for h in path.hops)
        assert path.attribution.get(PHASE_LOCAL, 0) \
            == sum(h.local_gap for h in path.hops) + final_local


def test_write_path_crosses_disperse_and_quorum(traced_cluster):
    _, recorder, _, _ = traced_cluster
    spans = build_spans(recorder)
    write_span = next(s for s in spans if s.annotations["op"] == "write")
    path = critical_path(recorder, write_span)
    phases = {hop.phase for hop in path.hops}
    assert PHASE_QUORUM_WAIT in phases  # the final ack hop
    assert phases & {PHASE_DISPERSE, PHASE_RBC}
    assert path.dominant_phase() in path.attribution
    summary = attribution_summary(path)
    assert all(phase in summary for phase in path.attribution)


def test_critical_path_rejects_non_operation_spans(traced_cluster):
    _, recorder, _, _ = traced_cluster
    span = build_spans(recorder)[0].children[0]  # a phase span
    assert critical_path(recorder, span) is None


# -- instruments ---------------------------------------------------------------

def test_counter_monotonic():
    counter = Counter("c")
    counter.inc()
    counter.inc(4)
    assert counter.value == 5
    with pytest.raises(SimulationError):
        counter.inc(-1)


def test_gauge_extremes():
    gauge = Gauge("g")
    assert gauge.summary()["samples"] == 0
    for value in (5, 2, 9):
        gauge.set(value)
    assert gauge.value == 9
    assert gauge.min_value == 2 and gauge.max_value == 9
    assert gauge.summary()["samples"] == 3


def test_histogram_percentiles():
    histogram = Histogram("h")
    assert histogram.percentile(50) == 0.0
    for value in range(1, 101):
        histogram.record(value)
    assert histogram.count == 100
    assert histogram.mean == pytest.approx(50.5)
    assert histogram.percentile(0) == 1
    assert histogram.percentile(50) == 51  # nearest-rank on 0..99
    assert histogram.percentile(100) == 100
    with pytest.raises(SimulationError):
        histogram.percentile(101)


def test_registry_create_or_get_and_kind_conflict():
    registry = Registry()
    assert registry.counter("net.sent") is registry.counter("net.sent")
    registry.gauge("depth")
    with pytest.raises(SimulationError):
        registry.counter("depth")
    assert registry.names() == ["depth", "net.sent"]
    snapshot = registry.snapshot()
    assert snapshot["net.sent"] == {"type": "counter", "value": 0}


def test_builtin_instruments_populated(traced_cluster):
    _, recorder, _, _ = traced_cluster
    registry = recorder.registry
    sent = registry.counter("net.sent").value
    delivered = registry.counter("net.delivered").value
    assert sent == len(recorder.messages)
    assert 0 < delivered <= sent
    assert registry.histogram("wire.bytes[avid-echo]").count > 0
    assert registry.gauge("inbox.depth[P1]").samples > 0
    assert registry.counter("quorum.released").value \
        == len(recorder.quorum_releases)
    rounds = registry.histogram("quorum.rounds[ack]")
    assert rounds.count >= 1


# -- wall clock quarantine -----------------------------------------------------

def test_wall_clock_measures_and_records():
    start = wall_seconds()
    assert wall_seconds() >= start
    histogram = Histogram("wall")
    with WallTimer(histogram) as timer:
        pass
    assert timer.elapsed >= 0.0
    assert histogram.count == 1


# -- metrics scoping -----------------------------------------------------------

def test_metrics_scoped_isolates_one_operation():
    cluster = build_cluster(SystemConfig(n=4, t=1), protocol="atomic",
                            num_clients=1, scheduler=FifoScheduler())
    cluster.write(1, "reg", "prime", b"prime")
    cluster.run()
    metrics = cluster.simulator.metrics
    before = metrics.message_complexity("reg")
    with metrics.scoped() as scope:
        cluster.write(1, "reg", "w", b"scoped")
        cluster.run()
    assert scope.messages == metrics.message_complexity("reg") - before
    assert scope.message_bytes > 0
    with metrics.scoped() as idle:
        pass
    assert idle.messages == 0 and idle.message_bytes == 0


# -- bench emission ------------------------------------------------------------

def test_emit_bench_roundtrip(tmp_path):
    path = emit_bench("unit", {"rows": [1, 2], "party": "ok"},
                      directory=tmp_path)
    assert path == tmp_path / "BENCH_unit.json"
    document = json.loads(path.read_text())
    assert document == {"bench": "unit",
                        "data": {"rows": [1, 2], "party": "ok"}}


def test_emit_bench_disabled_by_default(monkeypatch):
    monkeypatch.delenv("REPRO_BENCH_DIR", raising=False)
    assert emit_bench("unit", {"x": 1}) is None


def test_emit_bench_env_configuration(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path / "sub"))
    path = emit_bench("env", [to_jsonable(b"\x00\x01")])
    assert path is not None and path.parent == tmp_path / "sub"
    assert json.loads(path.read_text())["data"] == [{"bytes": 2}]


def test_to_jsonable_shapes():
    from dataclasses import dataclass

    @dataclass
    class Row:
        n: int
        blob: bytes

    assert to_jsonable(Row(4, b"abc")) == {"n": 4, "blob": {"bytes": 3}}
    assert to_jsonable((1, "x", None)) == [1, "x", None]
    assert to_jsonable({2: 3.5}) == {"2": 3.5}


# -- critical paths under injected faults --------------------------------------

def _traced_write(rules):
    """One FIFO-scheduled write, optionally under delay rules; returns
    the write's critical path."""
    from repro.chaos.injector import FaultInjector
    from repro.chaos.plan import FaultPlan, FaultRule  # noqa: F401
    cluster = build_cluster(SystemConfig(n=4, t=1), protocol="atomic",
                            num_clients=1, scheduler=FifoScheduler())
    recorder = TraceRecorder().attach(cluster.simulator)
    if rules:
        plan = FaultPlan(name="hold", faulty=(1,), rules=rules)
        cluster.simulator.attach_injector(FaultInjector(plan))
    cluster.write(1, "reg", "w1", b"delayed value")
    cluster.run()
    spans = [span for span in build_spans(recorder)
             if span.annotations.get("oid") == "w1"]
    assert len(spans) == 1
    path = critical_path(recorder, spans[0])
    assert path is not None
    return path


def test_injected_delays_show_as_attributed_wait():
    """The satellite case: a ``delay`` FaultPlan's hold must *show up*
    in the critical-path attribution, not vanish.  Holding the traffic
    of two servers forces the quorum to wait on released messages; the
    telescoping decomposition stays exact, so every extra tick of the
    slower run is attributed to some phase (here the sender-side
    ``local`` share of the causal spine)."""
    from repro.chaos.plan import FaultRule
    clean = _traced_write(())
    delayed = _traced_write((
        FaultRule(kind="delay", party=1, limit=40, delay=150),
        FaultRule(kind="delay", party=2, limit=40, delay=150)))
    # exact telescoping with and without injected holds
    assert sum(clean.attribution.values()) == clean.duration
    assert sum(delayed.attribution.values()) == delayed.duration
    # the hold is visible end to end ...
    assert delayed.duration > clean.duration
    # ... and lands in the attribution: the surplus is exactly the
    # growth of the phase shares, dominated by the spine's wait on
    # released messages
    surplus = delayed.duration - clean.duration
    growth = sum(delayed.attribution.values()) \
        - sum(clean.attribution.values())
    assert growth == surplus
    assert delayed.attribution[PHASE_LOCAL] \
        > clean.attribution[PHASE_LOCAL]
    assert delayed.dominant_phase() == PHASE_LOCAL
