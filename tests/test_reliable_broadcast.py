"""Bracha reliable broadcast: validity, agreement, integrity."""

import pytest

from repro.broadcast.reliable import (
    MSG_SEND,
    ReliableBroadcastServer,
    r_broadcast,
)
from repro.common.ids import client_id, server_id
from repro.config import SystemConfig
from repro.net.process import Process
from repro.net.schedulers import RandomScheduler
from repro.net.simulator import Simulator


class RbcHost(Process):
    """A server process hosting only the broadcast component."""

    def __init__(self, pid, config):
        super().__init__(pid)
        self.delivered = {}
        self.deliveries = 0
        self.rbc = ReliableBroadcastServer(self, config, self._deliver)

    def _deliver(self, tag, origin, value):
        self.delivered[tag] = value
        self.origins = getattr(self, "origins", {})
        self.origins[tag] = origin
        self.deliveries += 1


class Sender(Process):
    pass


def _network(n=4, t=1, seed=0, byzantine=0):
    config = SystemConfig(n=n, t=t)
    simulator = Simulator(scheduler=RandomScheduler(seed))
    servers = []
    for j in range(1, n + 1):
        if j <= byzantine:
            servers.append(simulator.add_process(Sender(server_id(j))))
        else:
            servers.append(simulator.add_process(
                RbcHost(server_id(j), config)))
    sender = simulator.add_process(Sender(client_id(1)))
    return simulator, servers, sender, config


def _honest(servers):
    return [s for s in servers if isinstance(s, RbcHost)]


def test_validity_all_honest_deliver():
    simulator, servers, sender, _ = _network()
    r_broadcast(sender, "t", ("payload", 42))
    simulator.run()
    for server in _honest(servers):
        assert server.delivered["t"] == ("payload", 42)


def test_validity_under_many_schedules():
    for seed in range(10):
        simulator, servers, sender, _ = _network(seed=seed)
        r_broadcast(sender, "t", seed)
        simulator.run()
        assert all(s.delivered.get("t") == seed for s in _honest(servers))


def test_integrity_single_delivery():
    simulator, servers, sender, _ = _network()
    r_broadcast(sender, "t", 1)
    r_broadcast(sender, "t", 1)  # duplicate send
    simulator.run()
    for server in _honest(servers):
        assert server.deliveries == 1


def test_independent_instances():
    simulator, servers, sender, _ = _network()
    r_broadcast(sender, "a", 1)
    r_broadcast(sender, "b", 2)
    simulator.run()
    for server in _honest(servers):
        assert server.delivered == {"a": 1, "b": 2}


def test_agreement_with_equivocating_sender():
    """An equivocating sender may or may not get delivery, but honest
    servers never deliver different values."""
    for seed in range(10):
        simulator, servers, sender, _ = _network(seed=seed)
        # Send conflicting values to different servers directly.
        for index, server in enumerate(simulator.server_pids):
            sender.send(server, "t", MSG_SEND, index % 2)
        simulator.run()
        delivered = {s.delivered["t"] for s in _honest(servers)
                     if "t" in s.delivered}
        assert len(delivered) <= 1, seed


def test_byzantine_server_cannot_forge_delivery():
    """With only t Byzantine echoes/readys, nothing is delivered."""
    simulator, servers, sender, config = _network(byzantine=1)
    byzantine = servers[0]
    for mtype in ("rbc-echo", "rbc-ready"):
        byzantine.send_to_servers("t", mtype, "forged")
    simulator.run()
    for server in _honest(servers):
        assert "t" not in server.delivered


def test_byzantine_server_cannot_flood_quorum():
    """Duplicate echoes from one Byzantine server count once."""
    simulator, servers, sender, config = _network(byzantine=1)
    byzantine = servers[0]
    for _ in range(10):
        byzantine.send_to_servers("t", "rbc-echo", "forged")
    simulator.run()
    assert all("t" not in s.delivered for s in _honest(servers))


def test_delivery_with_t_silent_servers():
    """Liveness with t crashed servers (they never echo)."""
    simulator, servers, sender, _ = _network(byzantine=1, seed=3)
    r_broadcast(sender, "t", "value")
    simulator.run()
    for server in _honest(servers):
        assert server.delivered["t"] == "value"


def test_larger_network():
    simulator, servers, sender, _ = _network(n=10, t=3, byzantine=3,
                                             seed=5)
    r_broadcast(sender, "t", b"x" * 100)
    simulator.run()
    assert all(s.delivered["t"] == b"x" * 100 for s in _honest(servers))


def test_delivered_query():
    simulator, servers, sender, _ = _network()
    host = _honest(servers)[0]
    assert not host.rbc.delivered("t")
    r_broadcast(sender, "t", 0)
    simulator.run()
    assert host.rbc.delivered("t")


def test_malformed_payload_ignored():
    simulator, servers, sender, _ = _network()
    for server in simulator.server_pids:
        sender.send(server, "t", MSG_SEND)  # empty payload
    simulator.run()
    assert all("t" not in s.delivered for s in _honest(servers))


def test_echo_from_client_ignored():
    """Only servers participate in echo/ready quorums."""
    simulator, servers, sender, _ = _network()
    for _ in range(5):
        sender.send_to_servers("t", "rbc-echo", "spoof")
        sender.send_to_servers("t", "rbc-ready", "spoof")
    simulator.run()
    assert all("t" not in s.delivered for s in _honest(servers))


def test_storage_bytes_transient():
    simulator, servers, sender, _ = _network()
    host = _honest(servers)[0]
    r_broadcast(sender, "t", "some value")
    simulator.run()
    # Completed instances drop their buffers.
    assert host.rbc.storage_bytes() == 0
