"""Tests for the Byzantine taint-flow pack and its supporting
machinery: fixtures per rule id, the waiver-dead engine pass, SARIF
export, baseline gating, and the incremental cache.

Fixtures under ``tests/fixtures/lint/`` are scanned as ASTs only and
carry deliberate violations whose rule ids and line numbers are pinned
here.
"""

import json
from pathlib import Path

from repro.lint import run_lint
from repro.lint.baseline import (
    apply_baseline,
    fingerprint,
    load_baseline,
    normalized_path,
    write_baseline,
)
from repro.lint.findings import Finding, LintReport
from repro.lint.runner import main as lint_main
from repro.lint.sarif import to_sarif

FIXTURES = Path(__file__).resolve().parent / "fixtures" / "lint"
SRC = Path(__file__).resolve().parent.parent / "src" / "repro"


def taint_report(filename):
    return run_lint([FIXTURES / filename], only={"taint"})


def locate(report, rule):
    return sorted((f.path, f.line) for f in report.findings
                  if f.rule == rule and not f.waived)


# -- the taint pack over fixtures -----------------------------------------


def test_taint_pack_detects_seeded_violations():
    report = taint_report("taint_violations.py")
    path = str(FIXTURES / "taint_violations.py")
    assert locate(report, "taint-unverified-sink") == [
        (path, 21), (path, 26), (path, 30), (path, 31), (path, 36),
        (path, 43)]
    assert locate(report, "taint-dead-sanitizer") == [(path, 35)]


def test_taint_pack_quiet_on_sanitized_module():
    report = taint_report("taint_clean.py")
    assert report.findings == []


def test_taint_waivers_suppress_and_count_as_used():
    report = taint_report("taint_waived.py")
    assert report.active == []
    assert len(report.waived) == 2
    assert all(f.rule == "taint-unverified-sink" for f in report.waived)
    # Full run over the same file: the waivers suppressed findings, so
    # the waiver-dead pass stays silent about them.
    full = run_lint([FIXTURES / "taint_waived.py"])
    assert locate(full, "waiver-dead") == []


def test_taint_helper_validator_and_unknown_sanitizer():
    report = taint_report("taint_helper.py")
    path = str(FIXTURES / "taint_helper.py")
    # valid_entry() resolves to a type-checking validator: clean.
    # check_freshness() is sanitizer-ish but unknown: one warning,
    # and the optimistic cleanse leaves no downstream sink findings.
    assert locate(report, "taint-unknown-sanitizer") == [(path, 31)]
    assert locate(report, "taint-unverified-sink") == []
    [finding] = report.active
    assert finding.severity == "warning"


def test_src_repro_lints_clean_under_taint_pack():
    report = run_lint([SRC], only={"taint"})
    rendered = "\n".join(f.render() for f in report.active)
    assert report.active == [], f"taint findings:\n{rendered}"
    # The two deliberate relay/buffering flows are waived in-source.
    assert len(report.waived) >= 2


# -- waiver-dead ----------------------------------------------------------


def test_waiver_dead_reported_on_full_runs():
    report = run_lint([FIXTURES / "waiver_dead.py"])
    path = str(FIXTURES / "waiver_dead.py")
    assert locate(report, "waiver-dead") == [(path, 10), (path, 14)]
    by_line = {f.line: f for f in report.active}
    assert "suppresses nothing" in by_line[10].message
    assert "unknown rule id" in by_line[14].message
    assert all(f.severity == "warning" for f in report.active)


def test_waiver_dead_skipped_on_partial_runs():
    report = run_lint([FIXTURES / "waiver_dead.py"],
                      only={"determinism"})
    assert report.findings == []


# -- deterministic ordering -----------------------------------------------


def test_findings_sorted_and_stable():
    report = run_lint([FIXTURES], only={"taint"})
    keys = [f.sort_key() for f in report.findings]
    assert keys == sorted(keys)
    again = run_lint([FIXTURES], only={"taint"})
    assert [f.sort_key() for f in again.findings] == keys


# -- SARIF ----------------------------------------------------------------


def test_sarif_document_shape():
    report = taint_report("taint_violations.py")
    document = to_sarif(report)
    assert document["version"] == "2.1.0"
    [run] = document["runs"]
    assert run["tool"]["driver"]["name"] == "repro-lint"
    rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
    assert rule_ids == sorted(rule_ids)
    assert len(run["results"]) == len(report.findings)
    first = run["results"][0]
    assert first["locations"][0]["physicalLocation"][
        "region"]["startLine"] == 21
    assert first["partialFingerprints"]["reproLint/v1"] == fingerprint(
        report.findings[0])


def test_sarif_marks_waived_as_suppressed():
    report = taint_report("taint_waived.py")
    [run] = to_sarif(report)["runs"]
    assert all(r["suppressions"] == [{"kind": "inSource"}]
               for r in run["results"])


def test_sarif_cli_writes_file(tmp_path):
    out = tmp_path / "report.sarif"
    code = lint_main([str(FIXTURES / "taint_violations.py"),
                      "--rules", "taint", "--sarif", str(out)])
    assert code == 1  # findings still fail the run
    document = json.loads(out.read_text())
    assert document["version"] == "2.1.0"


# -- baseline gating ------------------------------------------------------


def test_fingerprint_ignores_checkout_root_and_lines():
    a = Finding(rule="r", path="/ci/build/src/repro/core/x.py", line=10,
                message="m")
    b = Finding(rule="r", path="src/repro/core/x.py", line=99,
                message="m")
    assert normalized_path(a.path) == "repro/core/x.py"
    assert fingerprint(a) == fingerprint(b)


def test_baseline_roundtrip_gates_only_new_findings(tmp_path):
    report = taint_report("taint_violations.py")
    baseline_path = tmp_path / "baseline.json"
    write_baseline(report, baseline_path)
    assert load_baseline(baseline_path)
    # Same findings: everything baselined, gate passes.
    fresh, exit_code = apply_baseline(report, baseline_path)
    assert fresh == [] and exit_code == 0
    # A new finding beyond the snapshot fails the gate.
    extra = Finding(rule="taint-unverified-sink", path="new.py", line=1,
                    message="brand new")
    grown = LintReport(findings=report.findings + [extra],
                       modules_checked=report.modules_checked,
                       rules_run=report.rules_run)
    fresh, exit_code = apply_baseline(grown, baseline_path)
    assert [f.message for f in fresh] == ["brand new"]
    assert exit_code == 1


def test_baseline_counts_duplicate_fingerprints(tmp_path):
    finding = Finding(rule="r", path="x.py", line=1, message="dup")
    one = LintReport(findings=[finding])
    baseline_path = tmp_path / "baseline.json"
    write_baseline(one, baseline_path)
    twice = LintReport(findings=[
        finding, Finding(rule="r", path="x.py", line=5, message="dup")])
    fresh, exit_code = apply_baseline(twice, baseline_path)
    assert len(fresh) == 1 and exit_code == 1


def test_baseline_cli_write_then_gate(tmp_path):
    baseline_path = tmp_path / "baseline.json"
    target = str(FIXTURES / "taint_violations.py")
    assert lint_main([target, "--rules", "taint",
                      "--write-baseline", str(baseline_path)]) == 0
    assert lint_main([target, "--rules", "taint",
                      "--baseline", str(baseline_path)]) == 0


# -- incremental cache ----------------------------------------------------


def test_cache_replays_unchanged_runs(tmp_path):
    source = tmp_path / "mod.py"
    source.write_text("import time\n\n\ndef f():\n"
                      "    return time.time()\n")
    cache_dir = tmp_path / "cache"
    cold = run_lint([source], cache_dir=cache_dir)
    assert not cold.from_cache
    assert any(f.rule == "det-wallclock" for f in cold.findings)
    warm = run_lint([source], cache_dir=cache_dir)
    assert warm.from_cache
    assert [f.to_json() for f in warm.findings] == \
        [f.to_json() for f in cold.findings]
    assert warm.exit_code == cold.exit_code


def test_cache_misses_on_content_change(tmp_path):
    source = tmp_path / "mod.py"
    source.write_text("import time\n\n\ndef f():\n"
                      "    return time.time()\n")
    cache_dir = tmp_path / "cache"
    run_lint([source], cache_dir=cache_dir)
    source.write_text("def f():\n    return 1\n")
    after = run_lint([source], cache_dir=cache_dir)
    assert not after.from_cache
    assert after.findings == []


def test_cache_misses_on_rule_selection_change(tmp_path):
    source = tmp_path / "mod.py"
    source.write_text("import time\n")
    cache_dir = tmp_path / "cache"
    full = run_lint([source], cache_dir=cache_dir)
    assert not full.from_cache
    partial = run_lint([source], only={"taint"}, cache_dir=cache_dir)
    assert not partial.from_cache
    assert partial.rules_run == ("taint",)


def test_cache_keeps_single_entry(tmp_path):
    cache_dir = tmp_path / "cache"
    source = tmp_path / "mod.py"
    for body in ("x = 1\n", "x = 2\n", "x = 3\n"):
        source.write_text(body)
        run_lint([source], cache_dir=cache_dir)
    assert len(list(cache_dir.glob("lint-*.json"))) == 1
