"""Workload generation and interleaved execution."""

import pytest

from repro.cluster import build_cluster
from repro.common.errors import LivenessError
from repro.config import SystemConfig
from repro.net.schedulers import RandomScheduler
from repro.workloads.generator import (
    WorkloadOp,
    make_values,
    random_workload,
    run_workload,
)


def test_make_values_unique_and_sized():
    values = make_values(20, size=32)
    assert len(set(values)) == 20
    assert all(len(value) == 32 for value in values)


def test_make_values_too_small_raises():
    with pytest.raises(ValueError):
        make_values(100, size=4)


def test_random_workload_composition():
    operations = random_workload(3, writes=5, reads=7, seed=1)
    assert len(operations) == 12
    writes = [op for op in operations if op.kind == "write"]
    reads = [op for op in operations if op.kind == "read"]
    assert len(writes) == 5 and len(reads) == 7
    assert len({op.value for op in writes}) == 5
    assert all(1 <= op.client_index <= 3 for op in operations)
    assert len({op.oid for op in operations}) == 12


def test_random_workload_deterministic():
    assert random_workload(2, 3, 3, seed=9) == \
        random_workload(2, 3, 3, seed=9)
    assert random_workload(2, 3, 3, seed=9) != \
        random_workload(2, 3, 3, seed=10)


def test_run_workload_completes_all():
    cluster = build_cluster(SystemConfig(n=4, t=1), protocol="atomic",
                            num_clients=2,
                            scheduler=RandomScheduler(2))
    operations = random_workload(2, writes=3, reads=3, seed=2)
    handles = run_workload(cluster, "reg", operations, seed=2)
    assert len(handles) == 6
    assert all(handle.done for handle in handles.values())


def test_run_workload_reports_stall():
    """With a majority of servers crashed, operations cannot finish."""
    from repro.faults.byzantine_servers import CrashServer
    cluster = build_cluster(
        SystemConfig(n=4, t=1), protocol="atomic", num_clients=1,
        scheduler=RandomScheduler(0),
        server_overrides={j: (lambda pid, cfg: CrashServer(pid, cfg))
                          for j in (1, 2)})
    operations = [WorkloadOp(client_index=1, kind="write", oid="w",
                             value=b"v")]
    with pytest.raises(LivenessError):
        run_workload(cluster, "reg", operations, seed=0)
    handles = run_workload(cluster, "reg", [], seed=0)
    assert handles == {}
