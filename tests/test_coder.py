"""Value-level erasure coder: framing, padding, blow-up."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ConfigurationError, DecodingError
from repro.erasure.coder import ErasureCoder


def test_roundtrip_simple():
    coder = ErasureCoder(4, 2)
    value = b"hello, dispersal"
    blocks = coder.encode(value)
    assert len(blocks) == 4
    assert coder.decode([(1, blocks[0]), (3, blocks[2])]) == value


def test_roundtrip_empty_value():
    coder = ErasureCoder(4, 3)
    blocks = coder.encode(b"")
    assert coder.decode(list(enumerate(blocks, start=1))[:3]) == b""


def test_roundtrip_every_subset():
    coder = ErasureCoder(5, 3)
    value = bytes(range(100))
    blocks = coder.encode(value)
    for subset in itertools.combinations(range(1, 6), 3):
        pairs = [(j, blocks[j - 1]) for j in subset]
        assert coder.decode(pairs) == value


def test_value_with_zero_padding_ambiguity():
    """Trailing zeros must survive framing."""
    coder = ErasureCoder(4, 2)
    value = b"data\x00\x00\x00"
    blocks = coder.encode(value)
    assert coder.decode([(1, blocks[0]), (2, blocks[1])]) == value


def test_block_length():
    coder = ErasureCoder(6, 4)
    value = b"x" * 1000
    blocks = coder.encode(value)
    assert all(len(block) == coder.block_length(1000)
               for block in blocks)
    assert coder.block_length(1000) == (1000 + 8 + 3) // 4


def test_blocks_smaller_than_value():
    coder = ErasureCoder(7, 5)
    value = b"v" * 10_000
    blocks = coder.encode(value)
    assert len(blocks[0]) < len(value) / 4


def test_storage_blowup():
    coder = ErasureCoder(6, 4)
    blowup = coder.storage_blowup(10_000)
    assert 6 / 4 <= blowup < 6 / 4 + 0.01


def test_storage_blowup_invalid_length():
    with pytest.raises(ConfigurationError):
        ErasureCoder(4, 2).storage_blowup(0)


def test_non_bytes_rejected():
    with pytest.raises(ConfigurationError):
        ErasureCoder(4, 2).encode("not-bytes")


def test_bytearray_accepted():
    coder = ErasureCoder(4, 2)
    blocks = coder.encode(bytearray(b"mutable"))
    assert coder.decode([(1, blocks[0]), (2, blocks[1])]) == b"mutable"


def test_decode_out_of_range_index():
    coder = ErasureCoder(4, 2)
    blocks = coder.encode(b"value")
    with pytest.raises(DecodingError):
        coder.decode([(0, blocks[0]), (1, blocks[1])])
    with pytest.raises(DecodingError):
        coder.decode([(5, blocks[0]), (1, blocks[1])])


def test_decode_conflicting_duplicate_index():
    coder = ErasureCoder(4, 2)
    blocks = coder.encode(b"value")
    with pytest.raises(DecodingError):
        coder.decode([(1, blocks[0]), (1, blocks[1]), (2, blocks[1])])


def test_decode_consistent_duplicate_allowed():
    coder = ErasureCoder(4, 2)
    blocks = coder.encode(b"value")
    pairs = [(1, blocks[0]), (1, blocks[0]), (2, blocks[1])]
    assert coder.decode(pairs) == b"value"


def test_decode_too_few_raises():
    coder = ErasureCoder(5, 3)
    blocks = coder.encode(b"value")
    with pytest.raises(DecodingError):
        coder.decode([(1, blocks[0]), (2, blocks[1])])


def test_garbage_blocks_raise_or_misdecode():
    """Framing catches most garbage; the commitment layer catches all."""
    coder = ErasureCoder(4, 2)
    garbage = [(1, b"\xff" * 10), (2, b"\xff" * 10)]
    with pytest.raises(DecodingError):
        coder.decode(garbage)


@settings(max_examples=50)
@given(st.data())
def test_property_roundtrip(data):
    n = data.draw(st.integers(min_value=1, max_value=10))
    k = data.draw(st.integers(min_value=1, max_value=n))
    value = data.draw(st.binary(max_size=300))
    coder = ErasureCoder(n, k)
    blocks = coder.encode(value)
    chosen = data.draw(st.permutations(list(range(1, n + 1))))[:k]
    assert coder.decode([(j, blocks[j - 1]) for j in chosen]) == value
