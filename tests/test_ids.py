"""Party identifiers and hierarchical tags."""

import pytest

from repro.common.ids import (
    PartyId,
    client_id,
    parent_tag,
    server_id,
    server_ids,
    subtag,
)


def test_server_and_client_rendering():
    assert str(server_id(3)) == "P3"
    assert str(client_id(12)) == "C12"


def test_kind_predicates():
    assert server_id(1).is_server and not server_id(1).is_client
    assert client_id(1).is_client and not client_id(1).is_server


def test_ordering_servers_before_clients():
    assert client_id(1) < server_id(1)  # 'client' < 'server' lexically
    assert server_id(1) < server_id(2)
    assert client_id(2) < client_id(10)


def test_invalid_kind_rejected():
    with pytest.raises(ValueError):
        PartyId("router", 1)


def test_zero_index_rejected():
    with pytest.raises(ValueError):
        server_id(0)


def test_server_ids_enumeration():
    ids = server_ids(4)
    assert ids == [server_id(j) for j in (1, 2, 3, 4)]


def test_hashable_and_equal():
    assert server_id(2) == server_id(2)
    assert len({server_id(2), server_id(2), client_id(2)}) == 2


def test_subtag_builds_hierarchy():
    assert subtag("reg", "disp.w1") == "reg|disp.w1"
    assert subtag("a", "b", "c") == "a|b|c"


def test_subtag_rejects_empty_component():
    with pytest.raises(ValueError):
        subtag("reg", "")


def test_parent_tag():
    assert parent_tag("reg|disp.w1") == "reg"
    assert parent_tag("a|b|c") == "a|b"


def test_parent_of_top_level_raises():
    with pytest.raises(ValueError):
        parent_tag("reg")
