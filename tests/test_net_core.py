"""Network substrate: messages, inbox, metrics, schedulers."""

import pytest
from hypothesis import given, strategies as st

from repro.common.ids import client_id, server_id
from repro.net.inbox import Inbox
from repro.net.message import Message
from repro.net.metrics import Metrics
from repro.net.schedulers import (
    FifoScheduler,
    PartitionScheduler,
    PriorityScheduler,
    RandomScheduler,
    SlowPartiesScheduler,
    make_scheduler,
)


def _msg(tag="reg", mtype="ping", sender=1, recipient=2, payload=(),
         msg_id=0, sender_kind="server"):
    sender_pid = server_id(sender) if sender_kind == "server" \
        else client_id(sender)
    return Message(tag=tag, mtype=mtype, sender=sender_pid,
                   recipient=server_id(recipient), payload=payload,
                   msg_id=msg_id)


# -- Message -----------------------------------------------------------------

def test_wire_size_counts_payload_not_addressing():
    small = _msg(payload=(1,))
    big = _msg(payload=(b"x" * 1000,))
    assert big.wire_size() > small.wire_size() + 900
    assert _msg(sender=1).wire_size() == _msg(sender=2).wire_size()


def test_message_str():
    assert "P1" in str(_msg())


# -- Inbox --------------------------------------------------------------------

def test_inbox_query_by_tag_and_type():
    inbox = Inbox()
    inbox.add(_msg(tag="a", mtype="x", msg_id=1))
    inbox.add(_msg(tag="a", mtype="y", msg_id=2))
    inbox.add(_msg(tag="b", mtype="x", msg_id=3))
    assert len(inbox) == 3
    assert [m.msg_id for m in inbox.messages("a", "x")] == [1]
    assert inbox.messages("c", "x") == []


def test_inbox_where_filter():
    inbox = Inbox()
    inbox.add(_msg(payload=("w1",), msg_id=1))
    inbox.add(_msg(payload=("w2",), msg_id=2))
    found = inbox.messages("reg", "ping",
                           where=lambda m: m.payload[0] == "w2")
    assert [m.msg_id for m in found] == [2]


def test_inbox_distinct_senders():
    inbox = Inbox()
    inbox.add(_msg(sender=1, msg_id=1))
    inbox.add(_msg(sender=1, msg_id=2))  # duplicate sender
    inbox.add(_msg(sender=2, msg_id=3))
    assert inbox.count_distinct("reg", "ping") == 2
    assert inbox.senders("reg", "ping") == {server_id(1), server_id(2)}


def test_first_per_sender_takes_earliest():
    inbox = Inbox()
    inbox.add(_msg(sender=1, payload=("old",), msg_id=1))
    inbox.add(_msg(sender=1, payload=("new",), msg_id=2))
    inbox.add(_msg(sender=2, payload=("only",), msg_id=3))
    firsts = inbox.first_per_sender("reg", "ping")
    assert [m.msg_id for m in firsts] == [1, 3]


def test_first_per_sender_filter_applies_before_dedup():
    inbox = Inbox()
    inbox.add(_msg(sender=1, payload=("bad",), msg_id=1))
    inbox.add(_msg(sender=1, payload=("good",), msg_id=2))
    firsts = inbox.first_per_sender(
        "reg", "ping", where=lambda m: m.payload[0] == "good")
    assert [m.msg_id for m in firsts] == [2]


# -- Metrics -----------------------------------------------------------------

def test_metrics_aggregation_by_prefix():
    metrics = Metrics()
    metrics.record(_msg(tag="reg", payload=(b"x" * 10,)))
    metrics.record(_msg(tag="reg|disp.w1", payload=(b"x" * 100,)))
    metrics.record(_msg(tag="reg|rbc.w1", payload=(b"x" * 20,)))
    metrics.record(_msg(tag="other", payload=(b"x",)))
    assert metrics.message_complexity("reg") == 3
    assert metrics.message_complexity("reg|disp.w1") == 1
    assert metrics.message_complexity("other") == 1
    assert metrics.total_messages == 4
    # Prefix matching must not catch sibling tags that share characters.
    metrics.record(_msg(tag="regular", payload=()))
    assert metrics.message_complexity("reg") == 3


def test_metrics_bytes_and_snapshot():
    metrics = Metrics()
    before = metrics.snapshot()
    message = _msg(payload=(b"payload",))
    metrics.record(message)
    after = metrics.snapshot()
    assert after[0] - before[0] == 1
    assert after[1] - before[1] == message.wire_size()
    assert metrics.communication_complexity("reg") == message.wire_size()


def test_metrics_by_mtype():
    metrics = Metrics()
    metrics.record(_msg(mtype="echo"))
    metrics.record(_msg(mtype="echo"))
    metrics.record(_msg(mtype="ready"))
    assert metrics.messages_by_mtype("reg") == {"echo": 2, "ready": 1}


# -- Schedulers ----------------------------------------------------------------

def _pending(count):
    return [_msg(msg_id=i, sender=(i % 3) + 1) for i in range(count)]


def test_fifo_scheduler():
    scheduler = FifoScheduler()
    assert scheduler.choose(_pending(5)) == 0


def test_random_scheduler_deterministic():
    sequence_a = [RandomScheduler(7).choose(_pending(10)) for _ in range(1)]
    sequence_b = [RandomScheduler(7).choose(_pending(10)) for _ in range(1)]
    assert sequence_a == sequence_b


def test_random_scheduler_in_range():
    scheduler = RandomScheduler(3)
    for _ in range(50):
        assert 0 <= scheduler.choose(_pending(4)) < 4


def test_priority_scheduler_starves_matching():
    scheduler = PriorityScheduler(lambda m: m.sender == server_id(1),
                                  seed=0)
    pending = _pending(6)
    for _ in range(20):
        index = scheduler.choose(pending)
        assert pending[index].sender != server_id(1)


def test_priority_scheduler_falls_back():
    scheduler = PriorityScheduler(lambda m: True, seed=0)
    assert 0 <= scheduler.choose(_pending(3)) < 3


def test_slow_parties_scheduler():
    scheduler = SlowPartiesScheduler({server_id(2)}, seed=1)
    pending = [_msg(msg_id=i, sender=(i % 3) + 1, recipient=(i % 4) + 3)
               for i in range(8)]
    for _ in range(20):
        chosen = pending[scheduler.choose(pending)]
        assert server_id(2) not in (chosen.sender, chosen.recipient)


def test_slow_parties_scheduler_fallback_when_all_slow():
    scheduler = SlowPartiesScheduler({server_id(2)}, seed=1)
    pending = [_msg(msg_id=i, sender=2, recipient=2) for i in range(3)]
    assert 0 <= scheduler.choose(pending) < 3


def test_make_scheduler_factory():
    assert isinstance(make_scheduler("fifo"), FifoScheduler)
    assert isinstance(make_scheduler("random", seed=1), RandomScheduler)
    assert isinstance(
        make_scheduler("priority", deprioritize=lambda m: False),
        PriorityScheduler)
    with pytest.raises(ValueError):
        make_scheduler("priority")
    with pytest.raises(ValueError):
        make_scheduler("quantum")


def test_make_scheduler_slow_parties():
    """Regression: the factory used to have no way to build the
    adversarial scheduler classes, so experiment configs could not
    express them."""
    scheduler = make_scheduler("slow-parties", seed=1,
                               slow_parties={server_id(2)})
    assert isinstance(scheduler, SlowPartiesScheduler)
    pending = [_msg(msg_id=i, sender=(i % 3) + 1, recipient=(i % 4) + 3)
               for i in range(8)]
    chosen = pending[scheduler.choose(pending)]
    assert server_id(2) not in (chosen.sender, chosen.recipient)
    with pytest.raises(ValueError):
        make_scheduler("slow-parties")


def test_make_scheduler_partition():
    scheduler = make_scheduler("partition", seed=2,
                               group={server_id(1)}, heal_after=5)
    assert isinstance(scheduler, PartitionScheduler)
    assert not scheduler.healed
    # heal_after is mandatory: a permanent partition would violate
    # eventual delivery.
    with pytest.raises(ValueError):
        make_scheduler("partition", group={server_id(1)})
    with pytest.raises(ValueError):
        make_scheduler("partition", heal_after=5)


def test_priority_scheduler_standalone_then_tracked_stays_consistent():
    """Regression: ``note_pop`` used to decrement the pending counters
    for messages only ever *classified* by a standalone ``choose`` call,
    driving ``_pending_total`` negative and desyncing the incremental
    fast path for the rest of the run."""
    scheduler = PriorityScheduler(lambda m: m.sender == server_id(1),
                                  seed=0)
    stray = _msg(msg_id=100, sender=2)
    # Standalone use: classify without note_enqueue.
    scheduler.choose([stray])
    # A simulator-style pop of the same message must not be counted.
    scheduler.note_pop(stray)
    assert scheduler._pending_total == 0
    assert scheduler._pending_preferred == 0
    # Tracked operation afterwards still agrees with the pending bag, so
    # the incremental path stays active and in range.
    pending = _pending(4)
    for message in pending:
        scheduler.note_enqueue(message)
    assert scheduler._pending_total == len(pending)
    index = scheduler.choose(pending)
    assert 0 <= index < len(pending)
    assert pending[index].sender != server_id(1)
    popped = pending.pop(index)
    scheduler.note_pop(popped)
    assert scheduler._pending_total == len(pending)
