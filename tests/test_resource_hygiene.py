"""Resource hygiene: no leaked threads or buffers after complete runs."""

from repro.cluster import build_cluster
from repro.config import SystemConfig
from repro.net.schedulers import RandomScheduler
from repro.workloads.generator import random_workload, run_workload

TAG = "reg"


def _drained_cluster(protocol="atomic_ns", seed=0):
    n = 5 if protocol in ("goodson", "bazzi_ding") else 4
    cluster = build_cluster(SystemConfig(n=n, t=1, seed=seed),
                            protocol=protocol, num_clients=3,
                            scheduler=RandomScheduler(seed))
    operations = random_workload(3, writes=4, reads=4, seed=seed)
    run_workload(cluster, TAG, operations, seed=seed)
    cluster.run()
    return cluster


def test_no_parked_client_threads_after_completion():
    """A parked client thread after quiescence would be an operation that
    never terminated (or a leaked wait state)."""
    for protocol in ("atomic", "atomic_ns", "martin", "goodson"):
        cluster = _drained_cluster(protocol=protocol)
        for client in cluster.clients:
            assert client.parked_threads == 0, (protocol, client.pid)


def test_no_parked_server_threads_after_completion():
    """Server share-round threads must all have resumed and finished."""
    cluster = _drained_cluster(protocol="atomic_ns")
    for server in cluster.servers:
        assert server.parked_threads == 0, server.pid


def test_substrate_buffers_released():
    """Completed broadcast/dispersal instances drop their block buffers
    (storage complexity stays proportional to live registers only)."""
    cluster = _drained_cluster(protocol="atomic_ns")
    for server in cluster.servers:
        assert server.rbc.storage_bytes() == 0
        assert server.avid.storage_bytes() == 0


def test_listener_sets_empty_after_reads_complete():
    cluster = _drained_cluster(protocol="atomic")
    for server in cluster.servers:
        assert len(server.register_state(TAG).listeners) == 0


def test_storage_stable_across_repeated_runs():
    """Register storage is the latest value's block, not a history."""
    cluster = build_cluster(SystemConfig(n=4, t=1), protocol="atomic_ns",
                            num_clients=1, scheduler=RandomScheduler(1))
    cluster.write(1, TAG, "w0", b"x" * 1000)
    cluster.run()
    first = cluster.server(1).register_storage_bytes(TAG)
    for index in range(1, 6):
        cluster.write(1, TAG, f"w{index}", b"x" * 1000)
    cluster.run()
    last = cluster.server(1).register_storage_bytes(TAG)
    assert abs(last - first) < 64  # oid-length jitter only
