"""Byzantine participants against the agreement stack."""

import pytest

from repro.agreement.binary import (
    MSG_AUX,
    MSG_BVAL,
    MSG_FINISH,
    BinaryAgreement,
)
from repro.common.ids import server_id
from repro.config import SystemConfig
from repro.net.process import Process
from repro.net.schedulers import RandomScheduler
from repro.net.simulator import Simulator


class AbaHost(Process):
    def __init__(self, pid, config):
        super().__init__(pid)
        self.decisions = {}
        self.aba = BinaryAgreement(self, config, self._decided)

    def _decided(self, instance_id, value):
        self.decisions[instance_id] = value


class Saboteur(Process):
    """A Byzantine server with raw channel access (no honest logic)."""


def _network(seed=0):
    config = SystemConfig(n=4, t=1, seed=seed)
    simulator = Simulator(scheduler=RandomScheduler(seed))
    saboteur = simulator.add_process(Saboteur(server_id(1)))
    honest = [simulator.add_process(AbaHost(server_id(j), config))
              for j in (2, 3, 4)]
    return simulator, saboteur, honest, config


@pytest.mark.parametrize("seed", range(4))
def test_aba_agreement_despite_conflicting_bvals(seed):
    """The saboteur spams both binary values into every round."""
    simulator, saboteur, honest, _ = _network(seed)
    for host in honest:
        host.aba.provide_input("x", 1)
    for r in range(1, 4):
        for value in (0, 1):
            saboteur.send_to_servers("aba", MSG_BVAL, "x", r, value)
            saboteur.send_to_servers("aba", MSG_AUX, "x", r, value)
    simulator.run(max_steps=500_000)
    decisions = {host.decisions.get("x") for host in honest}
    assert decisions == {1}  # unanimity of honest inputs wins (validity)


@pytest.mark.parametrize("seed", range(4))
def test_aba_forged_finish_cannot_decide(seed):
    """t FINISH forgeries never reach the t+1 adoption threshold before
    real decisions, and never the 2t+1 halt threshold at all."""
    simulator, saboteur, honest, _ = _network(seed)
    saboteur.send_to_servers("aba", MSG_FINISH, "x", 0)
    for host in honest:
        host.aba.provide_input("x", 1)
    simulator.run(max_steps=500_000)
    assert {host.decisions.get("x") for host in honest} == {1}


def test_aba_malformed_payloads_ignored():
    simulator, saboteur, honest, _ = _network(seed=2)
    for payload in [(), ("x",), ("x", "one", 1), ("x", 1, 7),
                    ("x", -3, 1), ("x", 1, 1, 1)]:
        saboteur.send_to_servers("aba", MSG_BVAL, *payload)
        saboteur.send_to_servers("aba", MSG_AUX, *payload)
        saboteur.send_to_servers("aba", MSG_FINISH, *payload[:2])
    for host in honest:
        host.aba.provide_input("x", 0)
    simulator.run(max_steps=500_000)
    assert {host.decisions.get("x") for host in honest} == {0}


def test_abc_register_skips_malformed_proposals():
    """A Byzantine server proposing garbage into the common subset cannot
    corrupt the ordered log (non-list proposals are skipped)."""
    from repro.cluster import build_cluster

    class GarbageProposer(Process):
        def __init__(self, pid, config):
            super().__init__(pid)
            self.config = config

        def inject(self):
            from repro.broadcast.reliable import r_broadcast
            from repro.common.serialization import encode
            tag = "acs/" + encode(("abc", 1)).hex()
            r_broadcast(self, tag, "not-a-list")

    cluster = build_cluster(
        SystemConfig(n=4, t=1, seed=3), protocol="abc", num_clients=1,
        scheduler=RandomScheduler(3),
        server_overrides={
            1: lambda pid, cfg: GarbageProposer(pid, cfg)})
    cluster.server(1).inject()
    write = cluster.write(1, "reg", "w1", b"clean value")
    assert write.done
    read = cluster.read(1, "reg", "r1")
    assert read.result == b"clean value"
