"""Collision-resistant hash wrappers."""

from hypothesis import given, strategies as st

from repro.crypto.hashing import (
    DIGEST_SIZE,
    hash_bytes,
    hash_int,
    hash_many,
    hash_vector,
)


def test_digest_size():
    assert len(hash_bytes(b"x")) == DIGEST_SIZE


def test_deterministic():
    assert hash_bytes(b"data") == hash_bytes(b"data")


def test_distinct_inputs_distinct_digests():
    assert hash_bytes(b"a") != hash_bytes(b"b")


def test_hash_many_framing():
    # Without length framing these two would collide.
    assert hash_many([b"ab", b"c"]) != hash_many([b"a", b"bc"])
    assert hash_many([b"abc"]) != hash_many([b"ab", b"c"])


def test_hash_many_empty_parts():
    assert hash_many([]) != hash_many([b""])


def test_hash_vector_per_block():
    blocks = [b"one", b"two", b"three"]
    vector = hash_vector(blocks)
    assert vector == [hash_bytes(block) for block in blocks]


def test_hash_int_sign_sensitivity():
    assert hash_int(255) != hash_int(-1)
    assert hash_int(0) == hash_int(0)


@given(st.binary(max_size=256), st.binary(max_size=256))
def test_no_accidental_collisions(a, b):
    if a != b:
        assert hash_bytes(a) != hash_bytes(b)


@given(st.lists(st.binary(max_size=32), min_size=1, max_size=8))
def test_hash_many_deterministic(parts):
    assert hash_many(parts) == hash_many(list(parts))
