"""The atomic-broadcast-serialized register (§3.4 comparator)."""

import pytest

from repro.analysis.history import HistoryRecorder
from repro.cluster import build_cluster
from repro.config import SystemConfig
from repro.faults.byzantine_servers import CrashServer
from repro.net.schedulers import RandomScheduler
from repro.workloads.generator import random_workload, run_workload

TAG = "reg"


def _cluster(seed=0, clients=2, **kwargs):
    return build_cluster(SystemConfig(n=4, t=1, seed=seed),
                         protocol="abc", num_clients=clients,
                         scheduler=RandomScheduler(seed), **kwargs)


def test_write_then_read():
    cluster = _cluster()
    cluster.write(1, TAG, "w1", b"consensus-ordered")
    read = cluster.read(2, TAG, "r1")
    assert read.result == b"consensus-ordered"


def test_read_initial_value():
    cluster = build_cluster(SystemConfig(n=4, t=1), protocol="abc",
                            num_clients=1, scheduler=RandomScheduler(0),
                            initial_value=b"genesis")
    assert cluster.read(1, TAG, "r1").result == b"genesis"


def test_sequence_numbers_as_timestamps():
    cluster = _cluster()
    cluster.write(1, TAG, "w1", b"a")
    cluster.write(1, TAG, "w2", b"b")
    read = cluster.read(2, TAG, "r1")
    assert read.result == b"b"
    # The TIMESTAMP is the ABC sequence number of the last write.
    assert read.timestamp.oid == "w2"
    assert read.timestamp.ts >= 2


def test_multiple_registers_share_one_order():
    cluster = _cluster()
    cluster.write(1, "alpha", "w1", b"in-alpha")
    cluster.write(1, "beta", "w2", b"in-beta")
    assert cluster.read(2, "alpha", "ra").result == b"in-alpha"
    assert cluster.read(2, "beta", "rb").result == b"in-beta"


def test_crash_tolerance():
    cluster = _cluster(
        seed=3,
        server_overrides={4: lambda pid, cfg: CrashServer(pid, cfg)})
    cluster.write(1, TAG, "w1", b"with a crash")
    assert cluster.read(2, TAG, "r1").result == b"with a crash"


@pytest.mark.parametrize("seed", range(3))
def test_concurrent_histories_linearize(seed):
    cluster = _cluster(seed=seed, clients=3)
    operations = random_workload(3, writes=3, reads=3, seed=seed)
    run_workload(cluster, TAG, operations, seed=seed,
                 max_steps=3_000_000)
    HistoryRecorder(cluster, TAG).check()


def test_servers_agree_on_applied_state():
    cluster = _cluster(seed=5, clients=2)
    cluster.write(1, TAG, "w1", b"v1")
    cluster.write(2, TAG, "w2", b"v2")
    cluster.run()
    views = {server.register_state(TAG).value
             for server in cluster.servers}
    assert views == {b"v2"}
    stamps = {server.register_state(TAG).timestamp
              for server in cluster.servers}
    assert len(stamps) == 1


def test_consensus_cost_dwarfs_register_protocols():
    """The point of the comparator: ABC pays an order of magnitude more
    messages per operation than the consensus-free register."""
    costs = {}
    for protocol in ("abc", "atomic_ns"):
        cluster = build_cluster(SystemConfig(n=4, t=1),
                                protocol=protocol, num_clients=1,
                                scheduler=RandomScheduler(1))
        cluster.write(1, TAG, "w1", b"x" * 256)
        cluster.run()
        costs[protocol] = cluster.simulator.metrics.total_messages
    assert costs["abc"] > 3 * costs["atomic_ns"]
