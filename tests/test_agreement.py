"""The randomized agreement stack: coin, binary agreement, common subset,
atomic broadcast."""

import pytest

from repro.agreement.acs import CommonSubset
from repro.agreement.atomic_broadcast import AtomicBroadcast
from repro.agreement.binary import BinaryAgreement
from repro.agreement.coin import CommonCoin
from repro.common.ids import server_id
from repro.config import SystemConfig
from repro.net.process import Process
from repro.net.schedulers import FifoScheduler, RandomScheduler
from repro.net.simulator import Simulator


def _network(host_cls, n=4, t=1, seed=0, crashed=0, backend="ideal"):
    config = SystemConfig(n=n, t=t, seed=seed,
                          threshold_backend=backend)
    simulator = Simulator(scheduler=RandomScheduler(seed))
    hosts = []
    for j in range(1, n + 1):
        if j <= crashed:
            from repro.faults.byzantine_servers import CrashServer
            hosts.append(simulator.add_process(
                CrashServer(server_id(j), config)))
        else:
            hosts.append(simulator.add_process(
                host_cls(server_id(j), config)))
    return simulator, hosts, config


# -- common coin ----------------------------------------------------------------

class CoinHost(Process):
    def __init__(self, pid, config):
        super().__init__(pid)
        self.coins = {}
        self.coin = CommonCoin(self, config, self._ready)

    def _ready(self, name, bit):
        assert name not in self.coins
        self.coins[name] = bit


def _honest(hosts, cls):
    return [host for host in hosts if isinstance(host, cls)]


def test_coin_same_value_everywhere():
    simulator, hosts, _ = _network(CoinHost)
    for host in hosts:
        host.coin.flip(("round", 1))
    simulator.run()
    values = {host.coins[("round", 1)] for host in hosts}
    assert len(values) == 1
    assert values.pop() in (0, 1)


def test_coin_independent_names():
    simulator, hosts, _ = _network(CoinHost, seed=3)
    for name in (("a", 1), ("a", 2), ("b", 1)):
        for host in hosts:
            host.coin.flip(name)
    simulator.run()
    for name in (("a", 1), ("a", 2), ("b", 1)):
        assert len({host.coins[name] for host in hosts}) == 1


def test_coin_joins_lagging_servers():
    """A single flipper suffices: shares prompt others to contribute."""
    simulator, hosts, _ = _network(CoinHost, seed=5)
    hosts[0].coin.flip(("solo", 1))
    simulator.run()
    assert all(("solo", 1) in host.coins for host in hosts)


def test_coin_with_t_crashed():
    simulator, hosts, _ = _network(CoinHost, crashed=1, seed=7)
    for host in _honest(hosts, CoinHost):
        host.coin.flip(("r", 1))
    simulator.run()
    values = {host.coins[("r", 1)]
              for host in _honest(hosts, CoinHost)}
    assert len(values) == 1


def test_coin_with_shoup_backend():
    simulator, hosts, _ = _network(CoinHost, seed=1, backend="shoup")
    for host in hosts:
        host.coin.flip(("r", 9))
    simulator.run()
    assert len({host.coins[("r", 9)] for host in hosts}) == 1


# -- binary agreement --------------------------------------------------------------

class AbaHost(Process):
    def __init__(self, pid, config):
        super().__init__(pid)
        self.decisions = {}
        self.aba = BinaryAgreement(self, config, self._decided)

    def _decided(self, instance_id, value):
        assert instance_id not in self.decisions
        self.decisions[instance_id] = value


def _run_aba(inputs, seed, crashed=0, n=4, t=1):
    simulator, hosts, _ = _network(AbaHost, n=n, t=t, seed=seed,
                                   crashed=crashed)
    honest = _honest(hosts, AbaHost)
    for host, bit in zip(honest, inputs):
        host.aba.provide_input("x", bit)
    simulator.run(max_steps=400_000)
    decisions = {host.decisions.get("x") for host in honest}
    assert len(decisions) == 1 and None not in decisions
    return decisions.pop()


@pytest.mark.parametrize("seed", range(5))
def test_aba_unanimous_validity(seed):
    """All-same inputs must decide that value (validity)."""
    assert _run_aba([1, 1, 1, 1], seed) == 1
    assert _run_aba([0, 0, 0, 0], seed) == 0


@pytest.mark.parametrize("seed", range(8))
def test_aba_mixed_inputs_agree(seed):
    assert _run_aba([0, 1, 1, 0], seed) in (0, 1)


@pytest.mark.parametrize("seed", range(4))
def test_aba_with_crashed_server(seed):
    assert _run_aba([1, 1, 1], seed, crashed=1) == 1


def test_aba_larger_group():
    assert _run_aba([1] * 7, seed=2, n=7, t=2) == 1


def test_aba_decision_query():
    simulator, hosts, _ = _network(AbaHost, seed=0)
    assert hosts[0].aba.decision("x") is None
    for host in hosts:
        host.aba.provide_input("x", 1)
    simulator.run(max_steps=400_000)
    assert hosts[0].aba.decision("x") == 1


def test_aba_multiple_instances():
    simulator, hosts, _ = _network(AbaHost, seed=4)
    for host in hosts:
        host.aba.provide_input("a", 1)
        host.aba.provide_input("b", 0)
    simulator.run(max_steps=400_000)
    for host in hosts:
        assert host.decisions["a"] == 1
        assert host.decisions["b"] == 0


# -- common subset --------------------------------------------------------------------

class AcsHost(Process):
    def __init__(self, pid, config):
        super().__init__(pid)
        self.outputs = {}
        self.acs = CommonSubset(self, config, self._done)

    def _done(self, session, accepted):
        assert session not in self.outputs
        self.outputs[session] = accepted


@pytest.mark.parametrize("seed", range(5))
def test_acs_agreement(seed):
    simulator, hosts, _ = _network(AcsHost, seed=seed)
    for j, host in enumerate(hosts, start=1):
        host.acs.propose("s", f"from-{j}")
    simulator.run(max_steps=600_000)
    outputs = [host.outputs["s"] for host in hosts]
    assert all(output == outputs[0] for output in outputs)
    assert len(outputs[0]) >= 3  # n - t proposals make the cut
    for index, proposal in outputs[0].items():
        assert proposal == f"from-{index}"


def test_acs_with_crashed_server():
    simulator, hosts, _ = _network(AcsHost, crashed=1, seed=2)
    honest = _honest(hosts, AcsHost)
    for host in honest:
        host.acs.propose("s", str(host.pid))
    simulator.run(max_steps=600_000)
    outputs = [host.outputs["s"] for host in honest]
    assert all(output == outputs[0] for output in outputs)
    assert len(outputs[0]) >= 2  # n - 2t honest proposals at least


# -- atomic broadcast -------------------------------------------------------------------

class AbcHost(Process):
    def __init__(self, pid, config):
        super().__init__(pid)
        self.log = []
        self.abc = AtomicBroadcast(self, config, self._deliver)

    def _deliver(self, sequence, request):
        assert sequence == len(self.log) + 1
        self.log.append(request)


@pytest.mark.parametrize("seed", range(4))
def test_abc_total_order(seed):
    simulator, hosts, _ = _network(AbcHost, seed=seed)
    # Different servers receive different requests.
    hosts[0].abc.submit(("op", 1))
    hosts[1].abc.submit(("op", 2))
    hosts[2].abc.submit(("op", 3))
    simulator.run(max_steps=800_000)
    logs = [tuple(host.log) for host in hosts]
    assert all(log == logs[0] for log in logs)
    assert set(logs[0]) >= {("op", 1)} or len(logs[0]) >= 1


def test_abc_submit_to_all_is_delivered_once():
    simulator, hosts, _ = _network(AbcHost, seed=1)
    for host in hosts:
        host.abc.submit(("op", "shared"))
    simulator.run(max_steps=800_000)
    for host in hosts:
        assert host.log.count(("op", "shared")) == 1


def test_abc_multiple_rounds():
    simulator, hosts, _ = _network(AbcHost, seed=3)
    for host in hosts:
        host.abc.submit(("round1", "x"))
    simulator.run(max_steps=800_000)
    first_len = len(hosts[0].log)
    assert first_len >= 1
    for host in hosts:
        host.abc.submit(("round2", "y"))
    simulator.run(max_steps=800_000)
    logs = [tuple(host.log) for host in hosts]
    assert all(log == logs[0] for log in logs)
    assert ("round2", "y") in logs[0]
    assert logs[0].index(("round2", "y")) >= first_len - 1
