"""The BFT object store built on the register array."""

import os

import pytest

from repro.cluster import build_cluster
from repro.config import SystemConfig
from repro.faults.byzantine_servers import (
    CrashServer,
    EquivocatingReaderServer,
)
from repro.net.schedulers import RandomScheduler
from repro.store import (
    BlobNotFound,
    BlobStore,
    BlobStoreError,
)


def _store_pair(seed=0, chunk_size=512, server_overrides=None):
    cluster = build_cluster(SystemConfig(n=4, t=1, seed=seed),
                            protocol="atomic_ns", num_clients=2,
                            scheduler=RandomScheduler(seed),
                            server_overrides=server_overrides)
    return (BlobStore(cluster, 1, chunk_size=chunk_size),
            BlobStore(cluster, 2, chunk_size=chunk_size), cluster)


def test_put_get_roundtrip():
    alice, bob, _ = _store_pair()
    data = bytes(range(256)) * 7
    stat = alice.put("file", data)
    assert stat.size == len(data)
    assert stat.chunk_count == (len(data) + 511) // 512
    assert bob.get("file") == data


def test_empty_blob():
    alice, bob, _ = _store_pair()
    stat = alice.put("empty", b"")
    assert stat.chunk_count == 1 and stat.size == 0
    assert bob.get("empty") == b""


def test_single_chunk_blob():
    alice, bob, _ = _store_pair()
    alice.put("small", b"tiny")
    assert bob.get("small") == b"tiny"


def test_exact_chunk_boundary():
    alice, bob, _ = _store_pair(chunk_size=100)
    data = b"x" * 300
    stat = alice.put("file", data)
    assert stat.chunk_count == 3
    assert bob.get("file") == data


def test_stat_and_exists():
    alice, bob, _ = _store_pair()
    assert not bob.exists("file")
    with pytest.raises(BlobNotFound):
        bob.stat("file")
    alice.put("file", b"abc")
    assert bob.exists("file")
    stat = bob.stat("file")
    assert stat.size == 3 and stat.name == "file"


def test_overwrite_last_writer_wins():
    alice, bob, _ = _store_pair()
    alice.put("file", b"version-1" * 100)
    bob.put("file", b"version-2")
    assert alice.get("file") == b"version-2"
    assert alice.stat("file").size == 9


def test_overwrite_with_fewer_chunks():
    alice, bob, _ = _store_pair(chunk_size=64)
    alice.put("file", os.urandom(64 * 5))
    alice.put("file", b"short now")
    assert bob.get("file") == b"short now"


def test_delete_and_recreate():
    alice, bob, _ = _store_pair()
    alice.put("file", b"first life")
    alice.delete("file")
    assert not bob.exists("file")
    with pytest.raises(BlobNotFound):
        bob.get("file")
    alice.put("file", b"second life")
    assert bob.get("file") == b"second life"


def test_get_unknown_name():
    _, bob, _ = _store_pair()
    with pytest.raises(BlobNotFound):
        bob.get("never")


def test_many_objects_independent():
    alice, bob, _ = _store_pair(chunk_size=128)
    blobs = {f"obj{i}": os.urandom(100 + i * 137) for i in range(6)}
    for name, data in blobs.items():
        alice.put(name, data)
    for name, data in blobs.items():
        assert bob.get(name) == data


def test_byzantine_server_tolerated():
    alice, bob, _ = _store_pair(
        seed=3,
        server_overrides={
            2: lambda pid, cfg: EquivocatingReaderServer(pid, cfg)})
    data = os.urandom(2000)
    alice.put("file", data)
    assert bob.get("file") == data


def test_crashed_server_tolerated():
    alice, bob, _ = _store_pair(
        seed=4,
        server_overrides={4: lambda pid, cfg: CrashServer(pid, cfg)})
    data = os.urandom(1500)
    alice.put("file", data)
    assert bob.get("file") == data


def test_invalid_chunk_size():
    cluster = build_cluster(SystemConfig(n=4, t=1))
    with pytest.raises(BlobStoreError):
        BlobStore(cluster, 1, chunk_size=0)


def test_versions_differ_across_writers():
    alice, bob, _ = _store_pair()
    stat_a = alice.put("a", b"x")
    stat_b = bob.put("b", b"y")
    assert stat_a.version != stat_b.version
