"""Block commitments: hash vectors and Merkle trees behind one interface."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ConfigurationError
from repro.common.serialization import encode
from repro.crypto.commitment import (
    MerkleCommitment,
    VectorCommitment,
    make_commitment_scheme,
)

SCHEMES = [VectorCommitment, MerkleCommitment]
SCHEME_IDS = ["vector", "merkle"]


def _blocks(n, size=8, salt=0):
    return [bytes([i ^ salt]) * size for i in range(n)]


@pytest.mark.parametrize("scheme_cls", SCHEMES, ids=SCHEME_IDS)
def test_commit_and_verify_all(scheme_cls):
    scheme = scheme_cls(5)
    blocks = _blocks(5)
    commitment, witnesses = scheme.commit(blocks)
    assert len(witnesses) == 5
    for index, block in enumerate(blocks, start=1):
        assert scheme.verify(commitment, index, block,
                             witnesses[index - 1])


@pytest.mark.parametrize("scheme_cls", SCHEMES, ids=SCHEME_IDS)
def test_wrong_block_rejected(scheme_cls):
    scheme = scheme_cls(4)
    blocks = _blocks(4)
    commitment, witnesses = scheme.commit(blocks)
    assert not scheme.verify(commitment, 1, b"tampered", witnesses[0])


@pytest.mark.parametrize("scheme_cls", SCHEMES, ids=SCHEME_IDS)
def test_wrong_index_rejected(scheme_cls):
    scheme = scheme_cls(4)
    blocks = _blocks(4)
    commitment, witnesses = scheme.commit(blocks)
    assert not scheme.verify(commitment, 2, blocks[0], witnesses[0])


@pytest.mark.parametrize("scheme_cls", SCHEMES, ids=SCHEME_IDS)
def test_out_of_range_index_rejected(scheme_cls):
    scheme = scheme_cls(4)
    blocks = _blocks(4)
    commitment, witnesses = scheme.commit(blocks)
    assert not scheme.verify(commitment, 0, blocks[0], witnesses[0])
    assert not scheme.verify(commitment, 5, blocks[0], witnesses[0])


@pytest.mark.parametrize("scheme_cls", SCHEMES, ids=SCHEME_IDS)
def test_garbage_commitment_rejected(scheme_cls):
    scheme = scheme_cls(4)
    blocks = _blocks(4)
    _, witnesses = scheme.commit(blocks)
    assert not scheme.verify("garbage", 1, blocks[0], witnesses[0])
    assert not scheme.verify(None, 1, blocks[0], witnesses[0])


@pytest.mark.parametrize("scheme_cls", SCHEMES, ids=SCHEME_IDS)
def test_block_count_enforced(scheme_cls):
    scheme = scheme_cls(4)
    with pytest.raises(ConfigurationError):
        scheme.commit(_blocks(3))


@pytest.mark.parametrize("scheme_cls", SCHEMES, ids=SCHEME_IDS)
def test_commitment_is_serializable(scheme_cls):
    scheme = scheme_cls(4)
    commitment, witnesses = scheme.commit(_blocks(4))
    encode((commitment, witnesses))  # must not raise


def test_vector_commitment_shape():
    scheme = VectorCommitment(3)
    commitment, witnesses = scheme.commit(_blocks(3))
    assert isinstance(commitment, tuple) and len(commitment) == 3
    assert witnesses == [None, None, None]


def test_merkle_commitment_shape():
    scheme = MerkleCommitment(5)
    commitment, witnesses = scheme.commit(_blocks(5))
    assert isinstance(commitment, bytes) and len(commitment) == 32


def test_merkle_witness_from_other_tree_rejected():
    scheme = MerkleCommitment(4)
    commitment_a, witnesses_a = scheme.commit(_blocks(4, salt=0))
    commitment_b, witnesses_b = scheme.commit(_blocks(4, salt=9))
    assert not scheme.verify(commitment_a, 1, _blocks(4, salt=9)[0],
                             witnesses_b[0])


def test_merkle_wrong_leaf_count_witness_rejected():
    small = MerkleCommitment(2)
    big = MerkleCommitment(4)
    blocks = _blocks(4)
    commitment, witnesses = big.commit(blocks)
    # A witness for a 4-leaf tree must not verify in a 2-block scheme.
    assert not small.verify(commitment, 1, blocks[0], witnesses[0])


def test_factory():
    assert isinstance(make_commitment_scheme("vector", 3), VectorCommitment)
    assert isinstance(make_commitment_scheme("merkle", 3), MerkleCommitment)
    with pytest.raises(ConfigurationError):
        make_commitment_scheme("homomorphic", 3)
    with pytest.raises(ConfigurationError):
        make_commitment_scheme("vector", 0)


@settings(max_examples=30)
@given(st.data())
def test_property_commit_verify(data):
    n = data.draw(st.integers(min_value=1, max_value=10))
    scheme_name = data.draw(st.sampled_from(["vector", "merkle"]))
    blocks = [data.draw(st.binary(min_size=1, max_size=16))
              for _ in range(n)]
    scheme = make_commitment_scheme(scheme_name, n)
    commitment, witnesses = scheme.commit(blocks)
    index = data.draw(st.integers(min_value=1, max_value=n))
    assert scheme.verify(commitment, index, blocks[index - 1],
                         witnesses[index - 1])
    tampered = blocks[index - 1] + b"\x00"
    assert not scheme.verify(commitment, index, tampered,
                             witnesses[index - 1])
