"""Atomic-broadcast detail behaviours: dedup, counters, cursoring."""

from repro.agreement.atomic_broadcast import AtomicBroadcast
from repro.common.ids import server_id
from repro.config import SystemConfig
from repro.net.process import Process
from repro.net.schedulers import RandomScheduler
from repro.net.simulator import Simulator


class AbcHost(Process):
    def __init__(self, pid, config):
        super().__init__(pid)
        self.log = []
        self.abc = AtomicBroadcast(
            self, config, lambda seq, req: self.log.append((seq, req)))


def _network(seed=0):
    config = SystemConfig(n=4, t=1, seed=seed)
    simulator = Simulator(scheduler=RandomScheduler(seed))
    hosts = [simulator.add_process(AbcHost(server_id(j), config))
             for j in range(1, 5)]
    return simulator, hosts


def test_duplicate_submissions_buffered_once():
    simulator, hosts = _network()
    for _ in range(5):
        hosts[0].abc.submit(("op", "same"))
    for host in hosts:
        host.abc.submit(("op", "same"))
    simulator.run(max_steps=800_000)
    for host in hosts:
        assert host.log == [(1, ("op", "same"))]
        assert host.abc.delivered_count == 1


def test_resubmission_after_delivery_ignored():
    simulator, hosts = _network(seed=2)
    for host in hosts:
        host.abc.submit(("op", 1))
    simulator.run(max_steps=800_000)
    assert all(host.abc.delivered_count == 1 for host in hosts)
    for host in hosts:
        host.abc.submit(("op", 1))  # already delivered: dropped
    simulator.run(max_steps=800_000)
    assert all(host.abc.delivered_count == 1 for host in hosts)


def test_sequence_numbers_are_gapless_and_identical():
    simulator, hosts = _network(seed=3)
    for index in range(4):
        hosts[index].abc.submit(("op", index))
    simulator.run(max_steps=1_500_000)
    logs = [host.log for host in hosts]
    assert all(log == logs[0] for log in logs)
    sequences = [seq for seq, _ in logs[0]]
    assert sequences == list(range(1, len(sequences) + 1))


def test_deterministic_intra_round_order():
    """Requests accepted in one round come out in canonical-encoding
    order — the same everywhere by construction."""
    simulator, hosts = _network(seed=4)
    for host in hosts:
        host.abc.submit(("b", 2))
        host.abc.submit(("a", 1))
    simulator.run(max_steps=800_000)
    delivered = [request for _, request in hosts[0].log]
    assert set(delivered) == {("a", 1), ("b", 2)}
    assert all(host.log == hosts[0].log for host in hosts)
