"""Robustness: servers and clients fed malformed or malicious messages
directly must neither crash nor corrupt state (Byzantine senders can
send anything well-typed enough to serialize)."""

import pytest

from repro.cluster import build_cluster
from repro.common.ids import client_id, server_id
from repro.config import SystemConfig
from repro.core.atomic import disp_tag, rbc_tag, _parse_subtag
from repro.core.timestamps import INITIAL_TIMESTAMP, Timestamp
from repro.net.process import Process
from repro.net.schedulers import RandomScheduler

TAG = "reg"


class RawSender(Process):
    """A corrupted client with raw channel access."""


def _cluster(protocol="atomic_ns", n=4, t=1, seed=0):
    config = SystemConfig(n=n, t=t, seed=seed)
    cluster = build_cluster(
        config, protocol=protocol, num_clients=2,
        scheduler=RandomScheduler(seed),
        client_overrides={2: lambda pid, cfg: RawSender(pid)})
    return cluster, cluster.client(2)


# -- tag helpers ----------------------------------------------------------------

def test_tag_helpers():
    assert disp_tag("reg", "w1") == "reg|disp.w1"
    assert rbc_tag("reg", "w1") == "reg|rbc.w1"
    assert _parse_subtag("reg|disp.w1") == ("reg", "disp", "w1")
    assert _parse_subtag("reg|rbc.w.dotted") == ("reg", "rbc", "w.dotted")
    assert _parse_subtag("reg") is None
    assert _parse_subtag("reg|other.w1") is None


# -- malformed payloads against every server handler -----------------------------

MALFORMED = [
    (),                     # empty
    (None,),                # wrong types
    (1, 2, 3, 4, 5, 6, 7),  # wrong arity
    ("oid", "not-a-timestamp", b"v"),
]


@pytest.mark.parametrize("mtype", [
    "get-ts", "read", "read-complete", "share",
    "avid-send", "avid-echo", "avid-ready",
    "rbc-send", "rbc-echo", "rbc-ready",
])
def test_atomic_ns_server_survives_garbage(mtype):
    cluster, attacker = _cluster()
    for payload in MALFORMED:
        tag = TAG if not mtype.startswith(("avid", "rbc")) \
            else disp_tag(TAG, "x")
        attacker.send(server_id(1), tag, mtype, *payload)
    cluster.run()
    # The register is pristine and still fully functional.
    state = cluster.server(1).register_state(TAG)
    assert state.timestamp == INITIAL_TIMESTAMP
    cluster.write(1, TAG, "w1", b"still works")
    assert cluster.read(1, TAG, "r1").result == b"still works"


@pytest.mark.parametrize("protocol,mtypes", [
    ("martin", ["get-ts", "store", "read", "read-complete"]),
    ("goodson", ["get-ts", "store", "read-latest", "read-prev"]),
])
def test_baseline_servers_survive_garbage(protocol, mtypes):
    n = 4 if protocol == "martin" else 5
    cluster, attacker = _cluster(protocol=protocol, n=n)
    for mtype in mtypes:
        for payload in MALFORMED:
            attacker.send(server_id(1), TAG, mtype, *payload)
    cluster.run()
    cluster.write(1, TAG, "w1", b"still works")
    assert cluster.read(1, TAG, "r1").result == b"still works"


def test_forged_value_messages_ignored_by_reader():
    """A Byzantine server bombarding a reader with fabricated value
    messages (wrong blocks, wrong types, huge timestamps) cannot corrupt
    or block the read."""
    cluster, attacker = _cluster(protocol="atomic")
    cluster.write(1, TAG, "w1", b"the truth")
    read_handle = cluster.client(1).invoke_read(TAG, "r1")
    for payload in [
        ("r1", "bad-commitment", b"junk", None, Timestamp(99, "zz")),
        ("r1", None, None, None, None),
        ("r1",),
    ]:
        attacker.send(client_id(1), TAG, "value", *payload)
    cluster.run()
    assert read_handle.done and read_handle.result == b"the truth"


def test_forged_ts_replies_ignored_by_writer():
    cluster, attacker = _cluster(protocol="atomic_ns")
    write_handle = cluster.client(1).invoke_write(TAG, "w1", b"v")
    for payload in [
        ("w1", 10 ** 15, None),          # unsigned inflation
        ("w1", "NaN", None),
        ("w1", -5, None),
        ("w1", 3, b"not-a-signature"),
    ]:
        attacker.send(client_id(1), TAG, "ts", *payload)
    cluster.run()
    assert write_handle.done
    assert cluster.server(1).register_state(TAG).timestamp.ts == 1


def test_forged_acks_do_not_complete_writes():
    """Acks from a single Byzantine client/party cannot satisfy the
    n - t server quorum."""
    cluster, attacker = _cluster(protocol="atomic")
    # Stall everything real: send only forged acks for a write that was
    # never dispersed.
    handle = cluster.client(1).invoke_write(TAG, "w1", b"v")
    for _ in range(10):
        attacker.send(client_id(1), TAG, "ack", "w1")
    # Forged acks are from a client, so the is_server filter drops them;
    # the genuine protocol proceeds and completes normally.
    cluster.run()
    assert handle.done  # completed via the real servers
    acks = cluster.client(1).inbox.messages(TAG, "ack")
    servers_only = [m for m in acks if m.sender.is_server]
    assert len(servers_only) >= 3


def test_duplicate_share_flood_counted_once():
    cluster, attacker = _cluster(protocol="atomic_ns")
    scheme = cluster.config.threshold_scheme
    # Attacker is a client, not a shareholder: its 'shares' are garbage.
    for _ in range(20):
        attacker.send(server_id(1), TAG, "share", "w1", b"junk")
    cluster.write(1, TAG, "w1", b"clean")
    cluster.run()
    assert cluster.server(1).register_state(TAG).timestamp.ts == 1


def test_read_complete_for_unknown_oid_harmless():
    cluster, attacker = _cluster(protocol="atomic")
    attacker.send(server_id(1), TAG, "read-complete", "ghost-read")
    cluster.run()
    cluster.write(1, TAG, "w1", b"x")
    assert cluster.read(1, TAG, "r1").result == b"x"


def test_retired_read_oid_cannot_be_resurrected():
    """After read-complete, servers never reply to that oid again —
    an attacker replaying the read message gets silence."""
    cluster, attacker = _cluster(protocol="atomic")
    cluster.write(1, TAG, "w1", b"x")
    cluster.read(1, TAG, "r1")
    cluster.run()
    before = len(cluster.client(2).inbox.messages(TAG, "value"))
    attacker.send(server_id(1), TAG, "read", "r1")
    cluster.run()
    after = len(cluster.client(2).inbox.messages(TAG, "value"))
    assert after == before
