"""Standalone AVID storage: Disperse + Retrieve as a service."""

import pytest

from repro.avid import AvidStorageClient, AvidStorageNode
from repro.common.ids import client_id, server_id
from repro.config import SystemConfig
from repro.faults.byzantine_servers import CrashServer
from repro.net.process import Process
from repro.net.schedulers import RandomScheduler
from repro.net.simulator import Simulator


def _network(n=4, t=1, seed=0, commitment="vector", crashed=0):
    config = SystemConfig(n=n, t=t, commitment=commitment)
    simulator = Simulator(scheduler=RandomScheduler(seed))
    nodes = []
    for j in range(1, n + 1):
        if j <= crashed:
            nodes.append(simulator.add_process(
                CrashServer(server_id(j), config)))
        else:
            nodes.append(simulator.add_process(
                AvidStorageNode(server_id(j), config)))
    clients = [simulator.add_process(AvidStorageClient(client_id(i),
                                                       config))
               for i in (1, 2)]
    return simulator, nodes, clients, config


def test_disperse_then_retrieve():
    simulator, nodes, (writer, reader), _ = _network()
    writer.disperse("obj", b"stored once, read anywhere")
    simulator.run()
    handle = reader.retrieve("obj")
    simulator.run()
    assert handle.done
    assert handle.value == b"stored once, read anywhere"


def test_retrieve_missing_tag():
    simulator, nodes, (writer, reader), _ = _network()
    handle = reader.retrieve("never-stored")
    simulator.run()
    assert handle.done and handle.value is None


def test_retrieve_with_merkle_commitments():
    simulator, nodes, (writer, reader), _ = _network(commitment="merkle")
    writer.disperse("obj", b"merkle-committed " * 20)
    simulator.run()
    handle = reader.retrieve("obj")
    simulator.run()
    assert handle.value == b"merkle-committed " * 20


def test_retrieve_with_t_crashed_nodes():
    simulator, nodes, (writer, reader), _ = _network(crashed=1, seed=5)
    writer.disperse("obj", b"resilient blob")
    simulator.run()
    handle = reader.retrieve("obj")
    simulator.run()
    assert handle.value == b"resilient blob"


def test_multiple_objects():
    simulator, nodes, (writer, reader), _ = _network(seed=2)
    for index in range(5):
        writer.disperse(f"obj{index}", b"payload-%d" % index)
    simulator.run()
    handles = [reader.retrieve(f"obj{index}") for index in range(5)]
    simulator.run()
    for index, handle in enumerate(handles):
        assert handle.value == b"payload-%d" % index


def test_stored_tags_and_output_actions():
    simulator, nodes, (writer, _), _ = _network()
    writer.disperse("obj", b"x")
    simulator.run()
    honest = [node for node in nodes
              if isinstance(node, AvidStorageNode)]
    for node in honest:
        assert node.stored_tags() == ["obj"]
        assert node.storage_bytes() > 0
    stored_events = [event for event in simulator.event_log
                     if event.kind == "out" and event.action == "stored"]
    assert len(stored_events) == len(honest)
    assert all(event.payload[0] == writer.pid for event in stored_events)


def test_garbage_block_counts_toward_negative_verdict():
    """A Byzantine server answering with an *unverifiable* block must not
    delay the verdict past ``n - t`` replies: present-but-invalid blocks
    count toward the negative quorum exactly like explicit misses
    (previously they counted toward nothing, so the client waited for a
    fourth reply that the first three already made redundant)."""
    config = SystemConfig(n=4, t=1)
    simulator = Simulator()  # FIFO: replies arrive in server order
    nodes = [simulator.add_process(AvidStorageNode(server_id(j), config))
             for j in (1, 2, 3, 4)]
    writer = simulator.add_process(AvidStorageClient(client_id(1), config))
    reader = simulator.add_process(AvidStorageClient(client_id(2), config))
    # A real dispersal gives server 1 a structurally valid commitment and
    # witness to lie with ...
    writer.disperse("obj", b"legitimate value")
    simulator.run()
    commitment, block, witness = nodes[0].storage._stored["obj"]
    corrupted = bytes(byte ^ 0xFF for byte in block) or b"\x00"
    # ... which it serves, corrupted, for a tag nothing was stored under.
    nodes[0].storage.store("ghost", commitment, corrupted, witness)
    handle = reader.retrieve("ghost")
    simulator.run_until(lambda: handle.done)
    assert handle.value is None
    # The verdict landed on the first n - t = 3 replies (garbage + two
    # misses); the fourth server's reply is still in flight.
    assert simulator.pending_count > 0


def test_byzantine_node_cannot_corrupt_retrieval():
    """A corrupted node serving a bogus block is filtered by commitment
    verification at the reader."""

    class LyingNode(AvidStorageNode):
        def _on_complete(self, tag, commitment, client, block, witness):
            corrupted = bytes(byte ^ 0xFF for byte in block) or b"\x00"
            self.storage.store(tag, commitment, corrupted, witness)
            self.output(tag, "stored", client)

    config = SystemConfig(n=4, t=1)
    simulator = Simulator(scheduler=RandomScheduler(3))
    simulator.add_process(LyingNode(server_id(1), config))
    for j in (2, 3, 4):
        simulator.add_process(AvidStorageNode(server_id(j), config))
    writer = simulator.add_process(AvidStorageClient(client_id(1), config))
    reader = simulator.add_process(AvidStorageClient(client_id(2), config))
    writer.disperse("obj", b"truth")
    simulator.run()
    handle = reader.retrieve("obj")
    simulator.run()
    assert handle.value == b"truth"
