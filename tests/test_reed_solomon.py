"""Reed-Solomon erasure codes: any k blocks reconstruct."""

import itertools
import os
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ConfigurationError, DecodingError
from repro.erasure.gf256 import identity_matrix
from repro.erasure.reed_solomon import ReedSolomonCode


def _data_blocks(k: int, length: int, seed: int = 0):
    rng = random.Random(seed)
    return [bytes(rng.getrandbits(8) for _ in range(length))
            for _ in range(k)]


def test_systematic_generator():
    code = ReedSolomonCode(7, 4)
    assert [row for row in code.generator_matrix[:4]] == identity_matrix(4)


def test_encode_is_systematic():
    code = ReedSolomonCode(6, 3)
    data = _data_blocks(3, 16)
    blocks = code.encode_blocks(data)
    assert blocks[:3] == data
    assert len(blocks) == 6


def test_every_k_subset_decodes():
    code = ReedSolomonCode(6, 3)
    data = _data_blocks(3, 8, seed=42)
    blocks = code.encode_blocks(data)
    for subset in itertools.combinations(range(6), 3):
        recovered = code.decode_blocks(
            {index: blocks[index] for index in subset})
        assert recovered == data, subset


def test_reconstruct_all():
    code = ReedSolomonCode(5, 2)
    data = _data_blocks(2, 10, seed=7)
    blocks = code.encode_blocks(data)
    rebuilt = code.reconstruct_all({3: blocks[3], 1: blocks[1]})
    assert rebuilt == blocks


def test_extra_blocks_ignored_deterministically():
    code = ReedSolomonCode(5, 2)
    data = _data_blocks(2, 4)
    blocks = code.encode_blocks(data)
    recovered = code.decode_blocks(dict(enumerate(blocks)))
    assert recovered == data


def test_too_few_blocks_raises():
    code = ReedSolomonCode(5, 3)
    with pytest.raises(DecodingError):
        code.decode_blocks({0: b"xx", 1: b"yy"})


def test_out_of_range_indices_ignored():
    code = ReedSolomonCode(4, 2)
    data = _data_blocks(2, 4)
    blocks = code.encode_blocks(data)
    with pytest.raises(DecodingError):
        code.decode_blocks({0: blocks[0], 9: blocks[1]})


def test_unequal_lengths_rejected():
    code = ReedSolomonCode(4, 2)
    with pytest.raises(ConfigurationError):
        code.encode_blocks([b"abc", b"ab"])
    with pytest.raises(DecodingError):
        code.decode_blocks({0: b"abc", 1: b"ab"})


def test_wrong_block_count_rejected():
    code = ReedSolomonCode(4, 2)
    with pytest.raises(ConfigurationError):
        code.encode_blocks([b"ab"])


def test_invalid_parameters():
    with pytest.raises(ConfigurationError):
        ReedSolomonCode(3, 4)
    with pytest.raises(ConfigurationError):
        ReedSolomonCode(4, 0)
    with pytest.raises(ConfigurationError):
        ReedSolomonCode(256, 4)


def test_k_equals_n():
    code = ReedSolomonCode(3, 3)
    data = _data_blocks(3, 5)
    blocks = code.encode_blocks(data)
    assert blocks == data  # no parity; identity code


def test_k_equals_one_is_replication():
    code = ReedSolomonCode(4, 1)
    blocks = code.encode_blocks([b"payload"])
    assert all(block == b"payload" for block in blocks)


def test_numpy_and_pure_python_agree():
    fast = ReedSolomonCode(7, 4, use_numpy=True)
    slow = ReedSolomonCode(7, 4, use_numpy=False)
    data = _data_blocks(4, 32, seed=5)
    assert fast.encode_blocks(data) == slow.encode_blocks(data)
    blocks = fast.encode_blocks(data)
    subset = {6: blocks[6], 4: blocks[4], 2: blocks[2], 5: blocks[5]}
    assert fast.decode_blocks(subset) == slow.decode_blocks(subset)


def test_corrupted_block_changes_decode():
    """RS erasure codes detect nothing by themselves; corruption must be
    caught by the commitment layer above (this documents the division of
    labour)."""
    code = ReedSolomonCode(5, 2)
    data = _data_blocks(2, 6, seed=3)
    blocks = code.encode_blocks(data)
    corrupted = bytes(b ^ 1 for b in blocks[4])
    recovered = code.decode_blocks({4: corrupted, 2: blocks[2]})
    assert recovered != data


@settings(max_examples=40)
@given(st.data())
def test_property_random_codes_roundtrip(data):
    n = data.draw(st.integers(min_value=1, max_value=12))
    k = data.draw(st.integers(min_value=1, max_value=n))
    length = data.draw(st.integers(min_value=0, max_value=32))
    blocks_in = [data.draw(st.binary(min_size=length, max_size=length))
                 for _ in range(k)]
    code = ReedSolomonCode(n, k)
    encoded = code.encode_blocks(blocks_in)
    indices = data.draw(st.permutations(list(range(n))))
    subset = {index: encoded[index] for index in indices[:k]}
    assert code.decode_blocks(subset) == blocks_in
