"""Stateful property testing: Hypothesis drives a register cluster
interactively — interleaving invocations with partial message delivery —
and the run must always end wait-free and linearizable.

This subsumes hand-written concurrency scenarios: the rule machine
explores sequences like "invoke two writes, deliver 7 messages, invoke a
read, deliver 3 messages, invoke another read, drain" that fixed
workloads would never enumerate.
"""

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
import hypothesis.strategies as st

from repro.analysis.history import HistoryRecorder
from repro.cluster import build_cluster
from repro.config import SystemConfig
from repro.net.schedulers import RandomScheduler

TAG = "reg"
MAX_OPS = 10


class RegisterMachine(RuleBasedStateMachine):
    """Drives one cluster; state lives in the simulator."""

    @initialize(seed=st.integers(min_value=0, max_value=10 ** 6),
                protocol=st.sampled_from(["atomic", "atomic_ns"]))
    def setup(self, seed, protocol):
        config = SystemConfig(n=4, t=1, seed=seed)
        self.cluster = build_cluster(config, protocol=protocol,
                                     num_clients=3,
                                     scheduler=RandomScheduler(seed))
        self.handles = []
        self.op_counter = 0

    def _next_oid(self, kind):
        self.op_counter += 1
        return f"{kind}{self.op_counter}"

    @rule(client=st.integers(min_value=1, max_value=3))
    def invoke_write(self, client):
        if self.op_counter >= MAX_OPS:
            return
        oid = self._next_oid("w")
        value = f"value-{oid}".encode()
        self.handles.append(
            self.cluster.client(client).invoke_write(TAG, oid, value))

    @rule(client=st.integers(min_value=1, max_value=3))
    def invoke_read(self, client):
        if self.op_counter >= MAX_OPS:
            return
        oid = self._next_oid("r")
        self.handles.append(
            self.cluster.client(client).invoke_read(TAG, oid))

    @rule(steps=st.integers(min_value=1, max_value=60))
    def deliver_some(self, steps):
        simulator = self.cluster.simulator
        for _ in range(steps):
            if not simulator.step():
                break

    @invariant()
    def completed_reads_returned_written_values(self):
        if not hasattr(self, "cluster"):
            return
        written = {handle.value for handle in self.handles
                   if handle.kind == "write"}
        written.add(b"")  # the initial value
        for handle in self.handles:
            if handle.kind == "read" and handle.done:
                assert handle.result in written

    def teardown(self):
        if not hasattr(self, "cluster"):
            return
        # Drain the network: every invoked operation must then have
        # terminated (wait-freedom), and the history must linearize.
        self.cluster.simulator.run()
        for handle in self.handles:
            assert handle.done, f"{handle.oid} never terminated"
        HistoryRecorder(self.cluster, TAG).check()


TestRegisterStateful = RegisterMachine.TestCase
TestRegisterStateful.settings = settings(
    max_examples=20, stateful_step_count=12, deadline=None)
