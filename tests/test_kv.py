"""The key-value plane: directory, envelopes, sessions, scaling, chaos.

The load-bearing guarantees tested here:

* **Directory determinism** — key → shard → placement mapping is pure
  data, identical across instances, and validated against the fleet.
* **Wire fidelity** — kv envelopes and their inner entries round-trip
  through the canonical encoding like any other payload.
* **Session semantics** — coalescing folds queued same-key writes,
  backpressure bounds the queue, retries complete stranded operations.
* **Scaling** — more shards yield strictly higher aggregate ops/tick
  (batch density, measured end to end by the bench harness).
* **Safety** — every key's history linearizes under concurrent
  cross-shard sessions, fault-free and under builtin chaos plans; and
  the single-register path stays byte-identical with the kv plane
  loaded (golden-schedule regression).
"""

import json
import sys
from pathlib import Path

import pytest

from repro.chaos import FaultInjector, builtin_plan
from repro.common.errors import BackpressureError, ConfigurationError
from repro.common.ids import client_id, server_id
from repro.common.serialization import decode, encode
from repro.config import SystemConfig
from repro.kv import (
    KvDirectory,
    KvEntry,
    KvSession,
    build_kv_cluster,
    check_kv_histories,
    drive,
    run_kv_case,
)
from repro.workloads.kv import KvOp, key_names, kv_workload

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

FLEET = SystemConfig(n=4, t=1)


# -- directory ----------------------------------------------------------------

def test_directory_mapping_is_deterministic_across_instances():
    first = KvDirectory(FLEET, 8)
    second = KvDirectory(SystemConfig(n=4, t=1), 8)
    for key in key_names(64):
        assert first.shard_of_key(key) == second.shard_of_key(key)
        assert first.register_tag(key) == second.register_tag(key)


def test_directory_placement_rotates_over_the_fleet():
    directory = KvDirectory(FLEET, 4)
    assert [spec.placement for spec in directory.shards] == [
        (1, 2, 3, 4), (2, 3, 4, 1), (3, 4, 1, 2), (4, 1, 2, 3)]
    spec = directory.shard(1)
    assert spec.fleet_server_index(1) == 2
    assert spec.local_server_index(2) == 1
    assert spec.local_server_index(1) == 4


def test_directory_shard_configs_keep_the_resilience_bound():
    directory = KvDirectory(SystemConfig(n=7, t=2), 3, shard_n=7)
    for spec in directory.shards:
        assert spec.config.n == 7 and spec.config.t == 2
        assert spec.config.n > 3 * spec.config.t


def test_directory_rejects_invalid_shapes_and_keys():
    with pytest.raises(ConfigurationError):
        KvDirectory(FLEET, 0)
    with pytest.raises(ConfigurationError):
        KvDirectory(FLEET, 2, shard_n=5)  # more servers than the fleet
    with pytest.raises(ConfigurationError):
        KvDirectory(SystemConfig(n=7, t=2), 2, shard_n=4, shard_t=1)
    directory = KvDirectory(FLEET, 2)
    with pytest.raises(ConfigurationError):
        directory.shard_of_key("")
    with pytest.raises(ConfigurationError):
        directory.shard_of_key("bad|key")


# -- wire envelope ------------------------------------------------------------

def test_kv_entry_roundtrips_through_canonical_encoding():
    entry = KvEntry(shard=3, tag="kv.s3.k001", mtype="w-ts-q",
                    sender=client_id(1), recipient=server_id(2),
                    payload=("oid", b"value", 7), msg_id=42, depth=2,
                    cause_id=41)
    batch = ("kv", "kv-batch", ((entry,),))
    tag, mtype, payload = decode(encode(batch))
    assert (tag, mtype) == ("kv", "kv-batch")
    decoded = payload[0][0]
    assert decoded == entry
    assert decoded.well_formed()


def test_live_kv_envelopes_roundtrip_on_the_wire():
    directory = KvDirectory(FLEET, 2)
    cluster = build_kv_cluster(directory, num_sessions=2)
    drive(cluster, kv_workload(num_sessions=2, num_keys=4, ops=8, seed=3),
          seed=3)
    seen = 0
    for process in cluster.simulator.processes:
        for messages in process.inbox._by_key.values():
            for message in messages:
                wire = encode((message.tag, message.mtype,
                               message.payload))
                assert decode(wire) == (message.tag, message.mtype,
                                        message.payload)
                seen += 1
    assert seen > 0


# -- sessions -----------------------------------------------------------------

def test_queued_writes_to_one_key_coalesce_last_value_wins():
    directory = KvDirectory(FLEET, 2)
    cluster = build_kv_cluster(directory, num_sessions=1)
    session = cluster.session(1)
    first = session.put("k001", b"stale-1")
    second = session.put("k001", b"stale-2")
    last = session.put("k001", b"final")
    assert session.queued == 1  # three submissions, one queue slot
    cluster.settle()
    assert first.done and second.done and last.done
    assert first.coalesced and second.coalesced and not last.coalesced
    read = session.get("k001")
    cluster.settle()
    assert read.result == b"final"
    check_kv_histories([session])


def test_read_ends_the_coalescing_window():
    directory = KvDirectory(FLEET, 2)
    cluster = build_kv_cluster(directory, num_sessions=1,
                               max_inflight_per_shard=1)
    session = cluster.session(1)
    session.put("k001", b"one")
    session.get("k001")
    follow = session.put("k001", b"two")
    assert session.queued == 3  # the second write may not fold backwards
    assert not follow.coalesced
    cluster.settle()
    check_kv_histories([session])


def test_full_queue_raises_backpressure():
    directory = KvDirectory(FLEET, 2)
    cluster = build_kv_cluster(directory, num_sessions=1, max_queue=2)
    session = cluster.session(1)
    session.put("k001", b"a")
    session.put("k002", b"b")
    with pytest.raises(BackpressureError):
        session.get("k003")
    # Coalescing never consumes a slot, so it bypasses backpressure.
    session.put("k001", b"c")
    cluster.settle()
    assert all(handle.done for handle in session.handles)


def test_retry_reinvokes_stalled_operations_and_still_linearizes():
    directory = KvDirectory(FLEET, 2)
    cluster = build_kv_cluster(directory, num_sessions=1)
    session = cluster.session(1)
    handle = session.put("k001", b"v1")
    session.pump()  # admit + flush: one attempt in flight
    assert session.inflight == 1
    retried = session.retry_pending()  # as after a quiesced stall
    assert retried == 1
    cluster.settle()
    assert handle.done and handle.attempts == 2
    read = session.get("k001")
    cluster.settle()
    assert read.result == b"v1"
    check_kv_histories([session])


def test_retry_budget_is_bounded():
    directory = KvDirectory(FLEET, 2)
    cluster = build_kv_cluster(directory, num_sessions=1, max_attempts=2)
    session = cluster.session(1)
    session.put("k001", b"v1")
    session.pump()
    assert session.retry_pending() == 1  # attempt 2 of 2
    assert session.retry_pending() == 0  # budget spent
    cluster.settle()


# -- session accounting -------------------------------------------------------

def test_kv_latency_pins_to_the_winning_attempt_not_the_reap_tick():
    """Regression: handles must report the *winning inner attempt's*
    completion tick, not the tick of the pump that happened to reap it
    (which inflated every kv latency by the reap delay)."""
    directory = KvDirectory(FLEET, 2)
    cluster = build_kv_cluster(directory, num_sessions=1)
    session = cluster.session(1)
    handle = session.put("k001", b"v1")
    session.pump()
    inner = session._inflight[handle.shard][0].attempts[0]
    # Quiesce the network fully before reaping so the reap tick is
    # strictly later than the inner completion (the quorum fills before
    # the last delivery) — a pump-tick stamp would be visibly wrong.
    cluster.simulator.run()
    assert inner.done and not handle.done
    assert inner.complete_time < cluster.simulator.time
    session.pump()
    assert handle.done
    assert handle.complete_time == inner.complete_time
    check_kv_histories([session])


def test_pending_handles_report_live_attempt_counts():
    """Regression: ``attempts`` was only stamped at completion, so a
    stalled operation reported ``attempts == 0`` — exactly when the
    count matters for debugging.  It must track invocations live."""
    directory = KvDirectory(FLEET, 2)
    cluster = build_kv_cluster(directory, num_sessions=1)
    session = cluster.session(1)
    handle = session.put("k001", b"v1")
    assert handle.attempts == 0  # queued, nothing invoked yet
    session.pump()
    assert not handle.done and handle.attempts == 1
    session.retry_pending()
    assert not handle.done and handle.attempts == 2
    cluster.settle()
    assert handle.done and handle.attempts == 2


def test_stalled_operations_report_live_attempts_under_chaos_drops():
    directory = KvDirectory(FLEET, 2)
    cluster = build_kv_cluster(directory, num_sessions=1)
    cluster.simulator.attach_injector(
        FaultInjector(builtin_plan("drops", 4, 1, seed=2)))
    session = cluster.session(1)
    handle = session.put("k001", b"v1")
    session.pump()
    cluster.simulator.run()  # quiesce: drops may strand the round
    assert handle.attempts == 1  # live even while stranded
    cluster.settle()
    assert handle.done and handle.attempts >= 1
    check_kv_histories([session])


def test_read_winner_prefers_highest_timestamp_attempt():
    """Regression: ``_reap`` settled on the *first* completed attempt,
    so a stale retry racing a fresh one could seed the session cache
    with a superseded pair.  Reads must take the freshest TIMESTAMP."""
    from repro.core.register import OperationHandle
    from repro.core.timestamps import Timestamp

    def attempt(oid, time, value, timestamp):
        handle = OperationHandle(kind="read", tag="kv.s0.k001", oid=oid,
                                 client=client_id(1))
        handle._complete(time, result=value, timestamp=timestamp)
        return handle

    stale = attempt("c1.o1", 5, b"old", Timestamp(1, "w1"))
    fresh = attempt("c1.o1.a1", 9, b"new", Timestamp(2, "w2"))
    assert KvSession._pick_winner("read", [stale, fresh]) is fresh
    assert KvSession._pick_winner("read", [fresh, stale]) is fresh
    # Ties keep the earliest completion; a TIMESTAMP-less attempt never
    # displaces one that carries a TIMESTAMP.
    twin = attempt("c1.o1.a2", 11, b"new", Timestamp(2, "w2"))
    assert KvSession._pick_winner("read", [fresh, twin]) is fresh
    bare = attempt("c1.o1.a3", 3, b"???", None)
    assert KvSession._pick_winner("read", [stale, bare]) is stale
    assert KvSession._pick_winner("read", [bare, stale]) is stale
    # Writes take the first completion — every ack wrote the same value.
    assert KvSession._pick_winner("write", [stale, fresh]) is stale


# -- end-to-end safety --------------------------------------------------------

def test_concurrent_cross_shard_sessions_linearize_per_key():
    directory = KvDirectory(FLEET, 4)
    cluster = build_kv_cluster(directory, num_sessions=3)
    workload = kv_workload(num_sessions=3, num_keys=12, ops=36,
                           write_ratio=0.5, seed=5)
    stats = drive(cluster, workload, seed=5)
    assert stats["completed"] == 36
    keys = check_kv_histories(cluster.sessions)
    assert keys >= 8  # several keys actually saw traffic
    shards_hit = {handle.shard for session in cluster.sessions
                  for handle in session.handles}
    assert len(shards_hit) >= 3  # genuinely cross-shard


def test_sessions_are_isolated_but_share_the_store():
    directory = KvDirectory(FLEET, 2)
    cluster = build_kv_cluster(directory, num_sessions=2)
    writer, reader = cluster.sessions
    writer.put("k001", b"shared")
    cluster.settle()
    handle = reader.get("k001")
    cluster.settle()
    assert handle.result == b"shared"
    check_kv_histories(cluster.sessions)


def test_kv_run_under_builtin_chaos_plan_stays_linearizable():
    row, cluster = run_kv_case(4, sessions=2, keys=8, ops=24,
                               plan_name="drops", seed=2)
    assert row.linearizable
    assert row.completed == 24
    assert row.keys_checked >= 4
    counters = cluster.simulator.chaos.instruments.snapshot()
    assert counters["chaos.injected[drop]"]["value"] > 0  # faults fired


def test_kv_crash_recover_plan_downs_a_whole_host():
    row, cluster = run_kv_case(4, sessions=2, keys=8, ops=24,
                               plan_name="crash-recover", seed=1)
    assert row.linearizable
    assert row.completed == 24


# -- scaling ------------------------------------------------------------------

def test_more_shards_strictly_raise_aggregate_ops_per_tick():
    """The acceptance property: shard count converts into batch density
    which converts into throughput, measured end to end."""
    throughput = {}
    for shards in (1, 4, 16):
        row, _ = run_kv_case(shards)
        assert row.linearizable
        assert row.completed == row.ops
        throughput[shards] = row.ops_per_tick
    assert throughput[1] < throughput[4] < throughput[16]


def test_batching_reduces_envelope_count_not_inner_traffic():
    one, _ = run_kv_case(1, sessions=2, keys=8, ops=24)
    many, _ = run_kv_case(8, sessions=2, keys=8, ops=24)
    assert many.envelopes < one.envelopes
    assert many.batch_factor > one.batch_factor
    # Inner protocol work is conserved — batching packs it, never
    # skips it (a few messages shift with scheduling, nothing more).
    assert abs(many.inner_messages - one.inner_messages) \
        <= 0.15 * one.inner_messages


def test_bench_rows_carry_phase_attribution():
    row, _ = run_kv_case(2, sessions=2, keys=8, ops=24)
    assert row.phase_ticks, "kv spans produced no phase attribution"
    assert sum(row.phase_ticks.values()) > 0


def test_subset_shard_placements_serve_operations():
    """Shards may recruit only part of the fleet (``shard_n < n``):
    operations route to the placement's servers and still linearize."""
    fleet = SystemConfig(n=10, t=2)
    directory = KvDirectory(fleet, 5, shard_n=7, shard_t=2)
    assert directory.shards[1].placement == (2, 3, 4, 5, 6, 7, 8)
    cluster = build_kv_cluster(directory, num_sessions=2)
    workload = kv_workload(num_sessions=2, num_keys=8, ops=16, seed=0)
    stats = drive(cluster, workload, seed=0)
    assert stats["completed"] == 16
    check_kv_histories(cluster.sessions)
    # Servers outside a shard's placement never materialize it.
    for server in cluster.servers:
        for shard_id in server.active_shards:
            spec = directory.shard(shard_id)
            assert spec.local_server_index(server.pid.index) is not None


# -- golden-schedule regression ----------------------------------------------

def test_single_register_path_is_byte_identical_with_kv_loaded():
    """Importing and exercising the kv plane must not perturb the
    single-register schedules pinned by the golden fixtures."""
    import gen_golden_schedules
    fixture = json.loads(
        (REPO_ROOT / "tests" / "fixtures" /
         "golden_schedules.json").read_text(encoding="utf-8"))
    # Exercise the kv plane first so any cross-contamination (shared
    # caches, wire registry, scheduler state) would be visible below.
    directory = KvDirectory(FLEET, 2)
    cluster = build_kv_cluster(directory, num_sessions=1)
    drive(cluster, [KvOp(1, "write", "k001", b"x"),
                    KvOp(1, "read", "k001")])
    case = fixture["cases"][0]
    fresh = gen_golden_schedules.run_case(dict(case["spec"]))
    assert fresh["sha256"] == case["sha256"]
