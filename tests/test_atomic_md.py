"""Protocol AtomicMd: metadata/data separation with k-server reads.

The load-bearing guarantees tested here:

* **Register semantics** — write/read round-trips, initial values,
  timestamp monotonicity, and linearizability of concurrent seeded
  workloads at both canonical deployments (n=4/t=1 and n=7/t=2).
* **Resilience shape** — ``k <= n - 2t`` is enforced at construction
  (the default ``k = n - t`` is rejected), and the chaos campaign
  resolves ``k = t + 1`` automatically for ``atomic_md`` specs.
* **Data-plane shape** — a write pushes exactly ``n`` point-to-point
  blocks (no AVID echo storm); a fault-free read fetches blocks from
  exactly ``k`` servers.
* **Escalation** — a Byzantine data plane (corrupted blocks, universal
  misses) forces reads past their first ``k`` fetch targets; reads
  still return the correct value and the verification-failure /
  block-miss telemetry records the attack.
* **Chaos battery** — every builtin fault plan yields the model's
  expected outcome, including the beyond-the-bound ``boundary`` plan.
* **Schedule preservation** — loading and exercising ``atomic_md``
  leaves the golden schedules of the existing protocols byte-identical.
* **Plane attribution** — ``repro.obs.planes`` classifies AtomicMd
  traffic correctly and stays in sync with the kv transport envelope.
"""

import json
import sys
from pathlib import Path

import pytest

from repro.analysis.history import HistoryRecorder
from repro.chaos.campaign import FAILSTOP_SERVERS, RunSpec, execute_run
from repro.chaos.library import BUILTIN_PLANS, builtin_plan
from repro.cluster import PROTOCOLS, build_cluster
from repro.common.errors import ConfigurationError
from repro.config import SystemConfig
from repro.core.atomic_md import (
    DATA_PLANE_TYPES,
    MESSAGE_TYPES,
    MSG_BLOCK,
    MSG_BLOCK_MISS,
    MSG_GET_BLOCK,
    MSG_STORE,
    MSG_VALID,
    MSG_VALIDATE,
    validate_md_config,
)
from repro.core.timestamps import Timestamp
from repro.faults.byzantine_servers import (
    CorruptBlockMdServer,
    MissingBlockMdServer,
)
from repro.faults.failstop import FailStopMdServer
from repro.kv import KvDirectory, run_kv_case
from repro.kv.envelope import MSG_KV_BATCH
from repro.lint.config import LintConfig
from repro.net.schedulers import RandomScheduler
from repro.obs.planes import (
    DATA_PLANE_MTYPES,
    TRANSPORT_MTYPES,
    PlaneTraffic,
    operation_plane_traffic,
    plane_of_mtype,
    plane_traffic,
)
from repro.obs.recorder import TraceRecorder
from repro.workloads.generator import random_workload, run_workload
from repro.workloads.kv import kv_workload

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))


def _cluster(n=4, t=1, seed=0, clients=2, **overrides):
    config = SystemConfig(n=n, t=t, k=t + 1, seed=seed)
    return build_cluster(config, protocol="atomic_md", num_clients=clients,
                         scheduler=RandomScheduler(seed), **overrides)


# -- register semantics -------------------------------------------------------

def test_write_then_read():
    cluster = _cluster()
    cluster.write(1, "reg", "w1", b"separated value")
    assert cluster.read(2, "reg", "r1").result == b"separated value"


def test_larger_deployment():
    cluster = _cluster(n=7, t=2, seed=3)
    cluster.write(1, "reg", "w1", b"seven servers, three blocks")
    assert cluster.read(2, "reg", "r1").result \
        == b"seven servers, three blocks"


def test_initial_value_propagates():
    config = SystemConfig(n=4, t=1, k=2)
    cluster = build_cluster(config, protocol="atomic_md",
                            initial_value=b"boot")
    assert cluster.read(1, "reg", "r1").result == b"boot"


def test_registered_in_protocol_table():
    assert "atomic_md" in PROTOCOLS
    assert FAILSTOP_SERVERS["atomic_md"] is FailStopMdServer


def test_sequential_writes_increment_by_one():
    cluster = _cluster()
    for index in range(1, 5):
        cluster.write(1, "reg", f"w{index}", b"v%d" % index)
        state = cluster.server(1).register_state("reg")
        assert state.timestamp.ts == index


def test_concurrent_workload_atomic():
    for seed in range(5):
        cluster = _cluster(seed=seed, clients=3)
        operations = random_workload(3, writes=4, reads=5, seed=seed)
        run_workload(cluster, "reg", operations, seed=seed)
        HistoryRecorder(cluster, "reg").check()


def test_accepted_history_is_bounded():
    """Servers retain a bounded version history for late block fetches;
    the currently adopted version is never evicted."""
    cluster = _cluster(clients=1)
    limit = cluster.server(1).history_limit
    for index in range(limit + 4):
        cluster.write(1, "reg", f"w{index}", b"v%d" % index)
    for server in cluster.servers:
        state = server.register_state("reg")
        assert len(state.history) <= limit
        assert state.timestamp in state.history


# -- resilience shape ---------------------------------------------------------

def test_default_k_is_rejected():
    """``SystemConfig``'s default ``k = n - t`` violates the AtomicMd
    read-liveness bound ``k <= n - 2t``; the deployment must opt in."""
    with pytest.raises(ConfigurationError, match="k <= n - 2t"):
        build_cluster(SystemConfig(n=4, t=1), protocol="atomic_md")


def test_validate_md_config_accepts_the_bound_exactly():
    validate_md_config(SystemConfig(n=7, t=2, k=3))
    with pytest.raises(ConfigurationError):
        validate_md_config(SystemConfig(n=7, t=2, k=4))


def test_runspec_resolves_k_for_atomic_md_only():
    plan = builtin_plan("none", 4, 1)
    md = RunSpec(protocol="atomic_md", plan=plan)
    assert md.resolved_k() == 2
    assert RunSpec(protocol="atomic", plan=plan).resolved_k() is None
    pinned = RunSpec(protocol="atomic_md", plan=plan, k=2)
    assert pinned.resolved_k() == 2


def test_runspec_k_roundtrips_through_json():
    plan = builtin_plan("none", 7, 2)
    spec = RunSpec(protocol="atomic_md", plan=plan, n=7, t=2, k=3)
    assert RunSpec.from_json(spec.to_json()) == spec
    legacy = spec.to_json()
    del legacy["k"]  # reproducers written before the field existed
    assert RunSpec.from_json(legacy).k is None


# -- data-plane shape ---------------------------------------------------------

def test_write_pushes_exactly_n_blocks():
    """The O(n) data plane: one ``md-store`` per server, no echoes."""
    cluster = _cluster(clients=1)
    cluster.write(1, "reg", "w1", b"x" * 64)
    cluster.run()
    counts = cluster.simulator.metrics.messages_by_mtype("reg")
    assert counts.get(MSG_STORE, 0) == 4
    assert not any(mtype.startswith("avid-") for mtype in counts)


def test_fault_free_read_fetches_exactly_k_blocks():
    cluster = _cluster()
    cluster.write(1, "reg", "w1", b"y" * 64)
    cluster.read(2, "reg", "r1")
    counts = cluster.simulator.metrics.messages_by_mtype("reg")
    assert counts.get(MSG_GET_BLOCK, 0) == cluster.config.k
    assert counts.get(MSG_BLOCK, 0) == cluster.config.k


# -- metadata-only revalidation -----------------------------------------------

def test_write_handle_exposes_the_adopted_timestamp():
    """Acked writes surface the TIMESTAMP the servers adopted
    (``Timestamp(ts + 1, oid)``) so session caches can seed from them."""
    cluster = _cluster()
    first = cluster.write(1, "reg", "w1", b"v1")
    assert first.timestamp == Timestamp(1, "w1")
    second = cluster.write(1, "reg", "w2", b"v2")
    assert second.timestamp == Timestamp(2, "w2")


def test_validate_round_reports_the_freshest_quorum_timestamp():
    """``invoke_validate`` completes with the maximum TIMESTAMP over an
    ``n - t`` quorum — equal to the last write's — and moves metadata
    only: no block ever travels."""
    cluster = _cluster()
    write = cluster.write(1, "reg", "w1", b"payload")
    probe = cluster.client(2).invoke_validate("reg", "v1")
    cluster.run()
    assert probe.done
    assert probe.timestamp == write.timestamp
    assert probe.result is None
    counts = cluster.simulator.metrics.messages_by_mtype("reg")
    assert counts.get(MSG_VALIDATE, 0) == cluster.config.n
    assert counts.get(MSG_VALID, 0) >= cluster.config.quorum
    assert counts.get(MSG_GET_BLOCK, 0) == 0  # metadata plane only


# -- Byzantine data plane: escalation -----------------------------------------

def test_corrupt_block_server_forces_escalation():
    """A server serving corrupted blocks fails reader-side verification;
    the read escalates to further agreeing servers and still returns
    the correct value, with the failure recorded for the health plane."""
    cluster = _cluster(
        seed=1,
        server_overrides={1: lambda pid, cfg: CorruptBlockMdServer(pid, cfg)})
    recorder = TraceRecorder().attach(cluster.simulator)
    cluster.write(1, "reg", "w1", b"still intact")
    assert cluster.read(2, "reg", "r1").result == b"still intact"
    counts = cluster.simulator.metrics.messages_by_mtype("reg")
    failures = {name: summary["value"]
                for name, summary in recorder.registry.snapshot().items()
                if name.startswith("verify.failed.by[")}
    if counts.get(MSG_GET_BLOCK, 0) > cluster.config.k:
        # the corrupt server was among the first k targets: escalation
        assert failures.get(f"verify.failed.by[{MSG_BLOCK}]", 0) > 0
    else:
        # the first k targets were honest — nothing to escalate past
        assert not failures


def test_every_read_escalates_when_corrupt_server_is_always_queried():
    """At n=4/t=1 with k=2 and *two* reads from different clients, at
    least one hits the corrupt server with high probability across
    seeds; sweep a few to pin the escalation path deterministically."""
    escalated = 0
    for seed in range(4):
        cluster = _cluster(
            seed=seed,
            server_overrides={
                4: lambda pid, cfg: CorruptBlockMdServer(pid, cfg)})
        recorder = TraceRecorder().attach(cluster.simulator)
        cluster.write(1, "reg", "w1", b"sweep value")
        assert cluster.read(2, "reg", "r1").result == b"sweep value"
        snapshot = recorder.registry.snapshot()
        escalated += any(name.startswith("verify.failed.by[")
                         for name in snapshot)
    assert escalated > 0


def test_missing_block_server_triggers_miss_escalation():
    """Universal ``md-block-miss`` replies exercise the miss-triggered
    escalation path; reads terminate via the honest servers."""
    hit = 0
    for seed in range(4):
        cluster = _cluster(
            seed=seed,
            server_overrides={
                2: lambda pid, cfg: MissingBlockMdServer(pid, cfg)})
        cluster.write(1, "reg", "w1", b"served elsewhere")
        assert cluster.read(2, "reg", "r1").result == b"served elsewhere"
        counts = cluster.simulator.metrics.messages_by_mtype("reg")
        hit += counts.get(MSG_BLOCK_MISS, 0)
    assert hit > 0


def test_reads_linearize_with_byzantine_data_plane_at_n7():
    """Full workload at n=7/t=2 with one corrupt-block and one
    missing-block server (within the t=2 budget): atomicity holds."""
    cluster = _cluster(
        n=7, t=2, seed=2, clients=3,
        server_overrides={
            6: lambda pid, cfg: MissingBlockMdServer(pid, cfg),
            7: lambda pid, cfg: CorruptBlockMdServer(pid, cfg)})
    operations = random_workload(3, writes=3, reads=4, seed=2)
    run_workload(cluster, "reg", operations, seed=2)
    HistoryRecorder(cluster, "reg",
                    honest_servers=[cluster.server(j).pid
                                    for j in range(1, 6)]).check()


# -- chaos battery ------------------------------------------------------------

@pytest.mark.parametrize("plan_name", sorted(BUILTIN_PLANS))
def test_builtin_chaos_battery_n4(plan_name):
    """Every builtin plan at n=4/t=1 yields the model's promise: ``ok``
    within the resilience bound, a failure beyond it (``boundary``)."""
    spec = RunSpec(protocol="atomic_md",
                   plan=builtin_plan(plan_name, 4, 1, seed=0))
    result = execute_run(spec)
    assert result.expected, (plan_name, result.status, result.detail)


@pytest.mark.parametrize("plan_name",
                         ["corruption", "partition", "slow-server",
                          "sched-partition", "boundary"])
def test_builtin_chaos_battery_n7(plan_name):
    spec = RunSpec(protocol="atomic_md", n=7, t=2,
                   plan=builtin_plan(plan_name, 7, 2, seed=1), seed=1)
    result = execute_run(spec)
    assert result.expected, (plan_name, result.status, result.detail)


# -- schedule preservation ----------------------------------------------------

def test_existing_schedules_byte_identical_with_atomic_md_exercised():
    """Exercising AtomicMd first must not perturb the golden schedules
    of the existing protocols (shared caches, wire registry, RNG)."""
    import gen_golden_schedules
    cluster = _cluster()
    cluster.write(1, "reg", "w1", b"warm the caches")
    cluster.read(2, "reg", "r1")
    fixture = json.loads(
        (REPO_ROOT / "tests" / "fixtures" /
         "golden_schedules.json").read_text(encoding="utf-8"))
    for case in fixture["cases"][:2]:
        fresh = gen_golden_schedules.run_case(dict(case["spec"]))
        assert fresh["sha256"] == case["sha256"]


def test_atomic_md_runs_are_deterministic():
    digests = set()
    for _ in range(2):
        spec = RunSpec(protocol="atomic_md",
                       plan=builtin_plan("mixed", 4, 1, seed=3), seed=3)
        digests.add(execute_run(spec).digest)
    assert len(digests) == 1


# -- plane attribution --------------------------------------------------------

def test_plane_classification_of_md_message_types():
    assert set(DATA_PLANE_TYPES) <= DATA_PLANE_MTYPES
    for mtype in MESSAGE_TYPES:
        expected = "data" if mtype in DATA_PLANE_TYPES else "metadata"
        assert plane_of_mtype(mtype) == expected


def test_transport_envelope_literal_stays_in_sync():
    """``repro.obs.planes`` spells the kv envelope type as a literal to
    avoid an ``obs -> kv -> obs`` import cycle; this is the pin."""
    assert TRANSPORT_MTYPES == frozenset((MSG_KV_BATCH,))


def test_plane_traffic_excludes_transport_envelopes():
    traffic = PlaneTraffic()
    traffic.observe(MSG_STORE, 100)
    traffic.observe("md-meta", 10)
    traffic.observe(MSG_KV_BATCH, 10_000)
    assert traffic.data_bytes == 100
    assert traffic.metadata_bytes == 10
    assert traffic.total_bytes == 110
    assert traffic.to_json()["data_messages"] == 1


def test_run_level_plane_split_shows_k_server_reads():
    """Per-operation attribution: a read's data plane (k block fetches)
    moves fewer bytes than a write's (n block pushes)."""
    cluster = _cluster()
    recorder = TraceRecorder().attach(cluster.simulator)
    cluster.write(1, "reg", "w1", b"z" * 256)
    cluster.read(2, "reg", "r1")
    totals = plane_traffic(recorder)
    assert totals.data_bytes > 0 and totals.metadata_bytes > 0
    per_op = operation_plane_traffic(recorder)
    assert per_op["write"].data_messages == cluster.config.n
    assert per_op["read"].data_messages == cluster.config.k
    assert per_op["read"].data_bytes < per_op["write"].data_bytes


# -- kv plane integration -----------------------------------------------------

def test_directory_shard_k_reaches_every_shard_config():
    directory = KvDirectory(SystemConfig(n=4, t=1), 4, shard_k=2)
    assert all(spec.config.k == 2 for spec in directory.shards)


def test_directory_protocol_overrides_validated_and_recorded():
    fleet = SystemConfig(n=4, t=1)
    directory = KvDirectory(fleet, 4, shard_k=2,
                            protocol_overrides={1: "atomic_md"})
    assert directory.shard(1).protocol == "atomic_md"
    assert directory.shard(0).protocol is None
    with pytest.raises(ConfigurationError, match="out of range"):
        KvDirectory(fleet, 4, protocol_overrides={4: "atomic_md"})


def test_mixed_protocol_kv_deployment_linearizes():
    """One deployment, shards split across ``atomic`` and ``atomic_md``
    (``shard_k`` auto-resolves to ``t + 1``): histories linearize."""
    row, cluster = run_kv_case(2, sessions=2, keys=8, ops=24, seed=4,
                               protocol="atomic",
                               protocol_overrides={1: "atomic_md"})
    assert row.linearizable
    assert row.completed == 24
    protocols = {spec.protocol for spec
                 in cluster.directory.shards}
    assert protocols == {None, "atomic_md"}


def test_kv_case_rejects_byzantine_for_other_protocols():
    with pytest.raises(ConfigurationError):
        run_kv_case(2, protocol="atomic", byzantine="corrupt-block")


def test_kv_case_md_byzantine_row_escalates_and_linearizes():
    row, _ = run_kv_case(2, protocol="atomic_md", sessions=2, keys=8,
                         ops=24, write_ratio=0.1, seed=0,
                         byzantine="corrupt-block")
    assert row.linearizable
    assert row.verify_failures > 0
    assert row.plan == "byz-corrupt-block"


# -- read-mostly workload mixes -----------------------------------------------

def test_zipf_shift_rotates_the_hot_set():
    """Under ``zipf-shift`` the rank → key assignment rotates by one
    every ``shift_every`` ops: the first phase matches plain zipf, the
    next phase's keys are shifted by one position."""
    plain = kv_workload(2, 8, 32, write_ratio=0.1, distribution="zipf",
                        seed=9)
    shifted = kv_workload(2, 8, 32, write_ratio=0.1,
                          distribution="zipf-shift", seed=9,
                          shift_every=16)
    keys = [f"k{i:03d}" for i in range(8)]
    assert [op.key for op in plain[:16]] == [op.key for op in shifted[:16]]
    for before, after in zip(plain[16:], shifted[16:]):
        index = keys.index(before.key)
        assert after.key == keys[(index + 1) % len(keys)]


def test_zipf_shift_validates_shift_every():
    with pytest.raises(ConfigurationError):
        kv_workload(2, 8, 16, distribution="zipf-shift", shift_every=0)


def test_read_mostly_mix_is_read_mostly_and_deterministic():
    first = kv_workload(4, 32, 200, write_ratio=0.1,
                        distribution="zipf-shift", seed=0)
    second = kv_workload(4, 32, 200, write_ratio=0.1,
                         distribution="zipf-shift", seed=0)
    assert first == second
    writes = sum(1 for op in first if op.kind == "write")
    assert 0.02 <= writes / len(first) <= 0.25


# -- lint coverage ------------------------------------------------------------

def test_atomic_md_is_inside_every_protocol_lint_scope():
    """The new protocol module must be covered by the determinism,
    quorum, handler, and taint-flow packs (``repro.core`` scope)."""
    config = LintConfig()
    for pack in ("determinism", "quorum", "handlers", "taint"):
        assert config.in_scope(pack, "repro.core.atomic_md"), pack
