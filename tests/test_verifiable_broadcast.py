"""AVID-RBC verifiable broadcast of large values."""

import pytest

from repro.broadcast.verifiable import (
    MSG_BLOCK,
    VerifiableBroadcastServer,
    v_broadcast,
)
from repro.common.ids import client_id, server_id
from repro.config import SystemConfig
from repro.faults.byzantine_servers import CrashServer
from repro.net.process import Process
from repro.net.schedulers import RandomScheduler
from repro.net.simulator import Simulator


class VrbcHost(Process):
    def __init__(self, pid, config):
        super().__init__(pid)
        self.delivered = {}
        self.deliveries = 0
        self.vrbc = VerifiableBroadcastServer(self, config, self._deliver)

    def _deliver(self, tag, client, value):
        self.delivered[tag] = (client, value)
        self.deliveries += 1


def _network(n=4, t=1, seed=0, crashed=0, commitment="vector"):
    config = SystemConfig(n=n, t=t, commitment=commitment)
    simulator = Simulator(scheduler=RandomScheduler(seed))
    hosts = []
    for j in range(1, n + 1):
        if j <= crashed:
            hosts.append(simulator.add_process(
                CrashServer(server_id(j), config)))
        else:
            hosts.append(simulator.add_process(
                VrbcHost(server_id(j), config)))
    sender = simulator.add_process(Process(client_id(1)))
    return simulator, hosts, sender, config


def _honest(hosts):
    return [host for host in hosts if isinstance(host, VrbcHost)]


def test_all_honest_deliver_full_value():
    simulator, hosts, sender, config = _network()
    value = b"payload " * 1000
    v_broadcast(sender, "vb", value, config)
    simulator.run()
    for host in _honest(hosts):
        assert host.delivered["vb"] == (sender.pid, value)


@pytest.mark.parametrize("commitment", ["vector", "merkle"])
def test_both_commitments(commitment):
    simulator, hosts, sender, config = _network(commitment=commitment)
    v_broadcast(sender, "vb", b"x" * 500, config)
    simulator.run()
    assert all(h.delivered["vb"][1] == b"x" * 500 for h in _honest(hosts))


def test_delivery_with_t_crashed():
    simulator, hosts, sender, config = _network(crashed=1, seed=3)
    v_broadcast(sender, "vb", b"resilient", config)
    simulator.run()
    assert all(h.delivered["vb"][1] == b"resilient"
               for h in _honest(hosts))


def test_single_delivery_per_instance():
    simulator, hosts, sender, config = _network()
    v_broadcast(sender, "vb", b"once", config)
    v_broadcast(sender, "vb", b"twice", config)  # same tag: echo-bound
    simulator.run()
    for host in _honest(hosts):
        assert host.deliveries == 1


def test_inconsistent_sender_delivers_nowhere():
    simulator, hosts, sender, config = _network(seed=4)
    blocks_a = config.coder.encode(b"A" * 64)
    blocks_b = config.coder.encode(b"B" * 64)
    mixed = [blocks_a[0], blocks_b[1], blocks_a[2], blocks_b[3]]
    commitment, witnesses = config.commitment_scheme.commit(mixed)
    for index, server in enumerate(simulator.server_pids, start=1):
        sender.send(server, "vb", "avid-send", commitment,
                    mixed[index - 1], witnesses[index - 1])
    simulator.run()
    assert all("vb" not in host.delivered for host in _honest(hosts))


def test_forged_blocks_ignored():
    simulator, hosts, sender, config = _network(crashed=1, seed=5)
    byzantine = hosts[0]
    value = b"true value " * 50
    v_broadcast(sender, "vb", value, config)
    fake_blocks = config.coder.encode(b"fake " * 50)
    fake_commitment, fake_witnesses = \
        config.commitment_scheme.commit(fake_blocks)
    byzantine.send_to_servers("vb", MSG_BLOCK, fake_commitment,
                              fake_blocks[0], fake_witnesses[0])
    simulator.run()
    assert all(h.delivered["vb"][1] == value for h in _honest(hosts))


def test_buffers_released_after_delivery():
    simulator, hosts, sender, config = _network()
    v_broadcast(sender, "vb", b"z" * 2000, config)
    simulator.run()
    for host in _honest(hosts):
        assert host.vrbc.storage_bytes() == 0


def test_many_schedules():
    for seed in range(6):
        simulator, hosts, sender, config = _network(seed=seed)
        v_broadcast(sender, "vb", b"seed-%d" % seed, config)
        simulator.run()
        assert all(h.delivered["vb"][1] == b"seed-%d" % seed
                   for h in _honest(hosts))
