"""Trace exporters and the ``repro trace`` / ``repro simulate``
observability surface."""

import io
import json

import pytest

from repro.cli import build_parser, main
from repro.cluster import build_cluster
from repro.config import SystemConfig
from repro.net.schedulers import RandomScheduler
from repro.obs import (
    TraceRecorder,
    export_perfetto,
    export_trace_jsonl,
    operation_breakdown_lines,
    text_report,
)


@pytest.fixture
def traced_run():
    cluster = build_cluster(SystemConfig(n=4, t=1), protocol="atomic",
                            num_clients=2,
                            scheduler=RandomScheduler(0))
    recorder = TraceRecorder().attach(cluster.simulator)
    cluster.write(1, "reg", "w1", b"exported value")
    cluster.run()
    cluster.read(2, "reg", "r1")
    cluster.run()
    return recorder


# -- perfetto ------------------------------------------------------------------

def test_perfetto_is_valid_chrome_trace(traced_run):
    stream = io.StringIO()
    count = export_perfetto(traced_run, stream)
    document = json.loads(stream.getvalue())
    events = document["traceEvents"]
    assert count == len(events) > 0
    assert {event["ph"] for event in events} <= {"X", "i", "M"}
    for event in events:
        assert isinstance(event["pid"], int)
        if event["ph"] == "X":
            assert event["dur"] >= 0


def test_perfetto_critical_path_sums_to_duration(traced_run):
    stream = io.StringIO()
    export_perfetto(traced_run, stream)
    events = json.loads(stream.getvalue())["traceEvents"]
    operations = [event for event in events
                  if event.get("cat") == "operation"]
    assert len(operations) == 2
    for event in operations:
        attribution = event["args"]["critical_path"]
        assert sum(attribution.values()) == event["dur"]
        assert event["args"]["critical_path_rounds"] >= 2


def test_perfetto_phases_clamped_inside_operations(traced_run):
    stream = io.StringIO()
    export_perfetto(traced_run, stream)
    events = json.loads(stream.getvalue())["traceEvents"]
    operations = {event["tid"]: event for event in events
                  if event.get("cat") == "operation"}
    phases = [event for event in events if event.get("cat") == "phase"]
    assert phases
    for phase in phases:
        parent = operations[phase["tid"]]
        assert phase["ts"] >= parent["ts"]
        assert phase["ts"] + phase["dur"] <= parent["ts"] + parent["dur"]
        assert phase["args"]["full_extent"][1] >= phase["ts"] + \
            phase["dur"]


def test_perfetto_quorum_instants_and_metadata(traced_run):
    stream = io.StringIO()
    export_perfetto(traced_run, stream)
    events = json.loads(stream.getvalue())["traceEvents"]
    instants = [event for event in events if event["ph"] == "i"]
    assert any(event["name"].startswith("quorum ack>=")
               for event in instants)
    names = {event["args"]["name"] for event in events
             if event["ph"] == "M"}
    assert "C1" in names


def test_perfetto_empty_run():
    stream = io.StringIO()
    count = export_perfetto(TraceRecorder(), stream)
    assert count == 0
    assert json.loads(stream.getvalue())["traceEvents"] == []


# -- jsonl ---------------------------------------------------------------------

def test_trace_jsonl_record_types(traced_run):
    stream = io.StringIO()
    count = export_trace_jsonl(traced_run, stream)
    lines = [json.loads(line)
             for line in stream.getvalue().strip().splitlines()]
    assert count == len(lines)
    types = {line["type"] for line in lines}
    assert types == {"message", "event", "quorum", "instrument"}
    message = next(line for line in lines if line["type"] == "message")
    assert {"msg_id", "tag", "mtype", "send_time", "deliver_time",
            "depth", "cause_id", "wire_bytes"} <= set(message)
    # byte payloads are summarized, never embedded raw: the read's
    # completing output carries the 14-byte value as a placeholder
    read_events = [line for line in lines if line["type"] == "event"
                   and line["kind"] == "out"
                   and line["action"] == "read"]
    assert any({"bytes": 14} in event["payload"]
               for event in read_events)


def test_breakdown_lines_cover_all_operations(traced_run):
    lines = operation_breakdown_lines(traced_run)
    assert len(lines) == 2
    assert any(line.startswith("write w1") for line in lines)
    assert any(line.startswith("read  r1") for line in lines)
    assert operation_breakdown_lines(TraceRecorder()) == []


def test_text_report_sections(traced_run):
    report = text_report(traced_run)
    assert "operations:" in report and "instruments:" in report
    assert "critical path" in report
    assert "quorum ack>=3" in report
    empty = text_report(TraceRecorder())
    assert "(none completed)" in empty and "(none)" in empty


# -- CLI -----------------------------------------------------------------------

def test_cli_trace_parser_defaults():
    parser = build_parser()
    args = parser.parse_args(["trace"])
    assert args.protocol == "atomic" and args.format == "perfetto"
    args = parser.parse_args(["experiments", "--bench-dir", "out"])
    assert args.bench_dir == "out"


def test_cli_trace_perfetto_file(tmp_path):
    out = tmp_path / "trace.json"
    assert main(["trace", "--writes", "1", "--reads", "1",
                 "--out", str(out)]) == 0
    document = json.loads(out.read_text())
    operations = [event for event in document["traceEvents"]
                  if event.get("cat") == "operation"]
    assert operations
    for event in operations:
        assert sum(event["args"]["critical_path"].values()) \
            == event["dur"]


def test_cli_trace_text_stdout(capsys):
    assert main(["trace", "--format", "text", "--writes", "1",
                 "--reads", "1"]) == 0
    out = capsys.readouterr().out
    assert "critical path" in out and "instruments:" in out


def test_cli_trace_jsonl(tmp_path):
    out = tmp_path / "trace.jsonl"
    assert main(["trace", "--format", "jsonl", "--writes", "1",
                 "--reads", "1", "--out", str(out)]) == 0
    lines = out.read_text().strip().splitlines()
    assert all(json.loads(line)["type"] for line in lines)


def test_cli_simulate_prints_attribution(capsys):
    assert main(["simulate", "--protocol", "atomic", "--n", "4",
                 "--t", "1", "--writes", "2", "--reads", "1"]) == 0
    out = capsys.readouterr().out
    assert "latency attribution" in out
    # every operation gets a per-phase breakdown line
    assert out.count("rounds):") == 3
    assert "disperse" in out or "rbc" in out
    assert "quorum-wait" in out


def test_cli_simulate_trace_out(tmp_path, capsys):
    out = tmp_path / "events.jsonl"
    assert main(["simulate", "--writes", "1", "--reads", "1",
                 "--trace-out", str(out)]) == 0
    assert "wrote" in capsys.readouterr().out
    lines = out.read_text().strip().splitlines()
    assert lines
    record = json.loads(lines[0])
    assert {"time", "party", "kind", "tag", "action"} <= set(record)


def test_cli_trace_baseline_protocol(capsys):
    # unknown message types fall back to their own names as phases
    assert main(["trace", "--format", "text", "--protocol", "martin",
                 "--writes", "1", "--reads", "1"]) == 0
    assert "store" in capsys.readouterr().out
