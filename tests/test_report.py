"""The markdown report generator."""

import dataclasses

from repro.experiments import report


@dataclasses.dataclass
class Inner:
    count: int
    share: float


@dataclasses.dataclass
class Row:
    name: str
    ok: bool
    inner: Inner


def test_rows_to_markdown_flattens_nested_dataclasses():
    rows = [Row(name="a", ok=True, inner=Inner(count=3, share=0.5)),
            Row(name="b", ok=False, inner=Inner(count=7, share=1.25))]
    table = report.rows_to_markdown(rows)
    lines = table.splitlines()
    assert lines[0] == "| name | ok | inner.count | inner.share |"
    assert "| a | yes | 3 | 0.50 |" in lines
    assert "| b | no | 7 | 1.25 |" in lines


def test_rows_to_markdown_empty():
    assert report.rows_to_markdown([]) == "*(no rows)*"


def test_sections_cover_all_experiments():
    ids = [exp_id for exp_id, _, _ in report.sections()]
    assert ids == ["T1", "T2", "F1", "F2", "F3", "F4", "F5", "F6", "F7",
                   "F8", "F9", "F10", "F11", "F12", "F13"]


def test_single_section_generates(tmp_path):
    exp_id, heading, thunk = report.sections(fast=True)[5]  # F4
    table = report.rows_to_markdown(thunk())
    assert "non_skipping" in table


def test_main_writes_file(tmp_path, capsys):
    # Patch sections to one tiny experiment to keep the test fast.
    original = report.sections
    try:
        report.sections = lambda fast=False: [original(True)[5]]
        output = tmp_path / "results.md"
        report.main(["-o", str(output)])
        content = output.read_text()
        assert content.startswith("# Measured results")
        assert "## F4" in content
    finally:
        report.sections = original
