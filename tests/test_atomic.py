"""Protocol Atomic end-to-end: liveness, atomicity, register semantics."""

import pytest

from repro.analysis.history import HistoryRecorder
from repro.cluster import build_cluster
from repro.common.errors import ProtocolError
from repro.config import SystemConfig
from repro.core.timestamps import Timestamp
from repro.net.schedulers import (
    FifoScheduler,
    RandomScheduler,
    SlowPartiesScheduler,
)
from repro.workloads.generator import (
    make_values,
    random_workload,
    run_workload,
)
from repro.common.ids import server_id


def _cluster(n=4, t=1, seed=0, protocol="atomic", clients=2, k=None,
             commitment="vector", scheduler=None, initial=b""):
    config = SystemConfig(n=n, t=t, k=k, commitment=commitment, seed=seed)
    return build_cluster(config, protocol=protocol, num_clients=clients,
                         scheduler=scheduler or RandomScheduler(seed),
                         initial_value=initial)


def test_write_then_read():
    cluster = _cluster()
    cluster.write(1, "reg", "w1", b"first value")
    read = cluster.read(2, "reg", "r1")
    assert read.result == b"first value"
    assert read.timestamp == Timestamp(1, "w1")


def test_read_initial_value():
    cluster = _cluster(initial=b"genesis")
    read = cluster.read(1, "reg", "r1")
    assert read.result == b"genesis"
    assert read.timestamp == Timestamp(0, "")


def test_overwrite_and_read_latest():
    cluster = _cluster()
    cluster.write(1, "reg", "w1", b"old")
    cluster.write(1, "reg", "w2", b"new")
    assert cluster.read(2, "reg", "r1").result == b"new"


def test_read_your_own_write():
    cluster = _cluster()
    cluster.write(1, "reg", "w1", b"mine")
    assert cluster.read(1, "reg", "r1").result == b"mine"


def test_timestamps_increase_monotonically():
    cluster = _cluster()
    for index in range(4):
        cluster.write(1, "reg", f"w{index}", b"v%d" % index)
    read = cluster.read(2, "reg", "r")
    assert read.timestamp.ts == 4


def test_multiple_registers_independent():
    cluster = _cluster()
    cluster.write(1, "alpha", "w1", b"in alpha")
    cluster.write(1, "beta", "w2", b"in beta")
    assert cluster.read(2, "alpha", "ra").result == b"in alpha"
    assert cluster.read(2, "beta", "rb").result == b"in beta"


def test_large_value():
    cluster = _cluster()
    value = bytes(i % 251 for i in range(100_000))
    cluster.write(1, "reg", "w1", value)
    assert cluster.read(2, "reg", "r1").result == value


def test_empty_value():
    cluster = _cluster()
    cluster.write(1, "reg", "w1", b"")
    assert cluster.read(2, "reg", "r1").result == b""


@pytest.mark.parametrize("commitment", ["vector", "merkle"])
def test_both_commitment_schemes(commitment):
    cluster = _cluster(commitment=commitment)
    cluster.write(1, "reg", "w1", b"payload")
    assert cluster.read(2, "reg", "r1").result == b"payload"


@pytest.mark.parametrize("k", [1, 2, 3])
def test_all_erasure_thresholds(k):
    cluster = _cluster(k=k)
    cluster.write(1, "reg", "w1", b"value under k=%d" % k)
    assert cluster.read(2, "reg", "r1").result == b"value under k=%d" % k


def test_larger_deployment():
    cluster = _cluster(n=10, t=3)
    cluster.write(1, "reg", "w1", b"ten servers")
    assert cluster.read(2, "reg", "r1").result == b"ten servers"


def test_fifo_scheduler_works_too():
    cluster = _cluster(scheduler=FifoScheduler())
    cluster.write(1, "reg", "w1", b"fifo")
    assert cluster.read(2, "reg", "r1").result == b"fifo"


def test_liveness_with_starved_server():
    scheduler = SlowPartiesScheduler({server_id(4)}, seed=3)
    cluster = _cluster(scheduler=scheduler)
    cluster.write(1, "reg", "w1", b"starved schedule")
    assert cluster.read(2, "reg", "r1").result == b"starved schedule"


def test_duplicate_oid_rejected_locally():
    cluster = _cluster()
    cluster.write(1, "reg", "w1", b"x")
    with pytest.raises(ProtocolError):
        cluster.client(1).invoke_write("reg", "w1", b"y")


def test_write_accepted_signals():
    cluster = _cluster()
    cluster.write(1, "reg", "w1", b"x")
    accepted = [event for event in cluster.simulator.event_log
                if event.kind == "out"
                and event.action == "write-accepted"]
    assert len(accepted) == 4  # every honest server signals exactly once
    assert {event.payload[0] for event in accepted} == {"w1"}


def test_ack_output_action():
    cluster = _cluster()
    handle = cluster.write(1, "reg", "w1", b"x")
    assert handle.done
    acks = [event for event in cluster.simulator.event_log
            if event.kind == "out" and event.action == "ack"]
    assert len(acks) == 1


def test_concurrent_workload_atomic():
    for seed in range(6):
        cluster = _cluster(seed=seed, clients=3)
        operations = random_workload(3, writes=5, reads=5, seed=seed)
        run_workload(cluster, "reg", operations, seed=seed)
        HistoryRecorder(cluster, "reg").check()


def test_concurrent_two_registers():
    cluster = _cluster(clients=3, seed=9)
    for tag in ("a", "b"):
        operations = random_workload(3, writes=3, reads=3, seed=7)
        run_workload(cluster, tag, operations, seed=7)
        HistoryRecorder(cluster, tag).check()


def test_storage_is_block_sized():
    cluster = _cluster()
    value = b"v" * 9000
    cluster.write(1, "reg", "w1", value)
    cluster.run()
    for server in cluster.servers:
        storage = server.register_storage_bytes("reg")
        # Each server stores ~ |F|/k plus commitment overhead, not |F|.
        assert storage < len(value) / 2


def test_reader_gets_value_messages_from_concurrent_write():
    """The listener path: a write completing during a read pushes value
    messages to the reader."""
    cluster = _cluster(seed=11)
    cluster.write(1, "reg", "w0", b"base")
    read_handle = cluster.client(2).invoke_read("reg", "r1")
    write_handle = cluster.client(1).invoke_write("reg", "w1", b"fresh")
    cluster.run()
    assert read_handle.done and write_handle.done
    assert read_handle.result in (b"base", b"fresh")
