"""Analytic complexity model: shapes and internal consistency."""

import pytest

from repro.analysis.complexity import ComplexityModel
from repro.common.errors import ConfigurationError


def test_defaults():
    model = ComplexityModel(n=4, t=1)
    assert model.k == 3
    assert model.block_size == (1024 + 8 + 2) // 3


def test_invalid_k():
    with pytest.raises(ConfigurationError):
        ComplexityModel(n=4, t=1, k=5)


def test_commitment_sizes():
    vector = ComplexityModel(n=8, t=2, commitment="vector")
    merkle = ComplexityModel(n=8, t=2, commitment="merkle")
    assert vector.commitment_size == 8 * 32
    assert merkle.commitment_size == 32
    assert vector.witness_size == 0
    assert merkle.witness_size == 32 * 3  # log2(8) levels


def test_all_protocols_present():
    predictions = ComplexityModel(n=4, t=1).all_protocols()
    assert set(predictions) == {"phalanx", "martin", "goodson",
                                "bazzi_ding", "atomic", "atomic_ns"}


def test_resilience_labels():
    predictions = ComplexityModel(n=5, t=1).all_protocols()
    assert predictions["atomic"].resilience == "n > 3t"
    assert predictions["atomic_ns"].resilience == "n > 3t"
    assert predictions["martin"].resilience == "n > 3t"
    assert predictions["goodson"].resilience == "n > 4t"
    assert predictions["bazzi_ding"].resilience == "n > 4t"


def test_claim_flags():
    predictions = ComplexityModel(n=4, t=1).all_protocols()
    assert predictions["atomic_ns"].non_skipping
    assert predictions["bazzi_ding"].non_skipping
    assert not predictions["atomic"].non_skipping
    assert not predictions["martin"].non_skipping
    assert predictions["atomic"].byzantine_clients
    assert predictions["atomic_ns"].byzantine_clients
    assert not predictions["martin"].byzantine_clients


def test_storage_blowup_shapes():
    model = ComplexityModel(n=7, t=2, value_size=10_000)
    assert model.martin().storage_blowup == 7.0
    assert 1.3 < model.atomic().storage_blowup < 1.5  # ~ n/(n-t)


def test_write_messages_growth():
    small = ComplexityModel(n=4, t=1)
    large = ComplexityModel(n=13, t=4)
    ratio = large.atomic_ns().write_messages / \
        small.atomic_ns().write_messages
    n_squared_ratio = (13 / 4) ** 2
    assert 0.7 * n_squared_ratio < ratio < 1.3 * n_squared_ratio
    martin_ratio = large.martin().write_messages / \
        small.martin().write_messages
    assert martin_ratio == pytest.approx(13 / 4)


def test_atomic_ns_more_expensive_than_atomic():
    model = ComplexityModel(n=7, t=2)
    assert model.atomic_ns().write_messages > model.atomic().write_messages
    assert model.atomic_ns().write_bytes > model.atomic().write_bytes
    assert model.atomic_ns().storage_per_server > \
        model.atomic().storage_per_server


def test_read_bytes_erasure_beats_replication_for_large_values():
    model = ComplexityModel(n=7, t=2, value_size=262_144)
    assert model.atomic_ns().read_bytes < model.martin().read_bytes


def test_replication_beats_erasure_for_tiny_values():
    model = ComplexityModel(n=7, t=2, value_size=16)
    assert model.martin().read_bytes < model.atomic_ns().read_bytes


def test_goodson_rollback_cost_linear():
    model = ComplexityModel(n=9, t=2)
    base = model.goodson(rollback_rounds=0).read_messages
    rolled = model.goodson(rollback_rounds=3).read_messages
    assert rolled == base + 3 * 2 * 9


def test_goodson_version_storage_linear():
    model = ComplexityModel(n=9, t=2)
    assert model.goodson(versions=5).storage_per_server == \
        5 * model.goodson(versions=1).storage_per_server
