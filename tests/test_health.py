"""The health plane: suspicion scoring, SLO burn alerting, and the
deterministic dashboard renders built on top of them."""

import io

import pytest

from repro.chaos.campaign import RunSpec, execute_run
from repro.chaos.library import builtin_plan
from repro.common.errors import SimulationError
from repro.obs import (
    DEFAULT_WEIGHTS,
    HealthMonitor,
    SloSpec,
    SloTracker,
    default_slos,
    export_health_html,
    export_prometheus,
    health_dashboard,
    shard_of_tag,
)
from repro.obs.slo import KIND_AVAILABILITY, KIND_REPLICATION


def run_with_monitor(plan_name, seed=0, protocol="atomic_ns",
                     writes=6, reads=6):
    """Execute one monitored chaos run at the ``repro monitor``
    workload size (enough ops that sustained skew outruns the burn
    windows)."""
    plan = builtin_plan(plan_name, 4, 1, seed=seed)
    spec = RunSpec(protocol=protocol, plan=plan, n=4, t=1, seed=seed,
                   writes=writes, reads=reads)
    monitor = HealthMonitor()
    result = execute_run(spec, monitor=monitor)
    return monitor, result, spec


# -- spec / tracker units ------------------------------------------------------

def test_slo_spec_validation():
    with pytest.raises(SimulationError):
        SloSpec(name="bad", kind="throughput")
    with pytest.raises(SimulationError):
        SloSpec(name="bad", objective=1.0)
    with pytest.raises(SimulationError):
        SloSpec(name="bad", fast_window=8, slow_window=4)


def test_slo_matching_by_op_and_shard():
    spec = SloSpec(name="s1-reads", op="read", shard=1)
    assert spec.matches("read", 1)
    assert not spec.matches("write", 1)
    assert not spec.matches("read", 2)
    assert SloSpec(name="all").matches("read", None)


def test_latency_classification():
    spec = SloSpec(name="lat", threshold_ticks=40)
    assert spec.is_good(True, 40)
    assert not spec.is_good(True, 41)
    assert not spec.is_good(False, None)


def test_availability_ignores_latency():
    spec = SloSpec(name="avail", kind=KIND_AVAILABILITY)
    assert spec.is_good(True, 10 ** 6)
    assert not spec.is_good(False, None)


def test_replication_judges_skew_even_for_abandoned_ops():
    spec = SloSpec(name="skew", kind=KIND_REPLICATION,
                   threshold_ticks=250)
    assert spec.is_good(False, 200)  # completion is irrelevant
    assert not spec.is_good(True, 251)


def test_burn_rate_is_bad_fraction_over_budget():
    tracker = SloTracker(SloSpec(name="lat", objective=0.9))
    for bucket, good in ((1, True), (1, True), (2, False), (2, False)):
        tracker.observe(bucket, good)
    # window (0, 2]: 2 good, 2 bad -> bad fraction 0.5, budget 0.1
    assert tracker.burn_rate(2, 2) == pytest.approx(5.0)
    assert tracker.burn_rate(10, 2) == 0.0  # empty window


def test_multi_window_alert_needs_both_windows_burning():
    spec = SloSpec(name="lat", objective=0.9, fast_window=2,
                   slow_window=4, burn_threshold=2.0)
    tracker = SloTracker(spec)
    # sustained badness: both windows burn at 10x
    for bucket in range(1, 5):
        tracker.observe(bucket, False)
    assert tracker.alert_at(4)
    # an old blip outside the fast window must not page
    blip = SloTracker(spec)
    blip.observe(1, False)
    for bucket in range(3, 6):
        blip.observe(bucket, True)
    assert not blip.alert_at(5)


def test_evaluate_keeps_mid_run_pages():
    """A post-hoc report must not lose a page a live evaluator would
    have raised: alert is true if the condition held at *any* bucket,
    even when traffic settled long before the end bucket."""
    spec = SloSpec(name="lat", objective=0.9, fast_window=2,
                   slow_window=4, burn_threshold=2.0)
    tracker = SloTracker(spec)
    for bucket in range(1, 5):
        tracker.observe(bucket, False)
    report = tracker.evaluate(end_bucket=50)  # long quiesce tail
    assert report["alert"]
    assert report["fired_buckets"]
    assert report["fast_burn"] == 0.0  # the end-anchored window is empty


# -- shard parsing -------------------------------------------------------------

def test_shard_of_tag():
    assert shard_of_tag("kv.s3.user:42") == 3
    assert shard_of_tag("reg") is None
    assert shard_of_tag("kv.sbad.x") is None


# -- scoring under real runs ---------------------------------------------------

def test_fault_free_run_is_calm():
    monitor, result, _ = run_with_monitor("none")
    assert result.status == "ok"
    assert monitor.alerts() == []
    assert monitor.ops_abandoned == 0
    for score in monitor.suspicion_scores().values():
        assert score < 0.15


def test_boundary_plan_separates_faulty_from_honest():
    """Crashing t+1 servers stalls the run — and every crashed server
    must score strictly above every honest one."""
    monitor, result, spec = run_with_monitor("boundary")
    assert result.status != "ok"
    scores = monitor.suspicion_scores()
    faulty = {f"P{index}" for index in spec.plan.faulty}
    assert faulty
    worst_honest = max(score for name, score in scores.items()
                       if name not in faulty)
    best_faulty = min(score for name, score in scores.items()
                      if name in faulty)
    assert best_faulty > worst_honest


def test_slow_server_fires_replication_skew_alert():
    """The starved server breaches the replication-skew objective while
    completion latencies still look healthy — the signal that pages."""
    monitor, result, _ = run_with_monitor("slow-server")
    assert result.status == "ok"
    fired = [entry["name"] for entry in monitor.alerts()]
    assert "replication-skew" in fired
    assert monitor.suspicion_scores()["P4"] > 0.2


def test_weights_blend_and_override():
    monitor = HealthMonitor(weights={"verify": 0.9})
    assert monitor.weights["verify"] == 0.9
    assert monitor.weights["quorum"] == DEFAULT_WEIGHTS["quorum"]
    assert sum(DEFAULT_WEIGHTS.values()) == pytest.approx(1.0)


def test_health_rows_carry_components_and_signals():
    monitor, _, _ = run_with_monitor("none")
    rows = monitor.server_health()
    assert [row["server"] for row in rows] == ["P1", "P2", "P3", "P4"]
    for row in rows:
        assert set(row["components"]) == set(DEFAULT_WEIGHTS)
        blended = sum(monitor.weights[name] * value
                      for name, value in row["components"].items())
        assert row["score"] == pytest.approx(blended, abs=1e-6)
        assert row["signals"]["sends"] > 0


def test_snapshot_is_json_plain_and_finalizes():
    import json
    monitor, _, _ = run_with_monitor("none")
    snapshot = monitor.snapshot()
    json.dumps(snapshot)
    assert snapshot["ops"]["completed"] == monitor.ops_completed
    assert {entry["name"] for entry in snapshot["slos"]} \
        == {spec.name for spec in default_slos()}
    assert snapshot["series"]


# -- determinism of the rendered artifacts -------------------------------------

def test_dashboard_and_exports_byte_identical_across_runs():
    renders = []
    for _ in range(2):
        monitor, _, _ = run_with_monitor("slow-server")
        monitor.finalize()
        prom = io.StringIO()
        export_prometheus(monitor, prom)
        html = io.StringIO()
        export_health_html(monitor, html)
        renders.append((health_dashboard(monitor), prom.getvalue(),
                        html.getvalue()))
    assert renders[0] == renders[1]


def test_dashboard_sections_present():
    monitor, _, _ = run_with_monitor("none")
    monitor.finalize()
    text = health_dashboard(monitor)
    for heading in ("== fleet health ==", "== slos ==",
                    "== operations ==", "== series =="):
        assert heading in text


def test_prometheus_export_shape():
    monitor, _, _ = run_with_monitor("none")
    monitor.finalize()
    stream = io.StringIO()
    export_prometheus(monitor, stream)
    text = stream.getvalue()
    assert '# TYPE repro_health_suspicion gauge' in text
    assert 'repro_health_suspicion{server="P1"}' in text
    assert 'repro_slo_alert{slo="availability"} 0' in text
