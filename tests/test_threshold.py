"""Threshold signatures: both backends against the paper's API contract."""

import random

import pytest

from repro.common.errors import (
    ConfigurationError,
    DealingError,
    InvalidShare,
)
from repro.common.serialization import decode, encode
from repro.crypto.rsa import generate_modulus, precomputed_modulus
from repro.crypto.threshold import (
    IdealThresholdScheme,
    ShoupThresholdScheme,
    SignatureShare,
    ThresholdSignature,
    make_scheme,
)

BACKENDS = [
    lambda n, t: IdealThresholdScheme(n, t, seed=7),
    lambda n, t: ShoupThresholdScheme(
        n, t, modulus=precomputed_modulus(128), rng=random.Random(7)),
]
BACKEND_IDS = ["ideal", "shoup"]


@pytest.fixture(params=BACKENDS, ids=BACKEND_IDS)
def scheme(request):
    return request.param(4, 1)


def test_all_shares_valid(scheme):
    message = ("reg", 3)
    for j in range(1, 5):
        share = scheme.sign(message, j)
        assert share.signer == j
        assert scheme.verify_share(message, share)


def test_combine_and_verify(scheme):
    message = ("reg", 3)
    shares = [scheme.sign(message, j) for j in (2, 4)]
    signature = scheme.combine(message, shares)
    assert scheme.verify(message, signature)


def test_signature_bound_to_message(scheme):
    message = ("reg", 3)
    shares = [scheme.sign(message, j) for j in (1, 2)]
    signature = scheme.combine(message, shares)
    assert not scheme.verify(("reg", 4), signature)
    assert not scheme.verify(("other", 3), signature)


def test_share_bound_to_message(scheme):
    share = scheme.sign(("reg", 3), 1)
    assert not scheme.verify_share(("reg", 4), share)


def test_share_bound_to_signer(scheme):
    share = scheme.sign(("reg", 3), 1)
    stolen = SignatureShare(signer=2, value=share.value, proof=share.proof)
    assert not scheme.verify_share(("reg", 3), stolen)


def test_combine_needs_t_plus_one_distinct(scheme):
    message = ("reg", 3)
    share = scheme.sign(message, 1)
    with pytest.raises(InvalidShare):
        scheme.combine(message, [share, share])  # same signer twice


def test_combine_rejects_too_few(scheme):
    with pytest.raises(InvalidShare):
        scheme.combine(("reg", 3), [])


def test_combine_skips_invalid_shares_robustness(scheme):
    """Robustness: invalid shares never poison combination."""
    message = ("reg", 3)
    good = [scheme.sign(message, j) for j in (1, 3)]
    bad = SignatureShare(signer=2, value=b"\x00" * 8, proof=())
    signature = scheme.combine(message, [bad] + good)
    assert scheme.verify(message, signature)


def test_combine_with_extra_shares(scheme):
    message = ("reg", 9)
    shares = [scheme.sign(message, j) for j in (1, 2, 3, 4)]
    assert scheme.verify(message, scheme.combine(message, shares))


def test_garbage_signature_rejected(scheme):
    assert not scheme.verify(("reg", 3), ThresholdSignature(value=b"junk"))
    assert not scheme.verify(("reg", 3), "not-a-signature")


def test_out_of_range_signer_share_rejected(scheme):
    share = scheme.sign(("reg", 1), 1)
    bogus = SignatureShare(signer=99, value=share.value, proof=share.proof)
    assert not scheme.verify_share(("reg", 1), bogus)


def test_private_share_unknown_server(scheme):
    with pytest.raises(DealingError):
        scheme.private_share(11)


def test_shares_are_wire_serializable(scheme):
    share = scheme.sign(("reg", 5), 2)
    assert decode(encode(share)) == share
    signature = scheme.combine(
        ("reg", 5), [scheme.sign(("reg", 5), j) for j in (1, 2)])
    assert decode(encode(signature)) == signature


def test_messages_of_any_serializable_shape(scheme):
    message = {"tag": "reg", "ts": 12, "extra": [b"x", None]}
    shares = [scheme.sign(message, j) for j in (1, 4)]
    assert scheme.verify(message, scheme.combine(message, shares))


# -- parameter validation -----------------------------------------------------

def test_invalid_thresholds_rejected():
    with pytest.raises(ConfigurationError):
        IdealThresholdScheme(4, 4)
    with pytest.raises(ConfigurationError):
        IdealThresholdScheme(0, 0)
    with pytest.raises(ConfigurationError):
        IdealThresholdScheme(4, -1)


def test_make_scheme_factory():
    assert isinstance(make_scheme("ideal", 4, 1), IdealThresholdScheme)
    assert isinstance(make_scheme("shoup", 4, 1, prime_bits=128),
                      ShoupThresholdScheme)
    with pytest.raises(ConfigurationError):
        make_scheme("quantum", 4, 1)


# -- Shoup-specific behaviour ---------------------------------------------------

def test_shoup_larger_group():
    scheme = ShoupThresholdScheme(7, 2,
                                  modulus=precomputed_modulus(128),
                                  rng=random.Random(1))
    message = ("reg", 100)
    shares = [scheme.sign(message, j) for j in (7, 3, 5)]
    assert scheme.verify(message, scheme.combine(message, shares))


def test_shoup_different_subsets_same_validity():
    scheme = ShoupThresholdScheme(5, 1,
                                  modulus=precomputed_modulus(128),
                                  rng=random.Random(3))
    message = ("reg", 8)
    sig_a = scheme.combine(message,
                           [scheme.sign(message, j) for j in (1, 2)])
    sig_b = scheme.combine(message,
                           [scheme.sign(message, j) for j in (4, 5)])
    assert scheme.verify(message, sig_a)
    assert scheme.verify(message, sig_b)


def test_shoup_fresh_modulus():
    modulus = generate_modulus(64, random.Random(5))
    scheme = ShoupThresholdScheme(4, 1, modulus=modulus,
                                  rng=random.Random(5))
    message = ("reg", 1)
    shares = [scheme.sign(message, j) for j in (2, 3)]
    assert scheme.verify(message, scheme.combine(message, shares))


def test_shoup_tampered_proof_rejected():
    scheme = ShoupThresholdScheme(4, 1,
                                  modulus=precomputed_modulus(128),
                                  rng=random.Random(9))
    message = ("reg", 2)
    share = scheme.sign(message, 1)
    tampered = SignatureShare(signer=1, value=share.value,
                              proof=(share.proof[0], b"\x01" + share.proof[1]))
    assert not scheme.verify_share(message, tampered)


def test_shoup_tampered_value_rejected():
    scheme = ShoupThresholdScheme(4, 1,
                                  modulus=precomputed_modulus(128),
                                  rng=random.Random(9))
    message = ("reg", 2)
    share = scheme.sign(message, 1)
    tampered = SignatureShare(signer=1, value=b"\x01" + share.value,
                              proof=share.proof)
    assert not scheme.verify_share(message, tampered)


def test_shoup_group_size_limit():
    with pytest.raises(ConfigurationError):
        ShoupThresholdScheme(70000, 1)


# -- ideal-backend modeling --------------------------------------------------------

def test_ideal_different_seeds_independent():
    a = IdealThresholdScheme(4, 1, seed=1)
    b = IdealThresholdScheme(4, 1, seed=2)
    message = ("reg", 1)
    share = a.sign(message, 1)
    assert not b.verify_share(message, share)


def test_ideal_nonforgeability_without_quorum():
    """t corrupted servers (their shares) cannot yield a verifying value:
    the only way to a valid ThresholdSignature object is combine() with
    t+1 valid shares."""
    scheme = IdealThresholdScheme(4, 2, seed=3)
    message = ("reg", 77)
    corrupted = [scheme.sign(message, j) for j in (1, 2)]  # t = 2 shares
    with pytest.raises(InvalidShare):
        scheme.combine(message, corrupted)
    for share in corrupted:
        assert not scheme.verify(message,
                                 ThresholdSignature(value=share.value))
