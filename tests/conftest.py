"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import pytest

from repro.cluster import build_cluster
from repro.config import SystemConfig
from repro.net.schedulers import RandomScheduler


@pytest.fixture
def config41() -> SystemConfig:
    """Minimal optimal-resilience deployment: n=4, t=1."""
    return SystemConfig(n=4, t=1)


@pytest.fixture
def config72() -> SystemConfig:
    """n=7, t=2 deployment."""
    return SystemConfig(n=7, t=2)


@pytest.fixture
def atomic_cluster(config41):
    """A ready-to-use Protocol Atomic cluster with two clients."""
    return build_cluster(config41, protocol="atomic", num_clients=2,
                         scheduler=RandomScheduler(1))


@pytest.fixture
def atomic_ns_cluster(config41):
    """A ready-to-use Protocol AtomicNS cluster with two clients."""
    return build_cluster(config41, protocol="atomic_ns", num_clients=2,
                         scheduler=RandomScheduler(1))
