"""Repair plane and reconfiguration: re-dispersal, member swap, churn.

The load-bearing guarantees tested here:

* **Repair restores redundancy without minting time** — an amnesiac
  replacement ends up holding *its own* erasure block of the current
  version, at the version's original TIMESTAMP, byte-identical to what
  the crashed member held; repair rounds never enter operation
  histories.
* **Poisonous writes cannot be laundered** — when the quorum-agreed
  cross-checksum covers an inconsistent dispersal (Byzantine writer),
  the repair round detects that re-encoding the decoded value yields a
  different commitment and fails loudly instead of re-dispersing
  blocks the original commitment never vouched for.
* **Reconfiguration is a drained epoch bump** — sessions stop
  admitting the moment a new directory generation is announced, drain
  their in-flight operations under the old epoch, then swap: caches
  flush (``epoch_flushes``), queued reads lose their revalidation
  snapshots, and histories spanning the transition stay linearizable.
* **Session cache x churn** — leases and cached pairs anchored under
  the old generation are never served after the bump.
* **Schedule preservation** — the plane is strictly opt-in: with no
  coordinator attached the golden schedules stay byte-identical.
"""

import json
import sys
from pathlib import Path

import pytest

from repro.common.errors import ConfigurationError
from repro.common.serialization import encode
from repro.config import SystemConfig
from repro.core.timestamps import INITIAL_TIMESTAMP
from repro.kv import (
    KvDirectory,
    build_kv_cluster,
    check_kv_histories,
    drive,
)
from repro.lint import run_lint
from repro.lint.config import LintConfig
from repro.repair import (
    RepairCoordinator,
    attach_repair,
    next_generation,
    replace_member,
)
from repro.repair.bench import churn_storm_plan, run_kv_churn_case
from repro.workloads.kv import KvOp

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

FLEET = SystemConfig(n=4, t=1)


def _md_cluster(num_sessions=1, num_shards=1, cache_size=0,
                lease_ticks=0):
    directory = KvDirectory(FLEET, num_shards, shard_k=2)
    return build_kv_cluster(directory, protocol="atomic_md",
                            num_sessions=num_sessions,
                            cache_size=cache_size,
                            lease_ticks=lease_ticks)


def _drain(cluster):
    """Deliver every outstanding message (settle only waits for
    sessions; server-side propagation may lag behind)."""
    while cluster.simulator.undelivered_count:
        cluster.simulator.step()


# -- reconfiguration ----------------------------------------------------------

def test_next_generation_reproduces_shard_math_and_bumps_epoch():
    directory = KvDirectory(FLEET, 3, shard_k=2,
                            protocol_overrides={1: "atomic"})
    successor = next_generation(directory)
    assert successor.epoch == directory.epoch + 1
    assert successor.num_shards == directory.num_shards
    for before, after in zip(directory.shards, successor.shards):
        assert after.placement == before.placement
        assert after.protocol == before.protocol
        assert after.config.n == before.config.n
        assert after.config.k == before.config.k
    # Key routing is generation-invariant: same tag, same shard.
    for key in ("k001", "k002", "k003"):
        assert successor.register_tag(key) == directory.register_tag(key)


def test_replace_member_rejects_out_of_range_indices():
    cluster = _md_cluster()
    with pytest.raises(ConfigurationError):
        replace_member(cluster, 0)
    with pytest.raises(ConfigurationError):
        replace_member(cluster, FLEET.n + 1)


def test_replacement_keeps_identity_but_not_state():
    cluster = _md_cluster()
    session = cluster.session(1)
    session.put("k001", b"v1")
    cluster.settle()
    _drain(cluster)
    tag = cluster.directory.register_tag("k001")
    old, new = replace_member(cluster, 1)
    assert old is not new
    assert new.pid == old.pid  # identity survives
    assert cluster.servers[0] is new
    survivor_state = old.inner_server(0).register_state(tag)
    assert survivor_state.timestamp > INITIAL_TIMESTAMP
    # The newcomer is amnesiac in the strongest sense: no shard state
    # has even materialised until traffic (or repair) reaches it.
    assert new.active_shards == []


def test_sessions_drain_in_flight_ops_before_adopting_the_new_epoch():
    cluster = _md_cluster()
    session = cluster.session(1)
    first = session.put("k001", b"v1")
    session.pump()  # admit: the write is now in flight
    assert session.inflight == 1
    replace_member(cluster, 4)
    # Announcement received mid-flight: the swap must wait.
    assert session._pending_directory is not None
    assert session.epoch == 0
    second = session.put("k002", b"v2")
    session.pump()
    assert session.queued == 1  # reconfiguration drain: no admissions
    cluster.settle()
    assert first.done and second.done
    assert session.epoch == 1
    assert session._pending_directory is None
    check_kv_histories([session])


def test_new_epoch_reads_cannot_miss_old_epoch_writes():
    """Quorum-intersection across the transition: a write completed
    under the old generation is observed by every read admitted under
    the new one, even though the newcomer answers amnesiac."""
    cluster = _md_cluster(num_sessions=2)
    alice, bob = cluster.sessions
    alice.put("k001", b"old-epoch")
    cluster.settle()
    replace_member(cluster, 2)
    assert bob.epoch == 1
    read = bob.get("k001")
    cluster.settle()
    assert read.result == b"old-epoch"
    check_kv_histories(cluster.sessions)


# -- session cache x churn ----------------------------------------------------

def test_epoch_bump_flushes_leases_and_cached_pairs():
    cluster = _md_cluster(cache_size=8, lease_ticks=100_000)
    session = cluster.session(1)
    session.put("k001", b"v1")
    cluster.settle()
    assert session.get("k001").served == "lease"  # lease is live
    replace_member(cluster, 3)
    # The session was idle, so the swap commits synchronously.
    assert session.epoch == 1
    assert session.cache.stats["epoch_flushes"] == 1
    assert session.cache.lookup("k001") is None
    read = session.get("k001")
    assert not read.done  # no lease serve across the bump
    cluster.settle()
    assert read.result == b"v1"
    assert read.served is None  # full protocol read, not revalidation
    check_kv_histories([session])


def test_epoch_bump_drops_queued_reads_revalidation_snapshots():
    """A read queued (with a cached snapshot) behind an in-flight write
    when the generation changes must re-read in full: its snapshot was
    anchored under the old fleet."""
    cluster = _md_cluster(cache_size=8, lease_ticks=0)
    session = cluster.session(1)
    session.put("k001", b"v1")
    cluster.settle()  # seeds the cache for k001
    session.put("k002", b"v2")
    session.pump()  # k002 write in flight
    read = session.get("k001")  # queues with a revalidation snapshot
    assert not read.done
    replace_member(cluster, 1)
    cluster.settle()
    assert session.epoch == 1
    assert read.result == b"v1"
    assert read.served is None  # snapshot dropped at the swap
    assert session.cache.stats["revalidations"] == 0
    check_kv_histories([session])


# -- repair -------------------------------------------------------------------

def test_repair_restores_the_replacements_block_at_original_timestamp():
    cluster = _md_cluster()
    session = cluster.session(1)
    session.put("k001", b"payload")
    cluster.settle()
    _drain(cluster)
    tag = cluster.directory.register_tag("k001")
    old, new = replace_member(cluster, 1)
    coordinator = attach_repair(cluster)
    assert coordinator.request_repair(1) == 1
    cluster.settle()
    assert coordinator.stats.completed == 1
    assert coordinator.stats.failed == 0
    assert coordinator.lag == 0
    expected = old.inner_server(0).register_state(tag)
    repaired = new.inner_server(0).register_state(tag)
    # Same version, same TIMESTAMP, and the *target's own* block — the
    # round re-disperses, it does not mint logical time.
    assert repaired.timestamp == expected.timestamp
    assert encode(repaired.commitment) == encode(expected.commitment)
    assert repaired.block == expected.block
    # Repair never enters the operation history.
    assert all(handle.kind in ("read", "write")
               for handle in session.handles)
    check_kv_histories([session])


def test_repair_refuses_to_launder_a_poisonous_write():
    """An inconsistent dispersal under a consistent cross-checksum (the
    Byzantine-writer vector AtomicMd tolerates) must surface as
    ``repair-failed``, never as a re-dispersal of forged blocks."""
    cluster = _md_cluster()
    session = cluster.session(1)
    session.put("k001", b"honest")  # materialise the register everywhere
    cluster.settle()
    _drain(cluster)
    spec = cluster.directory.shards[0]
    config = spec.config
    tag = cluster.directory.register_tag("k001")
    good = config.coder.encode(b"poisoned")
    blocks = list(good)
    blocks[-1] = b"\xff" * len(good[-1])  # inconsistent completion
    commitment, witnesses = config.commitment_scheme.commit(blocks)
    timestamp = cluster.servers[0].inner_server(0) \
        .register_state(tag).timestamp.next("c9.forged")
    for host in cluster.servers:
        local = spec.local_server_index(host.pid.index)
        state = host.inner_server(0).register_state(tag)
        state.timestamp = timestamp
        state.commitment = commitment
        state.block = blocks[local - 1]
        state.witness = witnesses[local - 1]
        state.history[timestamp] = (commitment, blocks[local - 1],
                                    witnesses[local - 1])
    coordinator = attach_repair(cluster)
    assert coordinator.request_repair(1) == 1
    cluster.settle()
    assert coordinator.stats.failed == 1
    assert coordinator.stats.completed == 0


def test_coordinator_rejects_degenerate_budgets():
    cluster = _md_cluster()
    with pytest.raises(ConfigurationError):
        RepairCoordinator(cluster, batch_size=0)
    with pytest.raises(ConfigurationError):
        RepairCoordinator(cluster, max_attempts=0)
    coordinator = RepairCoordinator(cluster)
    with pytest.raises(ConfigurationError):
        coordinator.detect_degraded(0.5)  # no monitor attached


def test_admission_is_rate_limited_by_batch_size():
    cluster = _md_cluster(num_shards=2)
    session = cluster.session(1)
    for index in range(6):
        session.put(f"k{index:03d}", b"v")
    cluster.settle()
    _drain(cluster)
    coordinator = attach_repair(cluster, batch_size=2)
    queued = coordinator.request_repair(1)
    assert queued >= 2
    coordinator.pump()
    assert len(coordinator._inflight) == 2  # never above the budget
    assert coordinator.lag == queued
    cluster.settle()
    assert coordinator.stats.completed == queued
    assert coordinator.idle


# -- churn (end to end) -------------------------------------------------------

def test_churn_storm_plan_round_trips_and_declares_excess():
    plan = churn_storm_plan(7, 2, first_crash=10, stagger=50,
                            replace_after=20)
    assert plan.exceeds_t  # t + 1 crashes, deliberately over budget
    assert len(plan.crashes) == 3
    assert all(crash.replace_after == 20 for crash in plan.crashes)
    assert all(crash.trigger == "decisions" for crash in plan.crashes)
    from repro.chaos.plan import FaultPlan
    assert FaultPlan.from_json(plan.to_json()) == plan


def test_repaired_fleet_survives_a_storm_the_unrepaired_fleet_cannot():
    """The tentpole claim at smoke scale: under a ``t + 1``-crash storm
    with replacement, every operation completes and linearizes with
    repair lag driven back to zero, while the identical unrepaired run
    loses liveness (or ends below quorum)."""
    common = dict(num_shards=2, n=7, t=2, sessions=2, keys=4, ops=48,
                  write_ratio=0.5, seed=0, value_size=32)
    plan = churn_storm_plan(7, 2, first_crash=20, stagger=80,
                            replace_after=30)
    repaired = run_kv_churn_case(plan=plan, repair=True,
                                 case="churn+repair", **common)
    assert not repaired["liveness_violation"]
    assert repaired["completed"] == common["ops"]
    assert repaired["linearizable"]
    assert repaired["replacements"] == 3
    assert repaired["repair_lag_final"] == 0
    assert repaired["repairs_completed"] > 0
    assert repaired["alive_servers"] == 7  # made whole again
    assert repaired["session_epochs"] == [3]
    norepair = run_kv_churn_case(plan=plan, repair=False,
                                 case="churn-norepair", **common)
    assert (norepair["liveness_violation"]
            or norepair["alive_servers"] < norepair["quorum"])


# -- hygiene ------------------------------------------------------------------

def test_golden_schedules_byte_identical_without_repair_attached():
    """The plane is opt-in: driving a kv cluster with the repair
    package imported but no coordinator attached must not perturb the
    single-register golden schedules."""
    import gen_golden_schedules
    cluster = _md_cluster()
    assert cluster.repair is None
    drive(cluster, [KvOp(1, "write", "k001", b"x"),
                    KvOp(1, "read", "k001")])
    fixture = json.loads(
        (REPO_ROOT / "tests" / "fixtures" /
         "golden_schedules.json").read_text(encoding="utf-8"))
    case = fixture["cases"][0]
    fresh = gen_golden_schedules.run_case(dict(case["spec"]))
    assert fresh["sha256"] == case["sha256"]


def test_repair_package_is_lint_scoped_and_clean():
    """The plane schedules work on live clusters and consumes
    server-supplied blocks: the determinism, quorum, handler, and
    taint packs must cover it, and it must lint clean."""
    config = LintConfig()
    for dotted in ("repro.repair.protocol", "repro.repair.coordinator",
                   "repro.repair.reconfig", "repro.repair.bench"):
        for pack in ("determinism", "quorum", "handlers"):
            assert config.in_scope(pack, dotted), (pack, dotted)
        assert config.in_scope("taint", dotted), dotted
    report = run_lint([REPO_ROOT / "src" / "repro" / "repair"])
    rendered = "\n".join(f.render() for f in report.active)
    assert not report.active, rendered
