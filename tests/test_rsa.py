"""Safe-prime RSA moduli for the Shoup scheme."""

import random

import pytest

from repro.common.errors import ConfigurationError
from repro.crypto.numtheory import is_probable_prime
from repro.crypto.rsa import (
    PRECOMPUTED_SAFE_PRIMES,
    RsaModulus,
    generate_modulus,
    precomputed_modulus,
)


def test_precomputed_sizes_available():
    assert {128, 192, 256, 512} <= set(PRECOMPUTED_SAFE_PRIMES)


def test_precomputed_are_safe_primes():
    for bits, (p, q) in PRECOMPUTED_SAFE_PRIMES.items():
        for prime in (p, q):
            assert prime.bit_length() == bits
            assert is_probable_prime(prime)
            assert is_probable_prime((prime - 1) // 2)


def test_precomputed_modulus_m():
    modulus = precomputed_modulus(128)
    assert modulus.n == modulus.p * modulus.q
    assert modulus.m == modulus.p_prime * modulus.q_prime
    assert modulus.p_prime == (modulus.p - 1) // 2


def test_precomputed_unknown_size():
    with pytest.raises(ConfigurationError):
        precomputed_modulus(100)


def test_modulus_factor_check():
    with pytest.raises(ConfigurationError):
        RsaModulus(n=15, p=3, q=7)


def test_generate_modulus():
    modulus = generate_modulus(48, random.Random(0))
    assert modulus.n == modulus.p * modulus.q
    assert is_probable_prime(modulus.p)
    assert is_probable_prime(modulus.q)
    assert modulus.p != modulus.q


def test_bits_property():
    modulus = precomputed_modulus(128)
    assert 250 <= modulus.bits <= 256
