"""The no-listeners ablation variant: retrying reads."""

import pytest

from repro.analysis.history import HistoryRecorder
from repro.cluster import build_cluster
from repro.common.errors import LivenessError
from repro.config import SystemConfig
from repro.net.schedulers import RandomScheduler
from repro.workloads.generator import random_workload, run_workload

TAG = "reg"


def _cluster(seed=0, clients=2, max_read_rounds=None):
    config = SystemConfig(n=4, t=1, seed=seed)
    cluster = build_cluster(config, protocol="no_listeners",
                            num_clients=clients,
                            scheduler=RandomScheduler(seed))
    if max_read_rounds is not None:
        for client in cluster.clients:
            client.max_read_rounds = max_read_rounds
    return cluster


def test_write_then_read():
    cluster = _cluster()
    cluster.write(1, TAG, "w1", b"no listeners needed when quiet")
    read = cluster.read(2, TAG, "r1")
    assert read.result == b"no listeners needed when quiet"
    assert cluster.client(2).read_rounds["r1"] == 1


def test_servers_keep_no_listener_state():
    cluster = _cluster()
    cluster.write(1, TAG, "w1", b"x")
    cluster.read(2, TAG, "r1")
    cluster.run()
    for server in cluster.servers:
        assert len(server.register_state(TAG).listeners) == 0


def test_concurrent_histories_still_linearize():
    """Safety is untouched by the ablation — only wait-freedom is."""
    for seed in range(5):
        cluster = _cluster(seed=seed, clients=3)
        operations = random_workload(3, writes=3, reads=4, seed=seed)
        run_workload(cluster, TAG, operations, seed=seed)
        HistoryRecorder(cluster, TAG).check()


def test_reads_may_need_retries_under_concurrency():
    """Across seeds, some read observes a torn quorum and retries —
    the wait-freedom cost listeners eliminate."""
    total_retries = 0
    for seed in range(12):
        cluster = _cluster(seed=seed, clients=3)
        operations = random_workload(3, writes=5, reads=5, seed=seed)
        run_workload(cluster, TAG, operations, seed=seed,
                     invoke_probability=0.04)
        for client in cluster.clients:
            rounds = getattr(client, "read_rounds", {})
            total_retries += sum(count - 1 for count in rounds.values())
    assert total_retries > 0


def test_round_budget_enforced():
    cluster = _cluster(max_read_rounds=1, clients=2)
    cluster.write(1, TAG, "w1", b"x")
    # A quiet read finishes within one round — no error.
    read = cluster.read(2, TAG, "r1")
    assert read.done and cluster.client(2).max_read_rounds == 1
