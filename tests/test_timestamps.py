"""TIMESTAMP ordering (equation (1) of the paper)."""

import pytest
from hypothesis import given, strategies as st

from repro.common.serialization import decode, encode
from repro.core.timestamps import (
    BOTTOM_OID,
    INITIAL_TIMESTAMP,
    Timestamp,
)


def test_initial_timestamp():
    assert INITIAL_TIMESTAMP.ts == 0
    assert INITIAL_TIMESTAMP.oid == BOTTOM_OID


def test_order_by_ts_first():
    assert Timestamp(1, "z") < Timestamp(2, "a")


def test_ties_broken_by_oid():
    assert Timestamp(3, "a") < Timestamp(3, "b")
    assert not Timestamp(3, "b") < Timestamp(3, "a")


def test_equality():
    assert Timestamp(1, "x") == Timestamp(1, "x")
    assert Timestamp(1, "x") != Timestamp(1, "y")


def test_bottom_sorts_below_all_real_oids():
    assert INITIAL_TIMESTAMP < Timestamp(0, "a")


def test_next():
    timestamp = Timestamp(4, "old")
    successor = timestamp.next("new")
    assert successor == Timestamp(5, "new")


def test_negative_rejected():
    with pytest.raises(ValueError):
        Timestamp(-1, "x")


def test_str():
    assert str(Timestamp(2, "w1")) == "[2, w1]"
    assert "⊥" in str(INITIAL_TIMESTAMP)


def test_wire_roundtrip():
    timestamp = Timestamp(9, "op")
    assert decode(encode(timestamp)) == timestamp


def test_hashable():
    assert len({Timestamp(1, "a"), Timestamp(1, "a"), Timestamp(1, "b")}) \
        == 2


timestamps = st.builds(
    Timestamp,
    ts=st.integers(min_value=0, max_value=1000),
    oid=st.text(max_size=6),
)


@given(timestamps, timestamps)
def test_total_order(a, b):
    assert (a < b) + (b < a) + (a == b) == 1


@given(timestamps, timestamps, timestamps)
def test_transitivity(a, b, c):
    if a < b and b < c:
        assert a < c


@given(timestamps, timestamps)
def test_matches_paper_equation(a, b):
    expected = (a.ts < b.ts) or (a.ts == b.ts and a.oid < b.oid)
    assert (a < b) == expected
