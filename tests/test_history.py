"""History recording from cluster runs."""

import pytest

from repro.analysis.history import HistoryRecorder
from repro.cluster import build_cluster
from repro.common.errors import LivenessError
from repro.config import SystemConfig
from repro.faults.byzantine_clients import SkippingWriter
from repro.net.schedulers import RandomScheduler

TAG = "reg"


def _cluster(**kwargs):
    config = SystemConfig(n=4, t=1)
    return build_cluster(config, protocol="atomic", num_clients=2,
                         scheduler=RandomScheduler(0), **kwargs)


def test_operations_from_handles():
    cluster = _cluster()
    cluster.write(1, TAG, "w1", b"x")
    cluster.read(2, TAG, "r1")
    recorder = HistoryRecorder(cluster, TAG)
    operations = recorder.operations()
    assert {op.oid for op in operations} == {"w1", "r1"}
    write = next(op for op in operations if op.oid == "w1")
    assert write.invoke < write.complete


def test_other_register_excluded():
    cluster = _cluster()
    cluster.write(1, TAG, "w1", b"x")
    cluster.write(1, "other", "w2", b"y")
    operations = HistoryRecorder(cluster, TAG).operations()
    assert {op.oid for op in operations} == {"w1"}


def test_unfinished_operation_raises():
    cluster = _cluster()
    cluster.client(1).invoke_write(TAG, "w1", b"x")  # not yet run
    recorder = HistoryRecorder(cluster, TAG)
    with pytest.raises(LivenessError):
        recorder.operations()
    # ...unless explicitly tolerated.
    assert recorder.operations(require_done=False) == []


def test_byzantine_write_included_only_if_effected():
    cluster = _cluster(
        client_overrides={2: lambda pid, cfg: SkippingWriter(pid, cfg)})
    recorder = HistoryRecorder(cluster, TAG)
    recorder.record_byzantine_write("skip", b"evil")
    # Not yet executed: the write did not take effect.
    assert all(op.oid != "skip" for op in recorder.operations())
    cluster.client(2).attack_write(TAG, "skip", b"evil")
    cluster.run()
    included = [op for op in recorder.operations() if op.oid == "skip"]
    assert len(included) == 1
    assert included[0].invoke is None and included[0].complete is None


def test_check_end_to_end_with_byzantine_write():
    cluster = _cluster(
        client_overrides={2: lambda pid, cfg: SkippingWriter(pid, cfg)})
    cluster.write(1, TAG, "w1", b"honest")
    cluster.client(2).attack_write(TAG, "skip", b"evil")
    cluster.run()
    read = cluster.read(1, TAG, "r1")
    recorder = HistoryRecorder(cluster, TAG)
    recorder.record_byzantine_write("skip", b"evil")
    order = recorder.check()
    assert read.result in (b"honest", b"evil")
    assert "skip" in order
