"""Trace tooling and the command-line interface."""

import io
import json

import pytest

from repro.analysis.trace import (
    export_events_jsonl,
    format_timeline,
    operation_summary,
    traffic_summary,
)
from repro.cli import build_parser, main
from repro.cluster import build_cluster
from repro.config import SystemConfig
from repro.net.schedulers import RandomScheduler


@pytest.fixture
def run_cluster():
    cluster = build_cluster(SystemConfig(n=4, t=1), protocol="atomic",
                            num_clients=2,
                            scheduler=RandomScheduler(0))
    cluster.write(1, "reg", "w1", b"traced value")
    cluster.read(2, "reg", "r1")
    cluster.run()
    return cluster


def test_format_timeline(run_cluster):
    text = format_timeline(run_cluster.simulator.event_log)
    assert "write" in text and "ack" in text
    assert "<12B>" in text  # byte payloads summarized by length


def test_format_timeline_filters(run_cluster):
    text = format_timeline(run_cluster.simulator.event_log,
                           tag="other-register")
    assert text == "(no matching events)"
    limited = format_timeline(run_cluster.simulator.event_log, limit=2)
    assert "showing first 2" in limited


def test_operation_summary(run_cluster):
    text = operation_summary(run_cluster.simulator.event_log)
    assert "write w1" in text
    assert "read  r1" in text
    assert "C1" in text and "C2" in text


def test_traffic_summary(run_cluster):
    text = traffic_summary(run_cluster.simulator.metrics, "reg")
    assert "messages" in text
    assert "avid-echo" in text


def test_export_jsonl(run_cluster):
    stream = io.StringIO()
    count = export_events_jsonl(run_cluster.simulator.event_log, stream)
    lines = stream.getvalue().strip().splitlines()
    assert count == len(lines) > 0
    record = json.loads(lines[0])
    assert {"time", "party", "kind", "tag", "action",
            "payload"} <= set(record)


# -- CLI -----------------------------------------------------------------------

def test_cli_parser_subcommands():
    parser = build_parser()
    args = parser.parse_args(["simulate", "--n", "7", "--t", "2"])
    assert args.n == 7 and args.t == 2
    args = parser.parse_args(["experiments", "f4", "--fast"])
    assert args.names == ["f4"] and args.fast


def test_cli_simulate(capsys):
    assert main(["simulate", "--writes", "2", "--reads", "2",
                 "--seed", "3", "--trace"]) == 0
    out = capsys.readouterr().out
    assert "linearizable" in out
    assert "traffic under 'reg'" in out
    assert "write w0" in out


def test_cli_simulate_all_protocols(capsys):
    for protocol in ("atomic", "martin", "no_listeners"):
        assert main(["simulate", "--protocol", protocol, "--writes", "1",
                     "--reads", "1"]) == 0


def test_cli_info(capsys):
    assert main(["info", "--n", "7", "--t", "2"]) == 0
    out = capsys.readouterr().out
    assert "atomic_ns" in out and "n > 3t" in out


def test_cli_experiments_selected(capsys):
    assert main(["experiments", "f4"]) == 0
    out = capsys.readouterr().out
    assert "timestamp growth" in out


def test_cli_experiments_unknown():
    assert main(["experiments", "zz"]) == 2
