"""Trace tooling and the command-line interface."""

import io
import json

import pytest

from repro.analysis.trace import (
    export_events_jsonl,
    format_timeline,
    match_operations,
    operation_summary,
    traffic_summary,
)
from repro.cli import build_parser, main
from repro.cluster import build_cluster
from repro.common.ids import client_id
from repro.config import SystemConfig
from repro.net.message import EVENT_INPUT, EVENT_OUTPUT, LocalEvent
from repro.net.schedulers import RandomScheduler


@pytest.fixture
def run_cluster():
    cluster = build_cluster(SystemConfig(n=4, t=1), protocol="atomic",
                            num_clients=2,
                            scheduler=RandomScheduler(0))
    cluster.write(1, "reg", "w1", b"traced value")
    cluster.read(2, "reg", "r1")
    cluster.run()
    return cluster


def test_format_timeline(run_cluster):
    text = format_timeline(run_cluster.simulator.event_log)
    assert "write" in text and "ack" in text
    assert "<12B>" in text  # byte payloads summarized by length


def test_format_timeline_filters(run_cluster):
    text = format_timeline(run_cluster.simulator.event_log,
                           tag="other-register")
    assert text == "(no matching events)"
    limited = format_timeline(run_cluster.simulator.event_log, limit=2)
    assert "showing first 2" in limited


def test_operation_summary(run_cluster):
    text = operation_summary(run_cluster.simulator.event_log)
    assert "write w1" in text
    assert "read  r1" in text
    assert "C1" in text and "C2" in text


def _event(time, kind, action, oid, client=1):
    return LocalEvent(time=time, party=client_id(client), kind=kind,
                      tag="reg", action=action, payload=(oid,))


def test_match_operations_reused_oid_closes_lifo():
    events = [
        _event(1, EVENT_INPUT, "write", "w"),
        _event(2, EVENT_INPUT, "write", "w"),  # same key, still open
        _event(3, EVENT_OUTPUT, "ack", "w"),
        _event(4, EVENT_OUTPUT, "ack", "w"),
    ]
    pairs, unmatched, still_open = match_operations(events)
    assert not unmatched and not still_open
    assert [(start.time, end.time) for start, end in pairs] \
        == [(2, 3), (1, 4)]
    # both invocations appear in the summary instead of one
    # overwriting the other
    summary = operation_summary(events)
    assert summary.count("write w") == 2


def test_match_operations_flags_stragglers():
    events = [
        _event(1, EVENT_OUTPUT, "ack", "orphan"),  # truncated log
        _event(2, EVENT_INPUT, "read", "r-open"),
        _event(3, EVENT_INPUT, "write", "w1", client=2),
        _event(4, EVENT_OUTPUT, "ack", "w1", client=2),
    ]
    pairs, unmatched, still_open = match_operations(events)
    assert len(pairs) == 1
    assert [event.time for event in unmatched] == [1]
    assert [event.time for event in still_open] == [2]
    summary = operation_summary(events)
    assert "(unmatched completion)" in summary
    assert "(never completed)" in summary


def test_match_operations_separates_clients_and_kinds():
    events = [
        _event(1, EVENT_INPUT, "write", "x", client=1),
        _event(2, EVENT_INPUT, "write", "x", client=2),
        _event(3, EVENT_OUTPUT, "ack", "x", client=2),
    ]
    pairs, _, still_open = match_operations(events)
    assert pairs[0][0].party == client_id(2)
    assert still_open[0].party == client_id(1)
    # a read completion never closes a write invocation
    assert match_operations([
        _event(1, EVENT_INPUT, "write", "y"),
        _event(2, EVENT_OUTPUT, "read", "y"),
    ])[0] == []


def test_operation_summary_empty():
    assert operation_summary([]) == "(no operations)"


def test_traffic_summary(run_cluster):
    text = traffic_summary(run_cluster.simulator.metrics, "reg")
    assert "messages" in text
    assert "avid-echo" in text


def test_export_jsonl(run_cluster):
    stream = io.StringIO()
    count = export_events_jsonl(run_cluster.simulator.event_log, stream)
    lines = stream.getvalue().strip().splitlines()
    assert count == len(lines) > 0
    record = json.loads(lines[0])
    assert {"time", "party", "kind", "tag", "action",
            "payload"} <= set(record)


# -- CLI -----------------------------------------------------------------------

def test_cli_parser_subcommands():
    parser = build_parser()
    args = parser.parse_args(["simulate", "--n", "7", "--t", "2"])
    assert args.n == 7 and args.t == 2
    args = parser.parse_args(["experiments", "f4", "--fast"])
    assert args.names == ["f4"] and args.fast


def test_cli_simulate(capsys):
    assert main(["simulate", "--writes", "2", "--reads", "2",
                 "--seed", "3", "--trace"]) == 0
    out = capsys.readouterr().out
    assert "linearizable" in out
    assert "traffic under 'reg'" in out
    assert "write w0" in out


def test_cli_simulate_all_protocols(capsys):
    for protocol in ("atomic", "martin", "no_listeners"):
        assert main(["simulate", "--protocol", protocol, "--writes", "1",
                     "--reads", "1"]) == 0


def test_cli_info(capsys):
    assert main(["info", "--n", "7", "--t", "2"]) == 0
    out = capsys.readouterr().out
    assert "atomic_ns" in out and "n > 3t" in out


def test_cli_experiments_selected(capsys):
    assert main(["experiments", "f4"]) == 0
    out = capsys.readouterr().out
    assert "timestamp growth" in out


def test_cli_experiments_unknown():
    assert main(["experiments", "zz"]) == 2
