"""Simulator and process semantics: delivery, activation, wait states."""

import pytest

from repro.common.errors import LivenessError, SimulationError
from repro.common.ids import client_id, server_id
from repro.net.process import Process
from repro.net.schedulers import FifoScheduler, RandomScheduler
from repro.net.simulator import Simulator


class Echoer(Process):
    """Replies 'pong' to every 'ping'."""

    def __init__(self, pid):
        super().__init__(pid)
        self.pings = 0
        self.on("ping", self._on_ping)

    def _on_ping(self, message):
        self.pings += 1
        self.send(message.sender, message.tag, "pong", *message.payload)


class Collector(Process):
    """Thread-based process: waits for a quorum of pongs, then outputs."""

    def __init__(self, pid, need):
        super().__init__(pid)
        self.need = need
        self.result = None

    def start(self, tag):
        self.start_thread(self._run(tag))

    def _run(self, tag):
        self.send_to_servers(tag, "ping", "hello")
        messages = yield self.condition_quorum(tag, "pong", self.need)
        self.result = sorted(m.sender.index for m in messages)
        self.output(tag, "done", len(messages))


def _network(servers=3, scheduler=None):
    simulator = Simulator(scheduler=scheduler)
    for j in range(1, servers + 1):
        simulator.add_process(Echoer(server_id(j)))
    collector = simulator.add_process(Collector(client_id(1), need=2))
    return simulator, collector


def test_request_reply_quorum():
    simulator, collector = _network()
    collector.start("t")
    simulator.run()
    assert collector.result is not None
    assert len(collector.result) == 2


def test_thread_parks_until_condition():
    simulator, collector = _network()
    collector.start("t")
    assert collector.parked_threads == 1
    simulator.run()
    assert collector.parked_threads == 0


def test_output_actions_logged():
    simulator, collector = _network()
    collector.start("t")
    simulator.run()
    outputs = [e for e in simulator.event_log if e.kind == "out"]
    assert len(outputs) == 1
    assert outputs[0].action == "done"
    assert outputs[0].party == client_id(1)


def test_event_times_strictly_increase():
    simulator, collector = _network()
    collector.start("t")
    simulator.run()
    times = [e.time for e in simulator.event_log]
    assert times == sorted(times) and len(set(times)) == len(times)


def test_deterministic_given_seed():
    def run_once():
        simulator, collector = _network(scheduler=RandomScheduler(5))
        collector.start("t")
        simulator.run()
        return collector.result, simulator.time

    assert run_once() == run_once()


def test_messages_to_unknown_party_rejected():
    simulator = Simulator()
    lonely = simulator.add_process(Echoer(server_id(1)))
    with pytest.raises(SimulationError):
        lonely.send(server_id(9), "t", "ping")


def test_duplicate_party_rejected():
    simulator = Simulator()
    simulator.add_process(Echoer(server_id(1)))
    with pytest.raises(SimulationError):
        simulator.add_process(Echoer(server_id(1)))


def test_unattached_process_cannot_send():
    process = Echoer(server_id(1))
    with pytest.raises(SimulationError):
        process.send(server_id(2), "t", "ping")


def test_run_step_bound():
    class Ponger(Process):
        def __init__(self, pid, peer):
            super().__init__(pid)
            self.peer = peer
            self.on("ball", lambda m: self.send(self.peer, "t", "ball"))

    simulator = Simulator()
    a = simulator.add_process(Ponger(server_id(1), server_id(2)))
    simulator.add_process(Ponger(server_id(2), server_id(1)))
    a.send(server_id(2), "t", "ball")
    with pytest.raises(SimulationError):
        simulator.run(max_steps=100)


def test_run_until_predicate():
    simulator, collector = _network()
    collector.start("t")
    steps = simulator.run_until(lambda: collector.result is not None)
    assert collector.result is not None
    assert steps <= 6  # 3 pings + at most 3 pongs


def test_run_until_quiescence_without_predicate_raises():
    """Quiescence with the predicate still false is a liveness failure,
    not a silent success (the step count used to be indistinguishable
    from a satisfied wait)."""
    simulator, collector = _network()
    collector.start("t")
    with pytest.raises(LivenessError):
        simulator.run_until(lambda: False)
    assert simulator.pending_count == 0  # the network did drain


def test_run_until_already_satisfied_predicate():
    simulator, collector = _network()
    collector.start("t")
    assert simulator.run_until(lambda: True) == 0


def test_record_deliveries_flag():
    simulator = Simulator(record_deliveries=True)
    for j in (1, 2, 3):
        simulator.add_process(Echoer(server_id(j)))
    collector = simulator.add_process(Collector(client_id(1), need=2))
    collector.start("t")
    simulator.run()
    delivered = [e for e in simulator.event_log if e.kind == "deliver"]
    assert len(delivered) == 6  # 3 pings + 3 pongs


def test_sender_identity_is_channel_bound():
    """A process cannot spoof another party's identity."""
    simulator, collector = _network()
    collector.start("t")
    simulator.run()
    for event in simulator.event_log:
        pass
    # All pongs seen by the collector carry true server identities.
    senders = collector.inbox.senders("t", "pong")
    assert senders <= {server_id(j) for j in (1, 2, 3)}


def test_handler_generator_resumes_with_condition_value():
    class Waiter(Process):
        def __init__(self, pid):
            super().__init__(pid)
            self.got = None
            self.on("go", self._go)

        def _go(self, message):
            first = yield self.condition_message(message.tag, "data")
            self.got = first.payload[0]

    simulator = Simulator()
    waiter = simulator.add_process(Waiter(server_id(1)))
    feeder = simulator.add_process(Echoer(server_id(2)))
    feeder.send(server_id(1), "t", "go")
    simulator.run()
    assert waiter.got is None  # still waiting for data
    feeder.send(server_id(1), "t", "data", 42)
    simulator.run()
    assert waiter.got == 42


def test_immediately_satisfiable_condition_does_not_park():
    class Eager(Process):
        def __init__(self, pid):
            super().__init__(pid)
            self.done = False

        def start(self):
            self.start_thread(self._run())

        def _run(self):
            value = yield (lambda: "ready")
            assert value == "ready"
            self.done = True

    simulator = Simulator()
    eager = simulator.add_process(Eager(server_id(1)))
    eager.start()
    assert eager.done and eager.parked_threads == 0


def test_thread_yielding_non_callable_raises():
    class Broken(Process):
        def start(self):
            self.start_thread(self._run())

        def _run(self):
            yield 42

    simulator = Simulator()
    broken = simulator.add_process(Broken(server_id(1)))
    with pytest.raises(SimulationError):
        broken.start()


def test_storage_bytes_default_zero():
    simulator, collector = _network()
    assert simulator.storage_bytes() == 0
