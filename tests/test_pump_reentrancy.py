"""Regression: re-entrant thread pumping (a resumed thread starting a new
thread that pumps) must not corrupt the parked-thread list."""

from repro.common.ids import server_id
from repro.net.process import Process
from repro.net.simulator import Simulator


class Nester(Process):
    """Thread A waits for a message; when resumed it starts thread B,
    whose start pumps while A's resume is still on the stack — with
    thread C also parked and satisfiable at that moment."""

    def __init__(self, pid):
        super().__init__(pid)
        self.order = []
        self.ready = False

    def start(self):
        self.start_thread(self._thread_a())
        self.start_thread(self._thread_c())

    def _thread_a(self):
        yield self.condition_message("t", "go")
        self.order.append("A")
        self.ready = True  # makes C satisfiable
        self.start_thread(self._thread_b())  # nested start -> nested pump
        self.order.append("A-end")

    def _thread_b(self):
        yield (lambda: True)
        self.order.append("B")

    def _thread_c(self):
        yield (lambda: self.ready)
        self.order.append("C")


def test_nested_start_thread_during_pump():
    simulator = Simulator()
    nester = simulator.add_process(Nester(server_id(1)))
    poker = simulator.add_process(Process(server_id(2)))
    nester.start()
    assert nester.parked_threads == 2
    poker.send(server_id(1), "t", "go")
    simulator.run()
    assert set(nester.order) == {"A", "A-end", "B", "C"}
    assert nester.parked_threads == 0
