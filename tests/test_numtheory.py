"""Number-theoretic utilities behind the Shoup threshold scheme."""

import math
import random

import pytest
from hypothesis import given, strategies as st

from repro.crypto.numtheory import (
    extended_gcd,
    factorial,
    is_probable_prime,
    lagrange_coefficient,
    mod_inverse,
    random_prime,
    random_safe_prime,
)

SMALL_PRIMES = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 97, 101, 65537]
SMALL_COMPOSITES = [0, 1, 4, 6, 9, 15, 21, 25, 91, 561, 1105, 65536]


def test_small_primes_recognized():
    for p in SMALL_PRIMES:
        assert is_probable_prime(p), p


def test_small_composites_rejected():
    for c in SMALL_COMPOSITES:
        assert not is_probable_prime(c), c


def test_carmichael_numbers_rejected():
    # Classic Fermat pseudoprimes must not fool Miller-Rabin.
    for carmichael in (561, 1105, 1729, 2465, 2821, 6601, 8911):
        assert not is_probable_prime(carmichael)


def test_negative_numbers_not_prime():
    assert not is_probable_prime(-7)


def test_large_known_prime():
    assert is_probable_prime(2 ** 127 - 1)      # Mersenne prime
    assert not is_probable_prime(2 ** 128 - 1)


def test_random_prime_has_requested_bits():
    rng = random.Random(1)
    for bits in (8, 16, 48):
        p = random_prime(bits, rng)
        assert p.bit_length() == bits
        assert is_probable_prime(p)


def test_random_prime_too_small_rejected():
    with pytest.raises(ValueError):
        random_prime(1, random.Random(0))


def test_random_safe_prime():
    rng = random.Random(2)
    p = random_safe_prime(24, rng)
    assert is_probable_prime(p)
    assert is_probable_prime((p - 1) // 2)


def test_extended_gcd_identity():
    g, x, y = extended_gcd(240, 46)
    assert g == math.gcd(240, 46)
    assert 240 * x + 46 * y == g


def test_mod_inverse():
    assert mod_inverse(3, 11) == 4
    assert (7 * mod_inverse(7, 31)) % 31 == 1


def test_mod_inverse_not_coprime_raises():
    with pytest.raises(ValueError):
        mod_inverse(6, 9)


def test_factorial_matches_math():
    for n in range(10):
        assert factorial(n) == math.factorial(n)


def test_lagrange_coefficients_interpolate():
    # f(x) = 5 + 3x + 2x^2 over the integers; interpolate f(0) from any 3
    # points with delta-scaled coefficients.
    def f(x):
        return 5 + 3 * x + 2 * x * x

    n = 6
    delta = factorial(n)
    subset = [2, 4, 5]
    total = sum(lagrange_coefficient(delta, subset, i) * f(i)
                for i in subset)
    assert total == delta * f(0)


def test_lagrange_requires_delta_multiple():
    with pytest.raises(ValueError):
        lagrange_coefficient(1, [1, 2, 4], 1)


@given(st.integers(min_value=1, max_value=10 ** 9),
       st.integers(min_value=1, max_value=10 ** 9))
def test_extended_gcd_property(a, b):
    g, x, y = extended_gcd(a, b)
    assert g == math.gcd(a, b)
    assert a * x + b * y == g


@given(st.integers(min_value=2, max_value=10 ** 6))
def test_mod_inverse_property(m):
    rng = random.Random(m)
    a = rng.randrange(1, m)
    if math.gcd(a, m) == 1:
        assert (a * mod_inverse(a, m)) % m == 1


@given(st.data())
def test_lagrange_property(data):
    n = data.draw(st.integers(min_value=3, max_value=8))
    degree = data.draw(st.integers(min_value=0, max_value=2))
    coefficients = data.draw(st.lists(
        st.integers(min_value=-50, max_value=50),
        min_size=degree + 1, max_size=degree + 1))
    subset = data.draw(st.permutations(list(range(1, n + 1))))
    subset = sorted(subset[: degree + 1])

    def poly(x):
        return sum(c * x ** i for i, c in enumerate(coefficients))

    delta = factorial(n)
    total = sum(lagrange_coefficient(delta, subset, i) * poly(i)
                for i in subset)
    assert total == delta * poly(0)
