"""Property-based end-to-end testing: random workloads under random
adversarial schedules must always terminate and linearize.

These are the heaviest invariant checks in the suite: Hypothesis chooses
the protocol, deployment, fault set, workload shape, and scheduler seed;
the invariants of Definition 1 (wait-freedom + atomicity) must hold for
every draw.  A failing example shrinks to a minimal schedule and is
exactly reproducible from its seed.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis.history import HistoryRecorder
from repro.cluster import build_cluster
from repro.config import SystemConfig
from repro.faults.byzantine_servers import (
    CrashServer,
    EquivocatingReaderServer,
    InflatorNSServer,
)
from repro.net.schedulers import RandomScheduler
from repro.workloads.generator import random_workload, run_workload

TAG = "reg"

SLOW = settings(max_examples=25, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


@SLOW
@given(
    protocol=st.sampled_from(["atomic", "atomic_ns"]),
    seed=st.integers(min_value=0, max_value=10 ** 6),
    writes=st.integers(min_value=1, max_value=4),
    reads=st.integers(min_value=1, max_value=4),
    clients=st.integers(min_value=1, max_value=3),
)
def test_random_workloads_linearize(protocol, seed, writes, reads,
                                    clients):
    config = SystemConfig(n=4, t=1, seed=seed)
    cluster = build_cluster(config, protocol=protocol,
                            num_clients=clients,
                            scheduler=RandomScheduler(seed))
    operations = random_workload(clients, writes=writes, reads=reads,
                                 seed=seed)
    run_workload(cluster, TAG, operations, seed=seed)
    HistoryRecorder(cluster, TAG).check()


@SLOW
@given(
    seed=st.integers(min_value=0, max_value=10 ** 6),
    fault=st.sampled_from(["crash", "equivocate", "inflate"]),
    faulty_index=st.integers(min_value=1, max_value=4),
)
def test_byzantine_server_never_breaks_invariants(seed, fault,
                                                  faulty_index):
    factories = {
        "crash": CrashServer,
        "equivocate": EquivocatingReaderServer,
        "inflate": InflatorNSServer,
    }
    config = SystemConfig(n=4, t=1, seed=seed)
    cluster = build_cluster(
        config, protocol="atomic_ns", num_clients=2,
        scheduler=RandomScheduler(seed),
        server_overrides={
            faulty_index:
                lambda pid, cfg: factories[fault](pid, cfg)})
    operations = random_workload(2, writes=2, reads=3, seed=seed)
    run_workload(cluster, TAG, operations, seed=seed)
    honest = [server.pid for index, server in
              enumerate(cluster.servers, start=1)
              if index != faulty_index]
    HistoryRecorder(cluster, TAG, honest_servers=honest).check()


@SLOW
@given(
    seed=st.integers(min_value=0, max_value=10 ** 6),
    k=st.integers(min_value=1, max_value=3),
    value_size=st.integers(min_value=16, max_value=600),
)
def test_every_k_and_value_size(seed, k, value_size):
    config = SystemConfig(n=4, t=1, k=k, seed=seed)
    cluster = build_cluster(config, protocol="atomic", num_clients=2,
                            scheduler=RandomScheduler(seed))
    operations = random_workload(2, writes=2, reads=2, seed=seed,
                                 value_size=value_size)
    run_workload(cluster, TAG, operations, seed=seed)
    HistoryRecorder(cluster, TAG).check()


@SLOW
@given(
    protocol=st.sampled_from(["martin", "goodson", "bazzi_ding"]),
    seed=st.integers(min_value=0, max_value=10 ** 6),
)
def test_baselines_linearize_with_honest_clients(protocol, seed):
    n = 4 if protocol == "martin" else 5
    config = SystemConfig(n=n, t=1, seed=seed)
    cluster = build_cluster(config, protocol=protocol, num_clients=2,
                            scheduler=RandomScheduler(seed))
    operations = random_workload(2, writes=2, reads=3, seed=seed)
    run_workload(cluster, TAG, operations, seed=seed)
    HistoryRecorder(cluster, TAG).check()
