"""Simulator extensions: causal depth, partitions, invariant hooks,
listener capacity."""

import pytest

from repro.analysis import make_register_invariant
from repro.cluster import build_cluster
from repro.common.errors import ProtocolError
from repro.common.ids import client_id, server_id
from repro.config import SystemConfig
from repro.core.listeners import ListenerSet
from repro.core.timestamps import Timestamp
from repro.net.schedulers import PartitionScheduler, RandomScheduler
from repro.workloads.generator import random_workload, run_workload

TAG = "reg"


# -- causal depth / latency rounds -----------------------------------------------

def test_write_latency_rounds_per_protocol():
    # Quorum completion may ride a ready-amplification path, adding one
    # hop; the floor is the protocol's critical path.
    expected = {"martin": (4, 4), "atomic": (6, 7), "atomic_ns": (7, 8)}
    for protocol, (low, high) in expected.items():
        cluster = build_cluster(SystemConfig(n=4, t=1), protocol=protocol,
                                num_clients=1,
                                scheduler=RandomScheduler(0))
        handle = cluster.write(1, TAG, "w", b"x")
        assert low <= handle.latency_rounds <= high, protocol


def test_read_latency_is_one_round_trip():
    cluster = build_cluster(SystemConfig(n=4, t=1), protocol="atomic_ns",
                            num_clients=1, scheduler=RandomScheduler(0))
    cluster.write(1, TAG, "w", b"x")
    read = cluster.read(1, TAG, "r")
    assert read.latency_rounds == 2


def test_depth_stays_within_one_hop_of_critical_path():
    """The schedule decides whether the completing ack rode the direct
    echo-quorum path (6 hops) or a ready-amplification path (7), never
    anything else."""
    rounds = set()
    for seed in range(8):
        cluster = build_cluster(SystemConfig(n=4, t=1),
                                protocol="atomic", num_clients=1,
                                scheduler=RandomScheduler(seed))
        handle = cluster.write(1, TAG, "w", b"x")
        rounds.add(handle.latency_rounds)
    assert rounds <= {6, 7}
    assert 6 in rounds


# -- partitions ---------------------------------------------------------------------

def test_partition_starves_cross_traffic_until_heal():
    group = {server_id(1), server_id(2)}
    scheduler = PartitionScheduler(group, heal_after=10 ** 9, seed=1)
    cluster = build_cluster(SystemConfig(n=4, t=1), protocol="atomic",
                            num_clients=1, scheduler=scheduler)
    # With the client outside the group, intra-group traffic is always
    # preferred; operations still terminate because starved messages are
    # delivered when nothing else is pending (eventual delivery).
    handle = cluster.write(1, TAG, "w1", b"partitioned but eventual")
    assert handle.done
    assert not scheduler.healed


def test_partition_heals():
    scheduler = PartitionScheduler({server_id(1)}, heal_after=5, seed=0)
    cluster = build_cluster(SystemConfig(n=4, t=1), protocol="atomic",
                            num_clients=1, scheduler=scheduler)
    cluster.write(1, TAG, "w1", b"x")
    assert scheduler.healed
    assert cluster.read(1, TAG, "r1").result == b"x"


def test_partitioned_concurrent_workload_linearizes():
    from repro.analysis.history import HistoryRecorder
    scheduler = PartitionScheduler({server_id(1), server_id(3)},
                                   heal_after=200, seed=4)
    cluster = build_cluster(SystemConfig(n=4, t=1), protocol="atomic_ns",
                            num_clients=2, scheduler=scheduler)
    operations = random_workload(2, writes=3, reads=3, seed=4)
    run_workload(cluster, TAG, operations, seed=4)
    HistoryRecorder(cluster, TAG).check()


# -- invariant hooks ---------------------------------------------------------------

def test_invariants_hold_on_honest_runs():
    cluster = build_cluster(SystemConfig(n=4, t=1), protocol="atomic_ns",
                            num_clients=3, scheduler=RandomScheduler(2))
    cluster.simulator.add_invariant(make_register_invariant(TAG))
    operations = random_workload(3, writes=4, reads=4, seed=2)
    run_workload(cluster, TAG, operations, seed=2)


def test_invariant_detects_forged_acceptance():
    """Manually corrupting a server's state trips the hook at the next
    delivery."""
    cluster = build_cluster(SystemConfig(n=4, t=1), protocol="atomic",
                            num_clients=1, scheduler=RandomScheduler(0))
    cluster.simulator.add_invariant(make_register_invariant(TAG))
    cluster.write(1, TAG, "w1", b"x")
    state = cluster.server(1).register_state(TAG)
    state.timestamp = Timestamp(0, "")  # illegal: goes backwards
    with pytest.raises(ProtocolError):
        cluster.write(1, TAG, "w2", b"y")


def test_invariant_detects_conflicting_acceptance():
    cluster = build_cluster(SystemConfig(n=4, t=1), protocol="atomic",
                            num_clients=1, scheduler=RandomScheduler(0))
    cluster.simulator.add_invariant(make_register_invariant(TAG))
    cluster.write(1, TAG, "w1", b"x")
    # Forge a second write-accepted for w1 with a different TIMESTAMP.
    cluster.server(1).output(TAG, "write-accepted", "w1",
                             Timestamp(9, "w1"))
    with pytest.raises(ProtocolError):
        cluster.write(1, TAG, "w2", b"y")


# -- listener capacity (the §3.5 bound) --------------------------------------------

def test_listener_capacity_enforced():
    listeners = ListenerSet(capacity=2)
    assert listeners.add("r1", Timestamp(1, "a"), client_id(1))
    assert listeners.add("r2", Timestamp(1, "a"), client_id(2))
    assert not listeners.add("r3", Timestamp(1, "a"), client_id(3))
    listeners.retire("r1")
    assert listeners.add("r3", Timestamp(1, "a"), client_id(3))


def test_bounded_listeners_still_serve_quiet_reads():
    from repro.core.atomic import AtomicServer
    cluster = build_cluster(
        SystemConfig(n=4, t=1), protocol="atomic", num_clients=2,
        scheduler=RandomScheduler(1),
        server_overrides={
            j: (lambda pid, cfg: AtomicServer(pid, cfg, max_listeners=0))
            for j in range(1, 5)})
    cluster.write(1, TAG, "w1", b"x")
    # Isolated reads need no forwarding, so capacity 0 is harmless here.
    assert cluster.read(2, TAG, "r1").result == b"x"
    for server in cluster.servers:
        assert len(server.register_state(TAG).listeners) == 0
