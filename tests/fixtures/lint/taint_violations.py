"""Fixture: deliberate byzantine taint-flow violations (never imported).

Line numbers are pinned in ``tests/test_lint_flow.py`` — append new
material at the end instead of inserting above existing violations.
"""


class LeakyServer:
    def __init__(self, coder, scheme):
        self.coder = coder
        self.scheme = scheme
        self.state = {}
        self.on("store", self._on_store)
        self.on("echo", self._on_echo)
        self.on("query", self._on_query)
        self.on("audit", self._on_audit)
        self.on("shape", self._on_shape)

    def _on_store(self, message):
        value = message.payload[0]
        self.state["stored"] = value            # line 21: unverified-sink

    def _on_echo(self, message):
        origin, value = message.payload
        self.send_to_servers(message.tag, "echo2",
                             origin, value)     # line 26: unverified-sink

    def _on_query(self, message):
        blocks = message.payload[0]
        value = self.coder.decode(blocks)       # line 30: unverified-sink
        self._deliver(message.tag, value)       # line 31: unverified-sink

    def _on_audit(self, message):
        commitment, block, witness = message.payload
        self.scheme.verify(commitment, 1, block, witness)  # 35: dead-san
        self.state["audited"] = block           # line 36: unverified-sink

    def _on_shape(self, message):
        # A len() guard checks arity, not contents: still tainted.
        if len(message.payload) != 1:
            return
        value = message.payload[0]
        self.state["shaped"] = value            # line 43: unverified-sink
