"""Fixture: taint sanitized through a helper validator (never imported).

``valid_entry`` is not in the sanitizer registry, but the engine
resolves the call and classifies it as a validator (it type-checks its
parameter), so the guarded flow is clean.  ``check_freshness`` looks
like a sanitizer, cannot be resolved, and is not registered — the
engine must flag the registry gap (``taint-unknown-sanitizer``) while
optimistically cleansing so no downstream noise follows.
"""


def valid_entry(payload):
    return (isinstance(payload, tuple) and len(payload) == 2
            and isinstance(payload[0], str))


class HelperServer:
    def __init__(self):
        self.state = {}
        self.on("entry", self._on_entry)
        self.on("fresh", self._on_fresh)

    def _on_entry(self, message):
        payload = message.payload
        if not valid_entry(payload):
            return
        self.state["entry"] = payload           # helper-validated: clean

    def _on_fresh(self, message):
        value = message.payload[0]
        if not self.check_freshness(value):     # line 31: unknown-san
            return
        self.state["fresh"] = value             # optimistically clean
