"""Fixture: a registered wire type nothing references (never imported).

Line numbers are asserted in tests/test_lint_rules.py — append only.
"""

from dataclasses import dataclass

from repro.common.serialization import register_wire_type


@register_wire_type
@dataclass(frozen=True)
class DeadPayload:                              # line 13: wire-dead
    value: int
