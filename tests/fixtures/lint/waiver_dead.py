"""Fixture: waiver comments that no longer suppress anything.

``waiver-dead`` findings are pinned in ``tests/test_lint_flow.py``;
the engine emits them only on full runs (no ``--rules`` filter).
"""


def settled():
    # Nothing on the next line violates determinism any more.
    return 1  # lint: disable=det-entropy


def misspelled():
    return 2  # lint: disable=det-entorpy
