"""Fixture: deliberate handler-completeness violations (never imported).

Line numbers are asserted in tests/test_lint_rules.py — append only.
"""

MSG_GHOST = "ghost-request"
MSG_NEVER = "never-sent"
MSG_PING = "ping"


class BadDispatch:
    def __init__(self, process):
        self.process = process
        self.process.on(MSG_NEVER, self._on_never)  # line 14: handler-orphan
        self.process.on(MSG_PING, self._on_ping)

    def poke(self, recipient, tag):
        # line 18: handler-unhandled
        self.process.send(recipient, tag, MSG_GHOST, b"?")
        self.process.send(recipient, tag, MSG_PING, b"!")

    def _on_never(self, message):
        pass

    def _on_ping(self, message):
        pass
