"""Fixture: taint violations suppressed by justified waivers.

The flows here are deliberate (a relay protocol forwarding opaque
values); the waivers must suppress them and count as *used* for the
``waiver-dead`` check.
"""


class RelayServer:
    def __init__(self):
        self.state = {}
        self.on("relay", self._on_relay)
        self.on("buffer", self._on_buffer)

    def _on_relay(self, message):
        # Relays are opaque by design: consumers verify at delivery.
        self.send_to_servers(
            message.tag, "relay2",
            message.payload[0])  # lint: disable=taint-unverified-sink

    def _on_buffer(self, message):
        # Buffering before verification is bounded per sender.
        # lint: disable=taint-unverified-sink
        self.state["pending"] = message.payload[0]
