"""Fixture: deliberate determinism violations (never imported).

Line numbers are asserted in tests/test_lint_rules.py — append only.
"""

import secrets                                  # line 6: det-entropy
import time                                     # line 7: det-wallclock
import random


class Flaky:
    def __init__(self):
        self.pending = {"a", "b", "c"}

    def token(self):
        return secrets.token_hex(8)

    def jitter(self):
        return random.random()                  # line 19: det-entropy

    def stamp(self):
        return time.time()                      # line 22: det-wallclock

    def drain(self):
        out = []
        for item in self.pending:               # line 26: det-set-order
            out.append(item)
        return out

    def order(self, items):
        return sorted(items, key=id)            # line 31: det-id-order

    def fresh_rng(self):
        return random.Random()                  # line 34: det-entropy
