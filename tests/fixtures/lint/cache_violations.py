"""Seeded ``det-cache-order`` violations (never imported, AST-scanned only).

Line numbers are pinned in ``tests/test_lint_rules.py`` — append new
material at the end instead of inserting above existing violations.
"""

import functools
from functools import lru_cache


@functools.lru_cache(maxsize=128)
def memoized_with_lru_cache(value):
    return value * 2


@functools.cache
def memoized_with_cache(value):
    return value + 1


@lru_cache
def memoized_with_imported_name(value):
    return value - 1


# The sanctioned idiom stays quiet: an explicitly-owned,
# insertion-ordered cache from repro.common.lru.
from repro.common.lru import LruCache  # noqa: E402

_PLAN_CACHE = LruCache(capacity=16)


def memoized_with_sanctioned_cache(value):
    return _PLAN_CACHE.get_or_compute(value, lambda: value * 3)
