"""Fixture: taint flows that are properly sanitized (never imported).

Every handler here verifies or type-checks byzantine payload data
before it reaches a sink — the taint pack must stay silent on this
whole module.
"""


class CleanServer:
    def __init__(self, coder, scheme):
        self.coder = coder
        self.scheme = scheme
        self.state = {}
        self.on("store", self._on_store)
        self.on("reply", self._on_reply)
        self.on("gather", self._on_gather)

    def _on_store(self, message):
        commitment, block, witness = message.payload
        if not self.scheme.verify(commitment, 1, block, witness):
            return
        self.state["stored"] = block            # verified: clean

    def _on_reply(self, message):
        (oid,) = message.payload
        if not isinstance(oid, str):
            return
        self.send(message.sender, message.tag, "ack", oid)  # typed: clean

    def _on_gather(self, message):
        # Sends built purely from trusted local state stay clean even
        # inside a handler.
        self.send_to_servers(message.tag, "sync", self.state.get("stored"))

    def run_round(self, tag, expected):
        replies = yield self.condition_quorum(
            tag, "vote", 3,
            where=lambda m: isinstance(m.payload[0], int))
        # The where= predicate validates payloads, so quorum results
        # are sanitized collections.
        for reply in replies:
            self.state["vote"] = reply.payload[0]
