"""Fixture: deliberate wire-registry violations (never imported).

Line numbers are asserted in tests/test_lint_rules.py — append only.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class UnregisteredPayload:
    value: int


class BadSender:
    def __init__(self, process):
        self.process = process

    def publish(self, recipient, tag):
        payload = UnregisteredPayload(7)
        # line 21: wire-unregistered
        self.process.send(recipient, tag, "publish", payload)

    def matches(self, payload):
        # line 25: wire-unregistered (isinstance on a payload)
        return isinstance(payload, UnregisteredPayload)

    def attach(self):
        # Matching dispatch arm so this fixture stays quiet under the
        # handler-completeness pack.
        self.process.on("publish", self.matches)
