"""Fixture: deliberate quorum-arithmetic violations (never imported).

Line numbers are asserted in tests/test_lint_rules.py — append only.
"""


class BadProtocol:
    def __init__(self, config, process):
        self.config = config
        self.process = process

    def wait_literal(self, tag):
        # line 14: quorum-literal (bare count)
        return self.process.condition_quorum(tag, "ack", 3)

    def wait_off_by_one(self, tag):
        # n - t - 1 quorums need not intersect in t + 1 parties;
        # flagged at the wait site below.
        needed = self.config.n - self.config.t - 1
        return self.process.condition_quorum(tag, "echo", needed)  # line 20

    def wait_unreachable(self, acks):
        # line 24: quorum-unreachable (2t + 2 > n - t at n = 3t + 1)
        return len(acks) >= 2 * self.config.t + 2

    def wait_sound(self, tag):
        return self.process.condition_quorum(
            tag, "ready", self.config.quorum)

    def feed(self, recipient, tag):
        # Matching sends so this fixture stays quiet under the
        # handler-completeness pack.
        self.process.send(recipient, tag, "ack", b"")
        self.process.send(recipient, tag, "echo", b"")
        self.process.send(recipient, tag, "ready", b"")
