"""Fixture: waived and unwaived findings side by side (never imported).

Line numbers are asserted in tests/test_lint_rules.py — append only.
"""

import secrets  # lint: disable=det-entropy     line 6: waived
import time                                     # line 7: det-wallclock

# lint: disable=det-wallclock
import time as wall                             # line 10: waived (prev line)
