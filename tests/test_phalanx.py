"""The Phalanx-style safe register baseline — and the consistency
hierarchy it sits at the bottom of."""

import pytest

from repro.analysis.consistency import check_regularity, check_safety
from repro.analysis.history import HistoryRecorder
from repro.cluster import build_cluster
from repro.common.errors import ConfigurationError
from repro.config import SystemConfig
from repro.faults.byzantine_servers import CrashServer
from repro.net.schedulers import RandomScheduler
from repro.workloads.generator import random_workload, run_workload

TAG = "reg"


def _cluster(n=5, t=1, seed=0, clients=2, **kwargs):
    return build_cluster(SystemConfig(n=n, t=t, seed=seed),
                         protocol="phalanx", num_clients=clients,
                         scheduler=RandomScheduler(seed), **kwargs)


def test_requires_n_gt_4t():
    with pytest.raises(ConfigurationError):
        _cluster(n=4, t=1)


def test_write_then_read():
    cluster = _cluster()
    cluster.write(1, TAG, "w1", b"value")
    read = cluster.read(2, TAG, "r1")
    assert read.result == b"value"
    assert read.timestamp.ts == 1


def test_read_initial_value():
    cluster = build_cluster(SystemConfig(n=5, t=1), protocol="phalanx",
                            num_clients=1,
                            scheduler=RandomScheduler(0),
                            initial_value=b"genesis")
    assert cluster.read(1, TAG, "r1").result == b"genesis"


def test_sequential_overwrites():
    cluster = _cluster()
    for index in range(4):
        cluster.write(1, TAG, f"w{index}", b"v%d" % index)
    assert cluster.read(2, TAG, "r").result == b"v3"


def test_crash_tolerance():
    cluster = _cluster(
        seed=2,
        server_overrides={5: lambda pid, cfg: CrashServer(pid, cfg)})
    cluster.write(1, TAG, "w1", b"with a crash")
    assert cluster.read(2, TAG, "r1").result == b"with a crash"


def test_byzantine_server_cannot_fabricate_values():
    """t fabricated replies never reach the t+1 support threshold."""

    class FabricatingServer(CrashServer):
        def receive(self, message):
            self.inbox.add(message)
            if message.mtype == "read-safe":
                from repro.core.timestamps import Timestamp
                oid, round_no = message.payload
                self.send(message.sender, message.tag, "value-safe", oid,
                          round_no, Timestamp(999, "zz"), b"FABRICATED")

    cluster = _cluster(
        seed=3,
        server_overrides={
            1: lambda pid, cfg: FabricatingServer(pid, cfg)})
    cluster.write(1, TAG, "w1", b"the truth")
    read = cluster.read(2, TAG, "r1")
    assert read.result == b"the truth"


def test_concurrent_histories_are_safe():
    """Phalanx guarantees safety (checked), not atomicity (not
    required to hold)."""
    atomic_failures = 0
    for seed in range(8):
        cluster = _cluster(seed=seed, clients=3)
        operations = random_workload(3, writes=4, reads=4, seed=seed)
        run_workload(cluster, TAG, operations, seed=seed)
        history = HistoryRecorder(cluster, TAG).operations()
        check_safety(history)  # must always hold
        try:
            HistoryRecorder(cluster, TAG).check()
        except Exception:
            atomic_failures += 1
    # We don't require atomicity violations to occur at this scale, only
    # record that safety never broke while atomicity is not promised.
    assert atomic_failures >= 0


def test_cheapest_read_in_the_comparison():
    """One round, no listeners, no read-complete: 2n messages."""
    cluster = _cluster()
    cluster.write(1, TAG, "w1", b"x")
    cluster.run()
    before = cluster.simulator.metrics.snapshot()
    cluster.read(2, TAG, "r1")
    cluster.run()
    after = cluster.simulator.metrics.snapshot()
    assert after[0] - before[0] == 2 * cluster.config.n
