"""GF(2^8) field axioms and matrix algebra."""

import pytest
from hypothesis import given, strategies as st

from repro.erasure.gf256 import (
    EXP_TABLE,
    LOG_TABLE,
    gf_add,
    gf_div,
    gf_inv,
    gf_mul,
    gf_pow,
    identity_matrix,
    matrix_invert,
    matrix_multiply,
    mul_row,
    vandermonde_matrix,
)

elements = st.integers(min_value=0, max_value=255)
nonzero = st.integers(min_value=1, max_value=255)


def test_tables_consistent():
    for value in range(1, 256):
        assert EXP_TABLE[LOG_TABLE[value]] == value


def test_add_is_xor():
    assert gf_add(0b1010, 0b0110) == 0b1100
    assert gf_add(7, 7) == 0


def test_mul_identity_and_zero():
    for a in range(256):
        assert gf_mul(a, 1) == a
        assert gf_mul(a, 0) == 0


def test_known_product():
    # 2 * 2 = 4 ; 0x80 * 2 = 0x1d (reduction by the primitive polynomial)
    assert gf_mul(2, 2) == 4
    assert gf_mul(0x80, 2) == 0x1D


def test_div_by_zero_raises():
    with pytest.raises(ZeroDivisionError):
        gf_div(1, 0)
    with pytest.raises(ZeroDivisionError):
        gf_inv(0)
    with pytest.raises(ZeroDivisionError):
        gf_pow(0, -1)


def test_pow_cases():
    assert gf_pow(0, 0) == 1
    assert gf_pow(0, 5) == 0
    assert gf_pow(3, 1) == 3
    assert gf_pow(5, 0) == 1
    assert gf_mul(gf_pow(7, -1), 7) == 1


@given(elements, elements)
def test_mul_commutative(a, b):
    assert gf_mul(a, b) == gf_mul(b, a)


@given(elements, elements, elements)
def test_mul_associative(a, b, c):
    assert gf_mul(gf_mul(a, b), c) == gf_mul(a, gf_mul(b, c))


@given(elements, elements, elements)
def test_distributive(a, b, c):
    assert gf_mul(a, gf_add(b, c)) == gf_add(gf_mul(a, b), gf_mul(a, c))


@given(nonzero)
def test_inverse(a):
    assert gf_mul(a, gf_inv(a)) == 1


@given(elements, nonzero)
def test_div_is_mul_by_inverse(a, b):
    assert gf_div(a, b) == gf_mul(a, gf_inv(b))


@given(nonzero, st.integers(min_value=-5, max_value=5))
def test_pow_is_repeated_mul(a, e):
    expected = 1
    base = a if e >= 0 else gf_inv(a)
    for _ in range(abs(e)):
        expected = gf_mul(expected, base)
    assert gf_pow(a, e) == expected


def test_mul_row():
    data = [0, 1, 2, 255]
    assert mul_row(0, data) == [0, 0, 0, 0]
    assert mul_row(1, data) == data
    assert mul_row(3, data) == [gf_mul(3, b) for b in data]


# -- matrices -----------------------------------------------------------------

def test_identity_multiply():
    matrix = [[1, 2], [3, 4]]
    assert matrix_multiply(identity_matrix(2), matrix) == matrix
    assert matrix_multiply(matrix, identity_matrix(2)) == matrix


def test_invert_roundtrip():
    matrix = [[1, 2, 3], [4, 5, 6], [7, 8, 10]]
    inverse = matrix_invert(matrix)
    assert matrix_multiply(matrix, inverse) == identity_matrix(3)


def test_singular_matrix_raises():
    with pytest.raises(ValueError):
        matrix_invert([[1, 2], [1, 2]])
    with pytest.raises(ValueError):
        matrix_invert([[0, 0], [0, 0]])


def test_non_square_invert_raises():
    with pytest.raises(ValueError):
        matrix_invert([[1, 2, 3], [4, 5, 6]])


def test_dimension_mismatch_raises():
    with pytest.raises(ValueError):
        matrix_multiply([[1, 2], [3]], [[1], [2]])


def test_vandermonde_rows_limit():
    with pytest.raises(ValueError):
        vandermonde_matrix(256, 3)


def test_vandermonde_any_square_submatrix_invertible():
    matrix = vandermonde_matrix(8, 3)
    import itertools
    for rows in itertools.combinations(range(8), 3):
        submatrix = [matrix[r][:] for r in rows]
        matrix_invert(submatrix)  # must not raise


@given(st.integers(min_value=1, max_value=5), st.data())
def test_invert_random_invertible(size, data):
    import random as _random
    rng = _random.Random(data.draw(st.integers(0, 10 ** 6)))
    # Build a random matrix; skip draws that happen to be singular.
    matrix = [[rng.randrange(256) for _ in range(size)]
              for _ in range(size)]
    try:
        inverse = matrix_invert(matrix)
    except ValueError:
        return
    assert matrix_multiply(matrix, inverse) == identity_matrix(size)
