"""Windowed time-series rollups: digests, bucket math, ring eviction."""

import pytest

from repro.common.errors import SimulationError
from repro.obs import Digest, Series, TimeSeriesStore


# -- digest --------------------------------------------------------------------

def test_digest_exact_aggregates():
    digest = Digest()
    for value in (3, 7, 12, 200):
        digest.record(value)
    assert digest.count == 4
    assert digest.total == 222
    assert digest.min_value == 3
    assert digest.max_value == 200
    assert digest.mean == pytest.approx(55.5)


def test_digest_rejects_negative():
    with pytest.raises(SimulationError):
        Digest().record(-1)


def test_digest_percentile_bounds_and_accuracy():
    digest = Digest()
    for value in range(1, 101):
        digest.record(value)
    # power-of-two bins promise at most 2x relative error, clamped to
    # the exact extremes
    assert digest.percentile(0) == 1
    assert digest.percentile(100) == 100
    p50 = digest.percentile(50)
    assert 50 <= p50 <= 100
    with pytest.raises(SimulationError):
        digest.percentile(101)


def test_digest_percentile_empty_is_zero():
    assert Digest().percentile(50) == 0.0


def test_digest_merge_matches_combined_recording():
    left, right, combined = Digest(), Digest(), Digest()
    for value in (1, 5, 9):
        left.record(value)
        combined.record(value)
    for value in (2, 100):
        right.record(value)
        combined.record(value)
    left.merge(right)
    assert left.summary() == combined.summary()


def test_digest_huge_values_clamp_to_last_bin():
    digest = Digest()
    digest.record(2 ** 60)
    assert digest.count == 1
    assert digest.percentile(50) == 2 ** 60  # clamped to exact max


# -- series bucket math --------------------------------------------------------

def test_counter_buckets_partition_the_clock():
    series = Series("ops", "counter", bucket_ticks=10, max_buckets=64)
    for time in (0, 9, 10, 19, 20):
        series.record(time)
    assert series.buckets() == [(0, 2), (1, 2), (2, 1)]


def test_bucket_edge_observation_counted_exactly_once():
    """The satellite case: an operation *straddling* a bucket edge
    (invoked in bucket 0, completing in bucket 1) lands exactly once,
    in the bucket of the time passed to record — no double count, no
    loss."""
    series = Series("latency", "digest", bucket_ticks=32, max_buckets=8)
    invoke, complete = 30, 34  # straddles the 32-tick edge
    series.record(complete, complete - invoke)
    assert len(series) == 1
    [(bucket, summary)] = series.buckets()
    assert bucket == complete // 32 == 1
    assert summary["count"] == 1
    # the boundary tick itself belongs to the *opening* bucket
    edge = Series("edge", "counter", bucket_ticks=32, max_buckets=8)
    edge.record(31)
    edge.record(32)
    assert [index for index, _ in edge.buckets()] == [0, 1]
    assert edge.total() == 2


def test_series_rejects_backward_time():
    series = Series("ops", "counter", bucket_ticks=10, max_buckets=8)
    series.record(25)
    series.record(29)  # same bucket: fine
    with pytest.raises(SimulationError):
        series.record(15)


def test_ring_eviction_bounds_memory_and_counts_drops():
    series = Series("ops", "counter", bucket_ticks=1, max_buckets=4)
    for time in range(10):
        series.record(time)
    assert len(series) == 4
    assert series.dropped_buckets == 6
    assert series.first_bucket == 6
    assert series.last_bucket == 9


def test_gauge_tracks_last_min_max():
    series = Series("depth", "gauge", bucket_ticks=10, max_buckets=8)
    for value in (5, 2, 9):
        series.record(3, value)
    [(_, summary)] = series.buckets()
    assert summary == {"last": 9, "min": 2, "max": 9, "samples": 3}


def test_window_is_half_open_on_the_left():
    series = Series("ops", "counter", bucket_ticks=1, max_buckets=64)
    for time in range(6):
        series.record(time, 10)
    # (end - width, end]: bucket 1 excluded, 2..5 included
    window = series.window(end_bucket=5, width=4)
    assert window["sum"] == 40
    assert window["buckets"] == 4


def test_window_merges_sparse_digest_buckets():
    series = Series("lat", "digest", bucket_ticks=10, max_buckets=64)
    series.record(5, 100)
    series.record(95, 300)  # buckets 0 and 9, nothing between
    window = series.window(end_bucket=9, width=10)
    assert window["count"] == 2
    assert window["min"] == 100 and window["max"] == 300


# -- store ---------------------------------------------------------------------

def test_store_name_bound_to_one_kind():
    store = TimeSeriesStore(bucket_ticks=16)
    store.counter("net.sent").record(3)
    with pytest.raises(SimulationError):
        store.gauge("net.sent")


def test_store_horizon_advances_monotonically():
    store = TimeSeriesStore(bucket_ticks=16)
    store.observe_time(40)
    store.observe_time(20)  # stale ticks never move it back
    assert store.horizon == 40
    assert store.horizon_bucket == 2


def test_store_snapshot_sorted_and_json_plain():
    import json
    store = TimeSeriesStore(bucket_ticks=8)
    store.gauge("b.depth").record(1, 4)
    store.counter("a.ops").record(2)
    store.digest("c.lat").record(3, 12)
    snapshot = store.snapshot()
    assert list(snapshot) == ["a.ops", "b.depth", "c.lat"]
    json.dumps(snapshot)  # must be plain data end to end
