"""Byzantine fault injection: every attack against the core protocols."""

import pytest

from repro.analysis.history import HistoryRecorder
from repro.cluster import build_cluster
from repro.config import SystemConfig
from repro.faults.byzantine_clients import (
    SKIP_TARGET,
    EquivocatingRbcWriter,
    HalfWriter,
    InconsistentDisperser,
    SkippingWriter,
    SplitBrainMartinWriter,
)
from repro.faults.byzantine_servers import (
    AvidSpammerServer,
    CrashServer,
    EquivocatingReaderServer,
    InflatorNSServer,
    InflatorServer,
    StaleReaderServer,
)
from repro.net.schedulers import RandomScheduler
from repro.workloads.generator import (
    make_values,
    random_workload,
    run_workload,
)

TAG = "reg"


def _cluster(protocol="atomic_ns", n=4, t=1, seed=0, clients=2,
             server_overrides=None, client_overrides=None):
    config = SystemConfig(n=n, t=t, seed=seed)
    return build_cluster(config, protocol=protocol, num_clients=clients,
                         scheduler=RandomScheduler(seed),
                         server_overrides=server_overrides,
                         client_overrides=client_overrides)


def _honest_servers(cluster):
    return [server for server in cluster.servers
            if hasattr(server, "register_state")
            and type(server).__module__.startswith("repro.core")]


# -- Byzantine servers ---------------------------------------------------------

@pytest.mark.parametrize("fault", [
    CrashServer, EquivocatingReaderServer, InflatorServer,
    StaleReaderServer, AvidSpammerServer,
])
def test_atomic_tolerates_each_server_fault(fault):
    cluster = _cluster(
        protocol="atomic",
        server_overrides={1: lambda pid, cfg: fault(pid, cfg)})
    cluster.write(1, TAG, "w1", b"resilient value")
    read = cluster.read(2, TAG, "r1")
    assert read.result == b"resilient value"
    HistoryRecorder(cluster, TAG,
                    honest_servers=[s.pid for s in cluster.servers[1:]]
                    ).check()


@pytest.mark.parametrize("fault", [CrashServer, InflatorNSServer])
def test_atomic_ns_tolerates_each_server_fault(fault):
    cluster = _cluster(
        protocol="atomic_ns",
        server_overrides={1: lambda pid, cfg: fault(pid, cfg)})
    cluster.write(1, TAG, "w1", b"resilient value")
    assert cluster.read(2, TAG, "r1").result == b"resilient value"


def test_t_crashes_in_larger_cluster():
    cluster = _cluster(
        protocol="atomic_ns", n=7, t=2, seed=2,
        server_overrides={
            1: lambda pid, cfg: CrashServer(pid, cfg),
            2: lambda pid, cfg: CrashServer(pid, cfg)})
    cluster.write(1, TAG, "w1", b"two down")
    assert cluster.read(2, TAG, "r1").result == b"two down"


def test_inflator_skips_atomic_but_not_ns():
    for protocol, inflator, expect_skip in (
            ("atomic", InflatorServer, True),
            ("atomic_ns", InflatorNSServer, False)):
        cluster = _cluster(
            protocol=protocol,
            server_overrides={1: lambda pid, cfg: inflator(pid, cfg)})
        cluster.write(1, TAG, "w1", b"v")
        cluster.run()
        ts = cluster.server(2).register_state(TAG).timestamp.ts
        assert (ts > 10 ** 6) == expect_skip, protocol


def test_concurrent_workload_with_byzantine_server():
    for seed in range(4):
        cluster = _cluster(
            protocol="atomic", clients=3, seed=seed,
            server_overrides={
                2: lambda pid, cfg: EquivocatingReaderServer(pid, cfg)})
        operations = random_workload(3, writes=3, reads=4, seed=seed)
        run_workload(cluster, TAG, operations, seed=seed)
        HistoryRecorder(
            cluster, TAG,
            honest_servers=[s.pid for i, s in enumerate(cluster.servers)
                            if i != 1]).check()


# -- Byzantine clients -----------------------------------------------------------

def test_skipping_client_succeeds_against_atomic():
    cluster = _cluster(
        protocol="atomic",
        client_overrides={2: lambda pid, cfg: SkippingWriter(pid, cfg)})
    cluster.client(2).attack_write(TAG, "skip", b"skipped value")
    cluster.run()
    ts = cluster.server(1).register_state(TAG).timestamp.ts
    assert ts == SKIP_TARGET + 1
    # The register still behaves atomically afterwards.
    assert cluster.read(1, TAG, "r1").result == b"skipped value"


def test_skipping_client_fails_against_atomic_ns():
    cluster = _cluster(
        protocol="atomic_ns",
        client_overrides={2: lambda pid, cfg: SkippingWriter(pid, cfg)})
    cluster.client(2).attack_write(TAG, "skip", b"should not land")
    cluster.run()
    assert cluster.server(1).register_state(TAG).timestamp.ts == 0
    accepted = [event for event in cluster.simulator.event_log
                if event.kind == "out"
                and event.action == "write-accepted"]
    assert accepted == []


def test_inconsistent_disperser_never_takes_effect():
    for protocol in ("atomic", "atomic_ns"):
        cluster = _cluster(
            protocol=protocol,
            client_overrides={
                2: lambda pid, cfg: InconsistentDisperser(pid, cfg)})
        cluster.write(1, TAG, "honest", b"clean")
        cluster.client(2).attack_write(
            TAG, "dirty", [b"junk-A" * 10, b"junk-B" * 10], ts=5)
        cluster.run()
        assert cluster.read(1, TAG, "r1").result == b"clean"
        accepted = {event.payload[0]
                    for event in cluster.simulator.event_log
                    if event.kind == "out"
                    and event.action == "write-accepted"}
        assert "dirty" not in accepted


def test_half_writer_all_or_nothing():
    """Dispersal agreement: the half-written value either takes effect at
    all honest servers eventually or at none; reads never block."""
    for seed in range(5):
        cluster = _cluster(
            protocol="atomic", seed=seed,
            client_overrides={2: lambda pid, cfg: HalfWriter(pid, cfg)})
        cluster.client(2).attack_write(TAG, "half", b"half-written",
                                       count=3)
        cluster.run()
        completed = [server for server in cluster.servers
                     if "half" in server.register_state(TAG).accepted]
        assert len(completed) in (0, 4), seed
        read = cluster.read(1, TAG, "r1")
        assert read.done


def test_equivocating_rbc_writer_no_split():
    for seed in range(5):
        cluster = _cluster(
            protocol="atomic", seed=seed,
            client_overrides={
                2: lambda pid, cfg: EquivocatingRbcWriter(pid, cfg)})
        cluster.client(2).attack_write(TAG, "equiv", b"value",
                                       timestamps=[5, 9])
        cluster.run()
        timestamps = {server.register_state(TAG).timestamp.ts
                      for server in cluster.servers}
        # Either nothing was accepted (ts 0) or all honest agree on one.
        assert len(timestamps - {0}) <= 1


def test_split_brain_wedges_martin_but_not_atomic():
    """The paper's motivating attack: inconsistent replication wedges
    SBQ-L reads; verifiable dispersal is immune by construction."""
    cluster = build_cluster(
        SystemConfig(n=4, t=1), protocol="martin", num_clients=2,
        scheduler=RandomScheduler(0),
        client_overrides={
            2: lambda pid, cfg: SplitBrainMartinWriter(pid, cfg)})
    values = make_values(4, size=32)
    cluster.client(2).attack_write(TAG, "split", 7, values)
    cluster.run()
    # The poisoned timestamp is now the highest at every server; a read
    # can never assemble n - t matching replies, so it stalls forever.
    handle = cluster.client(1).invoke_read(TAG, "r1")
    cluster.run()
    assert not handle.done


def test_colluding_client_and_server():
    """A Byzantine client colluding with a Byzantine server still cannot
    break atomicity for honest clients of AtomicNS."""
    cluster = _cluster(
        protocol="atomic_ns", clients=3, seed=4,
        server_overrides={1: lambda pid, cfg: InflatorNSServer(pid, cfg)},
        client_overrides={3: lambda pid, cfg: SkippingWriter(pid, cfg)})
    cluster.write(1, TAG, "w1", b"honest-1")
    cluster.client(3).attack_write(TAG, "evil", b"evil-value")
    cluster.run()
    cluster.write(2, TAG, "w2", b"honest-2")
    read = cluster.read(1, TAG, "r1")
    assert read.result == b"honest-2"
    ts = cluster.server(2).register_state(TAG).timestamp.ts
    assert ts == 2  # non-skipping survived the collusion
