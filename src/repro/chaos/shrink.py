"""Reproducer shrinking: minimize a failing fault plan *and* workload.

When a campaign run fails, the raw plan usually injects more faults
than the failure needs, and the workload runs more operations than the
failure needs.  :func:`shrink_plan` minimizes both, in three phases:

1. **Component ddmin** — classic delta debugging over the plan's
   components (rules, crashes, the partition, the scheduler entry):
   chunked removal starting at half the component list, doubling the
   granularity when no chunk's removal reproduces the failure and
   coarsening again after each success.  Removing ``k`` irrelevant
   components costs ``O(log k)`` runs instead of the ``k`` sequential
   passes of one-at-a-time greedy removal.
2. **Budget halving** — halve surviving rules' ``limit``/``delay``
   budgets to a fixed point.
3. **Workload cross-field shrinks** — halve ``writes``, ``reads``, and
   ``clients`` in the :class:`~repro.chaos.campaign.RunSpec` itself
   (never below one total operation or one client), so the reproducer's
   *workload* is minimal too, not just its plan.

Because runs are deterministic, each candidate needs exactly one
execution — no retries, no flakiness — and a candidate is accepted only
when it reproduces the *same* failure status, so shrinking never trades
one failure mode for another.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, List, Tuple

from repro.chaos.campaign import RunResult, RunSpec, execute_run
from repro.chaos.plan import FaultPlan, FaultRule

#: A plan component key: ``(kind, index)``.
_Component = Tuple[str, int]


@dataclass(frozen=True)
class ShrinkResult:
    """Outcome of shrinking one failing run."""

    spec: RunSpec          #: the original spec with the minimal plan
    result: RunResult      #: the failing run of the minimal plan
    attempts: int          #: candidate executions spent shrinking
    removed: int           #: plan components eliminated


def _components(plan: FaultPlan) -> List[_Component]:
    out: List[_Component] = []
    out.extend(("rule", index) for index in range(len(plan.rules)))
    out.extend(("crash", index) for index in range(len(plan.crashes)))
    if plan.partition is not None:
        out.append(("partition", 0))
    if plan.scheduler is not None:
        out.append(("scheduler", 0))
    return out


def _build_plan(plan: FaultPlan, keep: List[_Component]) -> FaultPlan:
    kept = set(keep)
    return replace(
        plan,
        rules=tuple(rule for index, rule in enumerate(plan.rules)
                    if ("rule", index) in kept),
        crashes=tuple(crash for index, crash in enumerate(plan.crashes)
                      if ("crash", index) in kept),
        partition=plan.partition if ("partition", 0) in kept else None,
        scheduler=plan.scheduler if ("scheduler", 0) in kept else None)


def _ddmin(components: List[_Component],
           still_fails: Callable[[List[_Component]], bool]
           ) -> List[_Component]:
    """Classic ddmin by complement removal over ``components``.

    ``still_fails`` is the (budget-limited) oracle; it returns False
    once the attempt budget is exhausted, which safely reads as "this
    reduction did not reproduce the failure".
    """
    current = list(components)
    granularity = 2
    while len(current) >= 2:
        chunk_size = -(-len(current) // granularity)  # ceil division
        chunks = [current[start:start + chunk_size]
                  for start in range(0, len(current), chunk_size)]
        reduced = False
        for chunk in chunks:
            candidate = [entry for entry in current if entry not in chunk]
            if still_fails(candidate):
                current = candidate
                granularity = max(granularity - 1, 2)
                reduced = True
                break
        if not reduced:
            if granularity >= len(current):
                break
            granularity = min(granularity * 2, len(current))
    if len(current) == 1 and still_fails([]):
        current = []
    return current


def _budget_candidates(plan: FaultPlan) -> List[Tuple[str, FaultPlan]]:
    """Budget/delay halvings of surviving rules, in deterministic
    order."""
    out: List[Tuple[str, FaultPlan]] = []
    for index, rule in enumerate(plan.rules):
        if rule.limit > 1:
            halved = FaultRule(kind=rule.kind, party=rule.party,
                               mtype=rule.mtype, limit=rule.limit // 2,
                               delay=rule.delay)
            out.append((f"halve budget of rule {index}",
                        plan.with_rule(index, halved)))
        if rule.kind == "delay" and rule.delay > 1:
            shorter = FaultRule(kind=rule.kind, party=rule.party,
                                mtype=rule.mtype, limit=rule.limit,
                                delay=rule.delay // 2)
            out.append((f"halve delay of rule {index}",
                        plan.with_rule(index, shorter)))
    return out


def _workload_candidates(spec: RunSpec) -> List[RunSpec]:
    """Cross-field reductions of the spec's workload, in deterministic
    order (a candidate always keeps at least one operation and one
    client)."""
    out: List[RunSpec] = []
    if spec.writes > 0:
        out.append(replace(spec, writes=spec.writes // 2))
    if spec.reads > 0:
        out.append(replace(spec, reads=spec.reads // 2))
    if spec.clients > 1:
        out.append(replace(spec, clients=spec.clients // 2))
    return [candidate for candidate in out
            if candidate.writes + candidate.reads >= 1
            and candidate.clients >= 1]


def shrink_plan(spec: RunSpec, failing_status: str,
                max_attempts: int = 200) -> ShrinkResult:
    """Minimize ``spec`` while preserving the failure.

    ``failing_status`` is the status the original run produced
    (``stalled`` or ``violation``).  Terminates at a fixed point
    (no chunk removal, budget halving, or workload reduction still
    fails) or after ``max_attempts`` candidate runs.  ``removed``
    counts eliminated plan components (not budget or workload
    reductions).
    """
    current = spec
    best = execute_run(current)
    if best.status != failing_status:
        raise ValueError(
            f"shrink oracle mismatch: plan produced {best.status!r}, "
            f"expected {failing_status!r}")
    state = {"attempts": 1, "current": current, "best": best}

    def try_spec(candidate: RunSpec) -> bool:
        if state["attempts"] >= max_attempts:
            return False
        outcome = execute_run(candidate)
        state["attempts"] += 1
        if outcome.status == failing_status:
            state["current"] = candidate
            state["best"] = outcome
            return True
        return False

    # Phase 1: chunked ddmin over plan components.
    initial = _components(spec.plan)

    def still_fails(keep: List[_Component]) -> bool:
        candidate_plan = _build_plan(spec.plan, keep)
        return try_spec(replace(state["current"], plan=candidate_plan))

    kept = _ddmin(initial, still_fails)
    removed = len(initial) - len(kept)

    # Phase 2: halve surviving rule budgets/delays to a fixed point.
    progress = True
    while progress and state["attempts"] < max_attempts:
        progress = False
        for _, candidate_plan in _budget_candidates(
                state["current"].plan):
            if try_spec(replace(state["current"], plan=candidate_plan)):
                progress = True
                break  # restart from the smaller plan

    # Phase 3: shrink the workload itself (writes/reads/clients).
    progress = True
    while progress and state["attempts"] < max_attempts:
        progress = False
        for candidate in _workload_candidates(state["current"]):
            if try_spec(candidate):
                progress = True
                break  # restart from the smaller workload

    return ShrinkResult(spec=state["current"], result=state["best"],
                        attempts=state["attempts"], removed=removed)
