"""Reproducer shrinking: minimize a failing fault plan.

When a campaign run fails, the raw plan usually injects more faults
than the failure needs.  :func:`shrink_plan` bisects it down
delta-debugging style: repeatedly try removing whole plan components
(rules, crashes, the partition) and halving rule budgets and delays,
keeping each reduction only if the shrunk plan still reproduces the
*same* failure status.  Because runs are deterministic, each candidate
needs exactly one execution — no retries, no flakiness — and the
result is a locally-minimal plan: removing any remaining component or
halving any remaining budget makes the failure disappear.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Tuple

from repro.chaos.campaign import RunResult, RunSpec, execute_run
from repro.chaos.plan import FaultPlan, FaultRule


@dataclass(frozen=True)
class ShrinkResult:
    """Outcome of shrinking one failing run."""

    spec: RunSpec          #: the original spec with the minimal plan
    result: RunResult      #: the failing run of the minimal plan
    attempts: int          #: candidate executions spent shrinking
    removed: int           #: plan components eliminated


def _candidates(plan: FaultPlan) -> List[Tuple[str, FaultPlan]]:
    """Single-step reductions of ``plan``, in deterministic order."""
    out: List[Tuple[str, FaultPlan]] = []
    for index in range(len(plan.rules)):
        out.append((f"drop rule {index}", plan.without_rule(index)))
    for index in range(len(plan.crashes)):
        out.append((f"drop crash {index}", plan.without_crash(index)))
    if plan.partition is not None:
        out.append(("drop partition", plan.without_partition()))
    for index, rule in enumerate(plan.rules):
        if rule.limit > 1:
            halved = FaultRule(kind=rule.kind, party=rule.party,
                               mtype=rule.mtype, limit=rule.limit // 2,
                               delay=rule.delay)
            out.append((f"halve budget of rule {index}",
                        plan.with_rule(index, halved)))
        if rule.kind == "delay" and rule.delay > 1:
            shorter = FaultRule(kind=rule.kind, party=rule.party,
                                mtype=rule.mtype, limit=rule.limit,
                                delay=rule.delay // 2)
            out.append((f"halve delay of rule {index}",
                        plan.with_rule(index, shorter)))
    return out


def shrink_plan(spec: RunSpec, failing_status: str,
                max_attempts: int = 200) -> ShrinkResult:
    """Greedily minimize ``spec.plan`` while preserving the failure.

    ``failing_status`` is the status the original run produced
    (``stalled`` or ``violation``); a candidate is accepted only when
    it reproduces that exact status, so shrinking never trades one
    failure mode for another.  Terminates at a fixed point (no
    single-step reduction still fails) or after ``max_attempts``
    candidate runs.
    """
    current = spec
    best = execute_run(current)
    if best.status != failing_status:
        raise ValueError(
            f"shrink oracle mismatch: plan produced {best.status!r}, "
            f"expected {failing_status!r}")
    attempts = 1
    removed = 0
    progress = True
    while progress and attempts < max_attempts:
        progress = False
        for _, candidate_plan in _candidates(current.plan):
            if attempts >= max_attempts:
                break
            candidate = replace(current, plan=candidate_plan)
            outcome = execute_run(candidate)
            attempts += 1
            if outcome.status == failing_status:
                current, best = candidate, outcome
                removed += 1
                progress = True
                break  # restart the scan from the smaller plan
    return ShrinkResult(spec=current, result=best, attempts=attempts,
                        removed=removed)
