"""repro.chaos — deterministic fault injection with replay and shrink.

The chaos plane turns the paper's adversary into an executable test
harness.  A seeded, declarative :class:`~repro.chaos.plan.FaultPlan`
describes bounded faults (message drops, duplication, corruption,
delays, transient partitions, server crashes with optional recovery) at
parties the plan designates faulty; a
:class:`~repro.chaos.injector.FaultInjector` executes the plan inside
the simulator, recording every injected fault in the event log and in
observability counters; the campaign runner
(:mod:`repro.chaos.campaign`) sweeps seeds × plans × protocols, checks
atomicity and wait-freedom per run, and serializes failing runs as
replayable reproducers that :mod:`repro.chaos.shrink` minimizes.

Everything is deterministic: the same ``(seed, plan)`` produces the
same event log, and an empty plan is byte-identical to no injector at
all.  See ``docs/ROBUSTNESS.md`` for the fault-model rationale.
"""

from repro.chaos.campaign import (
    RunResult,
    RunSpec,
    STATUS_OK,
    STATUS_STALLED,
    STATUS_VIOLATION,
    build_chaos_cluster,
    campaign_report,
    execute_run,
    load_reproducer,
    replay_reproducer,
    save_reproducer,
    sweep,
)
from repro.chaos.injector import FaultInjector
from repro.chaos.library import BUILTIN_PLANS, DEFAULT_BATTERY, builtin_plan
from repro.chaos.plan import (
    CrashSpec,
    FaultPlan,
    FaultRule,
    PartitionSpec,
    SchedulerSpec,
)
from repro.chaos.shrink import ShrinkResult, shrink_plan

__all__ = [
    "BUILTIN_PLANS",
    "DEFAULT_BATTERY",
    "CrashSpec",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "PartitionSpec",
    "RunResult",
    "RunSpec",
    "STATUS_OK",
    "STATUS_STALLED",
    "STATUS_VIOLATION",
    "SchedulerSpec",
    "ShrinkResult",
    "build_chaos_cluster",
    "builtin_plan",
    "campaign_report",
    "execute_run",
    "load_reproducer",
    "replay_reproducer",
    "save_reproducer",
    "shrink_plan",
    "sweep",
]
