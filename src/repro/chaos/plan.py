"""Declarative fault plans: bounded, seeded, model-respecting faults.

A :class:`FaultPlan` is a *complete, serializable description* of the
faults one run injects — which parties are designated faulty, which of
their messages are dropped, duplicated, corrupted, or delayed (and how
many: every rule carries a budget), whether a transient partition
separates the network (and when it must heal), and which servers crash
(and whether they recover).  Plans are plain data: they JSON round-trip
losslessly, so a failing ``(seed, plan)`` pair is a self-contained
reproducer that replays bit-for-bit (see :mod:`repro.chaos.campaign`).

Every fault kind is constrained so the paper's model still holds:

* drop / duplicate / corrupt / delay apply only to messages touching a
  party the plan *designates faulty* — mangling a faulty party's traffic
  is ordinary Byzantine behaviour, while honest-to-honest channels stay
  reliable, exactly as the model's secure-channels assumption requires;
* delays are finite (a held message is released after a bounded number
  of scheduling decisions) and partitions carry a mandatory heal point,
  so *eventual delivery* — run completeness — is preserved;
* :meth:`FaultPlan.validate` rejects plans whose faulty set exceeds the
  resilience bound ``t`` unless the plan explicitly declares
  ``exceeds_t`` (how the campaign probes the ``n = 3t`` boundary, where
  the paper proves no protocol can survive).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, Optional, Tuple

from repro.common.errors import ConfigurationError

#: Message-level fault kinds a :class:`FaultRule` can inject.
RULE_KINDS = ("drop", "duplicate", "corrupt", "delay")

#: Adversarial scheduler families a plan can compose with
#: (see :func:`repro.net.schedulers.make_scheduler`).
SCHEDULER_NAMES = ("random", "slow-parties", "partition")

#: Fail-stop trigger clocks (see :mod:`repro.faults.failstop`).
CRASH_TRIGGERS = ("messages", "decisions")


@dataclass(frozen=True)
class SchedulerSpec:
    """An adversarial scheduler swept alongside the plan's faults.

    Schedulers re-order (never suppress) deliveries, so they need no
    Byzantine budget: ``slow_servers`` starves the named servers'
    deliveries to last place, and a ``partition`` scheduler deprioritises
    cross-``group`` traffic until ``heal_after`` scheduling decisions
    have passed.  Both preserve eventual delivery, keeping run
    completeness intact — which is why a scheduler entry is legal even
    in plans with an empty faulty set.
    """

    name: str = "random"
    slow_servers: Tuple[int, ...] = ()
    group: Tuple[int, ...] = ()
    heal_after: Optional[int] = None

    def validate(self, n: Optional[int] = None) -> None:
        """Raise :class:`ConfigurationError` on malformed specs."""
        if self.name not in SCHEDULER_NAMES:
            raise ConfigurationError(
                f"unknown scheduler {self.name!r}; choose from "
                f"{SCHEDULER_NAMES}")
        if self.name == "slow-parties" and not self.slow_servers:
            raise ConfigurationError(
                "slow-parties scheduler needs at least one slow server")
        if self.name == "partition":
            if not self.group:
                raise ConfigurationError(
                    "partition scheduler needs a non-empty group")
            if self.heal_after is None or self.heal_after < 1:
                raise ConfigurationError(
                    "partition scheduler must heal: heal_after must be "
                    "a positive decision count")
        for index in self.slow_servers + self.group:
            if index < 1:
                raise ConfigurationError(
                    "scheduler server entries must be 1-based indices")
            if n is not None and index > n:
                raise ConfigurationError(
                    f"scheduler server index {index} outside 1..{n}")

    def build(self, seed: int):
        """Instantiate the scheduler for one run (seeded)."""
        from repro.common.ids import server_id
        from repro.net.schedulers import make_scheduler
        if self.name == "slow-parties":
            return make_scheduler(
                "slow-parties", seed=seed,
                slow_parties={server_id(index)
                              for index in self.slow_servers})
        if self.name == "partition":
            return make_scheduler(
                "partition", seed=seed,
                group={server_id(index) for index in self.group},
                heal_after=self.heal_after)
        return make_scheduler("random", seed=seed)

    def to_json(self) -> Dict[str, Any]:
        """The spec as a plain JSON-serializable dictionary."""
        doc: Dict[str, Any] = {"name": self.name}
        if self.slow_servers:
            doc["slow_servers"] = list(self.slow_servers)
        if self.group:
            doc["group"] = list(self.group)
        if self.heal_after is not None:
            doc["heal_after"] = self.heal_after
        return doc

    @classmethod
    def from_json(cls, doc: Dict[str, Any]) -> "SchedulerSpec":
        """Inverse of :meth:`to_json`."""
        return cls(name=doc.get("name", "random"),
                   slow_servers=tuple(doc.get("slow_servers", ())),
                   group=tuple(doc.get("group", ())),
                   heal_after=doc.get("heal_after"))


@dataclass(frozen=True)
class FaultRule:
    """One bounded message fault at a designated-faulty party.

    The rule matches in-flight messages whose sender *or* recipient is
    server ``party`` (1-based index), optionally narrowed to one message
    type; at most ``limit`` matching messages are affected.  ``delay``
    (for the ``"delay"`` kind) is how many scheduling decisions the
    message is held before re-entering the in-flight bag.
    """

    kind: str
    party: int
    mtype: Optional[str] = None
    limit: int = 1
    delay: int = 0

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on malformed rules."""
        if self.kind not in RULE_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; choose from "
                f"{RULE_KINDS}")
        if self.party < 1:
            raise ConfigurationError(
                f"fault rule party must be a 1-based server index, "
                f"got {self.party}")
        if self.limit < 1:
            raise ConfigurationError(
                f"fault rule budget must be positive, got {self.limit}")
        if self.kind == "delay" and self.delay < 1:
            raise ConfigurationError(
                "delay rules need a positive hold duration (unbounded "
                "delay would violate eventual delivery)")

    def to_json(self) -> Dict[str, Any]:
        """The rule as a plain JSON-serializable dictionary."""
        doc: Dict[str, Any] = {"kind": self.kind, "party": self.party,
                               "limit": self.limit}
        if self.mtype is not None:
            doc["mtype"] = self.mtype
        if self.kind == "delay":
            doc["delay"] = self.delay
        return doc

    @classmethod
    def from_json(cls, doc: Dict[str, Any]) -> "FaultRule":
        """Inverse of :meth:`to_json`."""
        return cls(kind=doc["kind"], party=doc["party"],
                   mtype=doc.get("mtype"), limit=doc.get("limit", 1),
                   delay=doc.get("delay", 0))


@dataclass(frozen=True)
class PartitionSpec:
    """A transient network partition with a mandatory heal point.

    Messages crossing between the servers in ``group`` and the rest of
    the network (including clients) are held until ``heal_at``
    scheduling decisions have occurred, then released in send order.
    The heal point is not optional: a permanent partition would violate
    run completeness, and a run that never completes proves nothing
    about the protocol (wait-freedom is only promised for complete
    runs).
    """

    group: Tuple[int, ...]
    heal_at: int

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on malformed partitions."""
        if not self.group:
            raise ConfigurationError("partition group must be non-empty")
        if any(index < 1 for index in self.group):
            raise ConfigurationError(
                "partition group entries must be 1-based server indices")
        if self.heal_at < 1:
            raise ConfigurationError(
                "partitions must heal: heal_at must be positive")

    def to_json(self) -> Dict[str, Any]:
        """The partition as a plain JSON-serializable dictionary."""
        return {"group": list(self.group), "heal_at": self.heal_at}

    @classmethod
    def from_json(cls, doc: Dict[str, Any]) -> "PartitionSpec":
        """Inverse of :meth:`to_json`."""
        return cls(group=tuple(doc["group"]), heal_at=doc["heal_at"])


@dataclass(frozen=True)
class CrashSpec:
    """A fail-stop crash of one server, optionally recovering.

    The server behaves honestly for its first ``after`` deliveries and
    then goes silent; with ``recover_after`` set, it comes back up once
    that many further messages have reached it while down, replaying
    the buffered backlog (see :mod:`repro.faults.failstop`).

    ``trigger`` selects the clock both points count: ``"messages"``
    (the historical default, counting this server's own deliveries) or
    ``"decisions"`` (the injector's global scheduling-decision counter,
    which keeps advancing while delay or partition holds starve the
    server — so crash/recovery windows compose predictably with them).

    A crash with neither ``recover_after`` nor ``replace_after`` is a
    *permanent* crash: the server stays silent forever and the fleet
    has permanently spent one unit of resilience budget.
    ``replace_after`` instead declares that the fleet must *reconfigure*:
    that many scheduling decisions after the crash point, the repair
    plane (when one is attached — see :mod:`repro.repair`) swaps in a
    fresh member at the same identity and re-disperses its blocks.  The
    two recovery modes are mutually exclusive — a server either comes
    back with its state (fail-recovery) or is replaced amnesiac
    (reconfiguration), never both.
    """

    server: int
    after: int = 0
    recover_after: Optional[int] = None
    trigger: str = "messages"
    replace_after: Optional[int] = None

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on malformed crash specs."""
        if self.server < 1:
            raise ConfigurationError(
                f"crash server must be a 1-based index, got {self.server}")
        if self.after < 0:
            raise ConfigurationError("crash point cannot be negative")
        if self.recover_after is not None and self.recover_after < 1:
            raise ConfigurationError(
                "recover_after must be positive when given")
        if self.replace_after is not None and self.replace_after < 1:
            raise ConfigurationError(
                "replace_after must be positive when given")
        if self.recover_after is not None and self.replace_after is not None:
            raise ConfigurationError(
                "recover_after and replace_after are mutually exclusive: "
                "a server either recovers with its state or is replaced "
                "amnesiac, never both")
        if self.trigger not in CRASH_TRIGGERS:
            raise ConfigurationError(
                f"unknown crash trigger {self.trigger!r}; choose from "
                f"{CRASH_TRIGGERS}")

    def to_json(self) -> Dict[str, Any]:
        """The crash spec as a plain JSON-serializable dictionary.

        The default trigger is omitted so pre-existing reproducer files
        (and their digests) remain stable.
        """
        doc: Dict[str, Any] = {"server": self.server, "after": self.after}
        if self.recover_after is not None:
            doc["recover_after"] = self.recover_after
        if self.trigger != "messages":
            doc["trigger"] = self.trigger
        if self.replace_after is not None:
            doc["replace_after"] = self.replace_after
        return doc

    @classmethod
    def from_json(cls, doc: Dict[str, Any]) -> "CrashSpec":
        """Inverse of :meth:`to_json`."""
        return cls(server=doc["server"], after=doc["after"],
                   recover_after=doc.get("recover_after"),
                   trigger=doc.get("trigger", "messages"),
                   replace_after=doc.get("replace_after"))


@dataclass(frozen=True)
class ByzantineSpec:
    """One server running a registered Byzantine behaviour.

    ``behaviour`` names an entry in
    :data:`repro.faults.byzantine_servers.BYZANTINE_BEHAVIOURS` — an
    AtomicMd server subclass that deviates from the honest code while
    holding only its own key material and channels.  Unlike message
    rules (which mangle traffic in flight), a behaviour replaces the
    party's *code*, so campaigns can sweep malicious members — corrupt
    or withheld blocks, stale or forged metadata — alongside crashes.
    """

    server: int
    behaviour: str

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on malformed specs."""
        if self.server < 1:
            raise ConfigurationError(
                f"byzantine server must be a 1-based index, "
                f"got {self.server}")
        from repro.faults.byzantine_servers import BYZANTINE_BEHAVIOURS
        if self.behaviour not in BYZANTINE_BEHAVIOURS:
            raise ConfigurationError(
                f"unknown byzantine behaviour {self.behaviour!r}; choose "
                f"from {tuple(sorted(BYZANTINE_BEHAVIOURS))}")

    def server_class(self):
        """The registered server subclass implementing the behaviour."""
        from repro.faults.byzantine_servers import BYZANTINE_BEHAVIOURS
        return BYZANTINE_BEHAVIOURS[self.behaviour]

    def to_json(self) -> Dict[str, Any]:
        """The spec as a plain JSON-serializable dictionary."""
        return {"server": self.server, "behaviour": self.behaviour}

    @classmethod
    def from_json(cls, doc: Dict[str, Any]) -> "ByzantineSpec":
        """Inverse of :meth:`to_json`."""
        return cls(server=doc["server"], behaviour=doc["behaviour"])


@dataclass(frozen=True)
class FaultPlan:
    """The complete fault schedule of one chaos run.

    ``faulty`` designates the Byzantine-budget servers (1-based
    indices); every message-level rule and every permanent crash must
    target a designated party, so the honest majority the protocols
    rely on is exactly the undisturbed one.  ``seed`` drives all
    injector randomness (corruption keystreams), making the plan's
    effect a pure function of ``(plan, workload seed)``.
    """

    name: str = "custom"
    seed: int = 0
    faulty: Tuple[int, ...] = ()
    rules: Tuple[FaultRule, ...] = ()
    partition: Optional[PartitionSpec] = None
    crashes: Tuple[CrashSpec, ...] = ()
    #: Servers running registered Byzantine behaviours (code-level
    #: deviation, as opposed to the message-level ``rules``).
    byzantine: Tuple[ByzantineSpec, ...] = ()
    #: Adversarial scheduler composed with the faults (``None`` keeps
    #: the campaign's default seeded random scheduler).
    scheduler: Optional[SchedulerSpec] = None
    #: Declared intent to exceed the resilience bound (used by boundary
    #: probes); without it, :meth:`validate` rejects ``|faulty| > t``.
    exceeds_t: bool = False

    def __post_init__(self) -> None:
        # ``faulty`` is a set of indices; normalize its order so equal
        # plans compare (and serialize) identically.
        object.__setattr__(self, "faulty",
                           tuple(sorted(set(self.faulty))))

    @property
    def empty(self) -> bool:
        """True when the plan injects nothing at all (the control plan:
        attaching it must leave schedules byte-identical).

        A scheduler entry does not count as injection — it changes how
        the run is *built*, not what the injector does — but byte
        identity with uninstrumented runs is only promised for plans
        without one.
        """
        return (not self.rules and self.partition is None
                and not self.crashes and not self.byzantine)

    def validate(self, n: int, t: int) -> None:
        """Check the plan against a deployment; raise on violations.

        Everything that would silently break the model is rejected
        here: out-of-range parties, rules at parties not designated
        faulty, unbounded delays, heal-free partitions, and faulty sets
        larger than ``t`` (unless ``exceeds_t`` declares the plan as a
        deliberate resilience-boundary probe).
        """
        faulty = set(self.faulty)
        for index in sorted(faulty):
            if not 1 <= index <= n:
                raise ConfigurationError(
                    f"faulty server index {index} outside 1..{n}")
        if len(faulty) > t and not self.exceeds_t:
            raise ConfigurationError(
                f"plan designates {len(faulty)} faulty servers but the "
                f"deployment tolerates t={t}; set exceeds_t to probe "
                f"beyond the bound deliberately")
        for rule in self.rules:
            rule.validate()
            if rule.party not in faulty:
                raise ConfigurationError(
                    f"fault rule targets server {rule.party}, which the "
                    f"plan does not designate faulty — faults at honest "
                    f"parties would break the model's channel guarantees")
        if self.partition is not None:
            self.partition.validate()
            if any(index > n for index in self.partition.group):
                raise ConfigurationError(
                    f"partition group exceeds deployment size n={n}")
        seen: set = set()
        for crash in self.crashes:
            crash.validate()
            if not 1 <= crash.server <= n:
                raise ConfigurationError(
                    f"crash server index {crash.server} outside 1..{n}")
            if crash.server in seen:
                raise ConfigurationError(
                    f"server {crash.server} crashed twice in one plan")
            seen.add(crash.server)
            if crash.server not in faulty:
                raise ConfigurationError(
                    f"crashing server {crash.server} requires designating "
                    f"it faulty (a crash is a fault)")
        byz_seen: set = set()
        for spec in self.byzantine:
            spec.validate()
            if not 1 <= spec.server <= n:
                raise ConfigurationError(
                    f"byzantine server index {spec.server} outside 1..{n}")
            if spec.server in byz_seen:
                raise ConfigurationError(
                    f"server {spec.server} assigned two byzantine "
                    f"behaviours in one plan")
            byz_seen.add(spec.server)
            if spec.server in seen:
                raise ConfigurationError(
                    f"server {spec.server} both crashes and runs a "
                    f"byzantine behaviour — one body of deviant code per "
                    f"party")
            if spec.server not in faulty:
                raise ConfigurationError(
                    f"byzantine behaviour at server {spec.server} requires "
                    f"designating it faulty")
        if self.scheduler is not None:
            self.scheduler.validate(n)

    def to_json(self) -> Dict[str, Any]:
        """The plan as a plain JSON-serializable dictionary."""
        doc: Dict[str, Any] = {
            "name": self.name,
            "seed": self.seed,
            "faulty": sorted(self.faulty),
            "rules": [rule.to_json() for rule in self.rules],
            "crashes": [crash.to_json() for crash in self.crashes],
        }
        if self.partition is not None:
            doc["partition"] = self.partition.to_json()
        if self.byzantine:
            doc["byzantine"] = [spec.to_json() for spec in self.byzantine]
        if self.scheduler is not None:
            doc["scheduler"] = self.scheduler.to_json()
        if self.exceeds_t:
            doc["exceeds_t"] = True
        return doc

    @classmethod
    def from_json(cls, doc: Dict[str, Any]) -> "FaultPlan":
        """Inverse of :meth:`to_json` (lossless round-trip)."""
        partition = doc.get("partition")
        scheduler = doc.get("scheduler")
        return cls(
            name=doc.get("name", "custom"),
            seed=doc.get("seed", 0),
            faulty=tuple(doc.get("faulty", ())),
            rules=tuple(FaultRule.from_json(entry)
                        for entry in doc.get("rules", ())),
            partition=(PartitionSpec.from_json(partition)
                       if partition is not None else None),
            crashes=tuple(CrashSpec.from_json(entry)
                          for entry in doc.get("crashes", ())),
            byzantine=tuple(ByzantineSpec.from_json(entry)
                            for entry in doc.get("byzantine", ())),
            scheduler=(SchedulerSpec.from_json(scheduler)
                       if scheduler is not None else None),
            exceeds_t=bool(doc.get("exceeds_t", False)),
        )

    # -- shrink support ------------------------------------------------------

    def without_rule(self, index: int) -> "FaultPlan":
        """A copy with rule ``index`` removed (used by the shrinker)."""
        rules = self.rules[:index] + self.rules[index + 1:]
        return replace(self, rules=rules)

    def without_crash(self, index: int) -> "FaultPlan":
        """A copy with crash ``index`` removed (used by the shrinker)."""
        crashes = self.crashes[:index] + self.crashes[index + 1:]
        return replace(self, crashes=crashes)

    def without_partition(self) -> "FaultPlan":
        """A copy with the partition removed (used by the shrinker)."""
        return replace(self, partition=None)

    def without_byzantine(self, index: int) -> "FaultPlan":
        """A copy with byzantine entry ``index`` removed (used by the
        shrinker)."""
        byzantine = self.byzantine[:index] + self.byzantine[index + 1:]
        return replace(self, byzantine=byzantine)

    def without_scheduler(self) -> "FaultPlan":
        """A copy with the scheduler entry removed (used by the
        shrinker)."""
        return replace(self, scheduler=None)

    def with_rule(self, index: int, rule: FaultRule) -> "FaultPlan":
        """A copy with rule ``index`` replaced (used by the shrinker to
        halve budgets)."""
        rules = self.rules[:index] + (rule,) + self.rules[index + 1:]
        return replace(self, rules=rules)
