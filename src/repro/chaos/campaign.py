"""Chaos campaigns: sweep seeds × plans × protocols, check, reproduce.

A campaign run takes one :class:`RunSpec` — protocol, deployment shape,
workload seed, and a :class:`~repro.chaos.plan.FaultPlan` — executes the
seeded workload with the plan's faults injected, and classifies the
outcome:

* ``ok`` — every operation terminated and the history linearizes;
* ``stalled`` — the network quiesced with an operation still pending
  (a wait-freedom violation);
* ``violation`` — the recorded history admits no atomic order
  (a safety violation, strictly worse than stalling).

Within the resilience bound (``|faulty| <= t``) the paper guarantees
``ok``; a campaign that reports anything else has found a bug — or has
been pointed past the bound on purpose (the ``boundary`` plan), where
``stalled`` is the *expected* outcome.  Either way the run serializes
to a self-contained JSON reproducer (spec + plan) that replays
bit-for-bit: the event-log digest recorded at failure time must match
on replay, which :func:`replay_reproducer` asserts.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.chaos.injector import FaultInjector
from repro.chaos.library import builtin_plan
from repro.chaos.plan import FaultPlan
from repro.cluster import Cluster, build_cluster
from repro.common.errors import (
    AtomicityViolation,
    ConfigurationError,
    SimulationError,
)
from repro.config import SystemConfig
from repro.analysis.history import HistoryRecorder
from repro.faults.failstop import (
    FailStopMartinServer,
    FailStopMdServer,
    FailStopNSServer,
    FailStopServer,
)
from repro.net.schedulers import RandomScheduler
from repro.workloads.generator import random_workload, run_workload

TAG = "reg"

STATUS_OK = "ok"
STATUS_STALLED = "stalled"
STATUS_VIOLATION = "violation"

#: Protocols the campaign can crash servers of (fail-stop subclasses).
FAILSTOP_SERVERS = {
    "atomic": FailStopServer,
    "atomic_ns": FailStopNSServer,
    "atomic_md": FailStopMdServer,
    "martin": FailStopMartinServer,
}


@dataclass(frozen=True)
class RunSpec:
    """One chaos run: a deployment, a workload seed, and a fault plan."""

    protocol: str
    plan: FaultPlan
    n: int = 4
    t: int = 1
    seed: int = 0
    clients: int = 2
    writes: int = 3
    reads: int = 3
    #: erasure threshold, or ``None`` for the protocol's default
    #: (``atomic_md`` resolves to ``t + 1`` — it requires ``k <= n - 2t``)
    k: Optional[int] = None

    def resolved_k(self) -> Optional[int]:
        """The erasure threshold this run deploys with."""
        if self.k is None and self.protocol == "atomic_md":
            return self.t + 1
        return self.k

    def to_json(self) -> Dict[str, Any]:
        """The spec as a plain JSON-serializable dictionary."""
        return {"protocol": self.protocol, "n": self.n, "t": self.t,
                "seed": self.seed, "clients": self.clients,
                "writes": self.writes, "reads": self.reads,
                "k": self.k, "plan": self.plan.to_json()}

    @classmethod
    def from_json(cls, doc: Dict[str, Any]) -> "RunSpec":
        """Inverse of :meth:`to_json`."""
        return cls(protocol=doc["protocol"], n=doc["n"], t=doc["t"],
                   seed=doc["seed"], clients=doc["clients"],
                   writes=doc["writes"], reads=doc["reads"],
                   k=doc.get("k"),
                   plan=FaultPlan.from_json(doc["plan"]))


@dataclass(frozen=True)
class RunResult:
    """Outcome of one chaos run, with its determinism fingerprint."""

    spec: RunSpec
    status: str
    detail: str
    steps: int
    digest: str
    faults: Dict[str, int]

    @property
    def expected(self) -> bool:
        """Whether the outcome matches the model's promise: ``ok``
        within the bound, a failure beyond it (``exceeds_t`` plans)."""
        if self.spec.plan.exceeds_t:
            return self.status != STATUS_OK
        return self.status == STATUS_OK

    def to_json(self) -> Dict[str, Any]:
        """The result as a plain JSON-serializable dictionary."""
        return {"spec": self.spec.to_json(), "status": self.status,
                "detail": self.detail, "steps": self.steps,
                "digest": self.digest, "faults": dict(self.faults),
                "expected": self.expected}


def _crash_overrides(spec: RunSpec):
    """Server overrides implementing the plan's crash schedule."""
    if not spec.plan.crashes:
        return None
    server_cls = FAILSTOP_SERVERS.get(spec.protocol)
    if server_cls is None:
        raise ConfigurationError(
            f"no fail-stop server variant for protocol "
            f"{spec.protocol!r}; choose from "
            f"{sorted(FAILSTOP_SERVERS)}")
    overrides = {}
    for crash in spec.plan.crashes:
        overrides[crash.server] = (
            lambda pid, cfg, _crash=crash: server_cls(
                pid, cfg, crash_after=_crash.after,
                recover_after=_crash.recover_after,
                trigger=_crash.trigger))
    return overrides


def _byzantine_overrides(spec: RunSpec):
    """Server overrides implementing the plan's Byzantine behaviours.

    The registered behaviours are AtomicMd server subclasses, so plans
    carrying them only run against the ``atomic_md`` protocol.
    """
    if not spec.plan.byzantine:
        return None
    if spec.protocol != "atomic_md":
        raise ConfigurationError(
            f"byzantine behaviours are AtomicMd server subclasses; plan "
            f"{spec.plan.name!r} cannot run against protocol "
            f"{spec.protocol!r}")
    return {entry.server: entry.server_class()
            for entry in spec.plan.byzantine}


def build_chaos_cluster(spec: RunSpec) -> Tuple[Cluster, FaultInjector]:
    """A cluster wired for one chaos run: seeded scheduler (the plan's
    adversarial one when present, random otherwise), fail-stop
    overrides for planned crashes, Byzantine behaviour overrides,
    fault injector attached."""
    spec.plan.validate(spec.n, spec.t)
    config = SystemConfig(n=spec.n, t=spec.t, k=spec.resolved_k(),
                          seed=spec.seed)
    if spec.plan.scheduler is not None:
        scheduler = spec.plan.scheduler.build(spec.seed)
    else:
        scheduler = RandomScheduler(spec.seed)
    overrides = dict(_crash_overrides(spec) or {})
    overrides.update(_byzantine_overrides(spec) or {})
    cluster = build_cluster(config, protocol=spec.protocol,
                            num_clients=spec.clients,
                            scheduler=scheduler,
                            server_overrides=overrides or None)
    injector = FaultInjector(spec.plan)
    cluster.simulator.attach_injector(injector)
    return cluster, injector


def _event_log_digest(cluster: Cluster) -> str:
    lines = [repr(event) for event in cluster.simulator.event_log]
    return hashlib.sha256("\n".join(lines).encode()).hexdigest()


def _fault_counts(injector: FaultInjector) -> Dict[str, int]:
    snapshot = injector.instruments.snapshot()
    return {name: summary["value"]
            for name, summary in snapshot.items()
            if summary.get("type") == "counter"}


def execute_run(spec: RunSpec, monitor=None) -> RunResult:
    """Execute one chaos run and classify its outcome.

    The workload is the standard seeded random mix; faults come only
    from the plan.  Wait-freedom is checked first (did every honest
    operation terminate once the network quiesced?), then atomicity of
    whatever history did complete — a safety violation outranks a
    stall.

    ``monitor`` (a :class:`repro.obs.health.HealthMonitor`) is attached
    as the run's tracer before the workload starts and finalized on
    every exit path, so ``repro monitor`` can score server health and
    SLO burn over exactly the run the campaign classified.
    """
    cluster, injector = build_chaos_cluster(spec)
    if monitor is not None:
        monitor.attach(cluster.simulator)
    operations = random_workload(spec.clients, writes=spec.writes,
                                 reads=spec.reads, seed=spec.seed)
    try:
        handles = run_workload(cluster, TAG, operations, seed=spec.seed,
                               require_done=False)
    except SimulationError as exc:
        return RunResult(spec=spec, status=STATUS_STALLED,
                         detail=f"run did not quiesce: {exc}",
                         steps=cluster.simulator.time,
                         digest=_event_log_digest(cluster),
                         faults=_fault_counts(injector))
    finally:
        if monitor is not None:
            monitor.finalize()
    honest = [server.pid for index, server
              in enumerate(cluster.servers, start=1)
              if index not in set(spec.plan.faulty)]
    status, detail = STATUS_OK, "atomic and wait-free"
    try:
        HistoryRecorder(cluster, TAG, honest_servers=honest).check(
            require_done=False)
    except AtomicityViolation as exc:
        status, detail = STATUS_VIOLATION, str(exc)
    if status == STATUS_OK:
        stuck = sorted(oid for oid, handle in handles.items()
                       if not handle.done)
        if stuck:
            status = STATUS_STALLED
            detail = (f"{len(stuck)}/{len(handles)} operations never "
                      f"terminated: {', '.join(stuck)}")
    return RunResult(spec=spec, status=status, detail=detail,
                     steps=cluster.simulator.time,
                     digest=_event_log_digest(cluster),
                     faults=_fault_counts(injector))


def sweep(protocols: Sequence[str], plan_names: Sequence[str],
          seeds: Sequence[int], n: int = 4, t: int = 1,
          clients: int = 2, writes: int = 3, reads: int = 3
          ) -> List[RunResult]:
    """The full campaign grid: every protocol × plan × seed."""
    results = []
    for protocol in protocols:
        for name in plan_names:
            for seed in seeds:
                plan = builtin_plan(name, n, t, seed=seed)
                spec = RunSpec(protocol=protocol, plan=plan, n=n, t=t,
                               seed=seed, clients=clients,
                               writes=writes, reads=reads)
                results.append(execute_run(spec))
    return results


def campaign_report(results: Sequence[RunResult]) -> Dict[str, Any]:
    """Aggregate a sweep into the JSON campaign report.

    ``fault_profile`` sums every injector counter per plan name — the
    per-plan coverage signal (which fault kinds and rules actually
    fired, how often) that coverage-guided plan search keys on.
    """
    by_status: Dict[str, int] = {}
    fault_profile: Dict[str, Dict[str, int]] = {}
    for result in results:
        by_status[result.status] = by_status.get(result.status, 0) + 1
        profile = fault_profile.setdefault(result.spec.plan.name, {})
        for counter, value in result.faults.items():
            profile[counter] = profile.get(counter, 0) + value
    unexpected = [result for result in results if not result.expected]
    return {
        "runs": len(results),
        "by_status": {name: by_status[name]
                      for name in sorted(by_status)},
        "unexpected": len(unexpected),
        "fault_profile": {name: {counter: profile[counter]
                                 for counter in sorted(profile)}
                          for name, profile in
                          sorted(fault_profile.items())},
        "results": [result.to_json() for result in results],
    }


# -- reproducers --------------------------------------------------------------


def save_reproducer(result: RunResult, path) -> None:
    """Serialize a failing run as a self-contained JSON reproducer."""
    document = {
        "comment": "chaos reproducer; replay with "
                   "`python -m repro.cli chaos --replay <file>`",
        "spec": result.spec.to_json(),
        "status": result.status,
        "detail": result.detail,
        "digest": result.digest,
    }
    with open(path, "w", encoding="utf-8") as stream:
        json.dump(document, stream, indent=2, sort_keys=True)
        stream.write("\n")


def load_reproducer(path) -> Tuple[RunSpec, Dict[str, Any]]:
    """Load a reproducer file; returns ``(spec, original document)``."""
    with open(path, encoding="utf-8") as stream:
        document = json.load(stream)
    return RunSpec.from_json(document["spec"]), document


def replay_reproducer(path) -> Tuple[RunResult, bool]:
    """Re-execute a serialized reproducer.

    Returns ``(result, faithful)`` where ``faithful`` means the replay
    reproduced both the recorded failure status and the exact
    event-log digest — the determinism guarantee reproducers exist
    for.
    """
    spec, document = load_reproducer(path)
    result = execute_run(spec)
    faithful = (result.status == document["status"]
                and result.digest == document["digest"])
    return result, faithful
