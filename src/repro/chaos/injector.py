"""The fault injector: executes a plan inside the simulator hot path.

:class:`FaultInjector` is the runtime half of the chaos plane.  The
simulator calls it at exactly two interposition points:

* ``intercept_enqueue(message)`` — every send passes through the
  injector before joining the in-flight bag.  The injector returns the
  messages that actually enter the network: the original (no fault),
  nothing (dropped or held), the original plus a fresh-id copy
  (duplicated), or a corrupted replacement.
* ``before_choose()`` — called before every scheduling decision; due
  held messages (expired delays, healed partitions) re-enter the bag
  here, and when the bag would otherwise be empty the earliest held
  message is force-released so eventual delivery can never be starved.

Every injected fault is recorded twice: as an ``EVENT_CHAOS`` entry in
the simulator's event log (the same log golden-schedule digests and
replay compare, so fault schedules are part of a run's identity) and as
a counter in an observability :class:`~repro.obs.instruments.Registry`
(``chaos.injected[drop]``, ``chaos.released[delay]``, ...).

With an empty plan the injector admits every message untouched, draws
no randomness, and records nothing — attaching it is byte-identical to
not attaching it, which the golden-schedule tests pin.
"""

from __future__ import annotations

import hashlib
import random
from typing import List, Optional, Tuple

from repro.chaos.plan import FaultPlan
from repro.common.errors import SimulationError
from repro.common.ids import PartyId, server_id
from repro.net.message import Message
from repro.obs.instruments import Registry


class FaultInjector:
    """Applies a :class:`~repro.chaos.plan.FaultPlan` to one simulation.

    Attach with :meth:`Simulator.attach_injector
    <repro.net.simulator.Simulator.attach_injector>` before the run;
    one injector serves one run.  All randomness comes from the plan's
    seed, so the injected fault schedule is a deterministic function of
    ``(plan, workload)``.
    """

    def __init__(self, plan: FaultPlan,
                 instruments: Optional[Registry] = None):
        self.plan = plan
        #: Per-fault-kind counters (``chaos.injected[...]``/
        #: ``chaos.released[...]``), exported with the campaign report.
        self.instruments = instruments if instruments is not None \
            else Registry()
        self._simulator = None
        self._rng = random.Random(plan.seed)
        self._budgets: List[int] = [rule.limit for rule in plan.rules]
        #: Delay-held messages as ``(release_at_decision, message)``,
        #: kept in hold order.
        self._delayed: List[Tuple[int, Message]] = []
        #: Partition-held messages, in send order.
        self._partitioned: List[Message] = []
        self._decisions = 0
        self._faulty_pids: frozenset = frozenset(
            server_id(index) for index in plan.faulty)
        self._partition_pids: frozenset = frozenset(
            server_id(index) for index in plan.partition.group) \
            if plan.partition is not None else frozenset()

    def bind(self, simulator) -> None:
        """Called by :meth:`Simulator.attach_injector`; one-shot."""
        if self._simulator is not None:
            raise SimulationError(
                "fault injector already bound to a simulator")
        self._simulator = simulator

    # -- state the simulator queries ----------------------------------------

    @property
    def held_count(self) -> int:
        """Messages currently held back (delayed or partitioned); the
        simulator counts these as undelivered."""
        return len(self._delayed) + len(self._partitioned)

    @property
    def decisions(self) -> int:
        """Scheduling decisions observed so far (the injector's clock)."""
        return self._decisions

    # -- interposition points ------------------------------------------------

    def intercept_enqueue(self, message: Message) -> Tuple[Message, ...]:
        """Map one sent message to the messages actually admitted now.

        Fault rules are consulted in plan order; the first rule with
        remaining budget that matches the message applies.  A held
        message (delay, partition) is admitted later by
        :meth:`before_choose`; a dropped message never enters the
        network at all (and is never counted by metrics — a message a
        Byzantine party never sent was never on the wire).
        """
        if self._crosses_partition(message):
            self._partitioned.append(message)
            self._record("partition-hold", message)
            return ()
        for index, rule in enumerate(self.plan.rules):
            if self._budgets[index] <= 0:
                continue
            if not self._matches(rule, message):
                continue
            self._budgets[index] -= 1
            # Per-rule firing profile: which plan entry consumed budget
            # (the coverage signal plan search mutates toward).
            self.instruments.counter(
                f"chaos.rule[{index}:{rule.kind}]").inc()
            if rule.kind == "drop":
                self._record("drop", message)
                return ()
            if rule.kind == "duplicate":
                self._record("duplicate", message)
                return (message, self._clone(message))
            if rule.kind == "corrupt":
                corrupted = self._corrupt(message)
                # Fingerprint the garbage actually sent: the event log
                # then pins the exact corruption, not just its victim,
                # so replay digests cover the keystream too.
                fingerprint = hashlib.sha256(
                    repr(corrupted.payload).encode()).hexdigest()[:16]
                self._record("corrupt", message, extra=(fingerprint,))
                return (corrupted,)
            self._delayed.append(
                (self._decisions + rule.delay, message))
            self._record("delay", message)
            return ()
        return (message,)

    def before_choose(self) -> None:
        """Advance the injector clock and release due held messages.

        Called by the simulator before every scheduling decision.  When
        the in-flight bag is empty but messages are still held, the
        earliest held message is released immediately — holds may
        reorder delivery, never prevent it (eventual delivery).
        """
        self._decisions += 1
        partition = self.plan.partition
        if (self._partitioned and partition is not None
                and self._decisions >= partition.heal_at):
            released, self._partitioned = self._partitioned, []
            for message in released:
                self._release("partition-heal", message)
        if self._delayed:
            # Different rules hold for different durations, so the list
            # is not sorted by release time: scan it (it is small —
            # every delay rule carries a finite budget).
            due = [entry for entry in self._delayed
                   if entry[0] <= self._decisions]
            if due:
                self._delayed = [entry for entry in self._delayed
                                 if entry[0] > self._decisions]
                for _, message in due:
                    self._release("delay-expired", message)
        if (self._simulator is not None
                and not self._simulator.pending_count):
            # Nothing deliverable: force-release the oldest held
            # message so the run can always make progress.
            if self._delayed:
                _, message = self._delayed.pop(0)
                self._release("forced", message)
            elif self._partitioned:
                message = self._partitioned.pop(0)
                self._release("forced", message)

    # -- fault mechanics ------------------------------------------------------

    def _matches(self, rule, message: Message) -> bool:
        pid = server_id(rule.party)
        if message.sender != pid and message.recipient != pid:
            return False
        if rule.mtype is not None and message.mtype != rule.mtype:
            return False
        if rule.kind == "corrupt" and not any(
                isinstance(element, (bytes, bytearray)) and element
                for element in message.payload):
            return False  # nothing corruptible: leave budget for later
        return True

    def _clone(self, message: Message) -> Message:
        """A duplicate copy with a fresh ``msg_id`` (duplicates must stay
        distinguishable in traces and scheduler state)."""
        copy = Message(tag=message.tag, mtype=message.mtype,
                       sender=message.sender,
                       recipient=message.recipient,
                       payload=message.payload,
                       msg_id=self._simulator._fresh_msg_id(),
                       depth=message.depth, cause_id=message.cause_id)
        return copy

    def _corrupt(self, message: Message) -> Message:
        """A replacement message with every bytes payload element XORed
        against the plan-seeded keystream (same ``msg_id``: the network
        delivered *something* for this send, just not what was sent).
        """
        mutated = []
        for element in message.payload:
            if isinstance(element, (bytes, bytearray)) and element:
                data = bytearray(element)
                # First byte XORs a non-zero octet, so the corrupted
                # value is guaranteed to differ from the original.
                data[0] ^= self._rng.randrange(1, 256)
                for position in range(1, len(data)):
                    data[position] ^= self._rng.randrange(256)
                mutated.append(bytes(data))
            else:
                mutated.append(element)
        return Message(tag=message.tag, mtype=message.mtype,
                       sender=message.sender,
                       recipient=message.recipient,
                       payload=tuple(mutated), msg_id=message.msg_id,
                       depth=message.depth, cause_id=message.cause_id)

    # -- bookkeeping ----------------------------------------------------------

    def _event_party(self, message: Message) -> PartyId:
        """The party a fault is attributed to: the designated-faulty
        endpoint when there is one, else the recipient."""
        if message.sender in self._faulty_pids:
            return message.sender
        if message.recipient in self._faulty_pids:
            return message.recipient
        return message.recipient

    def _record(self, action: str, message: Message,
                extra: Tuple = ()) -> None:
        self.instruments.counter(f"chaos.injected[{action}]").inc()
        if self._simulator is not None:
            self._simulator.record_chaos(
                self._event_party(message), message.tag, action,
                (message.msg_id, message.mtype, str(message.sender),
                 str(message.recipient)) + extra)

    def _release(self, reason: str, message: Message) -> None:
        self.instruments.counter(f"chaos.released[{reason}]").inc()
        if self._simulator is not None:
            self._simulator.record_chaos(
                self._event_party(message), message.tag,
                f"release[{reason}]",
                (message.msg_id, message.mtype, str(message.sender),
                 str(message.recipient)))
            self._simulator._admit(message)

    def _crosses_partition(self, message: Message) -> bool:
        if self.plan.partition is None:
            return False
        if self._decisions >= self.plan.partition.heal_at:
            return False
        return ((message.sender in self._partition_pids)
                != (message.recipient in self._partition_pids))
