"""Built-in fault plans: the campaign's standard probe battery.

Each builder takes the deployment shape ``(n, t)`` plus a plan seed and
returns a :class:`~repro.chaos.plan.FaultPlan` scaled to it.  The
battery covers every fault kind the injector supports, one kind per
plan plus a mixed plan, and two special entries:

* ``"none"`` — the control plan: injects nothing; attaching it must
  leave schedules byte-identical (pinned by the golden-schedule tests);
* ``"boundary"`` — deliberately crashes ``t + 1`` servers
  (``exceeds_t``), modelling an ``n = 3t`` deployment inside an
  ``n = 3t + 1`` one.  The paper proves no protocol survives this, so
  the campaign *expects* a wait-freedom violation here — finding one is
  the negative control that proves the harness can detect failures.

Within-budget plans designate the *last* server faulty (index ``n``),
keeping servers ``1..n-1`` honest; all fault budgets are small
constants, so honest quorums of ``n - t`` remain reachable and every
within-budget run must stay atomic and wait-free.
"""

from __future__ import annotations

from typing import Tuple

from repro.chaos.plan import (
    CrashSpec,
    FaultPlan,
    FaultRule,
    PartitionSpec,
    SchedulerSpec,
)
from repro.common.errors import ConfigurationError

#: Names accepted by :func:`builtin_plan`, in presentation order.
BUILTIN_PLANS: Tuple[str, ...] = (
    "none", "drops", "duplicates", "corruption", "delays",
    "partition", "crash", "crash-recover", "mixed",
    "slow-server", "sched-partition", "churn", "boundary",
)

#: The battery a default campaign sweeps: everything except the
#: deliberately-failing boundary probe (requested via ``--boundary``).
DEFAULT_BATTERY: Tuple[str, ...] = BUILTIN_PLANS[:-1]


def builtin_plan(name: str, n: int, t: int, seed: int = 0) -> FaultPlan:
    """The built-in plan ``name`` scaled to an ``(n, t)`` deployment."""
    faulty = (n,)
    if name == "none":
        return FaultPlan(name=name, seed=seed)
    if name == "drops":
        return FaultPlan(name=name, seed=seed, faulty=faulty, rules=(
            FaultRule(kind="drop", party=n, limit=4),))
    if name == "duplicates":
        return FaultPlan(name=name, seed=seed, faulty=faulty, rules=(
            FaultRule(kind="duplicate", party=n, limit=4),))
    if name == "corruption":
        return FaultPlan(name=name, seed=seed, faulty=faulty, rules=(
            FaultRule(kind="corrupt", party=n, limit=4),))
    if name == "delays":
        return FaultPlan(name=name, seed=seed, faulty=faulty, rules=(
            FaultRule(kind="delay", party=n, limit=5, delay=25),))
    if name == "partition":
        # Briefly isolate one honest server: pure asynchrony, no party
        # misbehaves, so no faulty designation is needed.
        return FaultPlan(name=name, seed=seed,
                         partition=PartitionSpec(group=(1,), heal_at=40))
    if name == "crash":
        return FaultPlan(name=name, seed=seed, faulty=faulty, crashes=(
            CrashSpec(server=n, after=5),))
    if name == "crash-recover":
        return FaultPlan(name=name, seed=seed, faulty=faulty, crashes=(
            CrashSpec(server=n, after=5, recover_after=10),))
    if name == "mixed":
        return FaultPlan(
            name=name, seed=seed, faulty=faulty,
            rules=(FaultRule(kind="drop", party=n, limit=2),
                   FaultRule(kind="corrupt", party=n, limit=2),
                   FaultRule(kind="duplicate", party=n, limit=2),
                   FaultRule(kind="delay", party=n, limit=3, delay=15)),
            partition=PartitionSpec(group=(1,), heal_at=50))
    if name == "slow-server":
        # Compose an adversarial scheduler with message faults: the
        # designated party's traffic is starved to last place *and*
        # some of it is dropped — exercising quorum formation among the
        # remaining honest servers under worst-case ordering.
        return FaultPlan(
            name=name, seed=seed, faulty=faulty,
            rules=(FaultRule(kind="drop", party=n, limit=2),),
            scheduler=SchedulerSpec(name="slow-parties",
                                    slow_servers=faulty))
    if name == "sched-partition":
        # Scheduler-level partition: cross-group traffic is starved
        # (never suppressed) until the heal point, so no Byzantine
        # budget is spent — pure adversarial asynchrony.
        return FaultPlan(
            name=name, seed=seed,
            scheduler=SchedulerSpec(name="partition", group=(1,),
                                    heal_after=60))
    if name == "churn":
        # Permanent crash plus a replacement deadline: the server dies
        # for good and the fleet is expected to reconfigure.  Without a
        # repair plane attached the crash degrades to permanent — still
        # within budget, so the run must stay atomic and wait-free on
        # the surviving n - 1 servers; with one (see repro.repair) the
        # dead member is swapped and re-dispersed mid-run.  The
        # decisions clock makes the crash and replacement points
        # compose predictably with delays and partitions.
        return FaultPlan(name=name, seed=seed, faulty=faulty, crashes=(
            CrashSpec(server=n, after=30, trigger="decisions",
                      replace_after=40),))
    if name == "boundary":
        # Fail-stop t+1 servers from delivery zero: only n - t - 1 < n - t
        # honest servers remain, so no quorum can ever form — the n = 3t
        # impossibility made executable.
        victims = tuple(range(n - t, n + 1))
        return FaultPlan(
            name=name, seed=seed, faulty=victims, exceeds_t=True,
            crashes=tuple(CrashSpec(server=index, after=0)
                          for index in victims))
    raise ConfigurationError(
        f"unknown builtin plan {name!r}; choose from {BUILTIN_PLANS}")
