"""Deterministic, insertion-ordered LRU caching.

The hot-path kernels (erasure decode plans, hash vectors, Merkle levels,
wire-size accounting) memoize pure computations whose inputs recur
constantly across a sweep.  All of them share this cache class rather
than ``functools.lru_cache`` for two reasons the determinism lint
enforces:

* **Replayable state.** The cache is an explicit object owned by the
  component that uses it, so a fresh coder/simulator starts cold and two
  seeded runs see identical hit/miss sequences.  ``functools`` caches
  hang off module-level functions and leak state across runs within one
  process, which couples experiment timings to execution history.
* **Insertion-ordered eviction.** Entries live in a plain ``dict``
  (insertion-ordered by language guarantee); a hit re-inserts the key at
  the back, so the front is always the least-recently-used entry and
  eviction order is a pure function of the call sequence — never of hash
  seeds or interpreter memory layout.

Values are returned as stored: callers memoizing mutable results must
store immutable snapshots (``bytes``, ``tuple``) or defensively copy.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Hashable

_MISSING = object()


class LruCache:
    """A bounded mapping with deterministic least-recently-used eviction.

    ``capacity`` bounds the entry count; inserting beyond it evicts the
    least-recently-used key.  ``hits`` / ``misses`` counters are exposed
    for benchmark reporting (they never influence behaviour).
    """

    __slots__ = ("_data", "capacity", "hits", "misses")

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError(f"LRU capacity must be >= 1, got {capacity}")
        self._data: Dict[Hashable, Any] = {}
        self.capacity = capacity
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Return the cached value (refreshing its recency) or ``default``."""
        value = self._data.pop(key, _MISSING)
        if value is _MISSING:
            self.misses += 1
            return default
        # Re-insert at the back: most recently used.
        self._data[key] = value
        self.hits += 1
        return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert/overwrite ``key``, evicting the LRU entry when full."""
        self._data.pop(key, None)
        self._data[key] = value
        if len(self._data) > self.capacity:
            # dicts iterate in insertion order, so the first key is the
            # least recently used.
            oldest = next(iter(self._data))
            del self._data[oldest]

    def get_or_compute(self, key: Hashable,
                       factory: Callable[[], Any]) -> Any:
        """Return the cached value, computing and storing it on a miss."""
        value = self.get(key, _MISSING)
        if value is _MISSING:
            value = factory()
            self.put(key, value)
        return value

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        self._data.clear()

    def stats(self) -> Dict[str, int]:
        """Hit/miss/size counters for benchmark reports."""
        return {"hits": self.hits, "misses": self.misses,
                "size": len(self._data), "capacity": self.capacity}


def memoize_unary(capacity: int) -> Callable[[Callable[[Any], Any]],
                                             Callable[[Any], Any]]:
    """Decorator: memoize a unary pure function through an
    :class:`LruCache`.

    The cache is attached to the wrapper as ``cache`` so tests and
    benchmarks can inspect or clear it.  Unhashable arguments bypass the
    cache (computed directly), so decorating a function never narrows
    the inputs it accepts.
    """
    def decorate(function: Callable[[Any], Any]) -> Callable[[Any], Any]:
        cache = LruCache(capacity)

        def wrapper(argument: Any) -> Any:
            try:
                value = cache.get(argument, _MISSING)
            except TypeError:  # unhashable argument
                return function(argument)
            if value is _MISSING:
                value = function(argument)
                cache.put(argument, value)
            return value

        wrapper.cache = cache  # type: ignore[attr-defined]
        wrapper.__wrapped__ = function  # type: ignore[attr-defined]
        wrapper.__doc__ = function.__doc__
        wrapper.__name__ = function.__name__
        return wrapper
    return decorate
