"""Shared primitives: party identifiers, tags, serialization, and errors."""

from repro.common.errors import (
    AtomicityViolation,
    ConfigurationError,
    CryptoError,
    DealingError,
    DecodingError,
    InvalidShare,
    InvalidSignature,
    LivenessError,
    ProtocolError,
    ReproError,
    SerializationError,
    SimulationError,
)
from repro.common.ids import (
    CLIENT,
    SERVER,
    PartyId,
    client_id,
    parent_tag,
    server_id,
    server_ids,
    subtag,
)
from repro.common.serialization import (
    decode,
    encode,
    encoded_size,
    register_wire_type,
)

__all__ = [
    "AtomicityViolation",
    "ConfigurationError",
    "CryptoError",
    "DealingError",
    "DecodingError",
    "InvalidShare",
    "InvalidSignature",
    "LivenessError",
    "ProtocolError",
    "ReproError",
    "SerializationError",
    "SimulationError",
    "CLIENT",
    "SERVER",
    "PartyId",
    "client_id",
    "parent_tag",
    "server_id",
    "server_ids",
    "subtag",
    "decode",
    "encode",
    "encoded_size",
    "register_wire_type",
]
