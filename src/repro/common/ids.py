"""Party identifiers and protocol-instance tags.

The system model (paper, Section 2.1) has ``n`` servers ``P_1 .. P_n`` and an
unbounded set of clients ``C_1, C_2, ...``.  Every protocol instance is
identified by a unique string *tag* ``ID``; sub-protocol instances carry the
caller's tag as a prefix (e.g. ``ID|disp.oid`` for the Disperse instance of
the write with operation identifier ``oid``).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.common.serialization import register_wire_type

SERVER = "server"
CLIENT = "client"

#: Separator between the components of hierarchical tags.
TAG_SEP = "|"


@register_wire_type
@dataclass(frozen=True, order=True)
class PartyId:
    """Identity of a server or client process.

    ``PartyId`` values are ordered (servers before clients, then by index),
    hashable, and render as the paper's names ``P<j>`` / ``C<i>``.
    """

    kind: str
    index: int

    def __post_init__(self) -> None:
        if self.kind not in (SERVER, CLIENT):
            raise ValueError(f"unknown party kind: {self.kind!r}")
        if self.index < 1:
            raise ValueError("party indices are 1-based")
        # Derived values are precomputed eagerly: party ids key nearly
        # every dict in the simulator (inboxes, metrics, quorum states)
        # and handlers branch on ``is_server`` for every delivery, so
        # these are among the hottest lookups in a run.  Safe because the
        # instance is frozen; stored in ``__dict__`` so they stay
        # invisible to dataclass equality/repr and the wire format.
        # ``_hash`` equals the value the generated dataclass hash would
        # produce.
        memo = self.__dict__
        memo["_hash"] = hash((self.kind, self.index))
        memo["is_server"] = self.kind == SERVER
        memo["is_client"] = self.kind == CLIENT

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:
        prefix = "P" if self.is_server else "C"
        return f"{prefix}{self.index}"

    def __repr__(self) -> str:
        return str(self)


def server_id(j: int) -> PartyId:
    """Return the identity of server ``P_j`` (1-based, as in the paper)."""
    return PartyId(SERVER, j)


def client_id(i: int) -> PartyId:
    """Return the identity of client ``C_i`` (1-based, as in the paper)."""
    return PartyId(CLIENT, i)


def server_ids(n: int) -> list[PartyId]:
    """Return the identities of all ``n`` servers ``P_1 .. P_n``."""
    return [server_id(j) for j in range(1, n + 1)]


def subtag(tag: str, *components: str) -> str:
    """Build a sub-protocol tag with the caller's tag as prefix.

    ``subtag("reg", "disp.oid7")`` returns ``"reg|disp.oid7"``, matching the
    paper's notation ``ID|disp.oid``.
    """
    for component in components:
        if not component:
            raise ValueError("tag components must be non-empty")
    return TAG_SEP.join((tag, *components))


def parent_tag(tag: str) -> str:
    """Return the tag of the invoking protocol instance.

    Raises :class:`ValueError` if ``tag`` has no parent (it is top-level).
    """
    head, sep, _ = tag.rpartition(TAG_SEP)
    if not sep:
        raise ValueError(f"tag {tag!r} is top-level")
    return head


# dataclasses.replace is re-exported for convenience when deriving ids.
replace = dataclasses.replace
