"""Canonical, deterministic binary serialization.

Communication complexity in the paper (Section 2.1) is defined as the *bit
length of all messages* associated with a protocol instance.  To measure it
faithfully, every message payload in the simulator is encoded with the
canonical encoding defined here, and the byte length of the encoding is what
the metrics plane records.

The encoding is self-describing and deterministic: equal values always
produce identical byte strings (dict entries are sorted by encoded key), so
it is also safe to hash encodings for content addressing.

Supported values: ``None``, ``bool``, ``int`` (arbitrary precision),
``bytes``, ``str``, ``list``, ``tuple``, ``dict``, and any dataclass
registered with :func:`register_wire_type`.
"""

from __future__ import annotations

import dataclasses
import struct
from typing import Any, Callable

from repro.common.errors import SerializationError
from repro.common.lru import LruCache

_U32 = struct.Struct(">I")

#: Canonical encodings memoized by value.  Protocols re-encode the same
#: grouping keys ``(commitment, client)`` / ``(value, timestamp)`` on
#: every handler activation, and the metrics plane re-sizes equal
#: payloads; encoding is a pure function of the value, so equal inputs
#: may share the cached bytes.  See :func:`_cache_key` for why keys are
#: not the values themselves.
_ENCODE_CACHE = LruCache(capacity=1024)

# Key sentinels: ``True == 1`` and ``False == 0`` in Python, but they
# encode differently (``T``/``F`` vs ``i``), so bools must map to keys
# that can never collide with ints.  The dataclass marker likewise keeps
# expanded wire-type fields from colliding with look-alike raw tuples.
_TRUE_KEY = object()
_FALSE_KEY = object()
_DATACLASS_KEY = object()


def _cache_key(value: Any) -> Any:
    """A hashable key that is equal only for identically-encoding values.

    Bools become private sentinels; tuples recurse; registered wire
    types expand to (marker, class, field keys).  Everything else is
    keyed by the value itself — unhashable inputs (lists, dicts,
    bytearrays) make the key unhashable too, which callers treat as
    "do not cache".

    Wire-type instances memoize their expanded key in their instance
    dict: they are frozen (fields never change after construction) and
    long-lived — party identities and timestamps recur in nearly every
    payload — so the expansion runs once per object, not per encode.
    """
    kind = type(value)
    if kind is bytes or kind is int or kind is str or value is None:
        return value
    if kind is bool:
        return _TRUE_KEY if value else _FALSE_KEY
    if kind is tuple:
        for item in value:
            item_kind = type(item)
            if (item_kind is not bytes and item_kind is not int
                    and item_kind is not str and item is not None):
                return tuple([_cache_key(item) for item in value])
        # A tuple of primitive leaves (no bools, no nested structure) is
        # its own key — the common case for commitment digest vectors.
        return value
    name = _WIRE_NAMES_BY_TYPE.get(kind)
    if name is not None:
        try:
            memo = value.__dict__
            return memo["_encode_cache_key"]
        except (AttributeError, KeyError):
            pass
        fields = _WIRE_TYPES_BY_NAME[name][1]
        key = (_DATACLASS_KEY, kind,
               tuple([_cache_key(getattr(value, field))
                      for field in fields]))
        try:
            # Bypasses the frozen-dataclass __setattr__ guard; invisible
            # to dataclasses.fields/eq/repr, so the wire format is
            # untouched.  Slotted classes simply skip the memo.
            memo["_encode_cache_key"] = key
        except (NameError, TypeError):  # pragma: no cover
            pass
        return key
    return value

# Registered wire types: name -> (class, field names); class -> name.
_WIRE_TYPES_BY_NAME: dict[str, tuple[type, tuple[str, ...]]] = {}
_WIRE_NAMES_BY_TYPE: dict[type, str] = {}


def register_wire_type(cls: type) -> type:
    """Class decorator: make a dataclass canonically serializable.

    The class is encoded as its qualified name plus its dataclass fields in
    declaration order.  Field values must themselves be serializable.

    Re-registering the same class is an idempotent no-op (safe under
    module reloads); re-registering the same qualified name with a
    *different* class raises :class:`SerializationError` — silently
    clobbering the registry would let two incompatible layouts decode
    each other's bytes.
    """
    if not dataclasses.is_dataclass(cls):
        raise SerializationError(f"{cls!r} is not a dataclass")
    name = f"{cls.__module__}.{cls.__qualname__}"
    existing = _WIRE_TYPES_BY_NAME.get(name)
    if existing is not None and existing[0] is not cls:
        raise SerializationError(
            f"wire type name {name!r} is already registered to "
            f"{existing[0]!r}; refusing to re-register it as {cls!r}")
    fields = tuple(f.name for f in dataclasses.fields(cls))
    _WIRE_TYPES_BY_NAME[name] = (cls, fields)
    _WIRE_NAMES_BY_TYPE[cls] = name
    return cls


def _encode_int(value: int, out: list[bytes]) -> None:
    length = (value.bit_length() + 8) // 8  # +8 keeps a sign bit
    payload = value.to_bytes(length, "big", signed=True)
    out.append(b"i")
    out.append(_U32.pack(len(payload)))
    out.append(payload)


def _encode(value: Any, out: list[bytes]) -> None:
    if value is None:
        out.append(b"N")
    elif value is True:
        out.append(b"T")
    elif value is False:
        out.append(b"F")
    elif isinstance(value, int):
        _encode_int(value, out)
    elif isinstance(value, (bytes, bytearray, memoryview)):
        data = bytes(value)
        out.append(b"b")
        out.append(_U32.pack(len(data)))
        out.append(data)
    elif isinstance(value, str):
        data = value.encode("utf-8")
        out.append(b"s")
        out.append(_U32.pack(len(data)))
        out.append(data)
    elif isinstance(value, (list, tuple)):
        out.append(b"l" if isinstance(value, list) else b"t")
        out.append(_U32.pack(len(value)))
        for item in value:
            _encode(item, out)
    elif isinstance(value, dict):
        entries = sorted((encode(key), key, val) for key, val in value.items())
        out.append(b"d")
        out.append(_U32.pack(len(entries)))
        for encoded_key, _, val in entries:
            out.append(encoded_key)
            _encode(val, out)
    elif type(value) in _WIRE_NAMES_BY_TYPE:
        name = _WIRE_NAMES_BY_TYPE[type(value)]
        _, fields = _WIRE_TYPES_BY_NAME[name]
        name_bytes = name.encode("utf-8")
        out.append(b"r")
        out.append(_U32.pack(len(name_bytes)))
        out.append(name_bytes)
        for field in fields:
            _encode(getattr(value, field), out)
    else:
        raise SerializationError(
            f"cannot canonically serialize {type(value).__name__}: {value!r}"
        )


def encode(value: Any) -> bytes:
    """Return the canonical encoding of ``value``.

    Successful encodings are memoized by value (equal values always
    yield identical byte strings); unhashable or unserializable inputs
    bypass the cache.
    """
    try:
        key = _cache_key(value)
        cached = _ENCODE_CACHE.get(key)
    except TypeError:  # unhashable somewhere inside: encode directly
        key = cached = None
    if cached is not None:
        return cached
    out: list[bytes] = []
    _encode(value, out)
    data = b"".join(out)
    if key is not None:
        _ENCODE_CACHE.put(key, data)
    return data


def encoded_size(value: Any) -> int:
    """Return ``len(encode(value))`` — the value's wire size in bytes."""
    return len(encode(value))


class _Decoder:
    def __init__(self, data: bytes):
        self._data = data
        self._pos = 0

    def _take(self, count: int) -> bytes:
        end = self._pos + count
        if end > len(self._data):
            raise SerializationError("truncated encoding")
        chunk = self._data[self._pos : end]
        self._pos = end
        return chunk

    def _take_u32(self) -> int:
        return _U32.unpack(self._take(4))[0]

    def decode(self) -> Any:
        tag = self._take(1)
        if tag == b"N":
            return None
        if tag == b"T":
            return True
        if tag == b"F":
            return False
        if tag == b"i":
            return int.from_bytes(self._take(self._take_u32()), "big", signed=True)
        if tag == b"b":
            return self._take(self._take_u32())
        if tag == b"s":
            return self._take(self._take_u32()).decode("utf-8")
        if tag == b"l":
            return [self.decode() for _ in range(self._take_u32())]
        if tag == b"t":
            return tuple(self.decode() for _ in range(self._take_u32()))
        if tag == b"d":
            count = self._take_u32()
            result = {}
            for _ in range(count):
                key = self.decode()
                result[key] = self.decode()
            return result
        if tag == b"r":
            name = self._take(self._take_u32()).decode("utf-8")
            try:
                cls, fields = _WIRE_TYPES_BY_NAME[name]
            except KeyError:
                raise SerializationError(f"unknown wire type {name!r}") from None
            values = {field: self.decode() for field in fields}
            return cls(**values)
        raise SerializationError(f"unknown type tag {tag!r}")

    def finished(self) -> bool:
        return self._pos == len(self._data)


def decode(data: bytes) -> Any:
    """Decode a value previously produced by :func:`encode`."""
    decoder = _Decoder(data)
    value = decoder.decode()
    if not decoder.finished():
        raise SerializationError("trailing bytes after encoding")
    return value
