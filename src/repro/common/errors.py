"""Exception hierarchy for the repro library.

All library-specific errors derive from :class:`ReproError` so applications
can catch everything from this package with a single ``except`` clause.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A protocol or subsystem was configured with invalid parameters.

    Examples: an ``(n, k)`` erasure code with ``k > n``, a register protocol
    instantiated with ``n <= 3t``, or a threshold scheme with ``t >= n``.
    """


class SerializationError(ReproError):
    """A value could not be canonically serialized or deserialized."""


class DecodingError(ReproError):
    """An erasure decode was attempted with insufficient or invalid blocks."""


class CryptoError(ReproError):
    """Base class for cryptographic failures."""


class InvalidSignature(CryptoError):
    """A signature or signature share failed verification."""


class InvalidShare(CryptoError):
    """A threshold-signature share failed share verification."""


class DealingError(CryptoError):
    """Threshold key generation (dealing) failed or was misused."""


class ProtocolError(ReproError):
    """A protocol received a message that violates its specification.

    Honest parties never raise this for messages from other honest parties;
    it signals either Byzantine input that must be discarded or a bug.
    """


class SimulationError(ReproError):
    """The network simulator was driven into an invalid state."""


class LivenessError(SimulationError):
    """A run ended while an operation invoked at an honest client is pending.

    Raised by test harnesses that require every invoked operation to
    terminate (the wait-freedom property of Definition 1).
    """


class BackpressureError(SimulationError):
    """A key-value session refused a new operation because its queue is full.

    Raised by :class:`repro.kv.session.KvSession` when admission control
    rejects an enqueue instead of growing the operation queue without
    bound; callers should drain in-flight operations (drive the simulator)
    and resubmit.
    """


class AtomicityViolation(ReproError):
    """A recorded history admits no valid atomic (linearizable) total order."""
