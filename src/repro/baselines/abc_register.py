"""Comparator: registers serialized by atomic broadcast (paper §3.4).

The paper notes that an atomic register "might be based on other
techniques (e.g., atomic broadcast from the clients to the servers to
serialize the operations)".  This module builds exactly that register so
the cost difference is measurable (experiment F13): every operation —
writes *and* reads — is totally ordered by the randomized atomic
broadcast stack (reliable broadcast + binary agreement + common subset),
then applied to replicated state.

Atomicity is trivial (one total order); the price is steep: every
operation costs a consensus round (``O(n^2)``-message RBCs plus ``n``
binary-agreement instances, each with coin rounds), full replication,
and reads as expensive as writes.  Clients need ``t + 1`` matching
replies (at least one honest server vouches for the ordered result).
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

from repro.agreement.atomic_broadcast import AtomicBroadcast
from repro.common.ids import PartyId
from repro.config import SystemConfig
from repro.core.register import OperationHandle, RegisterClientBase
from repro.core.timestamps import Timestamp
from repro.net.message import Message
from repro.net.process import Process

MSG_SUBMIT = "abc-submit"
MSG_WRITE_DONE = "abc-write-done"
MSG_READ_RESULT = "abc-read-result"


class AbcRegisterServer(Process):
    """Replicated state machine: applies totally-ordered register ops."""

    def __init__(self, pid: PartyId, config: SystemConfig,
                 initial_value: bytes = b""):
        super().__init__(pid)
        self.config = config
        self._initial_value = initial_value
        self._values: Dict[str, Tuple[bytes, Timestamp]] = {}
        self._applied: set = set()
        self.abc = AtomicBroadcast(self, config, self._apply)
        self.on(MSG_SUBMIT, self._on_submit)

    # -- request intake -----------------------------------------------------

    def _on_submit(self, message: Message) -> None:
        if len(message.payload) != 1:
            return
        request = message.payload[0]
        if not (isinstance(request, tuple) and len(request) == 5
                and request[0] in ("write", "read")
                and isinstance(request[4], PartyId)):
            return
        self.abc.submit(request)

    # -- ordered application ----------------------------------------------------

    def _current(self, tag: str) -> Tuple[bytes, Timestamp]:
        return self._values.get(
            tag, (self._initial_value, Timestamp(0, "")))

    def _apply(self, sequence: int, request: Any) -> None:
        if not (isinstance(request, tuple) and len(request) == 5):
            return
        kind, tag, oid, value, client = request
        if not (isinstance(tag, str) and isinstance(oid, str)
                and isinstance(client, PartyId)):
            return
        if kind == "write" and isinstance(value, bytes):
            timestamp = Timestamp(sequence, oid)
            self._values[tag] = (value, timestamp)
            if (tag, oid) not in self._applied:
                self._applied.add((tag, oid))
                self.output(tag, "write-accepted", oid, timestamp)
            self.send(client, tag, MSG_WRITE_DONE, oid, sequence)
        elif kind == "read":
            current_value, timestamp = self._current(tag)
            self.send(client, tag, MSG_READ_RESULT, oid, current_value,
                      timestamp)

    # -- measurements ---------------------------------------------------------------

    def register_state(self, tag: str):
        """Compatibility probe: exposes a ``timestamp`` attribute like
        the other servers (the ABC sequence number plays the role)."""
        value, timestamp = self._current(tag)

        class _View:
            pass

        view = _View()
        view.timestamp = timestamp
        view.value = value
        return view

    def register_storage_bytes(self, tag: str) -> int:
        """Full replication: the whole value plus its order stamp."""
        from repro.common.serialization import encoded_size
        value, timestamp = self._current(tag)
        return encoded_size((value, timestamp))


class AbcRegisterClient(RegisterClientBase):
    """Client: submits operations for total ordering, waits for ``t + 1``
    matching replies."""

    def _write_thread(self, handle: OperationHandle):
        tag, oid = handle.tag, handle.oid
        request = ("write", tag, oid, handle.value, self.pid)
        self.send_to_servers(tag, MSG_SUBMIT, request)
        yield self.condition_quorum(
            tag, MSG_WRITE_DONE, self.config.t + 1,
            where=lambda m: (m.sender.is_server and len(m.payload) == 2
                             and m.payload[0] == oid))
        self._finish_write(handle)

    def _read_thread(self, handle: OperationHandle):
        tag, oid = handle.tag, handle.oid
        request = ("read", tag, oid, b"", self.pid)
        self.send_to_servers(tag, MSG_SUBMIT, request)
        needed = self.config.t + 1

        def check():
            groups: Dict[bytes, list] = {}
            from repro.common.serialization import encode
            for message in self.inbox.first_per_sender(
                    tag, MSG_READ_RESULT,
                    where=lambda m: (m.sender.is_server
                                     and len(m.payload) == 3
                                     and m.payload[0] == oid
                                     and isinstance(m.payload[1], bytes))):
                key = encode((message.payload[1], message.payload[2]))
                groups.setdefault(key, []).append(message)
            for group in groups.values():
                if len(group) >= needed:
                    return group[0]
            return None

        message = yield check
        self._finish_read(handle, message.payload[1], message.payload[2])
