"""Baseline: Martin et al. (SBQ-L) replication-based atomic register.

The listeners-pattern register of Martin, Alvisi and Dahlin ("Minimal
Byzantine Storage", reference [23] of the paper), which Protocol Atomic
builds on.  Same optimal resilience ``n > 3t``, but:

* **full replication** — every server stores a complete copy of the value
  (storage blow-up ``n`` instead of ``n / k``);
* **client-generated timestamps** — the writer picks ``max + 1`` itself
  and sends the value directly; corrupted servers (via inflated ``ts``
  replies) or clients can make timestamps arbitrarily large (skipping);
* **no protection against Byzantine clients** — a corrupted writer can
  send *different* values under one timestamp to different servers,
  leaving the register in a state no read quorum agrees on.

Write: query ``get-ts`` from all, take ``max`` of ``n - t`` replies, send
``store(oid, [ts+1, oid], F)`` to every server, await ``n - t`` acks.
Servers adopt higher-timestamped values, forward to listeners, ack.

Read: identical listener scheme to Protocol Atomic, but ``value`` messages
carry the full value and the reader waits for ``n - t`` identical
``(TIMESTAMP, value)`` replies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Set, Tuple

from repro.common.ids import PartyId
from repro.common.serialization import encode, encoded_size
from repro.config import SystemConfig
from repro.core.listeners import ListenerSet
from repro.core.register import OperationHandle, RegisterClientBase
from repro.core.timestamps import INITIAL_TIMESTAMP, Timestamp
from repro.net.message import Message
from repro.net.process import Process

MSG_GET_TS = "get-ts"
MSG_TS = "ts"
MSG_STORE = "store"
MSG_ACK = "ack"
MSG_READ = "read"
MSG_VALUE = "value"
MSG_READ_COMPLETE = "read-complete"


@dataclass
class _ReplicaState:
    """Per-register replica state: the full value plus listeners."""

    timestamp: Timestamp
    value: bytes
    listeners: ListenerSet = field(default_factory=ListenerSet)
    accepted: Set[str] = field(default_factory=set)


class MartinServer(Process):
    """Replication-based register server (SBQ-L style)."""

    def __init__(self, pid: PartyId, config: SystemConfig,
                 initial_value: bytes = b""):
        super().__init__(pid)
        self.config = config
        self._initial_value = initial_value
        self._registers: Dict[str, _ReplicaState] = {}
        self.on(MSG_GET_TS, self._on_get_ts)
        self.on(MSG_STORE, self._on_store)
        self.on(MSG_READ, self._on_read)
        self.on(MSG_READ_COMPLETE, self._on_read_complete)

    def register_state(self, tag: str) -> _ReplicaState:
        """The replica's register state (created lazily)."""
        if tag not in self._registers:
            self._registers[tag] = _ReplicaState(
                timestamp=INITIAL_TIMESTAMP, value=self._initial_value)
        return self._registers[tag]

    # -- handlers ----------------------------------------------------------

    def _on_get_ts(self, message: Message) -> None:
        if len(message.payload) != 1:
            return
        (oid,) = message.payload
        state = self.register_state(message.tag)
        self.send(message.sender, message.tag, MSG_TS, oid,
                  state.timestamp.ts)

    def _on_store(self, message: Message) -> None:
        if len(message.payload) != 3:
            return
        oid, timestamp, value = message.payload
        if not (isinstance(oid, str) and isinstance(timestamp, Timestamp)
                and isinstance(value, bytes) and timestamp.oid == oid):
            return
        state = self.register_state(message.tag)
        if state.timestamp < timestamp:
            state.timestamp = timestamp
            state.value = value
        for listener_oid, listener in state.listeners.below(timestamp):
            self.send(listener, message.tag, MSG_VALUE, listener_oid,
                      timestamp, value)
        self.send(message.sender, message.tag, MSG_ACK, oid)
        if oid not in state.accepted:
            state.accepted.add(oid)
            self.output(message.tag, "write-accepted", oid, timestamp)

    def _on_read(self, message: Message) -> None:
        if len(message.payload) != 1:
            return
        (oid,) = message.payload
        if not isinstance(oid, str):
            return
        state = self.register_state(message.tag)
        if not state.listeners.add(oid, state.timestamp, message.sender):
            return
        self.send(message.sender, message.tag, MSG_VALUE, oid,
                  state.timestamp, state.value)

    def _on_read_complete(self, message: Message) -> None:
        if len(message.payload) != 1:
            return
        (oid,) = message.payload
        if isinstance(oid, str):
            self.register_state(message.tag).listeners.retire(oid)

    # -- measurements ----------------------------------------------------------

    def register_storage_bytes(self, tag: str) -> int:
        """Storage complexity of one register: the full value plus the
        TIMESTAMP and listener entries (replication stores everything)."""
        state = self.register_state(tag)
        return encoded_size((state.timestamp, state.value)) \
            + state.listeners.storage_bytes()

    def storage_bytes(self) -> int:
        """Total storage across all registers on this replica."""
        return sum(self.register_storage_bytes(tag)
                   for tag in self._registers)


class MartinClient(RegisterClientBase):
    """Replication-based register client (SBQ-L style)."""

    def _write_thread(self, handle: OperationHandle):
        tag, oid = handle.tag, handle.oid
        self.send_to_servers(tag, MSG_GET_TS, oid)
        replies = yield self.condition_quorum(
            tag, MSG_TS, self.config.quorum,
            where=lambda m: (m.sender.is_server and len(m.payload) == 2
                             and m.payload[0] == oid
                             and isinstance(m.payload[1], int)
                             and m.payload[1] >= 0))
        ts = self._choose_timestamp(
            sorted((m.payload[1] for m in replies), reverse=True))
        self.send_to_servers(tag, MSG_STORE, oid, Timestamp(ts + 1, oid),
                             handle.value)
        yield self.condition_quorum(
            tag, MSG_ACK, self.config.quorum,
            where=lambda m: (m.sender.is_server and len(m.payload) == 1
                             and m.payload[0] == oid))
        self._finish_write(handle)

    def _choose_timestamp(self, descending_ts) -> int:
        """SBQ-L takes the maximum reply — skipping is possible because a
        single corrupted server controls the maximum."""
        return descending_ts[0]

    def _read_thread(self, handle: OperationHandle):
        tag, oid = handle.tag, handle.oid
        self.send_to_servers(tag, MSG_READ, oid)
        quorum = self.config.quorum

        def valid(message: Message) -> bool:
            payload = message.payload
            return (message.sender.is_server and len(payload) == 3
                    and payload[0] == oid
                    and isinstance(payload[1], Timestamp)
                    and isinstance(payload[2], bytes))

        def check():
            groups: Dict[bytes, Dict[PartyId, Message]] = {}
            for message in self.inbox.messages(tag, MSG_VALUE, where=valid):
                key = encode((message.payload[1], message.payload[2]))
                groups.setdefault(key, {}).setdefault(
                    message.sender, message)
            for group in groups.values():
                if len(group) >= quorum:
                    return list(group.values())
            return None

        messages = yield check
        self.send_to_servers(tag, MSG_READ_COMPLETE, oid)
        first = messages[0]
        self._finish_read(handle, first.payload[2], first.payload[1])
