"""Baseline register protocols the paper compares against.

* :mod:`repro.baselines.martin` — Martin et al. (SBQ-L): replication,
  optimal resilience, skipping timestamps, no Byzantine-client tolerance.
* :mod:`repro.baselines.bazzi_ding` — Bazzi-Ding: replication with
  non-skipping timestamps at the price of ``n > 4t``.
* :mod:`repro.baselines.goodson` — Goodson et al.: erasure coding with
  read-time validation/rollback at ``n > 4t``.
* :mod:`repro.baselines.phalanx` — Phalanx-style *safe* (not atomic)
  replicated register at ``n > 4t``.
"""

from repro.baselines.bazzi_ding import BazziDingClient, BazziDingServer
from repro.baselines.goodson import (
    GoodsonClient,
    GoodsonServer,
    goodson_fragment_threshold,
)
from repro.baselines.martin import MartinClient, MartinServer
from repro.baselines.phalanx import PhalanxClient, PhalanxServer

__all__ = [
    "BazziDingClient",
    "BazziDingServer",
    "GoodsonClient",
    "GoodsonServer",
    "goodson_fragment_threshold",
    "MartinClient",
    "MartinServer",
    "PhalanxClient",
    "PhalanxServer",
]
