"""Baseline: Bazzi–Ding non-skipping timestamps at ``n > 4t``.

Bazzi and Ding ("Non-skipping Timestamps for Byzantine Data Storage
Systems", reference [5] of the paper) fixed the timestamp-skipping problem
of SBQ-L *without cryptography* by paying in resilience: the writer uses
the ``(t+1)``-st largest of its ``n - t`` timestamp replies, so the chosen
value is vouched for by at least one honest server and therefore bounded
by the number of writes executed so far.

Monotonicity of the ``(t+1)``-st largest across successive writes requires
quorum overlaps of at least ``t + 1`` honest servers:

    ``(n - t) + (n - 2t) - n  =  n - 3t  >=  t + 1   <=>   n > 4t``

hence the degraded resilience bound the paper's Protocol AtomicNS removes.
Like SBQ-L, this baseline replicates the full value and offers no defense
against Byzantine *clients*, who may store arbitrary timestamps directly.

Everything except the timestamp-selection rule (and the resilience
precondition) is inherited from the Martin et al. baseline.
"""

from __future__ import annotations

from repro.common.errors import ConfigurationError
from repro.common.ids import PartyId
from repro.config import SystemConfig
from repro.baselines.martin import MartinClient, MartinServer


def _require_n_gt_4t(config: SystemConfig) -> None:
    if config.n <= 4 * config.t:
        raise ConfigurationError(
            f"Bazzi-Ding requires n > 4t, got n={config.n} t={config.t}")


class BazziDingServer(MartinServer):
    """Replica server; identical to SBQ-L apart from the ``n > 4t``
    deployment precondition."""

    def __init__(self, pid: PartyId, config: SystemConfig,
                 initial_value: bytes = b""):
        _require_n_gt_4t(config)
        super().__init__(pid, config, initial_value)


class BazziDingClient(MartinClient):
    """Writer using the non-skipping ``(t+1)``-st-largest timestamp rule."""

    def __init__(self, pid: PartyId, config: SystemConfig):
        _require_n_gt_4t(config)
        super().__init__(pid, config)

    def _choose_timestamp(self, descending_ts) -> int:
        """The ``(t+1)``-st largest reply: at most ``t`` replies are lies,
        so this value was reported by an honest server."""
        return descending_ts[self.config.t]
