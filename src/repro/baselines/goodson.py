"""Baseline: Goodson et al. erasure-coded storage with read-time repair.

A faithful-in-structure reimplementation of the PASIS-style R/W protocol
("Efficient Byzantine-tolerant erasure-coded storage", reference [15] of
the paper): erasure-coded fragments with a *cross-checksum* (hash vector),
**no server-to-server communication**, versioned servers, and validation
deferred to read time.

* Resilience ``n > 4t`` with fragment threshold ``k = t + 1`` (a version
  decodable from Byzantine servers alone must be impossible, and complete
  writes must stay visible through any two ``n - t`` quorums).
* **Writes are cheap**: one round of ``store`` messages, ``O(n)``
  messages.  Nothing validates what a writer stores.
* **Reads pay for it**: the reader fetches the latest versions, then walks
  candidates from the highest timestamp down; for each candidate it
  fetches that version's fragments, checks them against the
  cross-checksum, decodes, re-encodes, and re-computes the checksum.  A
  candidate that is *incomplete* (too few fragments) or *poisonous*
  (checksum inconsistent — a Byzantine writer stored garbage) is **rolled
  back** and the next candidate is tried, one extra round trip each.  A
  validated candidate seen at fewer than ``n - t`` servers is written back
  (repair) before returning, which preserves atomicity.

This is exactly the behaviour the paper criticizes: "retrieving data can
be very inefficient in the case of several faulty write operations, and
consistency depends on a correct client" — quantified in experiment F6.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.common.errors import ConfigurationError
from repro.common.ids import PartyId
from repro.common.serialization import encode, encoded_size
from repro.config import SystemConfig
from repro.core.register import OperationHandle, RegisterClientBase
from repro.core.timestamps import INITIAL_TIMESTAMP, Timestamp
from repro.crypto.hashing import hash_bytes
from repro.erasure.coder import ErasureCoder
from repro.net.message import Message
from repro.net.process import Process

MSG_GET_TS = "get-ts"
MSG_TS = "ts"
MSG_STORE = "store"
MSG_ACK = "ack"
MSG_READ_LATEST = "read-latest"
MSG_LATEST = "latest"
MSG_READ_PREV = "read-prev"
MSG_PREV = "prev"


def goodson_fragment_threshold(config: SystemConfig) -> int:
    """``k = t + 1``: the largest threshold at which complete writes stay
    readable across quorums and Byzantine servers alone cannot forge a
    decodable version."""
    return config.t + 1


def _require_n_gt_4t(config: SystemConfig) -> None:
    if config.n <= 4 * config.t:
        raise ConfigurationError(
            f"Goodson et al. requires n > 4t, got n={config.n} "
            f"t={config.t}")


def _cross_checksum(fragments) -> tuple:
    return tuple(hash_bytes(fragment) for fragment in fragments)


@dataclass
class _VersionedState:
    """Per-register version history at one server (grows with writes —
    the storage cost of deferring validation)."""

    versions: Dict[Timestamp, Tuple[bytes, tuple]] = field(
        default_factory=dict)
    accepted: Set[str] = field(default_factory=set)

    def latest(self) -> Timestamp:
        return max(self.versions)


class GoodsonServer(Process):
    """Versioning fragment server: stores whatever writers send."""

    def __init__(self, pid: PartyId, config: SystemConfig,
                 initial_value: bytes = b""):
        _require_n_gt_4t(config)
        super().__init__(pid)
        self.config = config
        self._coder = ErasureCoder(config.n, goodson_fragment_threshold(config))
        self._initial_value = initial_value
        self._registers: Dict[str, _VersionedState] = {}
        self.on(MSG_GET_TS, self._on_get_ts)
        self.on(MSG_STORE, self._on_store)
        self.on(MSG_READ_LATEST, self._on_read_latest)
        self.on(MSG_READ_PREV, self._on_read_prev)

    def register_state(self, tag: str) -> _VersionedState:
        """The register's version history (created lazily with the
        initial version)."""
        if tag not in self._registers:
            fragments = self._coder.encode(self._initial_value)
            state = _VersionedState()
            state.versions[INITIAL_TIMESTAMP] = (
                fragments[self.pid.index - 1], _cross_checksum(fragments))
            self._registers[tag] = state
        return self._registers[tag]

    # -- handlers -------------------------------------------------------------

    def _on_get_ts(self, message: Message) -> None:
        if len(message.payload) != 1:
            return
        (oid,) = message.payload
        state = self.register_state(message.tag)
        self.send(message.sender, message.tag, MSG_TS, oid,
                  state.latest().ts)

    def _on_store(self, message: Message) -> None:
        if len(message.payload) != 4:
            return
        oid, timestamp, fragment, checksum = message.payload
        if not (isinstance(oid, str) and isinstance(timestamp, Timestamp)
                and isinstance(fragment, bytes)
                and isinstance(checksum, tuple)
                and len(checksum) == self.config.n):
            return
        state = self.register_state(message.tag)
        # First store of a version wins; no validation happens here — that
        # is the design point of the protocol.
        state.versions.setdefault(timestamp, (fragment, checksum))
        self.send(message.sender, message.tag, MSG_ACK, oid)
        if oid not in state.accepted:
            state.accepted.add(oid)
            self.output(message.tag, "write-accepted", oid, timestamp)

    def _on_read_latest(self, message: Message) -> None:
        if len(message.payload) != 2:
            return
        oid, round_no = message.payload
        state = self.register_state(message.tag)
        latest = state.latest()
        fragment, checksum = state.versions[latest]
        self.send(message.sender, message.tag, MSG_LATEST, oid, round_no,
                  latest, fragment, checksum)

    def _on_read_prev(self, message: Message) -> None:
        """Reply with this server's greatest version strictly below the
        requested bound (the rollback step of the read protocol)."""
        if len(message.payload) != 3:
            return
        oid, round_no, bound = message.payload
        if not isinstance(bound, Timestamp):
            return
        state = self.register_state(message.tag)
        older = [timestamp for timestamp in state.versions
                 if timestamp < bound]
        # INITIAL_TIMESTAMP is always stored, so `older` can only be empty
        # for a bound at or below the initial version.
        best = max(older) if older else INITIAL_TIMESTAMP
        fragment, checksum = state.versions[best]
        self.send(message.sender, message.tag, MSG_PREV, oid, round_no,
                  best, fragment, checksum)

    # -- measurements -----------------------------------------------------------

    def register_storage_bytes(self, tag: str) -> int:
        """All retained versions — storage grows with the write history."""
        state = self.register_state(tag)
        return sum(encoded_size((timestamp, fragment, checksum))
                   for timestamp, (fragment, checksum)
                   in state.versions.items())

    def storage_bytes(self) -> int:
        """Total storage across all registers (all retained versions)."""
        return sum(self.register_storage_bytes(tag)
                   for tag in self._registers)

    def version_count(self, tag: str) -> int:
        """Number of versions retained for one register (grows with the
        write history — the storage cost of read-time validation)."""
        return len(self.register_state(tag).versions)


class GoodsonClient(RegisterClientBase):
    """Client performing validation, rollback, and repair at read time."""

    def __init__(self, pid: PartyId, config: SystemConfig):
        _require_n_gt_4t(config)
        super().__init__(pid, config)
        self._coder = ErasureCoder(config.n, goodson_fragment_threshold(config))
        self._round_counter = 0
        #: rollback rounds performed by each read, for experiment F6
        self.rollback_counts: Dict[str, int] = {}

    # -- write ------------------------------------------------------------------

    def _write_thread(self, handle: OperationHandle):
        tag, oid = handle.tag, handle.oid
        self.send_to_servers(tag, MSG_GET_TS, oid)
        replies = yield self.condition_quorum(
            tag, MSG_TS, self.config.quorum,
            where=lambda m: (m.sender.is_server and len(m.payload) == 2
                             and m.payload[0] == oid
                             and isinstance(m.payload[1], int)
                             and m.payload[1] >= 0))
        ts = max(message.payload[1] for message in replies)
        timestamp = Timestamp(ts + 1, oid)
        yield from self._store_round(tag, oid, timestamp, handle.value)
        self._finish_write(handle)

    def _store_round(self, tag: str, oid: str, timestamp: Timestamp,
                     value: bytes):
        """One unvalidated fragment fan-out plus the ack quorum."""
        fragments = self._coder.encode(value)
        checksum = _cross_checksum(fragments)
        for index, server in enumerate(self.simulator.server_pids, start=1):
            self.send(server, tag, MSG_STORE, oid, timestamp,
                      fragments[index - 1], checksum)
        yield self.condition_quorum(
            tag, MSG_ACK, self.config.quorum,
            where=lambda m: (m.sender.is_server and len(m.payload) == 1
                             and m.payload[0] == oid))

    # -- read ---------------------------------------------------------------------

    def _read_thread(self, handle: OperationHandle):
        tag, oid = handle.tag, handle.oid
        self._round_counter += 1
        round_no = self._round_counter
        self.rollback_counts[oid] = 0
        self.send_to_servers(tag, MSG_READ_LATEST, oid, round_no)
        replies = yield self.condition_quorum(
            tag, MSG_LATEST, self.config.quorum,
            where=lambda m: self._valid_reply(m, oid, round_no, MSG_LATEST))

        rollbacks = 0
        while True:
            candidate = max(message.payload[2] for message in replies)
            matching = [message for message in replies
                        if message.payload[2] == candidate]
            outcome = self._validate(candidate, matching)
            if outcome is not None:
                value, holders = outcome
                if len(holders) < self.config.quorum:
                    # Repair: write the validated version back before
                    # returning, so later reads cannot miss it.
                    yield from self._store_round(tag, f"{oid}.repair",
                                                 candidate, value)
                self._finish_read(handle, value, candidate)
                return
            if candidate <= INITIAL_TIMESTAMP:
                # The initial version failed validation, which requires
                # more than t corrupted servers; stall rather than loop.
                return
            # Incomplete or poisonous: roll back — ask every server for
            # its greatest version below the failed candidate.  One extra
            # round trip per rollback: the read cost the paper highlights.
            rollbacks += 1
            self.rollback_counts[oid] = rollbacks
            self._round_counter += 1
            round_no = self._round_counter
            self.send_to_servers(tag, MSG_READ_PREV, oid, round_no,
                                 candidate)
            replies = yield self.condition_quorum(
                tag, MSG_PREV, self.config.quorum,
                where=lambda m, r=round_no: self._valid_reply(
                    m, oid, r, MSG_PREV))

    @staticmethod
    def _valid_reply(message: Message, oid: str, round_no: int,
                     kind: str) -> bool:
        payload = message.payload
        return (message.sender.is_server and len(payload) == 5
                and payload[0] == oid and payload[1] == round_no
                and isinstance(payload[2], Timestamp))

    def _validate(self, candidate: Timestamp, replies) -> Optional[tuple]:
        """Classify a candidate: returns ``(value, holders)`` if complete
        and consistent, else ``None`` (roll back)."""
        by_checksum: Dict[bytes, Dict[int, bytes]] = {}
        holders_by_checksum: Dict[bytes, Set[PartyId]] = {}
        checksum_by_key: Dict[bytes, tuple] = {}
        for message in replies:
            fragment, checksum = message.payload[3], message.payload[4]
            if not (isinstance(fragment, bytes)
                    and isinstance(checksum, tuple)
                    and len(checksum) == self.config.n):
                continue
            index = message.sender.index
            if checksum[index - 1] != hash_bytes(fragment):
                continue  # fragment does not match its cross-checksum slot
            key = encode(checksum)
            checksum_by_key[key] = checksum
            by_checksum.setdefault(key, {})[index] = fragment
            holders_by_checksum.setdefault(key, set()).add(message.sender)
        threshold = self._coder.k
        for key, fragments in by_checksum.items():
            if len(fragments) < threshold:
                continue  # incomplete
            try:
                value = self._coder.decode(fragments.items())
                re_encoded = self._coder.encode(value)
            except Exception:
                continue
            if _cross_checksum(re_encoded) != checksum_by_key[key]:
                continue  # poisonous write: checksum inconsistent
            return value, holders_by_checksum[key]
        return None
