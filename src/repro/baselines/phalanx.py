"""Baseline: Phalanx-style *safe* replicated register (``n > 4t``).

Malkhi and Reiter's Phalanx (reference [21] of the paper) provides
survivable shared objects over Byzantine quorum systems; its data
abstraction for non-self-verifying data is a **safe** register at
``t < n/4`` — the weakest of Lamport's three conditions and the weakest
system in the paper's related-work comparison:

* writes store ``(TIMESTAMP, value)`` replicas at a write quorum, with
  client-generated timestamps (skipping possible, no client auth);
* a read collects one round of replies from ``n − t`` servers and
  returns the highest-timestamped value vouched for by at least
  ``t + 1`` of them (so it is a really-written value, not a fabrication).
  When no value reaches ``t + 1`` support — possible only while writes
  are in flight — the read retries, since *safe* semantics constrain
  only reads that do not overlap writes.

Why ``n > 4t``: an uncontended read overlaps every completed write
quorum (``n − t``) in at least ``n − 2t`` servers, of which at least
``n − 3t`` are honest; ``n − 3t ≥ t + 1`` — i.e. enough support to be
chosen over up-to-``t`` fabricated replies — needs ``n > 4t``.

There are no listeners and no second phase, so this is the cheapest
protocol in the comparison — and the weakest: sequential histories are
atomic, but concurrent reads may observe new-then-old inversions
(regular/atomicity violations) that the safe checker accepts and the
atomic checker rejects.  See ``tests/test_phalanx.py``.
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional

from repro.baselines.martin import (
    MSG_ACK,
    MSG_GET_TS,
    MSG_STORE,
    MSG_TS,
    MartinServer,
)
from repro.common.errors import ConfigurationError, LivenessError
from repro.common.ids import PartyId
from repro.common.serialization import encode
from repro.config import SystemConfig
from repro.core.register import OperationHandle, RegisterClientBase
from repro.core.timestamps import Timestamp
from repro.net.message import Message

MSG_READ_SAFE = "read-safe"
MSG_VALUE_SAFE = "value-safe"


def _require_n_gt_4t(config: SystemConfig) -> None:
    if config.n <= 4 * config.t:
        raise ConfigurationError(
            f"Phalanx safe registers require n > 4t, got n={config.n} "
            f"t={config.t}")


class PhalanxServer(MartinServer):
    """Replica server: Martin-style storage, one-shot read replies, no
    listener machinery at all."""

    def __init__(self, pid: PartyId, config: SystemConfig,
                 initial_value: bytes = b""):
        _require_n_gt_4t(config)
        super().__init__(pid, config, initial_value)
        self.on(MSG_READ_SAFE, self._on_read_safe)

    def _on_read_safe(self, message: Message) -> None:
        if len(message.payload) != 2:
            return
        oid, round_no = message.payload
        state = self.register_state(message.tag)
        self.send(message.sender, message.tag, MSG_VALUE_SAFE, oid,
                  round_no, state.timestamp, state.value)


class PhalanxClient(RegisterClientBase):
    """Safe-register client: one-round reads with ``t + 1``-support
    selection and bounded retry under contention."""

    def __init__(self, pid: PartyId, config: SystemConfig,
                 max_read_rounds: int = 64):
        _require_n_gt_4t(config)
        super().__init__(pid, config)
        self._rounds = itertools.count(1)
        self.max_read_rounds = max_read_rounds

    # -- write (same two phases as SBQ-L) ---------------------------------

    def _write_thread(self, handle: OperationHandle):
        tag, oid = handle.tag, handle.oid
        self.send_to_servers(tag, MSG_GET_TS, oid)
        replies = yield self.condition_quorum(
            tag, MSG_TS, self.config.quorum,
            where=lambda m: (m.sender.is_server and len(m.payload) == 2
                             and m.payload[0] == oid
                             and isinstance(m.payload[1], int)
                             and m.payload[1] >= 0))
        ts = max(message.payload[1] for message in replies)
        self.send_to_servers(tag, MSG_STORE, oid, Timestamp(ts + 1, oid),
                             handle.value)
        yield self.condition_quorum(
            tag, MSG_ACK, self.config.quorum,
            where=lambda m: (m.sender.is_server and len(m.payload) == 1
                             and m.payload[0] == oid))
        self._finish_write(handle)

    # -- read (single round, t+1 support) ------------------------------------

    def _read_thread(self, handle: OperationHandle):
        tag, oid = handle.tag, handle.oid
        support = self.config.t + 1
        for _ in range(self.max_read_rounds):
            round_no = next(self._rounds)
            self.send_to_servers(tag, MSG_READ_SAFE, oid, round_no)

            def valid(message: Message, r=round_no) -> bool:
                payload = message.payload
                return (message.sender.is_server and len(payload) == 4
                        and payload[0] == oid and payload[1] == r
                        and isinstance(payload[2], Timestamp)
                        and isinstance(payload[3], bytes))

            replies = yield self.condition_quorum(
                tag, MSG_VALUE_SAFE, self.config.quorum, where=valid)
            counts: Dict[bytes, int] = {}
            best: Optional[Message] = None
            for message in replies:
                key = encode((message.payload[2], message.payload[3]))
                counts[key] = counts.get(key, 0) + 1
            for message in replies:
                key = encode((message.payload[2], message.payload[3]))
                if counts[key] >= support and (
                        best is None
                        or message.payload[2] > best.payload[2]):
                    best = message
            if best is not None:
                self._finish_read(handle, best.payload[3],
                                  best.payload[2])
                return
            # Contended round: no value had t+1 support.  Retry — safe
            # semantics only constrain uncontended reads.
        raise LivenessError(
            f"safe read {oid} found no supported value within "
            f"{self.max_read_rounds} rounds")
