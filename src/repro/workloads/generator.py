"""Workload generation: concurrent read/write schedules.

Produces operation mixes and drives them into a cluster with operations
*invoked at random points of the delivery schedule*, so reads and writes
overlap arbitrarily — the concurrency that atomicity (and the listeners
mechanism) must withstand.  All generation is seeded and deterministic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.cluster import Cluster
from repro.common.errors import LivenessError, SimulationError
from repro.core.register import KIND_READ, KIND_WRITE, OperationHandle


@dataclass(frozen=True)
class WorkloadOp:
    """One operation to invoke: which client, what, and with which value."""

    client_index: int
    kind: str
    oid: str
    value: Optional[bytes] = None


def make_values(count: int, size: int = 64,
                prefix: bytes = b"value") -> List[bytes]:
    """``count`` distinct values of exactly ``size`` bytes (unique values
    are what lets the atomicity checker map reads to writes)."""
    width = len(str(max(count - 1, 0)))
    values = []
    for index in range(count):
        header = prefix + b"-" + str(index).zfill(width).encode()
        if len(header) > size:
            raise ValueError(f"value size {size} too small for labels")
        values.append(header.ljust(size, b"."))
    return values


def random_workload(num_clients: int, writes: int, reads: int,
                    seed: int = 0, value_size: int = 64) -> List[WorkloadOp]:
    """A shuffled mix of ``writes`` writes and ``reads`` reads spread over
    clients ``1..num_clients`` (every write has a distinct value)."""
    rng = random.Random(seed)
    values = make_values(writes, size=value_size)
    operations = [
        WorkloadOp(client_index=rng.randrange(num_clients) + 1,
                   kind=KIND_WRITE, oid=f"w{index}", value=values[index])
        for index in range(writes)
    ]
    operations += [
        WorkloadOp(client_index=rng.randrange(num_clients) + 1,
                   kind=KIND_READ, oid=f"r{index}")
        for index in range(reads)
    ]
    rng.shuffle(operations)
    return operations


def run_workload(cluster: Cluster, tag: str,
                 operations: Sequence[WorkloadOp], seed: int = 0,
                 invoke_probability: float = 0.1,
                 max_steps: int = 2_000_000,
                 require_done: bool = True
                 ) -> Dict[str, OperationHandle]:
    """Drive ``operations`` into the cluster with random interleaving.

    At each step, either the next operation is invoked (with
    ``invoke_probability``) or one pending message is delivered; once all
    operations are invoked, remaining traffic drains to quiescence.
    Returns handles by operation identifier; with ``require_done`` every
    operation must have terminated (wait-freedom), else
    :class:`LivenessError` is raised.
    """
    rng = random.Random(seed)
    handles: Dict[str, OperationHandle] = {}
    queue = list(operations)
    steps = 0
    simulator = cluster.simulator
    while queue or simulator.undelivered_count:
        steps += 1
        if steps > max_steps:
            raise SimulationError(
                f"workload did not quiesce within {max_steps} steps")
        invoke_next = queue and (
            not simulator.undelivered_count
            or rng.random() < invoke_probability)
        if invoke_next:
            operation = queue.pop(0)
            client = cluster.client(operation.client_index)
            if operation.kind == KIND_WRITE:
                handles[operation.oid] = client.invoke_write(
                    tag, operation.oid, operation.value)
            else:
                handles[operation.oid] = client.invoke_read(
                    tag, operation.oid)
        else:
            simulator.step()
    if require_done:
        for oid, handle in handles.items():
            if not handle.done:
                raise LivenessError(
                    f"operation {oid} did not terminate under the "
                    f"generated schedule")
    return handles
