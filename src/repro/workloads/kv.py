"""Multi-key workload generation for the kv plane.

Produces sequences of :class:`repro.kv.cluster.KvOp` with seeded key
popularity — ``"uniform"``, ``"zipf"`` (rank ``r`` weighted
``1 / r**s``, the classic web-traffic skew), or ``"zipf-shift"`` (the
same skew with the hot set rotating through the key space every
``shift_every`` operations, modelling diurnal popularity drift) — and
globally unique write values (the linearizability checker requires
distinct values per key; unique values fleet-wide are simplest and cost
nothing).

Read-mostly mixes are just low ``write_ratio`` values: the canonical
90/10 web mix is ``write_ratio=0.1``.
"""

from __future__ import annotations

import bisect
import random
from dataclasses import dataclass
from itertools import accumulate
from typing import List, Optional, Sequence

from repro.analysis.linearizability import KIND_READ, KIND_WRITE
from repro.common.errors import ConfigurationError
from repro.workloads.generator import make_values

#: Supported key-popularity distributions.
DISTRIBUTIONS = ("uniform", "zipf", "zipf-shift")

#: Default operations between hot-set rotations under ``"zipf-shift"``.
DEFAULT_SHIFT_EVERY = 32


@dataclass(frozen=True)
class KvOp:
    """One kv workload operation addressed to a session.

    ``value`` is required for writes and ignored for reads.  The type
    lives here (not in ``repro.kv``) so workload generation stays a
    leaf dependency of the kv plane.
    """

    session_index: int
    kind: str
    key: str
    value: Optional[bytes] = None


def key_names(count: int, prefix: str = "k") -> List[str]:
    """Deterministic key names ``k000 .. k<count-1>``."""
    if count < 1:
        raise ConfigurationError("key count must be >= 1")
    width = max(3, len(str(count - 1)))
    return [f"{prefix}{index:0{width}d}" for index in range(count)]


def _key_weights(count: int, distribution: str,
                 zipf_exponent: float) -> List[float]:
    if distribution == "uniform":
        return [1.0] * count
    if distribution in ("zipf", "zipf-shift"):
        return [1.0 / (rank ** zipf_exponent)
                for rank in range(1, count + 1)]
    raise ConfigurationError(
        f"unknown distribution {distribution!r}; "
        f"choose from {DISTRIBUTIONS}")


def kv_workload(num_sessions: int, num_keys: int, ops: int,
                write_ratio: float = 0.5, distribution: str = "zipf",
                zipf_exponent: float = 1.1, seed: int = 0,
                value_size: int = 64, keys: Sequence[str] = (),
                shift_every: int = DEFAULT_SHIFT_EVERY) -> List[KvOp]:
    """Generate ``ops`` seeded operations over ``num_keys`` keys.

    Sessions are assigned round-robin so every session participates;
    operation kinds are drawn i.i.d. with ``write_ratio``, except that
    each run opens with one write (a read-only prefix would only ever
    observe the initial value).  Pass explicit ``keys`` to override the
    generated names.

    Under ``"zipf-shift"`` the rank → key assignment rotates every
    ``shift_every`` operations: the key that was rank ``r`` hot in
    phase ``p`` is rank ``r`` hot *shifted by one position* in phase
    ``p + 1``, so caches and placement tuned to the early hot set go
    stale as the run progresses.
    """
    if num_sessions < 1:
        raise ConfigurationError("num_sessions must be >= 1")
    if ops < 1:
        raise ConfigurationError("ops must be >= 1")
    if shift_every < 1:
        raise ConfigurationError("shift_every must be >= 1")
    key_list = list(keys) if keys else key_names(num_keys)
    count = len(key_list)
    weights = _key_weights(count, distribution, zipf_exponent)
    cumulative = list(accumulate(weights))
    total = cumulative[-1]
    rng = random.Random(seed)
    values = make_values(ops, size=value_size, prefix=b"kv")
    workload: List[KvOp] = []
    writes_used = 0
    for index in range(ops):
        point = rng.random() * total
        rank = bisect.bisect_left(cumulative, point)
        if distribution == "zipf-shift":
            phase = index // shift_every
            rank = (rank + phase) % count
        key = key_list[rank]
        session = (index % num_sessions) + 1
        is_write = index == 0 or rng.random() < write_ratio
        if is_write:
            workload.append(KvOp(session_index=session, kind=KIND_WRITE,
                                 key=key, value=values[writes_used]))
            writes_used += 1
        else:
            workload.append(KvOp(session_index=session, kind=KIND_READ,
                                 key=key))
    return workload
