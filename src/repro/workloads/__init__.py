"""Workload generation for concurrency and complexity experiments."""

from repro.workloads.generator import (
    WorkloadOp,
    make_values,
    random_workload,
    run_workload,
)
from repro.workloads.kv import KvOp, key_names, kv_workload

__all__ = [
    "KvOp",
    "WorkloadOp",
    "key_names",
    "kv_workload",
    "make_values",
    "random_workload",
    "run_workload",
]
