"""Workload generation for concurrency and complexity experiments."""

from repro.workloads.generator import (
    WorkloadOp,
    make_values,
    random_workload,
    run_workload,
)
from repro.workloads.kv import (
    DEFAULT_SHIFT_EVERY,
    DISTRIBUTIONS,
    KvOp,
    key_names,
    kv_workload,
)

__all__ = [
    "DEFAULT_SHIFT_EVERY",
    "DISTRIBUTIONS",
    "KvOp",
    "WorkloadOp",
    "key_names",
    "kv_workload",
    "make_values",
    "random_workload",
    "run_workload",
]
