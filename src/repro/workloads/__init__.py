"""Workload generation for concurrency and complexity experiments."""

from repro.workloads.generator import (
    WorkloadOp,
    make_values,
    random_workload,
    run_workload,
)

__all__ = ["WorkloadOp", "make_values", "random_workload", "run_workload"]
