"""Wiring and drive loop for key-value deployments.

:func:`build_kv_cluster` assembles one fleet: ``n`` :class:`KvServer`
hosts, one :class:`KvClientHost` plus :class:`KvSession` per session,
and a shared :class:`Simulator`.  :func:`drive` runs a workload to
completion — interleaving submissions with deliveries under a seeded
schedule, honouring backpressure, and spending session retry budgets
when chaos stalls the network — so harnesses and tests share one
correct loop instead of re-deriving its edge cases.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.cluster import PROTOCOLS
from repro.common.errors import (
    BackpressureError,
    ConfigurationError,
    LivenessError,
    SimulationError,
)
from repro.common.ids import PartyId, client_id, server_id
from repro.faults.failstop import _FailStopMixin
from repro.kv.directory import KvDirectory
from repro.kv.mux import KvClientHost, KvServer
from repro.kv.session import KvSession
from repro.net.schedulers import Scheduler
from repro.net.simulator import Simulator
from repro.workloads.kv import KvOp

#: Factory signature for replacing a kv server host (fault injection).
KvServerFactory = Callable[[PartyId, KvDirectory], KvServer]


class FailStopKvServer(_FailStopMixin, KvServer):
    """A kv server host that fail-stops after ``crash_after`` deliveries.

    Crashing the *host* downs every shard it serves at once — the
    realistic failure unit (a machine, not a register).  Supports the
    same transient-recovery and trigger-clock options as the register
    fail-stop wrappers.
    """

    def __init__(self, pid: PartyId, directory: KvDirectory,
                 server_cls=None, initial_value: bytes = b"",
                 crash_after: int = 0, recover_after=None,
                 trigger: str = "messages"):
        kwargs = {} if server_cls is None else {"server_cls": server_cls}
        super().__init__(pid, directory, initial_value=initial_value,
                         **kwargs)
        self._init_failstop(crash_after, recover_after=recover_after,
                            trigger=trigger)


@dataclass
class KvCluster:
    """A wired key-value deployment: directory, network, hosts, sessions."""

    directory: KvDirectory
    simulator: Simulator
    servers: List[KvServer]
    sessions: List[KvSession]
    protocol: str = "atomic"
    #: repair/reconfiguration coordinator (``None`` keeps the plane off
    #: and the drive loop byte-identical to pre-repair schedules; see
    #: :func:`repro.repair.attach_repair`).
    repair: Optional[object] = None

    def session(self, index: int) -> KvSession:
        """Session ``index`` (1-based, matching client numbering)."""
        return self.sessions[index - 1]

    def settle(self, max_steps: int = 1_000_000) -> Dict[str, int]:
        """Run until every session is idle; returns drive statistics."""
        return drive(self, (), max_steps=max_steps)


@dataclass
class DriveStats:
    """Counters accumulated by one :func:`drive` run."""

    steps: int = 0
    submitted: int = 0
    backpressure_hits: int = 0
    retries: int = 0
    retry_rounds: int = 0
    completed: int = field(default=0)


def build_kv_cluster(directory: KvDirectory, protocol: str = "atomic",
                     num_sessions: int = 1,
                     scheduler: Optional[Scheduler] = None,
                     initial_value: bytes = b"",
                     server_overrides: Optional[
                         Dict[int, KvServerFactory]] = None,
                     max_queue: int = 32,
                     max_inflight_per_shard: int = 1,
                     max_attempts: int = 4,
                     cache_size: int = 0,
                     lease_ticks: int = 0) -> KvCluster:
    """Build a kv deployment over ``directory``'s fleet.

    ``server_overrides`` maps 1-based fleet server indices to factories
    (used by chaos harnesses to substitute fail-stop hosts).  The inner
    protocol comes from :data:`repro.cluster.PROTOCOLS`; shards whose
    :class:`~repro.kv.directory.ShardSpec` carries a ``protocol``
    override materialise that protocol instead of the cluster default.
    ``cache_size``/``lease_ticks`` configure every session's read cache
    (see :mod:`repro.kv.session_cache`; both default off).
    """
    if protocol not in PROTOCOLS:
        raise ConfigurationError(
            f"unknown protocol {protocol!r}; "
            f"choose from {sorted(PROTOCOLS)}")
    server_cls, client_cls = PROTOCOLS[protocol]
    overrides = server_overrides or {}
    simulator = Simulator(scheduler=scheduler)
    servers: List[KvServer] = []
    for index in range(1, directory.fleet_config.n + 1):
        pid = server_id(index)
        factory = overrides.get(index)
        if factory is not None:
            host = factory(pid, directory)
        else:
            host = KvServer(pid, directory, server_cls=server_cls,
                            initial_value=initial_value)
        simulator.add_process(host)
        servers.append(host)
    sessions: List[KvSession] = []
    for index in range(1, num_sessions + 1):
        client_host = KvClientHost(client_id(index), directory,
                                   client_cls=client_cls)
        simulator.add_process(client_host)
        sessions.append(KvSession(
            client_host, directory, index=index, max_queue=max_queue,
            max_inflight_per_shard=max_inflight_per_shard,
            max_attempts=max_attempts, cache_size=cache_size,
            lease_ticks=lease_ticks))
    return KvCluster(directory=directory, simulator=simulator,
                     servers=servers, sessions=sessions, protocol=protocol)


def _submit(cluster: KvCluster, op: KvOp) -> None:
    session = cluster.session(op.session_index)
    if op.kind == "write":
        session.put(op.key, op.value)
    else:
        session.get(op.key)


def drive(cluster: KvCluster, operations: Sequence[KvOp], seed: int = 0,
          invoke_probability: float = 0.25,
          max_steps: int = 2_000_000) -> Dict[str, int]:
    """Run ``operations`` through ``cluster`` until all sessions idle.

    Submissions interleave with deliveries: while messages are pending,
    each loop iteration submits the next operation with probability
    ``invoke_probability`` (seeded), recreating the concurrency the
    register harnesses get from ``run_workload``; a quiescent network
    forces a submission so progress never depends on chance.  A full
    session queue counts a backpressure hit and the operation waits.
    When the network quiesces with operations still in flight, sessions
    spend their retry budgets; exhaustion raises
    :class:`LivenessError`.
    """
    rng = random.Random(seed)
    queue: List[KvOp] = list(operations)
    cursor = 0
    stats = DriveStats()
    simulator = cluster.simulator
    sessions = cluster.sessions
    repair = cluster.repair
    while True:
        progress = 0
        for session in sessions:
            progress += session.pump()
        if repair is not None:
            progress += repair.pump()
        remaining = len(queue) - cursor
        if not remaining and all(session.idle for session in sessions) \
                and (repair is None or repair.idle):
            break
        stats.steps += 1
        if stats.steps > max_steps:
            raise SimulationError(
                f"kv drive exceeded {max_steps} steps "
                f"({remaining} operations unsubmitted)")
        if remaining and (not simulator.undelivered_count
                          or rng.random() < invoke_probability):
            try:
                _submit(cluster, queue[cursor])
                cursor += 1
                stats.submitted += 1
                progress += 1
            except BackpressureError:
                stats.backpressure_hits += 1
        if simulator.undelivered_count:
            simulator.step()
        elif not progress:
            retried = 0
            for session in sessions:
                retried += session.retry_pending()
            if repair is not None:
                retried += repair.retry_pending()
            stats.retries += retried
            if retried:
                stats.retry_rounds += 1
            elif not simulator.undelivered_count:
                pending = sum(session.inflight for session in sessions)
                raise LivenessError(
                    f"kv drive stalled: {pending} operations in flight, "
                    "retry budget exhausted, network quiescent")
    stats.completed = sum(
        1 for session in sessions for handle in session.handles
        if handle.done)
    return {
        "steps": stats.steps,
        "submitted": stats.submitted,
        "completed": stats.completed,
        "backpressure_hits": stats.backpressure_hits,
        "retries": stats.retries,
        "retry_rounds": stats.retry_rounds,
    }
