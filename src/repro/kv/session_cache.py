"""Session-side read caching and leases for the kv plane.

A :class:`SessionCache` holds a bounded per-key map of
``(value, TIMESTAMP)`` pairs seeded from the session's own completed
operations — full reads, acked writes, and successful revalidations.
A cached ``get`` replaces the two-phase protocol read with a
**metadata-only revalidation round** (``md-validate`` on protocols with
a metadata plane): if the freshest quorum TIMESTAMP equals the cached
one the cached value is served, otherwise the session falls back to a
full read.  With ``lease_ticks > 0`` a freshly anchored entry is also
served *locally* — zero wire traffic — until the lease expires or the
session writes the key.

Correctness rests on two arguments, both per-key:

* **Revalidation** (quorum intersection): any ``n - t`` revalidation
  quorum shares ``n - 2t >= t + 1`` servers — at least one honest —
  with the metadata quorum of every write that completed before the
  round began, so the quorum maximum is at least every such write's
  TIMESTAMP.  Equality with the cached TIMESTAMP proves no newer write
  completed first, and the served read linearizes inside the
  revalidation round.
* **Leases** (anchor adjacency): a locally served read reports its
  *anchor* operation's exact interval and value — the completed read,
  acked write, or revalidated read that installed the entry.  An
  interval clone of an operation already in the history can always be
  linearized immediately after it: every operation that really precedes
  the clone precedes the anchor, and vice versa.  The lease read is
  "as if performed at the anchor point"; the window only bounds how
  long the session keeps re-issuing that claim before revalidating.

Eviction uses the insertion-ordered deterministic LRU discipline of
:mod:`repro.common.lru` (a hit re-inserts at the back), so two seeded
runs see identical hit/miss/eviction sequences.  Entries are keyed by
kv key; capacity ``0`` disables the cache entirely, which is the
default — uncached deployments stay byte-identical on the wire.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.common.errors import ConfigurationError

#: counters exported per session (and mirrored into the obs registry as
#: ``kv.cache[<name>]``), in reporting order.
STAT_NAMES = ("seeds", "invalidations", "lease_hits", "shared_reads",
              "misses", "revalidations", "revalidate_hits",
              "revalidate_fallbacks", "epoch_flushes")


@dataclass
class CachedRead:
    """One cached pair plus the anchor interval lease reads inherit.

    ``anchor_invoke`` / ``anchor_complete`` are the session-level
    interval of the operation that installed (or last revalidated) the
    entry; ``lease_until`` is the first tick the lease no longer
    covers (``anchor_complete + lease_ticks``).
    """

    value: bytes
    timestamp: Any
    anchor_invoke: int
    anchor_complete: int
    lease_until: int = -1


class SessionCache:
    """Bounded deterministic per-key read cache with lease windows.

    ``capacity`` bounds the entry count (``0`` disables caching);
    ``lease_ticks`` sizes the local-serving window in simulator ticks
    (``0`` keeps the cache revalidation-only).  ``stats`` counts every
    cache decision for bench rows and the monitor dashboard.
    """

    def __init__(self, capacity: int = 0, lease_ticks: int = 0) -> None:
        if capacity < 0:
            raise ConfigurationError(
                f"cache capacity must be >= 0, got {capacity}")
        if lease_ticks < 0:
            raise ConfigurationError(
                f"lease_ticks must be >= 0, got {lease_ticks}")
        self.capacity = capacity
        self.lease_ticks = lease_ticks
        #: insertion order == recency order (a hit re-inserts at the
        #: back), exactly the :class:`repro.common.lru.LruCache`
        #: discipline — reimplemented here because invalidation needs
        #: deletion, which the shared primitive deliberately lacks.
        self._entries: Dict[str, CachedRead] = {}
        self.stats: Dict[str, int] = {name: 0 for name in STAT_NAMES}

    @property
    def enabled(self) -> bool:
        """True when the cache holds entries at all."""
        return self.capacity > 0

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, key: str) -> Optional[CachedRead]:
        """The entry for ``key`` (refreshing its recency) or ``None``."""
        entry = self._entries.pop(key, None)
        if entry is not None:
            self._entries[key] = entry
        return entry

    def lease_active(self, entry: CachedRead, now: int) -> bool:
        """True while ``entry`` may be served locally at tick ``now``."""
        return self.lease_ticks > 0 and now < entry.lease_until

    def seed(self, key: str, value: bytes, timestamp: Any,
             anchor_invoke: int, anchor_complete: int) -> None:
        """Install/refresh ``key`` from a completed anchor operation.

        ``timestamp`` must be the anchor's protocol TIMESTAMP; callers
        skip seeding when the protocol does not expose one.  The lease
        window opens at the anchor's completion.
        """
        if not self.enabled:
            return
        self._entries.pop(key, None)
        self._entries[key] = CachedRead(
            value=value, timestamp=timestamp,
            anchor_invoke=anchor_invoke,
            anchor_complete=anchor_complete,
            lease_until=anchor_complete + self.lease_ticks)
        if len(self._entries) > self.capacity:
            oldest = next(iter(self._entries))
            del self._entries[oldest]
        self.stats["seeds"] += 1

    def renew(self, entry: CachedRead, anchor_invoke: int,
              anchor_complete: int) -> None:
        """Re-anchor ``entry`` at a successful revalidation's interval
        and open a fresh lease window from its completion."""
        entry.anchor_invoke = anchor_invoke
        entry.anchor_complete = anchor_complete
        entry.lease_until = anchor_complete + self.lease_ticks
        self.stats["revalidate_hits"] += 1

    def invalidate(self, key: str) -> bool:
        """Drop ``key`` (an observed write supersedes it); returns
        whether an entry was present."""
        present = self._entries.pop(key, None) is not None
        if present:
            self.stats["invalidations"] += 1
        return present

    def clear(self) -> int:
        """Drop every entry (a reconfiguration epoch bump).

        Cached pairs and leases were validated against the *old* fleet
        generation; after a member replacement the revalidation quorum
        may contain the amnesiac newcomer, which erodes the
        quorum-intersection margin the cache's safety argument rests on
        (see docs/ROBUSTNESS.md).  Flushing wholesale restores the
        invariant that every entry was anchored under the current
        generation.  Returns the number of entries dropped; counts one
        ``epoch_flushes`` whenever the cache was enabled.
        """
        dropped = len(self._entries)
        self._entries.clear()
        if self.enabled:
            self.stats["epoch_flushes"] += 1
        return dropped
