"""Client sessions: operation queues, coalescing, admission, retry.

A :class:`KvSession` is the application-facing handle of the kv plane.
Operations are *submitted* (queued) instantly and *admitted* (invoked on
the shard's inner protocol client) by :meth:`KvSession.pump`, subject to
a per-shard in-flight bound.  The gap between the two is where the
plane's scaling behaviour lives:

* **Backpressure** — the queue is bounded; a full queue raises
  :class:`repro.common.errors.BackpressureError` instead of growing
  without bound, so load generators feel the service's actual capacity.
* **Coalescing** — while a write to key ``K`` is still queued, further
  writes to ``K`` fold into it (last value wins) without consuming queue
  slots.  Every folded submission gets its own handle and completes with
  the batch; its value simply never hits the wire.  An intervening
  operation on ``K`` ends the window.  This is sound for per-key
  linearizability: a superseded value is a write that linearizes
  immediately before the one that replaced it, and no read can return
  it.
* **Retry** — when the network quiesces with operations still pending
  (chaos drops, crash windows), :meth:`retry_pending` re-invokes each
  stalled operation under a fresh operation id with the same value.
  Handles complete when *any* attempt completes; the per-key history
  still contains exactly one operation per handle.

Session operation ids embed the session index (``c<i>.o<seq>`` plus
``.a<k>`` per retry attempt) so server-side per-``oid`` listener state
never collides across sessions.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

from repro.analysis.linearizability import KIND_READ, KIND_WRITE
from repro.common.errors import BackpressureError
from repro.core.register import OperationHandle
from repro.kv.directory import KvDirectory
from repro.kv.mux import KvClientHost


@dataclass
class KvOpHandle:
    """Caller-visible handle for one submitted kv operation.

    ``invoke_time``/``complete_time`` bracket the operation's full
    session lifetime (submission to observed completion), which safely
    contains the inner protocol operation's own interval — the
    linearizability checker only ever *widens* real-time constraints
    this way, never invents them.
    """

    kind: str
    key: str
    shard: int
    session: int
    value: Optional[bytes] = None
    invoke_time: int = 0
    complete_time: Optional[int] = None
    result: Optional[bytes] = None
    attempts: int = 0
    coalesced: bool = False

    @property
    def done(self) -> bool:
        """True once the operation has completed."""
        return self.complete_time is not None


@dataclass
class _QueuedOp:
    """One queue slot: an operation awaiting admission."""

    kind: str
    key: str
    shard: int
    value: Optional[bytes]
    handles: List[KvOpHandle]


@dataclass
class _InFlight:
    """One admitted operation and its (possibly retried) attempts."""

    op: _QueuedOp
    oid: str
    tag: str
    attempts: List[OperationHandle] = field(default_factory=list)


class KvSession:
    """A client session multiplexing operations across shards.

    Drive pattern: submit with :meth:`put`/:meth:`get`, then alternate
    :meth:`pump` with simulator steps until :attr:`idle`; call
    :meth:`retry_pending` when the network quiesces with operations
    still outstanding.  :func:`repro.kv.cluster.drive` packages the
    loop.
    """

    def __init__(self, host: KvClientHost, directory: KvDirectory,
                 index: int, max_queue: int = 32,
                 max_inflight_per_shard: int = 1,
                 max_attempts: int = 4) -> None:
        self.host = host
        self.directory = directory
        self.index = index
        self.max_queue = max_queue
        self.max_inflight_per_shard = max_inflight_per_shard
        self.max_attempts = max_attempts
        #: every handle ever issued, in submission order (history source).
        self.handles: List[KvOpHandle] = []
        self._queue: Deque[_QueuedOp] = deque()
        self._inflight: Dict[int, List[_InFlight]] = {}
        self._coalescible: Dict[str, _QueuedOp] = {}
        self._seq = 0

    # -- submission --------------------------------------------------------

    def put(self, key: str, value: bytes) -> KvOpHandle:
        """Queue a write of ``value`` to ``key``.

        Coalesces into a still-queued write to the same key when one
        exists (never consuming a queue slot); otherwise takes a slot,
        raising :class:`BackpressureError` when the queue is full.
        """
        shard = self.directory.shard_of_key(key)
        handle = KvOpHandle(kind=KIND_WRITE, key=key, shard=shard,
                            session=self.index, value=value,
                            invoke_time=self._now())
        anchor = self._coalescible.get(key)
        if anchor is not None:
            anchor.handles[-1].coalesced = True
            anchor.value = value
            anchor.handles.append(handle)
            self.handles.append(handle)
            return handle
        self._admission_check()
        op = _QueuedOp(kind=KIND_WRITE, key=key, shard=shard, value=value,
                       handles=[handle])
        self._queue.append(op)
        self._coalescible[key] = op
        self.handles.append(handle)
        return handle

    def get(self, key: str) -> KvOpHandle:
        """Queue a read of ``key`` (ends any coalescing window on it)."""
        shard = self.directory.shard_of_key(key)
        self._admission_check()
        handle = KvOpHandle(kind=KIND_READ, key=key, shard=shard,
                            session=self.index, invoke_time=self._now())
        op = _QueuedOp(kind=KIND_READ, key=key, shard=shard, value=None,
                       handles=[handle])
        self._queue.append(op)
        self._coalescible.pop(key, None)
        self.handles.append(handle)
        return handle

    def _admission_check(self) -> None:
        if len(self._queue) >= self.max_queue:
            raise BackpressureError(
                f"session {self.index}: queue full "
                f"({self.max_queue} operations awaiting admission)")

    def _now(self) -> int:
        return self.host._require_simulator().time

    # -- progress ----------------------------------------------------------

    def pump(self) -> int:
        """Complete finished operations, admit queued ones; flush sends.

        Returns the number of state changes (completions + admissions) —
        the drive loop's progress signal.
        """
        changed = self._reap()
        changed += self._admit()
        if changed:
            self.host.kv_flush()
        return changed

    def _reap(self) -> int:
        completed = 0
        now = self._now()
        for shard in list(self._inflight):
            remaining = []
            for entry in self._inflight[shard]:
                winner = None
                for attempt in entry.attempts:
                    if attempt.done:
                        winner = attempt
                        break
                if winner is None:
                    remaining.append(entry)
                    continue
                for handle in entry.op.handles:
                    handle.complete_time = now
                    handle.attempts = len(entry.attempts)
                    if handle.kind == KIND_READ:
                        handle.result = winner.result
                completed += 1
            if remaining:
                self._inflight[shard] = remaining
            else:
                del self._inflight[shard]
        return completed

    def _admit(self) -> int:
        # Generation admission: a new batch is admitted only once the
        # previous one has fully completed.  Ops admitted together move
        # through their protocol rounds in lock-step, so their messages
        # share wire envelopes round after round — in the logical-tick
        # simulator (one delivery = one tick) this batch density, not
        # concurrency itself, is what converts shard count into
        # throughput.  Admitting into a half-done generation would
        # stagger the convoy and dissolve the batches.
        if not self._queue or self._inflight:
            return 0
        admitted = 0
        kept: Deque[_QueuedOp] = deque()
        while self._queue:
            op = self._queue.popleft()
            if len(self._inflight.get(op.shard, ())) \
                    < self.max_inflight_per_shard:
                self._invoke(op)
                admitted += 1
            else:
                kept.append(op)
        self._queue = kept
        return admitted

    def _invoke(self, op: _QueuedOp) -> None:
        client = self.host.inner_client(op.shard)
        self._seq += 1
        oid = f"c{self.index}.o{self._seq}"
        tag = self.directory.register_tag(op.key)
        if op.kind == KIND_WRITE:
            attempt = client.invoke_write(tag, oid, op.value)
        else:
            attempt = client.invoke_read(tag, oid)
        entry = _InFlight(op=op, oid=oid, tag=tag, attempts=[attempt])
        self._inflight.setdefault(op.shard, []).append(entry)
        if self._coalescible.get(op.key) is op:
            del self._coalescible[op.key]  # in flight: window closed

    def retry_pending(self) -> int:
        """Re-invoke every stalled operation with remaining attempts.

        Called when the network has quiesced with operations pending
        (e.g. a chaos plan dropped part of a write round).  Returns the
        number of re-invocations; zero means the retry budget is spent.
        """
        retried = 0
        for shard, entries in self._inflight.items():
            client = None
            for entry in entries:
                if any(attempt.done for attempt in entry.attempts):
                    continue
                if len(entry.attempts) >= self.max_attempts:
                    continue
                if client is None:
                    client = self.host.inner_client(shard)
                oid = f"{entry.oid}.a{len(entry.attempts)}"
                if entry.op.kind == KIND_WRITE:
                    attempt = client.invoke_write(entry.tag, oid,
                                                  entry.op.value)
                else:
                    attempt = client.invoke_read(entry.tag, oid)
                entry.attempts.append(attempt)
                retried += 1
        if retried:
            self.host.kv_flush()
        return retried

    # -- introspection -----------------------------------------------------

    @property
    def idle(self) -> bool:
        """True when nothing is queued or in flight."""
        return not self._queue and not self._inflight

    @property
    def queued(self) -> int:
        """Operations awaiting admission."""
        return len(self._queue)

    @property
    def inflight(self) -> int:
        """Operations admitted but not yet completed."""
        total = 0
        for entries in self._inflight.values():
            total += len(entries)
        return total
