"""Client sessions: operation queues, coalescing, admission, retry, caching.

A :class:`KvSession` is the application-facing handle of the kv plane.
Operations are *submitted* (queued) instantly and *admitted* (invoked on
the shard's inner protocol client) by :meth:`KvSession.pump`, subject to
a per-shard in-flight bound.  The gap between the two is where the
plane's scaling behaviour lives:

* **Backpressure** — the queue is bounded; a full queue raises
  :class:`repro.common.errors.BackpressureError` instead of growing
  without bound, so load generators feel the service's actual capacity.
* **Coalescing** — while a write to key ``K`` is still queued, further
  writes to ``K`` fold into it (last value wins) without consuming queue
  slots.  Every folded submission gets its own handle and completes with
  the batch; its value simply never hits the wire.  An intervening
  operation on ``K`` ends the window.  This is sound for per-key
  linearizability: a superseded value is a write that linearizes
  immediately before the one that replaced it, and no read can return
  it.
* **Retry** — when the network quiesces with operations still pending
  (chaos drops, crash windows), :meth:`retry_pending` re-invokes each
  stalled operation under a fresh operation id with the same value.
  Handles complete when *any* attempt completes; the per-key history
  still contains exactly one operation per handle.
* **Cached reads and leases** — with ``cache_size > 0`` the session
  keeps a bounded per-key ``(value, TIMESTAMP)`` cache seeded from its
  completed reads, acked writes, and successful revalidations.  A
  ``get`` that hits the cache runs a **metadata-only revalidation
  round** (``invoke_validate`` on protocols with a metadata plane,
  e.g. ``atomic_md``) instead of a two-phase read, falling back to a
  full read on protocols without one or when the quorum reports a
  newer TIMESTAMP.  With ``lease_ticks > 0`` a freshly anchored entry
  is served *locally* within the window — zero wire traffic — and any
  write this session submits to the key invalidates it eagerly.  See
  :mod:`repro.kv.session_cache` for the linearizability argument.
* **Read sharing** — with the cache enabled, a ``get`` of a key whose
  read or write is still *queued* (not yet admitted) joins that
  operation instead of queueing its own: one wire operation settles
  every joined handle (a read joined to a write returns the written
  value).  This is sound because the inner operation is invoked at
  admission, after every joined handle's submission, so each handle's
  interval contains the inner operation's — the same widening argument
  session handles already rely on.  A write to the key in between
  bumps its epoch and ends the read-op sharing window, so joined reads
  never skip a session-observed write.

Session operation ids embed the session index (``c<i>.o<seq>`` plus
``.a<k>`` per retry attempt and ``.full`` for a revalidation-mismatch
fallback read) so server-side per-``oid`` listener state never collides
across sessions.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

from repro.analysis.linearizability import KIND_READ, KIND_WRITE
from repro.common.errors import BackpressureError
from repro.core.register import KIND_VALIDATE, OperationHandle
from repro.kv.directory import KvDirectory
from repro.kv.mux import KvClientHost
from repro.kv.session_cache import CachedRead, SessionCache


@dataclass
class KvOpHandle:
    """Caller-visible handle for one submitted kv operation.

    ``invoke_time``/``complete_time`` bracket the operation's full
    session lifetime: submission to the *winning inner attempt's*
    completion tick, which safely contains the inner protocol
    operation's own interval — the linearizability checker only ever
    *widens* real-time constraints this way, never invents them.  A
    lease-served read instead reports its cache anchor's interval (the
    operation it is an interval clone of; see
    :mod:`repro.kv.session_cache`).  ``attempts`` counts protocol
    invocations made so far — live while the operation is pending, not
    just stamped at completion — and stays ``0`` for lease-served reads,
    which never touch the wire.  ``served`` records how a read was
    satisfied: ``"lease"`` (locally), ``"revalidate"`` (metadata-only
    round confirmed the cache), or ``None`` (full protocol read).
    """

    kind: str
    key: str
    shard: int
    session: int
    value: Optional[bytes] = None
    invoke_time: int = 0
    complete_time: Optional[int] = None
    result: Optional[bytes] = None
    attempts: int = 0
    coalesced: bool = False
    served: Optional[str] = None

    @property
    def done(self) -> bool:
        """True once the operation has completed."""
        return self.complete_time is not None


@dataclass
class _QueuedOp:
    """One queue slot: an operation awaiting admission.

    ``cached`` snapshots the cache entry a read may revalidate against
    (``None`` for writes, uncached reads, and after a fallback);
    ``epoch`` snapshots the key's write epoch at submission so a
    completion observed after a later write to the same key never
    re-seeds the cache with a superseded value.
    """

    kind: str
    key: str
    shard: int
    value: Optional[bytes]
    handles: List[KvOpHandle]
    cached: Optional[CachedRead] = None
    epoch: int = 0


@dataclass
class _InFlight:
    """One admitted operation and its (possibly retried) attempts.

    ``attempts_made`` counts every protocol invocation including
    fallback reads whose superseded validate attempts were dropped from
    ``attempts`` — the retry budget and handle accounting run on it.
    """

    op: _QueuedOp
    oid: str
    tag: str
    attempts: List[OperationHandle] = field(default_factory=list)
    attempts_made: int = 1


class KvSession:
    """A client session multiplexing operations across shards.

    Drive pattern: submit with :meth:`put`/:meth:`get`, then alternate
    :meth:`pump` with simulator steps until :attr:`idle`; call
    :meth:`retry_pending` when the network quiesces with operations
    still outstanding.  :func:`repro.kv.cluster.drive` packages the
    loop.  ``cache_size``/``lease_ticks`` configure session-cached
    reads (both default off, keeping uncached schedules byte-identical).
    """

    def __init__(self, host: KvClientHost, directory: KvDirectory,
                 index: int, max_queue: int = 32,
                 max_inflight_per_shard: int = 1,
                 max_attempts: int = 4, cache_size: int = 0,
                 lease_ticks: int = 0) -> None:
        self.host = host
        self.directory = directory
        self.index = index
        self.max_queue = max_queue
        self.max_inflight_per_shard = max_inflight_per_shard
        self.max_attempts = max_attempts
        self.cache = SessionCache(cache_size, lease_ticks)
        #: every handle ever issued, in submission order (history source).
        self.handles: List[KvOpHandle] = []
        self._queue: Deque[_QueuedOp] = deque()
        self._inflight: Dict[int, List[_InFlight]] = {}
        self._coalescible: Dict[str, _QueuedOp] = {}
        #: still-queued read per key that later gets may join (cache on).
        self._shareable: Dict[str, _QueuedOp] = {}
        self._key_epoch: Dict[str, int] = {}
        self._seq = 0
        #: directory generation awaiting adoption (reconfiguration
        #: drain: no admissions until in-flight ops on the old epoch
        #: complete), and the generation currently admitted under.
        self._pending_directory: Optional[KvDirectory] = None
        self.epoch = directory.epoch

    # -- submission --------------------------------------------------------

    def put(self, key: str, value: bytes) -> KvOpHandle:
        """Queue a write of ``value`` to ``key``.

        Coalesces into a still-queued write to the same key when one
        exists (never consuming a queue slot); otherwise takes a slot,
        raising :class:`BackpressureError` when the queue is full.
        Eagerly invalidates any cached read of ``key`` — a session
        never lease-serves a value it has since overwritten.
        """
        shard = self.directory.shard_of_key(key)
        handle = KvOpHandle(kind=KIND_WRITE, key=key, shard=shard,
                            session=self.index, value=value,
                            invoke_time=self._now())
        epoch = self._key_epoch.get(key, 0) + 1
        self._key_epoch[key] = epoch
        if self.cache.invalidate(key):
            self._count("invalidate")
        anchor = self._coalescible.get(key)
        if anchor is not None:
            # Mark the superseded write (joined reads may trail it).
            for earlier in reversed(anchor.handles):
                if earlier.kind == KIND_WRITE:
                    earlier.coalesced = True
                    break
            anchor.value = value
            anchor.epoch = epoch
            anchor.handles.append(handle)
            self.handles.append(handle)
            return handle
        self._admission_check()
        op = _QueuedOp(kind=KIND_WRITE, key=key, shard=shard, value=value,
                       handles=[handle], epoch=epoch)
        self._queue.append(op)
        self._coalescible[key] = op
        self.handles.append(handle)
        return handle

    def get(self, key: str) -> KvOpHandle:
        """Queue a read of ``key`` (ends any coalescing window on it).

        A cached key inside an active lease window is served locally —
        the handle completes immediately with the anchor's value and
        interval, consuming no queue slot and no wire traffic.  A key
        whose read is still queued joins that operation (read sharing).
        Otherwise a cached key queues a metadata-only revalidation and
        an uncached key queues a full protocol read.
        """
        shard = self.directory.shard_of_key(key)
        entry = self.cache.lookup(key)
        now = self._now()
        if entry is not None and self.cache.lease_active(entry, now):
            self._coalescible.pop(key, None)
            handle = KvOpHandle(kind=KIND_READ, key=key, shard=shard,
                                session=self.index,
                                invoke_time=entry.anchor_invoke,
                                complete_time=entry.anchor_complete,
                                result=entry.value, served="lease")
            self.cache.stats["lease_hits"] += 1
            self._count("lease")
            self.handles.append(handle)
            return handle
        epoch = self._key_epoch.get(key, 0)
        host_op = self._coalescible.get(key) if self.cache.enabled \
            else None
        if host_op is None or host_op.epoch != epoch:
            host_op = self._shareable.get(key)
        if host_op is not None and host_op.epoch == epoch:
            if self._coalescible.get(key) is not host_op:
                self._coalescible.pop(key, None)
            handle = KvOpHandle(kind=KIND_READ, key=key, shard=shard,
                                session=self.index, invoke_time=now,
                                coalesced=True)
            host_op.handles.append(handle)
            self.cache.stats["shared_reads"] += 1
            self._count("shared")
            self.handles.append(handle)
            return handle
        self._admission_check()
        handle = KvOpHandle(kind=KIND_READ, key=key, shard=shard,
                            session=self.index, invoke_time=now)
        if self.cache.enabled and entry is None:
            self.cache.stats["misses"] += 1
            self._count("miss")
        op = _QueuedOp(kind=KIND_READ, key=key, shard=shard, value=None,
                       handles=[handle], cached=entry, epoch=epoch)
        self._queue.append(op)
        self._coalescible.pop(key, None)
        if self.cache.enabled:
            self._shareable[key] = op
        self.handles.append(handle)
        return handle

    def _admission_check(self) -> None:
        if len(self._queue) >= self.max_queue:
            raise BackpressureError(
                f"session {self.index}: queue full "
                f"({self.max_queue} operations awaiting admission)")

    def _now(self) -> int:
        return self.host._require_simulator().time

    def _count(self, label: str) -> None:
        """Mirror one cache decision into the run's obs registry."""
        simulator = self.host.simulator
        observer = None if simulator is None else simulator.obs
        if observer is None:
            return
        registry = getattr(observer, "registry", None)
        if registry is None:
            recorder = getattr(observer, "recorder", None)
            registry = None if recorder is None else recorder.registry
        if registry is not None:
            registry.counter(f"kv.cache[{label}]").inc()

    # -- progress ----------------------------------------------------------

    def pump(self) -> int:
        """Complete finished operations, admit queued ones; flush sends.

        Returns the number of state changes (completions, fallback
        reads, admissions, epoch swaps) — the drive loop's progress
        signal.
        """
        changed = self._reap()
        changed += self._try_epoch_swap()
        changed += self._admit()
        if changed:
            self.host.kv_flush()
        return changed

    # -- reconfiguration ---------------------------------------------------

    def begin_reconfiguration(self, directory: KvDirectory) -> None:
        """Announce a new directory generation to this session.

        Admission stops immediately; operations already in flight drain
        under the old epoch (their quorums formed against the old fleet
        and stay valid — the replaced member simply never answers).
        Once the session is quiescent the swap commits: the directory
        and epoch advance, the read cache flushes, and queued
        operations admit against the new generation.  See
        docs/ROBUSTNESS.md for why this drain keeps reads spanning the
        transition atomic.
        """
        if directory.epoch <= self.epoch:
            return  # stale or duplicate announcement: already there
        self._pending_directory = directory
        self._try_epoch_swap()

    def _try_epoch_swap(self) -> int:
        """Commit a pending generation once in-flight ops have drained."""
        if self._pending_directory is None or self._inflight:
            return 0
        directory = self._pending_directory
        self._pending_directory = None
        self.directory = directory
        self.epoch = directory.epoch
        # Everything cached was anchored under the old generation; a
        # queued read's revalidation snapshot would probe the new fleet
        # against an old-era TIMESTAMP, so drop those too.
        self.cache.clear()
        for op in self._queue:
            op.cached = None
        return 1

    def _reap(self) -> int:
        changed = 0
        for shard in list(self._inflight):
            remaining = []
            for entry in self._inflight[shard]:
                done = [attempt for attempt in entry.attempts
                        if attempt.done]
                if not done:
                    remaining.append(entry)
                    continue
                if entry.op.cached is not None:
                    winner = done[0]
                    if winner.timestamp != entry.op.cached.timestamp:
                        # The quorum maximum names a newer write: the
                        # cached pair is superseded.  Fall back to a
                        # full read under a fresh oid; the entry stays
                        # in flight until that read completes.
                        self._fallback_full_read(entry)
                        changed += 1
                        remaining.append(entry)
                        continue
                    value = entry.op.cached.value
                    served = "revalidate"
                else:
                    winner = self._pick_winner(entry.op.kind, done)
                    # Reads joined to a write return the written value.
                    value = (winner.result if entry.op.kind == KIND_READ
                             else entry.op.value)
                    served = None
                self._complete_entry(entry, winner, value, served)
                changed += 1
            if remaining:
                self._inflight[shard] = remaining
            else:
                del self._inflight[shard]
        return changed

    @staticmethod
    def _pick_winner(kind: str,
                     done: List[OperationHandle]) -> OperationHandle:
        """The completed attempt that settles the operation.

        For reads, the attempt with the highest TIMESTAMP wins (ties
        keep the earliest attempt) so the session cache is seeded with
        the freshest pair when retries race; attempts without a
        TIMESTAMP never displace one that has it.  Writes take the
        first completion — every acked attempt wrote the same value.
        """
        winner = done[0]
        if kind != KIND_READ:
            return winner
        for attempt in done[1:]:
            if attempt.timestamp is not None and (
                    winner.timestamp is None
                    or winner.timestamp < attempt.timestamp):
                winner = attempt
        return winner

    def _complete_entry(self, entry: _InFlight, winner: OperationHandle,
                        value: Optional[bytes],
                        served: Optional[str]) -> None:
        """Stamp every handle from the winning attempt and seed the
        cache from the completed anchor."""
        op = entry.op
        complete_time = winner.complete_time
        for handle in op.handles:
            handle.complete_time = complete_time
            handle.attempts = entry.attempts_made
            handle.served = served
            if handle.kind == KIND_READ:
                handle.result = value
        if not self.cache.enabled:
            return
        # The last handle carries the value that actually hit the wire
        # (coalescing folds earlier values into it).
        anchor = op.handles[-1]
        if served == "revalidate":
            # Re-anchor the (possibly orphaned) snapshot: if the entry
            # was invalidated or evicted meanwhile, the mutation is
            # invisible to future lookups — exactly right.
            self.cache.renew(op.cached, anchor.invoke_time,
                             complete_time)
            self._count("revalidate-hit")
            return
        if winner.timestamp is None:
            return  # protocol exposes no TIMESTAMP: nothing to seed
        if op.epoch != self._key_epoch.get(op.key, 0):
            return  # a later write to the key was submitted: superseded
        seed_value = op.value if op.kind == KIND_WRITE else value
        self.cache.seed(op.key, seed_value, winner.timestamp,
                        anchor.invoke_time, complete_time)
        self._count("seed")

    def _fallback_full_read(self, entry: _InFlight) -> None:
        """Revalidation mismatch: drop the validate attempts and issue
        a full read under a fresh oid (the stale cache entry must not
        be served and is invalidated)."""
        self.cache.stats["revalidate_fallbacks"] += 1
        self._count("fallback")
        if self.cache.lookup(entry.op.key) is entry.op.cached:
            self.cache.invalidate(entry.op.key)
            self._count("invalidate")
        entry.op.cached = None
        client = self.host.inner_client(entry.op.shard)
        attempt = client.invoke_read(entry.tag, f"{entry.oid}.full")
        entry.attempts = [a for a in entry.attempts
                          if a.kind != KIND_VALIDATE]
        entry.attempts.append(attempt)
        entry.attempts_made += 1
        for handle in entry.op.handles:
            handle.attempts = entry.attempts_made

    def _admit(self) -> int:
        # Generation admission: a new batch is admitted only once the
        # previous one has fully completed.  Ops admitted together move
        # through their protocol rounds in lock-step, so their messages
        # share wire envelopes round after round — in the logical-tick
        # simulator (one delivery = one tick) this batch density, not
        # concurrency itself, is what converts shard count into
        # throughput.  Admitting into a half-done generation would
        # stagger the convoy and dissolve the batches.
        if self._pending_directory is not None:
            return 0  # reconfiguration drain: nothing admits until the
            # old generation's in-flight operations have completed
        if not self._queue or self._inflight:
            return 0
        admitted = 0
        kept: Deque[_QueuedOp] = deque()
        while self._queue:
            op = self._queue.popleft()
            if op.kind == KIND_READ and self._serve_from_lease(op):
                admitted += 1
            elif len(self._inflight.get(op.shard, ())) \
                    < self.max_inflight_per_shard:
                self._invoke(op)
                admitted += 1
            else:
                kept.append(op)
        self._queue = kept
        return admitted

    def _serve_from_lease(self, op: _QueuedOp) -> bool:
        """Serve a queued read locally when its key regained an active
        lease while the read waited for admission.

        Typical after a write: reads queued behind the in-flight write
        are admitted once it completes and seeds the cache, and inherit
        the ack's anchor interval instead of hitting the wire — the
        same interval-clone argument as the submission-time lease path
        (the handle *reports* the anchor's interval, so when the claim
        is made does not matter).
        """
        if not self.cache.enabled:
            return False
        entry = self.cache.lookup(op.key)
        if entry is None or not self.cache.lease_active(entry,
                                                        self._now()):
            return False
        for handle in op.handles:
            handle.invoke_time = entry.anchor_invoke
            handle.complete_time = entry.anchor_complete
            handle.result = entry.value
            handle.served = "lease"
            self.cache.stats["lease_hits"] += 1
            self._count("lease")
        if self._shareable.get(op.key) is op:
            del self._shareable[op.key]
        return True

    def _invoke(self, op: _QueuedOp) -> None:
        client = self.host.inner_client(op.shard)
        self._seq += 1
        oid = f"c{self.index}.o{self._seq}"
        tag = self.directory.register_tag(op.key)
        if op.kind == KIND_WRITE:
            attempt = client.invoke_write(tag, oid, op.value)
        elif op.cached is not None and hasattr(client, "invoke_validate"):
            self.cache.stats["revalidations"] += 1
            self._count("revalidate")
            attempt = client.invoke_validate(tag, oid)
        else:
            op.cached = None  # no metadata plane: plain full read
            attempt = client.invoke_read(tag, oid)
        entry = _InFlight(op=op, oid=oid, tag=tag, attempts=[attempt])
        for handle in op.handles:
            handle.attempts = entry.attempts_made
        self._inflight.setdefault(op.shard, []).append(entry)
        if self._coalescible.get(op.key) is op:
            del self._coalescible[op.key]  # in flight: window closed
        if self._shareable.get(op.key) is op:
            del self._shareable[op.key]  # admitted: joins would race
            # the inner read's linearization point, so the window ends.

    def retry_pending(self) -> int:
        """Re-invoke every stalled operation with remaining attempts.

        Called when the network has quiesced with operations pending
        (e.g. a chaos plan dropped part of a write round).  Cached
        reads retry their revalidation round; fallback reads retry as
        reads.  Returns the number of re-invocations; zero means the
        retry budget is spent.
        """
        retried = 0
        for shard, entries in self._inflight.items():
            client = None
            for entry in entries:
                if any(attempt.done for attempt in entry.attempts):
                    continue
                if entry.attempts_made >= self.max_attempts:
                    continue
                if client is None:
                    client = self.host.inner_client(shard)
                oid = f"{entry.oid}.a{entry.attempts_made}"
                if entry.op.kind == KIND_WRITE:
                    attempt = client.invoke_write(entry.tag, oid,
                                                  entry.op.value)
                elif entry.op.cached is not None:
                    self.cache.stats["revalidations"] += 1
                    self._count("revalidate")
                    attempt = client.invoke_validate(entry.tag, oid)
                else:
                    attempt = client.invoke_read(entry.tag, oid)
                entry.attempts.append(attempt)
                entry.attempts_made += 1
                for handle in entry.op.handles:
                    handle.attempts = entry.attempts_made
                retried += 1
        if retried:
            self.host.kv_flush()
        return retried

    # -- introspection -----------------------------------------------------

    @property
    def idle(self) -> bool:
        """True when nothing is queued or in flight."""
        return not self._queue and not self._inflight

    @property
    def queued(self) -> int:
        """Operations awaiting admission."""
        return len(self._queue)

    @property
    def inflight(self) -> int:
        """Operations admitted but not yet completed."""
        total = 0
        for entries in self._inflight.values():
            total += len(entries)
        return total
