"""End-to-end load harness for the kv plane (``repro kv-bench``).

One benchmark *case* runs a seeded Zipf/uniform multi-key workload
against a kv deployment with a given shard count, optionally under a
builtin chaos plan, and reports:

* **throughput** — completed operations per logical tick.  A tick is
  one simulator delivery, so ops/tick directly measures how densely the
  envelope layer batches inner protocol traffic; more shards admit more
  concurrent operations per session, which packs more inner messages
  into each envelope.
* **per-phase latency attribution** — operation spans from
  ``repro.obs`` (timestamp query, dispersal, reliable broadcast,
  quorum waits, retrieval), summed per phase across all operations.
* **per-key linearizability** — every key's completed history must
  pass :func:`repro.analysis.linearizability.check_atomicity`.

A *bench* sweeps shard counts (and one chaos case) and emits a
``BENCH_*.json`` payload via :func:`repro.obs.emit_bench`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis.linearizability import (
    KIND_WRITE,
    HistoryOp,
    check_atomicity,
)
from repro.chaos.library import builtin_plan
from repro.chaos.injector import FaultInjector
from repro.chaos.plan import FaultPlan
from repro.cluster import PROTOCOLS
from repro.config import SystemConfig
from repro.kv.cluster import (
    FailStopKvServer,
    KvCluster,
    build_kv_cluster,
    drive,
)
from repro.kv.directory import KvDirectory
from repro.kv.envelope import KV_TAG
from repro.kv.session import KvSession
from repro.net.schedulers import RandomScheduler, Scheduler
from repro.obs import TraceRecorder, build_spans
from repro.workloads.kv import kv_workload

#: Prefix distinguishing kv operation spans from other traffic.
_KV_SPAN_PREFIX = "kv.s"


@dataclass
class KvBenchRow:
    """One measured kv-bench case (one shard count, one plan)."""

    shards: int
    protocol: str
    plan: Optional[str]
    sessions: int
    keys: int
    ops: int
    completed: int
    ticks: int
    ops_per_tick: float
    envelopes: int
    inner_messages: int
    wire_bytes: int
    batch_factor: float
    retries: int
    backpressure_hits: int
    coalesced: int
    keys_checked: int
    linearizable: bool
    phase_ticks: Dict[str, int] = field(default_factory=dict)

    def to_json(self) -> Dict[str, Any]:
        """The row as a plain JSON-serializable dictionary."""
        return {
            "shards": self.shards, "protocol": self.protocol,
            "plan": self.plan, "sessions": self.sessions,
            "keys": self.keys, "ops": self.ops,
            "completed": self.completed, "ticks": self.ticks,
            "ops_per_tick": round(self.ops_per_tick, 6),
            "envelopes": self.envelopes,
            "inner_messages": self.inner_messages,
            "wire_bytes": self.wire_bytes,
            "batch_factor": round(self.batch_factor, 3),
            "retries": self.retries,
            "backpressure_hits": self.backpressure_hits,
            "coalesced": self.coalesced,
            "keys_checked": self.keys_checked,
            "linearizable": self.linearizable,
            "phase_ticks": {name: self.phase_ticks[name]
                            for name in sorted(self.phase_ticks)},
        }


def _chaos_overrides(plan: FaultPlan, server_cls) -> Optional[Dict]:
    if not plan.crashes:
        return None
    overrides = {}
    for crash in plan.crashes:
        overrides[crash.server] = (
            lambda pid, directory, _crash=crash: FailStopKvServer(
                pid, directory, server_cls=server_cls,
                crash_after=_crash.after,
                recover_after=_crash.recover_after,
                trigger=_crash.trigger))
    return overrides


def _scheduler_for(plan: Optional[FaultPlan], seed: int) -> Scheduler:
    if plan is not None and plan.scheduler is not None:
        return plan.scheduler.build(seed)
    return RandomScheduler(seed)


def session_history(sessions: Sequence[KvSession]
                    ) -> Dict[str, List[HistoryOp]]:
    """Group every completed session handle into per-key histories.

    Handle intervals span submission to observed completion, which
    contains the inner operation's own interval — so any order the
    checker admits for these intervals is admissible for the real ones.
    Coalesced writes appear as their own operations (their values are
    never read, so they linearize immediately before their superseder).
    """
    histories: Dict[str, List[HistoryOp]] = {}
    counter = 0
    for session in sessions:
        for handle in session.handles:
            if not handle.done:
                continue
            counter += 1
            value = handle.value if handle.kind == KIND_WRITE \
                else handle.result
            histories.setdefault(handle.key, []).append(HistoryOp(
                kind=handle.kind, oid=f"s{session.index}.h{counter}",
                value=value, invoke=handle.invoke_time,
                complete=handle.complete_time))
    return histories


def check_kv_histories(sessions: Sequence[KvSession]) -> int:
    """Check per-key linearizability; returns the number of keys checked.

    Raises :class:`repro.common.errors.AtomicityViolation` on the first
    key whose history admits no atomic order.
    """
    histories = session_history(sessions)
    for key in sorted(histories):
        check_atomicity(histories[key], initial_value=b"")
    return len(histories)


def _phase_attribution(recorder: TraceRecorder) -> Dict[str, int]:
    totals: Dict[str, int] = {}
    for span in build_spans(recorder):
        if not span.tag.startswith(_KV_SPAN_PREFIX):
            continue
        for child in span.children:
            totals[child.name] = totals.get(child.name, 0) \
                + child.duration
    return totals


def _traffic(recorder: TraceRecorder) -> Tuple[int, int, int]:
    envelopes = 0
    inner = 0
    wire_bytes = 0
    for record in recorder.messages.values():
        if record.tag == KV_TAG:
            envelopes += 1
            wire_bytes += record.wire_bytes
        else:
            inner += 1
    return envelopes, inner, wire_bytes


def run_kv_case(num_shards: int, n: int = 4, t: int = 1,
                protocol: str = "atomic", sessions: int = 4,
                keys: int = 32, ops: int = 96,
                write_ratio: float = 0.5, distribution: str = "zipf",
                zipf_exponent: float = 1.1, seed: int = 0,
                value_size: int = 64, plan_name: Optional[str] = None,
                max_queue: int = 32, max_inflight_per_shard: int = 1,
                max_attempts: int = 4,
                monitor=None) -> Tuple[KvBenchRow, KvCluster]:
    """Run one kv-bench case and return ``(row, cluster)``.

    ``plan_name`` selects a builtin chaos plan (validated against
    ``n``/``t``); ``None`` runs fault-free.  ``monitor`` (a
    :class:`repro.obs.health.HealthMonitor`) takes the run's single
    tracer slot when given — its wrapped recorder feeds the row's
    traffic/phase columns and its per-shard series feed ``repro
    monitor``.
    """
    fleet = SystemConfig(n=n, t=t, seed=seed)
    directory = KvDirectory(fleet, num_shards)
    plan = None
    overrides = None
    if plan_name is not None:
        plan = builtin_plan(plan_name, n, t, seed=seed)
        plan.validate(n, t)
        overrides = _chaos_overrides(plan, PROTOCOLS[protocol][0])
    cluster = build_kv_cluster(
        directory, protocol=protocol, num_sessions=sessions,
        scheduler=_scheduler_for(plan, seed),
        server_overrides=overrides, max_queue=max_queue,
        max_inflight_per_shard=max_inflight_per_shard,
        max_attempts=max_attempts)
    if monitor is not None:
        recorder = monitor.attach(cluster.simulator).recorder
    else:
        recorder = TraceRecorder().attach(cluster.simulator)
    if plan is not None:
        cluster.simulator.attach_injector(FaultInjector(plan))
    workload = kv_workload(
        num_sessions=sessions, num_keys=keys, ops=ops,
        write_ratio=write_ratio, distribution=distribution,
        zipf_exponent=zipf_exponent, seed=seed, value_size=value_size)
    stats = drive(cluster, workload, seed=seed)
    if monitor is not None:
        monitor.finalize()
    keys_checked = check_kv_histories(cluster.sessions)
    coalesced = sum(1 for session in cluster.sessions
                    for handle in session.handles if handle.coalesced)
    ticks = cluster.simulator.time
    envelopes, inner, wire_bytes = _traffic(recorder)
    row = KvBenchRow(
        shards=num_shards, protocol=protocol, plan=plan_name,
        sessions=sessions, keys=keys, ops=ops,
        completed=stats["completed"], ticks=ticks,
        ops_per_tick=stats["completed"] / ticks if ticks else 0.0,
        envelopes=envelopes, inner_messages=inner,
        wire_bytes=wire_bytes,
        batch_factor=inner / envelopes if envelopes else 0.0,
        retries=stats["retries"],
        backpressure_hits=stats["backpressure_hits"],
        coalesced=coalesced, keys_checked=keys_checked,
        linearizable=True,
        phase_ticks=_phase_attribution(recorder))
    return row, cluster


def run_kv_bench(shard_counts: Sequence[int], n: int = 4, t: int = 1,
                 protocol: str = "atomic", sessions: int = 4,
                 keys: int = 32, ops: int = 96,
                 write_ratio: float = 0.5, distribution: str = "zipf",
                 seed: int = 0, value_size: int = 64,
                 chaos_plan: Optional[str] = "delays"
                 ) -> Dict[str, Any]:
    """Sweep shard counts (plus one chaos case) and build the payload.

    The chaos case reuses the largest shard count under ``chaos_plan``
    so one sweep demonstrates both scaling and fault recovery; pass
    ``chaos_plan=None`` to skip it.
    """
    rows: List[KvBenchRow] = []
    for shards in shard_counts:
        row, _cluster = run_kv_case(
            shards, n=n, t=t, protocol=protocol, sessions=sessions,
            keys=keys, ops=ops, write_ratio=write_ratio,
            distribution=distribution, seed=seed, value_size=value_size)
        rows.append(row)
    if chaos_plan is not None and shard_counts:
        row, _cluster = run_kv_case(
            max(shard_counts), n=n, t=t, protocol=protocol,
            sessions=sessions, keys=keys, ops=ops,
            write_ratio=write_ratio, distribution=distribution,
            seed=seed, value_size=value_size, plan_name=chaos_plan)
        rows.append(row)
    return {
        "config": {"n": n, "t": t, "protocol": protocol,
                   "sessions": sessions, "keys": keys, "ops": ops,
                   "write_ratio": write_ratio,
                   "distribution": distribution, "seed": seed,
                   "value_size": value_size, "chaos_plan": chaos_plan},
        "rows": [row.to_json() for row in rows],
    }
