"""End-to-end load harness for the kv plane (``repro kv-bench``).

One benchmark *case* runs a seeded Zipf/uniform multi-key workload
against a kv deployment with a given shard count, optionally under a
builtin chaos plan, and reports:

* **throughput** — completed operations per logical tick.  A tick is
  one simulator delivery, so ops/tick directly measures how densely the
  envelope layer batches inner protocol traffic; more shards admit more
  concurrent operations per session, which packs more inner messages
  into each envelope.
* **per-phase latency attribution** — operation spans from
  ``repro.obs`` (timestamp query, dispersal, reliable broadcast,
  quorum waits, retrieval), summed per phase across all operations.
* **per-key linearizability** — every key's completed history must
  pass :func:`repro.analysis.linearizability.check_atomicity`.
* **plane split** — wire bytes divided metadata-plane vs data-plane
  (:mod:`repro.obs.planes`), whole-run and attributed to reads alone,
  which is the column the ``atomic_md`` metadata/data separation is
  judged on.

A *bench* sweeps shard counts (and one chaos case) and emits a
``BENCH_*.json`` payload via :func:`repro.obs.emit_bench`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis.linearizability import (
    KIND_READ,
    KIND_WRITE,
    HistoryOp,
    check_atomicity,
)
from repro.chaos.library import builtin_plan
from repro.chaos.injector import FaultInjector
from repro.chaos.plan import FaultPlan
from repro.cluster import PROTOCOLS
from repro.common.errors import ConfigurationError
from repro.config import SystemConfig
from repro.core.atomic_md import MSG_BLOCK_MISS, MSG_GET_BLOCK
from repro.faults.byzantine_servers import BYZANTINE_BEHAVIOURS
from repro.kv.cluster import (
    FailStopKvServer,
    KvCluster,
    KvServer,
    build_kv_cluster,
    drive,
)
from repro.kv.directory import KvDirectory
from repro.kv.envelope import KV_TAG
from repro.kv.session import KvSession
from repro.net.schedulers import RandomScheduler, Scheduler
from repro.obs import (
    TraceRecorder,
    build_spans,
    operation_plane_traffic,
    plane_traffic,
)
from repro.workloads.kv import DEFAULT_SHIFT_EVERY, kv_workload

#: Prefix distinguishing kv operation spans from other traffic.
_KV_SPAN_PREFIX = "kv.s"

#: Byzantine cases ``run_kv_case(byzantine=...)`` accepts: one fleet
#: server serves corrupted blocks / claims universal misses (data
#: plane, forcing read escalation) or answers cache revalidation with
#: stale / forged-inflated metadata (metadata plane — stale replies
#: cannot defeat the quorum maximum, forged ones only force the
#: session's full-read fallback).  The canonical registry lives in
#: :mod:`repro.faults.byzantine_servers`, where chaos
#: :class:`~repro.chaos.plan.ByzantineSpec` entries resolve the same
#: names; this alias keeps the historical import path working.
BYZANTINE_MD_SERVERS = BYZANTINE_BEHAVIOURS


@dataclass
class KvBenchRow:
    """One measured kv-bench case (one shard count, one plan)."""

    shards: int
    protocol: str
    plan: Optional[str]
    sessions: int
    keys: int
    ops: int
    completed: int
    ticks: int
    ops_per_tick: float
    envelopes: int
    inner_messages: int
    wire_bytes: int
    batch_factor: float
    retries: int
    backpressure_hits: int
    coalesced: int
    keys_checked: int
    linearizable: bool
    #: whole-run wire bytes split by plane (envelopes excluded)
    metadata_bytes: int = 0
    data_bytes: int = 0
    #: plane split attributed to completed reads only — the column the
    #: metadata/data separation is judged on (a read should touch ``k``
    #: blocks, not ``n``)
    read_metadata_bytes: int = 0
    read_data_bytes: int = 0
    #: completed read operations, and AtomicMd data-plane activity:
    #: ``md-get-block`` requests sent and ``md-block-miss`` replies.
    #: Fault-free, ``block_fetches == k * reads`` per md read; anything
    #: beyond that (or any miss) means the reader escalated past its
    #: first ``k`` data-plane targets.
    reads_completed: int = 0
    block_fetches: int = 0
    block_misses: int = 0
    #: failed cryptographic checks observed anywhere in the run — a
    #: Byzantine block server shows up here, never in ``block_misses``
    verify_failures: int = 0
    #: session read-cache configuration and outcomes, summed across
    #: sessions (all zero when ``cache_size == 0``); ``reads_per_tick``
    #: is the read-heavy headline — leases complete reads with no wire
    #: traffic, so it can exceed the uncached protocol ceiling.
    cache_size: int = 0
    lease_ticks: int = 0
    reads_per_tick: float = 0.0
    lease_hits: int = 0
    revalidations: int = 0
    revalidate_hits: int = 0
    revalidate_fallbacks: int = 0
    phase_ticks: Dict[str, int] = field(default_factory=dict)

    def to_json(self) -> Dict[str, Any]:
        """The row as a plain JSON-serializable dictionary."""
        return {
            "shards": self.shards, "protocol": self.protocol,
            "plan": self.plan, "sessions": self.sessions,
            "keys": self.keys, "ops": self.ops,
            "completed": self.completed, "ticks": self.ticks,
            "ops_per_tick": round(self.ops_per_tick, 6),
            "envelopes": self.envelopes,
            "inner_messages": self.inner_messages,
            "wire_bytes": self.wire_bytes,
            "batch_factor": round(self.batch_factor, 3),
            "retries": self.retries,
            "backpressure_hits": self.backpressure_hits,
            "coalesced": self.coalesced,
            "keys_checked": self.keys_checked,
            "linearizable": self.linearizable,
            "metadata_bytes": self.metadata_bytes,
            "data_bytes": self.data_bytes,
            "read_metadata_bytes": self.read_metadata_bytes,
            "read_data_bytes": self.read_data_bytes,
            "reads_completed": self.reads_completed,
            "block_fetches": self.block_fetches,
            "block_misses": self.block_misses,
            "verify_failures": self.verify_failures,
            "cache_size": self.cache_size,
            "lease_ticks": self.lease_ticks,
            "reads_per_tick": round(self.reads_per_tick, 6),
            "lease_hits": self.lease_hits,
            "revalidations": self.revalidations,
            "revalidate_hits": self.revalidate_hits,
            "revalidate_fallbacks": self.revalidate_fallbacks,
            "phase_ticks": {name: self.phase_ticks[name]
                            for name in sorted(self.phase_ticks)},
        }


def _chaos_overrides(plan: FaultPlan, server_cls) -> Optional[Dict]:
    if not plan.crashes and not plan.byzantine:
        return None
    overrides = {}
    for crash in plan.crashes:
        overrides[crash.server] = (
            lambda pid, directory, _crash=crash: FailStopKvServer(
                pid, directory, server_cls=server_cls,
                crash_after=_crash.after,
                recover_after=_crash.recover_after,
                trigger=_crash.trigger))
    for entry in plan.byzantine:
        overrides[entry.server] = (
            lambda pid, directory, _cls=entry.server_class(): KvServer(
                pid, directory, server_cls=_cls))
    return overrides


def _scheduler_for(plan: Optional[FaultPlan], seed: int) -> Scheduler:
    if plan is not None and plan.scheduler is not None:
        return plan.scheduler.build(seed)
    return RandomScheduler(seed)


def session_history(sessions: Sequence[KvSession]
                    ) -> Dict[str, List[HistoryOp]]:
    """Group every completed session handle into per-key histories.

    Handle intervals span submission to observed completion, which
    contains the inner operation's own interval — so any order the
    checker admits for these intervals is admissible for the real ones.
    Coalesced writes appear as their own operations (their values are
    never read, so they linearize immediately before their superseder).
    """
    histories: Dict[str, List[HistoryOp]] = {}
    counter = 0
    for session in sessions:
        for handle in session.handles:
            if not handle.done:
                continue
            counter += 1
            value = handle.value if handle.kind == KIND_WRITE \
                else handle.result
            histories.setdefault(handle.key, []).append(HistoryOp(
                kind=handle.kind, oid=f"s{session.index}.h{counter}",
                value=value, invoke=handle.invoke_time,
                complete=handle.complete_time))
    return histories


def check_kv_histories(sessions: Sequence[KvSession]) -> int:
    """Check per-key linearizability; returns the number of keys checked.

    Raises :class:`repro.common.errors.AtomicityViolation` on the first
    key whose history admits no atomic order.
    """
    histories = session_history(sessions)
    for key in sorted(histories):
        check_atomicity(histories[key], initial_value=b"")
    return len(histories)


def _phase_attribution(recorder: TraceRecorder) -> Dict[str, int]:
    totals: Dict[str, int] = {}
    for span in build_spans(recorder):
        if not span.tag.startswith(_KV_SPAN_PREFIX):
            continue
        for child in span.children:
            totals[child.name] = totals.get(child.name, 0) \
                + child.duration
    return totals


def _traffic(recorder: TraceRecorder) -> Tuple[int, int, int]:
    envelopes = 0
    inner = 0
    wire_bytes = 0
    for record in recorder.messages.values():
        if record.tag == KV_TAG:
            envelopes += 1
            wire_bytes += record.wire_bytes
        else:
            inner += 1
    return envelopes, inner, wire_bytes


def run_kv_case(num_shards: int, n: int = 4, t: int = 1,
                protocol: str = "atomic", sessions: int = 4,
                keys: int = 32, ops: int = 96,
                write_ratio: float = 0.5, distribution: str = "zipf",
                zipf_exponent: float = 1.1, seed: int = 0,
                value_size: int = 64, plan_name: Optional[str] = None,
                max_queue: int = 32, max_inflight_per_shard: int = 1,
                max_attempts: int = 4, monitor=None,
                shard_k: Optional[int] = None,
                protocol_overrides: Optional[Dict[int, str]] = None,
                shift_every: int = DEFAULT_SHIFT_EVERY,
                byzantine: Optional[str] = None,
                cache_size: int = 0, lease_ticks: int = 0,
                invoke_probability: float = 0.25
                ) -> Tuple[KvBenchRow, KvCluster]:
    """Run one kv-bench case and return ``(row, cluster)``.

    ``plan_name`` selects a builtin chaos plan (validated against
    ``n``/``t``); ``None`` runs fault-free.  ``monitor`` (a
    :class:`repro.obs.health.HealthMonitor`) takes the run's single
    tracer slot when given — its wrapped recorder feeds the row's
    traffic/phase columns and its per-shard series feed ``repro
    monitor``.

    ``protocol_overrides`` pins individual shards to other protocols
    (``{shard_id: name}``); ``shard_k`` pins every shard's erasure
    threshold.  When any shard runs ``atomic_md`` and ``shard_k`` is
    unset, ``k = t + 1`` is chosen automatically — the metadata/data
    separation requires ``k <= n - 2t``, and ``t + 1`` is valid for
    every protocol, so mixed-protocol deployments stay comparable.

    ``byzantine`` (``atomic_md`` only) makes the last fleet server run
    one of :data:`BYZANTINE_MD_SERVERS` — a within-budget Byzantine
    data plane (corrupted blocks or universal misses) that forces every
    read touching it to escalate past its first ``k`` fetch targets.
    The row's ``plan`` column reads ``byz-<name>`` so the case never
    counts as fault-free.

    ``cache_size``/``lease_ticks`` enable session-cached reads with
    metadata-only revalidation and local lease serving (see
    :mod:`repro.kv.session_cache`); both default off, which keeps
    uncached schedules byte-identical.  ``invoke_probability`` is the
    drive loop's per-step submission density (how aggressively the
    closed-loop clients push while the network is busy).
    """
    overrides_by_shard = dict(protocol_overrides or {})
    if shard_k is None and (
            protocol == "atomic_md"
            or "atomic_md" in overrides_by_shard.values()):
        shard_k = t + 1
    fleet = SystemConfig(n=n, t=t, seed=seed)
    directory = KvDirectory(fleet, num_shards, shard_k=shard_k,
                            protocol_overrides=overrides_by_shard)
    plan = None
    overrides = None
    if plan_name is not None:
        plan = builtin_plan(plan_name, n, t, seed=seed)
        plan.validate(n, t)
        overrides = _chaos_overrides(plan, PROTOCOLS[protocol][0])
    if byzantine is not None:
        if protocol != "atomic_md":
            raise ConfigurationError(
                f"byzantine={byzantine!r} requires protocol "
                f"'atomic_md', got {protocol!r}")
        byz_cls = BYZANTINE_MD_SERVERS.get(byzantine)
        if byz_cls is None:
            raise ConfigurationError(
                f"unknown byzantine case {byzantine!r}; choose from "
                f"{sorted(BYZANTINE_MD_SERVERS)}")
        overrides = dict(overrides or {})
        # The last fleet server is the conventional faulty designate
        # (matching the builtin chaos plans); a crash override for the
        # same index would mask the Byzantine behaviour, so it wins.
        overrides[n] = (lambda pid, directory: KvServer(
            pid, directory, server_cls=byz_cls))
    cluster = build_kv_cluster(
        directory, protocol=protocol, num_sessions=sessions,
        scheduler=_scheduler_for(plan, seed),
        server_overrides=overrides, max_queue=max_queue,
        max_inflight_per_shard=max_inflight_per_shard,
        max_attempts=max_attempts, cache_size=cache_size,
        lease_ticks=lease_ticks)
    if monitor is not None:
        recorder = monitor.attach(cluster.simulator).recorder
    else:
        recorder = TraceRecorder().attach(cluster.simulator)
    if plan is not None:
        cluster.simulator.attach_injector(FaultInjector(plan))
    workload = kv_workload(
        num_sessions=sessions, num_keys=keys, ops=ops,
        write_ratio=write_ratio, distribution=distribution,
        zipf_exponent=zipf_exponent, seed=seed, value_size=value_size,
        shift_every=shift_every)
    stats = drive(cluster, workload, seed=seed,
                  invoke_probability=invoke_probability)
    if monitor is not None:
        monitor.finalize()
    case_label = plan_name
    if byzantine is not None:
        byz_label = f"byz-{byzantine}"
        case_label = (byz_label if plan_name is None
                      else f"{plan_name}+{byz_label}")
    row = collect_kv_row(recorder, cluster, stats,
                         num_shards=num_shards, protocol=protocol,
                         plan_label=case_label, sessions=sessions,
                         keys=keys, ops=ops, cache_size=cache_size,
                         lease_ticks=lease_ticks)
    return row, cluster


def collect_kv_row(recorder: TraceRecorder, cluster: KvCluster,
                   stats: Dict[str, int], *, num_shards: int,
                   protocol: str, plan_label: Optional[str],
                   sessions: int, keys: int, ops: int,
                   cache_size: int = 0, lease_ticks: int = 0
                   ) -> KvBenchRow:
    """Measure a driven kv cluster into a :class:`KvBenchRow`.

    Shared by :func:`run_kv_case` and the churn harness
    (:mod:`repro.repair.bench`), which drives its own cluster — with a
    repair coordinator attached and liveness failures tolerated — but
    must report the same columns.  Per-key linearizability of whatever
    history *did* complete is always checked (it raises on violation),
    so even a run that lost liveness proves its completed operations
    atomic.
    """
    keys_checked = check_kv_histories(cluster.sessions)
    coalesced = sum(1 for session in cluster.sessions
                    for handle in session.handles if handle.coalesced)
    reads_completed = sum(1 for session in cluster.sessions
                          for handle in session.handles
                          if handle.kind == KIND_READ and handle.done)
    ticks = cluster.simulator.time
    cache_stats = {name: 0 for name in
                   ("lease_hits", "revalidations", "revalidate_hits",
                    "revalidate_fallbacks")}
    for session in cluster.sessions:
        for name in cache_stats:
            cache_stats[name] += session.cache.stats[name]
    envelopes, inner, wire_bytes = _traffic(recorder)
    block_fetches = sum(1 for record in recorder.messages.values()
                        if record.mtype == MSG_GET_BLOCK)
    block_misses = sum(1 for record in recorder.messages.values()
                       if record.mtype == MSG_BLOCK_MISS)
    verify_failures = sum(
        summary["value"]
        for name, summary in recorder.registry.snapshot().items()
        if name.startswith("verify.failed.by["))
    planes = plane_traffic(recorder)
    read_planes = operation_plane_traffic(recorder)["read"]
    return KvBenchRow(
        shards=num_shards, protocol=protocol, plan=plan_label,
        sessions=sessions, keys=keys, ops=ops,
        completed=stats["completed"], ticks=ticks,
        ops_per_tick=stats["completed"] / ticks if ticks else 0.0,
        envelopes=envelopes, inner_messages=inner,
        wire_bytes=wire_bytes,
        batch_factor=inner / envelopes if envelopes else 0.0,
        retries=stats["retries"],
        backpressure_hits=stats["backpressure_hits"],
        coalesced=coalesced, keys_checked=keys_checked,
        linearizable=True,
        metadata_bytes=planes.metadata_bytes,
        data_bytes=planes.data_bytes,
        read_metadata_bytes=read_planes.metadata_bytes,
        read_data_bytes=read_planes.data_bytes,
        reads_completed=reads_completed,
        block_fetches=block_fetches, block_misses=block_misses,
        verify_failures=verify_failures,
        cache_size=cache_size, lease_ticks=lease_ticks,
        reads_per_tick=reads_completed / ticks if ticks else 0.0,
        lease_hits=cache_stats["lease_hits"],
        revalidations=cache_stats["revalidations"],
        revalidate_hits=cache_stats["revalidate_hits"],
        revalidate_fallbacks=cache_stats["revalidate_fallbacks"],
        phase_ticks=_phase_attribution(recorder))


def run_kv_bench(shard_counts: Sequence[int], n: int = 4, t: int = 1,
                 protocol: str = "atomic", sessions: int = 4,
                 keys: int = 32, ops: int = 96,
                 write_ratio: float = 0.5, distribution: str = "zipf",
                 zipf_exponent: float = 1.1, seed: int = 0,
                 value_size: int = 64,
                 chaos_plan: Optional[str] = "delays",
                 shard_k: Optional[int] = None,
                 shift_every: int = DEFAULT_SHIFT_EVERY,
                 cache_size: int = 0, lease_ticks: int = 0
                 ) -> Dict[str, Any]:
    """Sweep shard counts (plus one chaos case) and build the payload.

    The chaos case reuses the largest shard count under ``chaos_plan``
    so one sweep demonstrates both scaling and fault recovery; pass
    ``chaos_plan=None`` to skip it.
    """
    rows: List[KvBenchRow] = []
    for shards in shard_counts:
        row, _cluster = run_kv_case(
            shards, n=n, t=t, protocol=protocol, sessions=sessions,
            keys=keys, ops=ops, write_ratio=write_ratio,
            distribution=distribution, zipf_exponent=zipf_exponent,
            seed=seed, value_size=value_size, shard_k=shard_k,
            shift_every=shift_every, cache_size=cache_size,
            lease_ticks=lease_ticks)
        rows.append(row)
    if chaos_plan is not None and shard_counts:
        row, _cluster = run_kv_case(
            max(shard_counts), n=n, t=t, protocol=protocol,
            sessions=sessions, keys=keys, ops=ops,
            write_ratio=write_ratio, distribution=distribution,
            zipf_exponent=zipf_exponent, seed=seed,
            value_size=value_size, plan_name=chaos_plan,
            shard_k=shard_k, shift_every=shift_every,
            cache_size=cache_size, lease_ticks=lease_ticks)
        rows.append(row)
    return {
        "config": {"n": n, "t": t, "protocol": protocol,
                   "sessions": sessions, "keys": keys, "ops": ops,
                   "write_ratio": write_ratio,
                   "distribution": distribution,
                   "zipf_exponent": zipf_exponent, "seed": seed,
                   "value_size": value_size, "chaos_plan": chaos_plan,
                   "shard_k": shard_k, "shift_every": shift_every,
                   "cache_size": cache_size, "lease_ticks": lease_ticks},
        "rows": [row.to_json() for row in rows],
    }


def run_kv_md_comparison(deployments: Sequence[Tuple[int, int]] = (
                             (4, 1), (7, 2)),
                         num_shards: int = 4, sessions: int = 4,
                         keys: int = 32, ops: int = 96,
                         write_ratio: float = 0.1,
                         distribution: str = "zipf-shift",
                         zipf_exponent: float = 1.1, seed: int = 0,
                         value_size: int = 64,
                         shift_every: int = DEFAULT_SHIFT_EVERY,
                         byzantine: Optional[str] = "corrupt-block"
                         ) -> Dict[str, Any]:
    """Head-to-head ``atomic_ns`` vs ``atomic_md`` on one workload.

    The payload behind ``benchmarks/BENCH_kv_md.json``: for each
    ``(n, t)`` deployment both protocols run the *same* read-mostly
    drifting-hot-set workload at their canonical erasure thresholds
    (``k = n - t`` for atomic_ns, ``k = t + 1`` for atomic_md), and the
    summary reports the read-attributed data-plane byte ratio — the
    number the metadata/data separation is judged on.  A final
    ``byzantine`` case re-runs atomic_md at the largest deployment with
    one corrupt-data-plane server, pinning that reads escalate (and
    still linearize) when their first ``k`` fetch targets misbehave.
    """
    rows: List[Dict[str, Any]] = []
    for n, t in deployments:
        for protocol in ("atomic_ns", "atomic_md"):
            row, _cluster = run_kv_case(
                num_shards, n=n, t=t, protocol=protocol,
                sessions=sessions, keys=keys, ops=ops,
                write_ratio=write_ratio, distribution=distribution,
                zipf_exponent=zipf_exponent, seed=seed,
                value_size=value_size, shift_every=shift_every)
            rows.append({"n": n, "t": t, **row.to_json()})
    if byzantine is not None:
        n, t = deployments[-1]
        row, _cluster = run_kv_case(
            num_shards, n=n, t=t, protocol="atomic_md",
            sessions=sessions, keys=keys, ops=ops,
            write_ratio=write_ratio, distribution=distribution,
            zipf_exponent=zipf_exponent, seed=seed,
            value_size=value_size, shift_every=shift_every,
            byzantine=byzantine)
        rows.append({"n": n, "t": t, **row.to_json()})
    summary = []
    for n, t in deployments:
        pair = {}
        for row in rows:
            if (row["n"], row["t"]) == (n, t) and "byz" not in (
                    row["plan"] or ""):
                pair[row["protocol"]] = row
        ns_bytes = pair["atomic_ns"]["read_data_bytes"]
        md_bytes = pair["atomic_md"]["read_data_bytes"]
        summary.append({
            "n": n, "t": t,
            "read_data_bytes_atomic_ns": ns_bytes,
            "read_data_bytes_atomic_md": md_bytes,
            "read_data_bytes_ratio": round(
                ns_bytes / md_bytes, 3) if md_bytes else 0.0,
        })
    return {
        "config": {"deployments": [list(pair) for pair in deployments],
                   "num_shards": num_shards, "sessions": sessions,
                   "keys": keys, "ops": ops, "write_ratio": write_ratio,
                   "distribution": distribution,
                   "zipf_exponent": zipf_exponent, "seed": seed,
                   "value_size": value_size,
                   "shift_every": shift_every, "byzantine": byzantine},
        "rows": rows,
        "summary": summary,
    }


def run_kv_readheavy_comparison(n: int = 4, t: int = 1,
                                num_shards: int = 4, sessions: int = 4,
                                keys: int = 8, ops: int = 576,
                                write_ratio: float = 0.1,
                                distribution: str = "zipf",
                                zipf_exponent: float = 1.5,
                                seed: int = 0, value_size: int = 64,
                                cache_size: int = 32,
                                lease_ticks: int = 128,
                                invoke_probability: float = 1.0,
                                chaos_plan: str = "delays"
                                ) -> Dict[str, Any]:
    """Cached vs uncached ``atomic_md`` on one read-heavy workload.

    The payload behind ``benchmarks/BENCH_kv_readheavy.json``: the same
    90/10 Zipf workload runs once uncached and once with session-cached
    reads and leases; the summary reports the read-throughput ratio
    (``reads_per_tick`` cached over uncached) — the number the session
    cache is judged on.  Three adversarial cases re-run the cached
    configuration under the ``chaos_plan`` builtin and with one
    Byzantine metadata server per flavour (``stale-meta`` understates
    at revalidation and is outvoted by the quorum maximum;
    ``forged-meta`` inflates and only forces the full-read fallback).
    Every row's per-key histories pass ``check_atomicity`` — the cache
    trades wire traffic for bookkeeping, never consistency.
    """
    common: Dict[str, Any] = {
        "n": n, "t": t, "protocol": "atomic_md", "sessions": sessions,
        "keys": keys, "ops": ops, "write_ratio": write_ratio,
        "distribution": distribution, "zipf_exponent": zipf_exponent,
        "seed": seed, "value_size": value_size,
        "invoke_probability": invoke_probability,
    }
    cached: Dict[str, Any] = {"cache_size": cache_size,
                              "lease_ticks": lease_ticks}
    rows: List[Dict[str, Any]] = []
    cases = [
        ("uncached", {}),
        ("cached", dict(cached)),
        ("cached+chaos", dict(cached, plan_name=chaos_plan)),
        ("cached+byz-stale", dict(cached, byzantine="stale-meta")),
        ("cached+byz-forged", dict(cached, byzantine="forged-meta")),
    ]
    by_case: Dict[str, KvBenchRow] = {}
    for case, extra in cases:
        row, _cluster = run_kv_case(num_shards, **common, **extra)
        by_case[case] = row
        rows.append({"case": case, **row.to_json()})
    base = by_case["uncached"].reads_per_tick
    boosted = by_case["cached"].reads_per_tick
    summary = {
        "reads_per_tick_uncached": round(base, 6),
        "reads_per_tick_cached": round(boosted, 6),
        "read_throughput_ratio": round(boosted / base, 3) if base
        else 0.0,
        "all_linearizable": all(row["linearizable"] for row in rows),
        "lease_hits_cached": by_case["cached"].lease_hits,
        "revalidations_cached": by_case["cached"].revalidations,
        "fallbacks_forged": by_case["cached+byz-forged"]
        .revalidate_fallbacks,
    }
    return {
        "config": {**common, "num_shards": num_shards,
                   "cache_size": cache_size,
                   "lease_ticks": lease_ticks,
                   "chaos_plan": chaos_plan},
        "rows": rows,
        "summary": summary,
    }
