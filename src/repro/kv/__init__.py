"""repro.kv — a sharded multi-register key-value plane.

The paper's protocols implement one atomic register.  This package
scales them out to a key-value store without touching protocol code:

* a deterministic **directory** (:mod:`repro.kv.directory`) hash-maps
  keys to register shards, each an independent ``n``/``t`` deployment
  placed on a rotated slice of the fleet;
* a **multiplexing layer** (:mod:`repro.kv.mux`) runs one lazily
  instantiated protocol instance per shard inside each fleet process
  and batches all shard traffic for one destination into a single
  ``kv-batch`` wire envelope per activation — in the logical-tick
  simulator, batch density (inner messages per delivery) is exactly
  what multi-shard throughput buys;
* a **session layer** (:mod:`repro.kv.session`) gives clients ordered
  operation queues with write coalescing, bounded in-flight admission
  (:class:`~repro.common.errors.BackpressureError` on overflow), and
  bounded retries for operations stranded by chaos faults;
* a **load harness** (:mod:`repro.kv.bench`, ``repro kv-bench``) sweeps
  shard counts under seeded Zipf/uniform workloads and optional fault
  plans, checks every key's history with the linearizability checker,
  and emits ``BENCH_*.json`` rows with per-phase latency attribution.

See ``docs/SCALING.md`` for the design rationale.
"""

from repro.kv.bench import (
    KvBenchRow,
    check_kv_histories,
    run_kv_bench,
    run_kv_case,
    session_history,
)
from repro.kv.cluster import (
    FailStopKvServer,
    KvCluster,
    build_kv_cluster,
    drive,
)
from repro.kv.directory import KvDirectory, ShardSpec, validate_key
from repro.kv.envelope import KV_TAG, KvEntry, MSG_KV_BATCH
from repro.kv.mux import KvClientHost, KvServer, ShardBus
from repro.kv.session import KvOpHandle, KvSession

__all__ = [
    "FailStopKvServer",
    "KV_TAG",
    "KvBenchRow",
    "KvClientHost",
    "KvCluster",
    "KvDirectory",
    "KvEntry",
    "KvOpHandle",
    "KvServer",
    "KvSession",
    "MSG_KV_BATCH",
    "ShardBus",
    "ShardSpec",
    "build_kv_cluster",
    "check_kv_histories",
    "drive",
    "run_kv_bench",
    "run_kv_case",
    "session_history",
    "validate_key",
]
