"""Shard multiplexing: hosts, the per-shard bus, and envelope routing.

One fleet party hosts many *inner* protocol processes — one per shard it
serves.  The inner processes are the unmodified register protocols from
``repro.core``; they believe they talk to a plain simulator.  What they
actually talk to is a :class:`ShardBus`: a duck-typed facade that

* allocates real, globally-unique ``msg_id``s for every inner send (the
  protocols memoize message validity by id),
* reports the fleet simulator's logical clock and observability hook,
* presents the *shard-local* server roster, and
* buffers outgoing inner messages on the host instead of enqueuing them.

The host (:class:`KvServer` / :class:`KvClientHost`) flushes its buffer
once per activation as one ``kv-batch`` envelope per fleet destination,
so a single simulator delivery — one logical tick — carries every inner
message the activation produced.  Unwrapping validates each entry's
shard-local sender against the envelope's channel-authenticated fleet
sender before dispatching it to the inner process.

Byzantine *hosts* are out of scope for this layer (chaos plans exercise
crashes, drops, delays, and partitions); a corrupted host could forge
inner ids, which the validity memos in the inner protocols assume away.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple, Type

from repro.common.errors import ConfigurationError
from repro.common.ids import PartyId, server_id
from repro.core.atomic import AtomicClient, AtomicServer
from repro.core.register import RegisterClientBase
from repro.kv.directory import KvDirectory, ShardSpec
from repro.kv.envelope import KV_TAG, MSG_KV_BATCH, KvEntry
from repro.net.message import Message
from repro.net.process import Process


def _shard_classes(spec: ShardSpec) -> Optional[Tuple[type, type]]:
    """The (server, client) classes a shard's ``protocol`` override
    names, or ``None`` when the shard follows the cluster default.

    Resolved lazily against :data:`repro.cluster.PROTOCOLS` (imported
    here, not at module scope: the cluster facade is a higher layer).
    """
    if spec.protocol is None:
        return None
    from repro.cluster import PROTOCOLS
    classes = PROTOCOLS.get(spec.protocol)
    if classes is None:
        raise ConfigurationError(
            f"shard {spec.shard_id} names unknown protocol "
            f"{spec.protocol!r}; choose from {sorted(PROTOCOLS)}")
    return classes


class ShardBus:
    """Duck-typed simulator facade binding one inner process to a host.

    Implements exactly the surface :class:`repro.net.process.Process`
    and the register protocols consume: ``enqueue``, ``server_pids``,
    ``time``, ``obs``, ``record_input``/``record_output``.
    """

    __slots__ = ("host", "spec", "inner", "_server_pids")

    def __init__(self, host: "_KvMuxProcess", spec: ShardSpec) -> None:
        self.host = host
        self.spec = spec
        self.inner: Optional[Process] = None
        self._server_pids = [server_id(local)
                             for local in range(1, spec.config.n + 1)]

    def attach(self, inner: Process) -> Process:
        """Bind ``inner`` to this bus and return it."""
        self.inner = inner
        inner.bind(self)
        return inner

    # -- simulator surface consumed by inner protocols ---------------------

    @property
    def time(self) -> int:
        """The fleet simulator's logical clock."""
        return self.host._require_simulator().time

    @property
    def obs(self):
        """The fleet simulator's observability hook (or ``None``)."""
        simulator = self.host.simulator
        return None if simulator is None else simulator.obs

    @property
    def server_pids(self) -> List[PartyId]:
        """The shard-local server roster ``P_1 .. P_shard_n``."""
        return list(self._server_pids)

    def fleet_pid(self, local_pid: PartyId) -> PartyId:
        """Map a shard-local identity to the hosting fleet party."""
        if local_pid.is_server:
            return server_id(self.spec.fleet_server_index(local_pid.index))
        return local_pid

    def enqueue(self, sender: PartyId, recipient: PartyId, tag: str,
                mtype: str, payload: Tuple[Any, ...],
                wire_size: Optional[int] = None) -> None:
        """Buffer an inner send on the host for the next envelope flush.

        The entry gets a fresh ``msg_id`` from the fleet simulator and
        the sending inner process's causal stamps, and is announced to
        the tracer immediately — mirroring ``Simulator.enqueue`` so
        traces of batched and unbatched runs have the same shape.
        """
        host = self.host
        simulator = host._require_simulator()
        inner = self.inner
        depth = inner.activation_depth + 1
        cause_id = inner.activation_msg_id
        msg_id = simulator._fresh_msg_id()
        payload = tuple(payload)
        entry = KvEntry(shard=self.spec.shard_id, tag=tag, mtype=mtype,
                        sender=sender, recipient=recipient, payload=payload,
                        msg_id=msg_id, depth=depth, cause_id=cause_id)
        host._kv_buffer(self.fleet_pid(recipient), entry)
        observer = simulator.obs
        if observer is not None:
            observer.on_send(
                Message(tag=tag, mtype=mtype, sender=sender,
                        recipient=recipient, payload=payload, msg_id=msg_id,
                        depth=depth, cause_id=cause_id),
                simulator.time, pending=simulator.pending_count)

    def record_output(self, party: PartyId, tag: str, action: str,
                      payload: Tuple[Any, ...]) -> None:
        """Forward an inner output action to the fleet event log."""
        host = self.host
        host._require_simulator().record_output(host.pid, tag, action,
                                                payload)

    def record_input(self, party: PartyId, tag: str, action: str,
                     payload: Tuple[Any, ...]) -> None:
        """Forward an inner input action to the fleet event log."""
        host = self.host
        host._require_simulator().record_input(host.pid, tag, action,
                                               payload)


class _KvMuxProcess(Process):
    """Base for fleet parties that host per-shard inner processes.

    Subclasses implement :meth:`_kv_inner_for` to resolve (and lazily
    instantiate) the inner process an entry addresses.
    """

    def __init__(self, pid: PartyId, directory: KvDirectory) -> None:
        super().__init__(pid)
        self.directory = directory
        self._kv_outbound: Dict[PartyId, List[KvEntry]] = {}
        self.on(MSG_KV_BATCH, self._on_kv_batch)

    # -- outbound: buffer + flush ------------------------------------------

    def _kv_buffer(self, fleet_recipient: PartyId, entry: KvEntry) -> None:
        self._kv_outbound.setdefault(fleet_recipient, []).append(entry)

    def kv_flush(self) -> None:
        """Send every buffered inner message, one envelope per destination.

        Envelope causal stamps come from this host's current activation
        (zero outside one), exactly like any direct ``Process.send``.
        """
        if not self._kv_outbound:
            return
        outbound = self._kv_outbound
        self._kv_outbound = {}
        for recipient, entries in outbound.items():
            self.send(recipient, KV_TAG, MSG_KV_BATCH, tuple(entries))

    def receive(self, message: Message) -> None:
        """Deliver, then flush inner sends within the same activation.

        ``Process.receive`` resets the activation stamps in a
        ``finally``; the flush needs them back so envelope depth chains
        stay causal, hence the restore-around-flush.
        """
        super().receive(message)
        if self._kv_outbound:
            self.activation_depth = message.depth
            self.activation_msg_id = message.msg_id
            try:
                self.kv_flush()
            finally:
                self.activation_depth = 0
                self.activation_msg_id = None

    # -- inbound: unwrap + dispatch ----------------------------------------

    def _on_kv_batch(self, message: Message) -> None:
        payload = message.payload
        if len(payload) != 1 or not isinstance(payload[0], tuple):
            return
        for entry in payload[0]:
            if isinstance(entry, KvEntry) and entry.well_formed():
                self._deliver_entry(message.sender, entry)

    def _deliver_entry(self, fleet_sender: PartyId, entry: KvEntry) -> None:
        resolved = self._kv_inner_for(entry)
        if resolved is None:
            return
        inner, bus = resolved
        if entry.recipient != inner.pid:
            return  # misrouted: not the shard-local identity hosted here
        if bus.fleet_pid(entry.sender) != fleet_sender:
            return  # shard-local sender does not match the channel sender
        inner_message = Message(
            tag=entry.tag, mtype=entry.mtype, sender=entry.sender,
            recipient=entry.recipient, payload=entry.payload,
            msg_id=entry.msg_id, depth=entry.depth, cause_id=entry.cause_id)
        simulator = self._require_simulator()
        observer = simulator.obs
        if observer is not None:
            observer.on_deliver(inner_message, simulator.time,
                                inbox_depth=len(inner.inbox),
                                pending=simulator.pending_count)
        inner.receive(inner_message)

    def _kv_inner_for(
            self, entry: KvEntry) -> Optional[Tuple[Process, ShardBus]]:
        """Resolve the inner (process, bus) an entry addresses."""
        raise NotImplementedError


class KvServer(_KvMuxProcess):
    """A fleet server hosting lazily-created per-shard register servers.

    Shard state materialises on first contact: a fleet of 4 servers can
    advertise hundreds of shards while only paying for the ones traffic
    actually reaches.  ``server_cls`` is the default inner class; a
    shard whose spec names a ``protocol`` override materialises that
    protocol's server instead.
    """

    def __init__(self, pid: PartyId, directory: KvDirectory,
                 server_cls: Type[AtomicServer] = AtomicServer,
                 initial_value: bytes = b"") -> None:
        super().__init__(pid, directory)
        self._server_cls = server_cls
        self._initial_value = initial_value
        self._inner_servers: Dict[int, Tuple[Process, ShardBus]] = {}

    def inner_server(self, shard_id: int) -> Optional[Process]:
        """The inner server for ``shard_id`` if it has materialised."""
        resolved = self._inner_servers.get(shard_id)
        return None if resolved is None else resolved[0]

    @property
    def active_shards(self) -> List[int]:
        """Shard ids this host has materialised state for."""
        return list(self._inner_servers)

    def _kv_inner_for(
            self, entry: KvEntry) -> Optional[Tuple[Process, ShardBus]]:
        shard_id = entry.shard
        if not 0 <= shard_id < self.directory.num_shards:
            return None
        resolved = self._inner_servers.get(shard_id)
        if resolved is None:
            spec = self.directory.shard(shard_id)
            local = spec.local_server_index(self.pid.index)
            if local is None:
                return None  # this fleet server does not serve the shard
            bus = ShardBus(self, spec)
            classes = _shard_classes(spec)
            server_cls = self._server_cls if classes is None else classes[0]
            inner = server_cls(server_id(local), spec.config,
                               initial_value=self._initial_value)
            bus.attach(inner)
            resolved = (inner, bus)
            self._inner_servers[shard_id] = resolved
        return resolved

    def storage_bytes(self) -> int:
        """Total stored bytes across all materialised shards."""
        total = 0
        for inner, _bus in self._inner_servers.values():
            total += inner.storage_bytes()
        return total


class KvClientHost(_KvMuxProcess):
    """A fleet client hosting one inner protocol client per shard.

    Inner clients keep the fleet client's identity (client ids are
    shard-global), so acks and read values route straight back.
    ``client_cls`` is the default inner class; shards with a
    ``protocol`` override materialise that protocol's client.
    """

    def __init__(self, pid: PartyId, directory: KvDirectory,
                 client_cls: Type[AtomicClient] = AtomicClient) -> None:
        super().__init__(pid, directory)
        self._client_cls = client_cls
        self._inner_clients: Dict[int, Tuple[RegisterClientBase,
                                             ShardBus]] = {}

    def inner_client(self, shard_id: int) -> RegisterClientBase:
        """The (lazily created) inner client for ``shard_id``."""
        resolved = self._inner_clients.get(shard_id)
        if resolved is None:
            spec = self.directory.shard(shard_id)
            bus = ShardBus(self, spec)
            classes = _shard_classes(spec)
            client_cls = self._client_cls if classes is None else classes[1]
            inner = client_cls(self.pid, spec.config)
            bus.attach(inner)
            resolved = (inner, bus)
            self._inner_clients[shard_id] = resolved
        return resolved[0]

    def _kv_inner_for(
            self, entry: KvEntry) -> Optional[Tuple[Process, ShardBus]]:
        # Replies can only address shards this client has invoked on.
        return self._inner_clients.get(entry.shard)
