"""Key-space directory: deterministic key → shard → placement mapping.

The directory is the metadata plane of the key-value layer (following
the metadata/bulk separation of MDStore): it is pure data, identical at
every party, and never exchanged over the wire.  A key hashes to one of
``num_shards`` register shards; each shard is an independent protocol
instance with its own ``SystemConfig(n, t)`` placed on a rotated window
of the fleet's servers, so hundreds of registers can share one simulated
fleet while every shard keeps the paper's ``n > 3t`` resilience bound.

Within a shard, parties use *shard-local* identities: servers are
``P_1 .. P_shard_n`` in placement order, clients keep their fleet
identity.  :class:`ShardSpec` holds the bidirectional index mapping.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.common.errors import ConfigurationError
from repro.common.ids import TAG_SEP
from repro.config import SystemConfig

#: Prefix of every per-key register tag (``kv.s<shard>.<key>``).
KV_TAG_PREFIX = "kv"


def validate_key(key: str) -> str:
    """Check that ``key`` is usable as a register-tag component.

    Keys must be non-empty strings and may not contain the hierarchical
    tag separator (``|``), which would corrupt subtag parsing in the
    protocol substrates.
    """
    if not isinstance(key, str) or not key:
        raise ConfigurationError("kv keys must be non-empty strings")
    if TAG_SEP in key:
        raise ConfigurationError(
            f"kv key {key!r} contains the reserved tag separator {TAG_SEP!r}")
    return key


@dataclass(frozen=True, eq=False)
class ShardSpec:
    """One register shard: its id, server placement, and protocol config.

    ``placement[j - 1]`` is the fleet index of the shard-local server
    ``P_j``; ``config`` is the shard's own ``SystemConfig`` (validated
    ``n > 3t`` on construction).
    """

    shard_id: int
    placement: Tuple[int, ...]
    config: SystemConfig
    #: Protocol name this shard runs (``repro.cluster.PROTOCOLS`` key),
    #: or ``None`` to use whatever the hosting cluster was built with.
    protocol: Optional[str] = None
    _local_by_fleet: Dict[int, int] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        for local_index, fleet_index in enumerate(self.placement, start=1):
            self._local_by_fleet[fleet_index] = local_index

    def fleet_server_index(self, local_index: int) -> int:
        """Map a shard-local server index (1-based) to its fleet index."""
        return self.placement[local_index - 1]

    def local_server_index(self, fleet_index: int) -> Optional[int]:
        """Map a fleet server index to this shard's local index.

        Returns ``None`` when the fleet server does not host this shard.
        """
        return self._local_by_fleet.get(fleet_index)


class KvDirectory:
    """Deterministic key → shard map over one server fleet.

    Hash partitioning uses SHA-256 (never the interpreter's ``hash``,
    which is salted per process and would break replay).  Shard ``s``
    is placed on the ``shard_n`` fleet servers starting at rotation
    offset ``s``, so load spreads evenly when ``shard_n < fleet n``.

    Per-shard parameters are validated against the cluster config:
    a shard cannot recruit more servers than the fleet has, and must
    tolerate at least the fleet's corruption bound ``t`` (any ``t``
    fleet-level faults could all land inside one shard's placement).

    ``shard_k`` pins every shard's erasure threshold (metadata/data-
    separated shards need ``k <= n - 2t``, canonically ``t + 1``, which
    every protocol accepts); ``protocol_overrides`` maps shard ids to
    protocol names so one deployment can run different shards under
    different protocols — unset shards follow the hosting cluster's
    default.

    ``epoch`` stamps the directory *generation*.  Reconfiguration (see
    :mod:`repro.repair.reconfig`) never mutates a directory in place:
    replacing a fleet member mints a new directory at ``epoch + 1`` and
    sessions drain their in-flight operations on the old generation
    before admitting under the new one.  Epoch ``0`` is the birth
    generation.
    """

    def __init__(self, fleet_config: SystemConfig, num_shards: int,
                 shard_n: Optional[int] = None,
                 shard_t: Optional[int] = None,
                 shard_k: Optional[int] = None,
                 protocol_overrides: Optional[Dict[int, str]] = None,
                 epoch: int = 0) -> None:
        if num_shards < 1:
            raise ConfigurationError("num_shards must be >= 1")
        if epoch < 0:
            raise ConfigurationError(
                f"directory epoch must be >= 0, got {epoch}")
        self.epoch = epoch
        protocol_overrides = dict(protocol_overrides or {})
        for shard_id in protocol_overrides:
            if not 0 <= shard_id < num_shards:
                raise ConfigurationError(
                    f"protocol override for shard {shard_id} out of "
                    f"range [0, {num_shards})")
        shard_n = fleet_config.n if shard_n is None else shard_n
        shard_t = fleet_config.t if shard_t is None else shard_t
        if shard_n > fleet_config.n:
            raise ConfigurationError(
                f"shard_n={shard_n} exceeds the fleet size n={fleet_config.n}")
        # Deployment-shape validation, not a quorum wait.
        # lint: disable=quorum-intersection
        if shard_t < fleet_config.t:
            raise ConfigurationError(
                f"shard_t={shard_t} is below the fleet fault bound "
                f"t={fleet_config.t}: {fleet_config.t} fleet faults could "
                "all fall inside one shard")
        self.fleet_config = fleet_config
        self.num_shards = num_shards
        self.shard_n = shard_n
        self.shard_t = shard_t
        fleet_n = fleet_config.n
        if shard_k is None:
            # The fleet's resolved k only transfers when the shard shares
            # the fleet's (n, t); shrunken shards re-derive their own
            # default.  An explicit shard_k (e.g. ``t + 1`` for
            # metadata/data-separated shards) wins over both.
            same_shape = (shard_n == fleet_config.n
                          and shard_t == fleet_config.t)
            shard_k = fleet_config.k if same_shape else None
        self.shard_k = shard_k
        shards = []
        for shard_id in range(num_shards):
            placement = tuple(((shard_id + offset) % fleet_n) + 1
                              for offset in range(shard_n))
            config = SystemConfig(
                n=shard_n, t=shard_t, k=shard_k,
                commitment=fleet_config.commitment,
                threshold_backend=fleet_config.threshold_backend,
                seed=fleet_config.seed + shard_id)
            shards.append(ShardSpec(
                shard_id, placement, config,
                protocol=protocol_overrides.get(shard_id)))
        self._shards: Tuple[ShardSpec, ...] = tuple(shards)

    def shard(self, shard_id: int) -> ShardSpec:
        """Return the :class:`ShardSpec` for ``shard_id``."""
        if not 0 <= shard_id < self.num_shards:
            raise ConfigurationError(
                f"shard_id {shard_id} out of range [0, {self.num_shards})")
        return self._shards[shard_id]

    def shard_of_key(self, key: str) -> int:
        """Deterministically map ``key`` to a shard id via SHA-256."""
        validate_key(key)
        digest = hashlib.sha256(key.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big") % self.num_shards

    def register_tag(self, key: str) -> str:
        """The register tag serving ``key`` (``kv.s<shard>.<key>``)."""
        shard_id = self.shard_of_key(key)
        return f"{KV_TAG_PREFIX}.s{shard_id}.{key}"

    @property
    def shards(self) -> Tuple[ShardSpec, ...]:
        """All shard specs, indexed by shard id."""
        return self._shards
