"""Multiplexing wire envelope for the key-value plane.

Inner protocol messages (timestamp queries, disperse blocks, rbc echos,
…) never travel alone: each host buffers every inner message produced
during one activation and flushes them as a single fleet-level message
``(kv, kv-batch, (entries,))`` per destination.  One simulator delivery
therefore carries many inner protocol steps — the batching lever that
lets shard count translate into aggregate ops/tick.

:class:`KvEntry` is a registered wire type so envelopes round-trip
through the canonical encoding like every other payload (chaos
corruption, wire-size accounting, and reproducer digests all see real
bytes).  Entries carry their own causal identity (``msg_id``, ``depth``,
``cause_id``, allocated from the *fleet* simulator at send time) so the
observability plane records inner sends/deliveries exactly like
unbatched traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Tuple

from repro.common.ids import PartyId
from repro.common.serialization import register_wire_type

#: Fleet-level tag of every kv envelope message.
KV_TAG = "kv"
#: Message type of the batched envelope.
MSG_KV_BATCH = "kv-batch"


@register_wire_type
@dataclass(frozen=True)
class KvEntry:
    """One inner protocol message riding inside a kv envelope.

    ``sender``/``recipient`` are *shard-local* identities (see
    :class:`repro.kv.directory.ShardSpec`); the hosting fleet parties are
    recovered from the shard placement at unwrap time.  ``msg_id`` is
    allocated from the fleet simulator when the entry is buffered, so
    inner message identities are globally unique — protocol ``where``
    predicates memoize validity by ``msg_id`` and must never see two
    different messages share one.
    """

    shard: int
    tag: str
    mtype: str
    sender: PartyId
    recipient: PartyId
    payload: Tuple[Any, ...]
    msg_id: int
    depth: int
    cause_id: Optional[int] = None

    def well_formed(self) -> bool:
        """Structural sanity check applied before unwrapping.

        Envelopes cross the (potentially adversarial) network, so hosts
        validate field types before reconstructing an inner message.
        """
        return (isinstance(self.shard, int)
                and isinstance(self.tag, str)
                and isinstance(self.mtype, str)
                and isinstance(self.sender, PartyId)
                and isinstance(self.recipient, PartyId)
                and isinstance(self.payload, tuple)
                and isinstance(self.msg_id, int)
                and isinstance(self.depth, int)
                and (self.cause_id is None or isinstance(self.cause_id, int)))
