"""Analytic complexity model (reconstruction of Section 3.5).

The provided copy of the paper truncates inside the complexity analysis, so
the closed-form expressions here are re-derived from the protocol
pseudo-code (Figures 1-3) and the stated Disperse bound
``O(n |F| + n^3 |H|)`` (``n^2 log n |H|`` with hash trees).  They predict
*leading-order* message counts and byte volumes for isolated operations;
the experiment harness compares them against measured values from the
simulator (experiments T1/T2) — shapes and growth rates are expected to
match, constants approximately.

Conventions: ``F`` value size in bytes, ``H`` hash size, ``S`` threshold
signature/share size, ``L`` bound on concurrent listeners.  A write's cost
includes its Disperse and reliable-broadcast sub-instances.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.common.errors import ConfigurationError
from repro.crypto.hashing import DIGEST_SIZE


@dataclass(frozen=True)
class Prediction:
    """Leading-order predictions for one protocol at one design point."""

    protocol: str
    resilience: str
    storage_blowup: float
    write_messages: int
    write_bytes: int
    read_messages: int
    read_bytes: int
    storage_per_server: int
    non_skipping: bool
    byzantine_clients: bool
    #: Lamport consistency level the protocol provides: "atomic" or "safe"
    consistency: str = "atomic"


@dataclass
class ComplexityModel:
    """Design point: plug in the deployment parameters once, query all
    protocols."""

    n: int
    t: int
    k: Optional[int] = None
    value_size: int = 1024
    hash_size: int = DIGEST_SIZE
    sig_size: int = 128
    ts_size: int = 16
    listeners: int = 0
    commitment: str = "vector"

    def __post_init__(self) -> None:
        if self.k is None:
            self.k = max(1, self.n - self.t)
        if not 1 <= self.k <= self.n:
            raise ConfigurationError("require 1 <= k <= n")

    # -- shared quantities ----------------------------------------------------

    @property
    def block_size(self) -> int:
        """Erasure-code block bytes, ``ceil(|F| / k)`` plus framing."""
        return (self.value_size + 8 + self.k - 1) // self.k

    @property
    def commitment_size(self) -> int:
        """Bytes of the block commitment ``D`` carried per message."""
        if self.commitment == "merkle":
            return self.hash_size
        return self.n * self.hash_size

    @property
    def witness_size(self) -> int:
        """Per-block witness bytes (inclusion proof for Merkle mode)."""
        if self.commitment == "merkle":
            return self.hash_size * max(1, math.ceil(math.log2(self.n))) \
                if self.n > 1 else self.hash_size
        return 0

    def _block_with_proof(self) -> int:
        return self.block_size + self.commitment_size + self.witness_size

    # -- this paper's protocols ------------------------------------------------

    def atomic(self) -> Prediction:
        """Protocol Atomic: Disperse + reliable broadcast per write."""
        n = self.n
        # get-ts/ts/ack: 3n.  Disperse: n sends + n^2 echoes + n^2 readys.
        # RBC of the timestamp: n + 2 n^2 small messages.
        write_messages = 3 * n + (n + 2 * n * n) + (n + 2 * n * n)
        write_bytes = (
            n * self._block_with_proof()                  # avid-send
            + 2 * n * n * self._block_with_proof()        # echo + ready
            + (n + 2 * n * n) * self.ts_size              # rbc of ts
            + 2 * n * self.ts_size                        # get-ts/ts
            + n * self.ts_size                            # acks
            + self.listeners * n * self._block_with_proof())
        read_messages = 3 * n
        read_bytes = n * (self._block_with_proof() + self.ts_size) \
            + 2 * n * self.ts_size
        storage = self.block_size + self.commitment_size \
            + self.witness_size + self.ts_size
        return Prediction(
            protocol="atomic", resilience="n > 3t",
            storage_blowup=self.n * self.block_size / self.value_size,
            write_messages=write_messages, write_bytes=write_bytes,
            read_messages=read_messages, read_bytes=read_bytes,
            storage_per_server=storage, non_skipping=False,
            byzantine_clients=True)

    def atomic_ns(self) -> Prediction:
        """Protocol AtomicNS: Atomic plus one round of signature shares."""
        base = self.atomic()
        n = self.n
        share_messages = n * n
        share_bytes = n * n * self.sig_size
        sig_extra = 2 * n * self.sig_size  # signatures in ts replies + rbc
        return Prediction(
            protocol="atomic_ns", resilience="n > 3t",
            storage_blowup=base.storage_blowup,
            write_messages=base.write_messages + share_messages,
            write_bytes=base.write_bytes + share_bytes + sig_extra,
            read_messages=base.read_messages,
            read_bytes=base.read_bytes,
            storage_per_server=base.storage_per_server + self.sig_size,
            non_skipping=True, byzantine_clients=True)

    # -- baselines ---------------------------------------------------------------

    def martin(self) -> Prediction:
        """Martin et al. (SBQ-L): full replication, client timestamps."""
        n = self.n
        write_messages = 4 * n   # get-ts, ts, store, ack
        write_bytes = n * (self.value_size + self.ts_size) \
            + 3 * n * self.ts_size \
            + self.listeners * n * (self.value_size + self.ts_size)
        read_messages = 3 * n
        read_bytes = n * (self.value_size + self.ts_size) \
            + 2 * n * self.ts_size
        return Prediction(
            protocol="martin", resilience="n > 3t",
            storage_blowup=float(n),
            write_messages=write_messages, write_bytes=write_bytes,
            read_messages=read_messages, read_bytes=read_bytes,
            storage_per_server=self.value_size + self.ts_size,
            non_skipping=False, byzantine_clients=False)

    def bazzi_ding(self) -> Prediction:
        """Bazzi-Ding: replication with non-skipping timestamps, n > 4t."""
        base = self.martin()
        return Prediction(
            protocol="bazzi_ding", resilience="n > 4t",
            storage_blowup=base.storage_blowup,
            write_messages=base.write_messages,
            write_bytes=base.write_bytes,
            read_messages=base.read_messages,
            read_bytes=base.read_bytes,
            storage_per_server=base.storage_per_server,
            non_skipping=True, byzantine_clients=False)

    def goodson(self, rollback_rounds: int = 0,
                versions: int = 1) -> Prediction:
        """Goodson et al.: erasure coding with read-time validation.

        Writes are cheap (no server interaction) but servers keep version
        history and a read pays one extra round per rollback after
        inconsistent writes.
        """
        n = self.n
        cross_checksum = n * self.hash_size
        write_messages = 4 * n
        write_bytes = n * (self.block_size + cross_checksum) \
            + 3 * n * self.ts_size
        rounds = 1 + rollback_rounds
        read_messages = 2 * n * rounds + n
        read_bytes = rounds * n * (self.block_size + cross_checksum
                                   + self.ts_size) + n * self.ts_size
        storage = versions * (self.block_size + cross_checksum
                              + self.ts_size)
        return Prediction(
            protocol="goodson", resilience="n > 4t",
            storage_blowup=self.n * self.block_size / self.value_size,
            write_messages=write_messages, write_bytes=write_bytes,
            read_messages=read_messages, read_bytes=read_bytes,
            storage_per_server=storage, non_skipping=False,
            byzantine_clients=False)

    def phalanx(self) -> Prediction:
        """Phalanx-style safe register: replication, single-round reads,
        no listeners — cheapest, weakest (safe semantics only)."""
        n = self.n
        write_messages = 4 * n
        write_bytes = n * (self.value_size + self.ts_size) \
            + 3 * n * self.ts_size
        read_messages = 2 * n
        read_bytes = n * (self.value_size + self.ts_size) \
            + n * self.ts_size
        return Prediction(
            protocol="phalanx", resilience="n > 4t",
            storage_blowup=float(n),
            write_messages=write_messages, write_bytes=write_bytes,
            read_messages=read_messages, read_bytes=read_bytes,
            storage_per_server=self.value_size + self.ts_size,
            non_skipping=False, byzantine_clients=True,
            consistency="safe")

    def all_protocols(self) -> Dict[str, Prediction]:
        """Predictions for the full comparison table (T1)."""
        return {
            "phalanx": self.phalanx(),
            "martin": self.martin(),
            "goodson": self.goodson(),
            "bazzi_ding": self.bazzi_ding(),
            "atomic": self.atomic(),
            "atomic_ns": self.atomic_ns(),
        }
