"""Analysis tools: atomicity checking, history recording, complexity model."""

from repro.analysis.complexity import ComplexityModel, Prediction
from repro.analysis.consistency import (
    ConsistencyViolation,
    check_regularity,
    check_safety,
)
from repro.analysis.history import HistoryRecorder
from repro.analysis.invariants import make_register_invariant
from repro.analysis.linearizability import (
    INITIAL_WRITE_OID,
    HistoryOp,
    check_atomicity,
)

__all__ = [
    "ComplexityModel",
    "Prediction",
    "ConsistencyViolation",
    "check_regularity",
    "check_safety",
    "HistoryRecorder",
    "make_register_invariant",
    "INITIAL_WRITE_OID",
    "HistoryOp",
    "check_atomicity",
]
