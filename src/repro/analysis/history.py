"""Recording histories from cluster runs for atomicity checking.

Collects the operations of Definition 1 from a simulation: terminating
reads and writes at honest clients (from their operation handles) plus
writes that *took effect* on behalf of Byzantine clients (witnessed by a
``write-accepted`` output action at at least one honest server).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from repro.cluster import Cluster
from repro.analysis.linearizability import (
    KIND_READ,
    KIND_WRITE,
    HistoryOp,
    check_atomicity,
)
from repro.common.errors import LivenessError
from repro.common.ids import PartyId
from repro.core.register import OperationHandle


class HistoryRecorder:
    """Builds a checkable history for one register of one cluster run.

    ``byzantine_writes`` maps operation identifiers of writes injected by
    Byzantine clients to the value they dispersed; such a write joins the
    history (with no real-time interval) iff some honest server emitted
    ``write-accepted`` for it — the paper's *takes effect* condition.
    """

    def __init__(self, cluster: Cluster, tag: str,
                 honest_servers: Optional[Iterable[PartyId]] = None):
        self._cluster = cluster
        self._tag = tag
        self._byzantine_writes: Dict[str, bytes] = {}
        if honest_servers is None:
            honest_servers = [server.pid for server in cluster.servers]
        self._honest_servers: Set[PartyId] = set(honest_servers)

    def record_byzantine_write(self, oid: str, value: bytes) -> None:
        """Declare a write attempt by a Byzantine client (its value must
        be known to the harness so reads of it can be validated)."""
        self._byzantine_writes[oid] = value

    # -- history construction ------------------------------------------------

    def _effected_oids(self) -> Set[str]:
        effected: Set[str] = set()
        for event in self._cluster.simulator.event_log:
            if (event.kind == "out" and event.action == "write-accepted"
                    and event.tag == self._tag
                    and event.party in self._honest_servers
                    and event.payload):
                effected.add(event.payload[0])
        return effected

    def operations(self, require_done: bool = True) -> List[HistoryOp]:
        """The history: honest handles plus effected Byzantine writes.

        With ``require_done`` (the default), an unterminated operation at
        an honest client raises :class:`LivenessError` — wait-freedom says
        every invoked operation must terminate once the run is complete.
        """
        operations: List[HistoryOp] = []
        for client in self._cluster.clients:
            handles = getattr(client, "operations", None)
            if handles is None:
                continue  # Byzantine client: no recorded honest handles
            for handle in handles:
                if handle.tag != self._tag:
                    continue
                if not handle.done:
                    if require_done:
                        raise LivenessError(
                            f"operation {handle.oid} at {handle.client} "
                            f"did not terminate")
                    continue
                operations.append(self._from_handle(handle))
        effected = self._effected_oids()
        for oid, value in self._byzantine_writes.items():
            if oid in effected:
                operations.append(HistoryOp(
                    kind=KIND_WRITE, oid=oid, value=value))
        return operations

    @staticmethod
    def _from_handle(handle: OperationHandle) -> HistoryOp:
        if handle.kind == "write":
            return HistoryOp(kind=KIND_WRITE, oid=handle.oid,
                             value=handle.value,
                             invoke=handle.invoke_time,
                             complete=handle.complete_time)
        return HistoryOp(kind=KIND_READ, oid=handle.oid,
                         value=handle.result, invoke=handle.invoke_time,
                         complete=handle.complete_time)

    # -- one-call check -----------------------------------------------------------

    def check(self, initial_value: bytes = b"",
              require_done: bool = True) -> List[str]:
        """Assert atomicity of the recorded history; returns the witness
        linearization (see :func:`check_atomicity`)."""
        return check_atomicity(self.operations(require_done=require_done),
                               initial_value=initial_value)
