"""Atomicity (linearizability) checking for register histories.

Definition 1 of the paper requires a total order over terminating reads and
effected writes that respects real-time precedence and register semantics.
This module decides, for a recorded history, whether such an order exists —
the checker is sound and complete for histories in which every write's
value is unique (test workloads guarantee uniqueness by construction).

Algorithm (registers with unique values admit a polynomial check):

1. Map each read to the write it *reads from* via the returned value; a
   value written by no one (and not the initial value) is an immediate
   violation.
2. Group each write with the reads that read from it — its *cluster*.  In
   any valid linearization the members of a cluster are contiguous: if a
   different write were linearized between a write and one of its readers,
   that reader would have read the other write.
3. Build the cluster precedence graph: an edge ``C1 -> C2`` whenever some
   operation of ``C1`` completes before some operation of ``C2`` is
   invoked (real-time order must be preserved across clusters).  Writes
   that took effect without a recorded interval (Byzantine writers)
   contribute no real-time edges.
4. The history is atomic iff no read completes before its write is
   invoked and the cluster graph is acyclic; a topological order of
   clusters (write first, reads by invocation time) is a witness
   linearization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.errors import AtomicityViolation

KIND_WRITE = "write"
KIND_READ = "read"

#: Synthetic operation identifier of the initial write of ``F_init``.
INITIAL_WRITE_OID = "__initial__"


@dataclass(frozen=True)
class HistoryOp:
    """One operation of a recorded history.

    ``invoke`` / ``complete`` are logical times; either may be ``None``
    for writes that took effect on behalf of Byzantine clients (no
    observable interval) — such writes may be linearized anywhere.
    ``value`` is the value written, or returned by the read.
    """

    kind: str
    oid: str
    value: bytes
    invoke: Optional[int] = None
    complete: Optional[int] = None

    def precedes(self, other: "HistoryOp") -> bool:
        """Real-time precedence: this op completed before ``other`` began."""
        return (self.complete is not None and other.invoke is not None
                and self.complete < other.invoke)


def check_atomicity(operations: Sequence[HistoryOp],
                    initial_value: bytes = b"") -> List[str]:
    """Verify atomicity; returns a witness linearization (operation ids).

    Raises :class:`AtomicityViolation` with a diagnostic message if no
    valid total order exists.  Requires unique write values (two writes of
    the same value raise ``ValueError`` — generate distinct values in
    workloads).
    """
    writes: Dict[bytes, HistoryOp] = {}
    initial = HistoryOp(kind=KIND_WRITE, oid=INITIAL_WRITE_OID,
                        value=initial_value)
    reads: List[HistoryOp] = []
    for operation in operations:
        if operation.kind == KIND_WRITE:
            if operation.value in writes or (
                    operation.value == initial_value):
                raise ValueError(
                    "atomicity checking requires unique write values "
                    f"(duplicate: {operation.value!r})")
            writes[operation.value] = operation
        elif operation.kind == KIND_READ:
            reads.append(operation)
        else:
            raise ValueError(f"unknown operation kind {operation.kind!r}")

    # 1. reads-from mapping.
    clusters: Dict[str, List[HistoryOp]] = {INITIAL_WRITE_OID: [initial]}
    for write in writes.values():
        clusters[write.oid] = [write]
    for read in reads:
        if read.value == initial_value:
            owner = initial
        elif read.value in writes:
            owner = writes[read.value]
        else:
            raise AtomicityViolation(
                f"read {read.oid} returned a value written by no one: "
                f"{read.value!r}")
        if read.complete is not None and owner.invoke is not None \
                and read.complete < owner.invoke:
            raise AtomicityViolation(
                f"read {read.oid} returned the value of write "
                f"{owner.oid}, which was invoked only after the read "
                f"completed")
        clusters[owner.oid].append(read)

    # 2-3. cluster precedence graph.  The initial write precedes all.
    cluster_ids = list(clusters)
    member_of: Dict[str, str] = {}
    for cluster_oid, members in clusters.items():
        for operation in members:
            member_of[operation.oid] = cluster_oid
    edges: Dict[str, set] = {cluster_oid: set() for cluster_oid in clusters}
    indegree: Dict[str, int] = {cluster_oid: 0 for cluster_oid in clusters}
    all_ops = [op for members in clusters.values() for op in members]
    for first in all_ops:
        for second in all_ops:
            if first is second or not first.precedes(second):
                continue
            c1, c2 = member_of[first.oid], member_of[second.oid]
            if c1 == c2:
                continue
            if c2 not in edges[c1]:
                edges[c1].add(c2)
                indegree[c2] += 1
    for cluster_oid in cluster_ids:
        if cluster_oid != INITIAL_WRITE_OID \
                and cluster_oid not in edges[INITIAL_WRITE_OID]:
            edges[INITIAL_WRITE_OID].add(cluster_oid)
            indegree[cluster_oid] += 1

    # 4. topological sort (deterministic: prefer earliest write invocation).
    def sort_key(cluster_oid: str) -> Tuple:
        write = clusters[cluster_oid][0]
        invoke = write.invoke if write.invoke is not None else -1
        return (invoke, cluster_oid)

    available = sorted(
        (cluster_oid for cluster_oid in cluster_ids
         if indegree[cluster_oid] == 0), key=sort_key)
    order: List[str] = []
    processed = 0
    while available:
        cluster_oid = available.pop(0)
        processed += 1
        members = clusters[cluster_oid]
        write, cluster_reads = members[0], members[1:]
        if write.oid != INITIAL_WRITE_OID:
            order.append(write.oid)
        cluster_reads.sort(key=lambda op: (
            op.invoke if op.invoke is not None else -1, op.oid))
        order.extend(read.oid for read in cluster_reads)
        inserted = False
        for successor in edges[cluster_oid]:
            indegree[successor] -= 1
            if indegree[successor] == 0:
                available.append(successor)
                inserted = True
        if inserted:
            available.sort(key=sort_key)
    if processed != len(clusters):
        cyclic = [cluster_oid for cluster_oid in cluster_ids
                  if indegree[cluster_oid] > 0]
        raise AtomicityViolation(
            "no linearization exists: cyclic real-time constraints among "
            f"write clusters {sorted(cyclic)}")
    return order
