"""Continuously-checked safety invariants for register clusters.

The atomicity checker validates a *finished* history; these invariant
hooks catch protocol-state corruption at the exact delivery that
introduces it (install with ``simulator.add_invariant``).  They encode
the lemmas of Section 3.3:

* **timestamp agreement** (Lemma basis): no two honest servers ever
  accept the same write with different TIMESTAMPS — witnessed through
  their ``write-accepted`` output actions;
* **monotonicity**: an honest server's stored TIMESTAMP never decreases;
* **commitment uniqueness** (Lemma 5 basis): all ``write-accepted``
  events for one operation identifier agree, and servers holding equal
  TIMESTAMPS hold equal commitments.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional, Set, Tuple

from repro.common.errors import ProtocolError
from repro.common.ids import PartyId
from repro.common.serialization import encode
from repro.core.timestamps import Timestamp
from repro.net.simulator import Simulator


def make_register_invariant(tag: str,
                            honest_servers: Optional[Iterable[PartyId]]
                            = None) -> Callable[[Simulator], None]:
    """Build an invariant hook for one register of a cluster.

    ``honest_servers`` restricts the checks to servers the experiment
    considers honest (Byzantine overrides may corrupt their own state
    freely).  The returned callable keeps incremental state, so install
    one fresh instance per run.
    """
    honest: Optional[Set[PartyId]] = \
        set(honest_servers) if honest_servers is not None else None
    accepted_timestamps: Dict[str, Timestamp] = {}
    last_timestamp: Dict[PartyId, Timestamp] = {}
    scanned_events = 0

    def check(simulator: Simulator) -> None:
        nonlocal scanned_events
        # 1. write-accepted agreement, scanned incrementally.
        log = simulator.event_log
        while scanned_events < len(log):
            event = log[scanned_events]
            scanned_events += 1
            if event.kind != "out" or event.action != "write-accepted":
                continue
            if event.tag != tag or len(event.payload) < 2:
                continue
            if honest is not None and event.party not in honest:
                continue
            oid, timestamp = event.payload[0], event.payload[1]
            if not isinstance(timestamp, Timestamp):
                continue
            known = accepted_timestamps.get(oid)
            if known is None:
                accepted_timestamps[oid] = timestamp
            elif known != timestamp:
                raise ProtocolError(
                    f"write {oid} accepted with two TIMESTAMPS: "
                    f"{known} and {timestamp}")
        # 2. per-server monotonicity + 3. commitment uniqueness per TS.
        by_timestamp: Dict[Timestamp, bytes] = {}
        for process in simulator.processes:
            if not process.pid.is_server:
                continue
            if honest is not None and process.pid not in honest:
                continue
            probe = getattr(process, "register_state", None)
            if probe is None:
                continue
            state = probe(tag)
            timestamp = getattr(state, "timestamp", None)
            if not isinstance(timestamp, Timestamp):
                continue
            previous = last_timestamp.get(process.pid)
            if previous is not None and timestamp < previous:
                raise ProtocolError(
                    f"{process.pid} stored TIMESTAMP went backwards: "
                    f"{previous} -> {timestamp}")
            last_timestamp[process.pid] = timestamp
            commitment = getattr(state, "commitment", None)
            if commitment is not None:
                key = encode(commitment)
                known = by_timestamp.get(timestamp)
                if known is None:
                    by_timestamp[timestamp] = key
                elif known != key:
                    raise ProtocolError(
                        f"two honest servers hold TIMESTAMP {timestamp} "
                        f"with different commitments")

    return check
