"""Execution-trace tooling: summaries and export of simulation runs.

The simulator's event log is the paper's global clock made concrete.
These helpers turn a run into something a human can audit: a timeline of
input/output actions, per-message-type traffic summaries, and a JSON-lines
export for external analysis.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Sequence, TextIO, Tuple

from repro.net.message import EVENT_INPUT, EVENT_OUTPUT, LocalEvent
from repro.net.metrics import Metrics

#: completion output action -> the invocation input action it terminates
COMPLETION_ACTIONS = {"ack": "write", "read": "read"}


def _payload_repr(payload) -> str:
    parts = []
    for item in payload:
        if isinstance(item, bytes):
            parts.append(f"<{len(item)}B>")
        else:
            text = str(item)
            parts.append(text if len(text) <= 24 else text[:21] + "...")
    return ", ".join(parts)


def format_timeline(events: Sequence[LocalEvent],
                    tag: Optional[str] = None,
                    kinds: Sequence[str] = (EVENT_INPUT, EVENT_OUTPUT),
                    limit: Optional[int] = None) -> str:
    """Render a run's local events as a readable timeline.

    ``tag`` filters to one register/protocol instance; ``limit`` truncates
    to the first N matching events.
    """
    lines: List[str] = []
    for event in events:
        if event.kind not in kinds:
            continue
        if tag is not None and event.tag != tag:
            continue
        lines.append(f"t={event.time:<6} {str(event.party):<5} "
                     f"{event.kind:<3} ({event.tag}, {event.action}"
                     f"{', ' if event.payload else ''}"
                     f"{_payload_repr(event.payload)})")
        if limit is not None and len(lines) >= limit:
            lines.append(f"... (showing first {limit} events)")
            break
    return "\n".join(lines) if lines else "(no matching events)"


def match_operations(events: Sequence[LocalEvent]) -> Tuple[
        List[Tuple[LocalEvent, LocalEvent]], List[LocalEvent],
        List[LocalEvent]]:
    """Pair operation invocations with their completing output actions.

    A completion (``ack`` for writes, ``read`` for reads) is matched to
    the *most recent still-open* invocation with the same tag, operation
    identifier, client, and kind — so a reused operation key closes its
    invocations LIFO instead of silently overwriting earlier ones.

    Returns ``(pairs, unmatched_completions, open_invocations)``:
    matched pairs in completion order, completions with no open
    invocation (e.g. a truncated event log), and invocations that never
    completed, in invocation order.
    """
    open_by_key: Dict[Tuple, List[LocalEvent]] = {}
    pairs: List[Tuple[LocalEvent, LocalEvent]] = []
    unmatched: List[LocalEvent] = []
    for event in events:
        oid = event.payload[0] if event.payload else None
        if event.kind == EVENT_INPUT and event.action in ("write", "read"):
            key = (event.tag, oid, event.party, event.action)
            open_by_key.setdefault(key, []).append(event)
        elif event.kind == EVENT_OUTPUT \
                and event.action in COMPLETION_ACTIONS:
            key = (event.tag, oid, event.party,
                   COMPLETION_ACTIONS[event.action])
            stack = open_by_key.get(key)
            if stack:
                pairs.append((stack.pop(), event))
            else:
                unmatched.append(event)
    open_invocations = [invocation
                        for stack in open_by_key.values()
                        for invocation in stack]
    open_invocations.sort(key=lambda e: e.time)
    return pairs, unmatched, open_invocations


def operation_summary(events: Sequence[LocalEvent]) -> str:
    """One line per register operation: invocation, completion, duration.

    Completions are matched to the most recent open invocation of the
    same ``(tag, oid, client, kind)``; completions that match no open
    invocation and invocations that never completed are flagged instead
    of being silently dropped.
    """
    pairs, unmatched, still_open = match_operations(events)
    lines: List[str] = []
    for start, end in pairs:
        oid = start.payload[0] if start.payload else None
        duration = end.time - start.time
        lines.append(
            f"{start.action:<5} {oid:<12} tag={end.tag:<12} "
            f"client={start.party} t={start.time}->{end.time} "
            f"({duration} events)")
    for event in unmatched:
        oid = event.payload[0] if event.payload else None
        lines.append(f"?     {oid:<12} tag={event.tag:<12} "
                     f"client={event.party} t=?->{event.time} "
                     f"(unmatched completion)")
    for event in still_open:
        oid = event.payload[0] if event.payload else None
        lines.append(f"{event.action:<5} {oid:<12} tag={event.tag:<12} "
                     f"client={event.party} t={event.time}->? "
                     f"(never completed)")
    return "\n".join(lines) if lines else "(no operations)"


def traffic_summary(metrics: Metrics, tag_prefix: str) -> str:
    """Per-message-type counts under a tag prefix, largest first."""
    by_mtype = metrics.messages_by_mtype(tag_prefix)
    total_messages = metrics.message_complexity(tag_prefix)
    total_bytes = metrics.communication_complexity(tag_prefix)
    lines = [f"traffic under {tag_prefix!r}: {total_messages} messages, "
             f"{total_bytes} bytes"]
    for mtype, count in sorted(by_mtype.items(),
                               key=lambda item: -item[1]):
        lines.append(f"  {mtype:<16} {count}")
    return "\n".join(lines)


def export_events_jsonl(events: Iterable[LocalEvent],
                        stream: TextIO) -> int:
    """Write events as JSON lines; returns the number written.

    Byte payload fields become ``{"bytes": <length>}`` placeholders so the
    export stays small and text-safe.
    """
    count = 0
    for event in events:
        payload = [{"bytes": len(item)} if isinstance(item, bytes)
                   else str(item) for item in event.payload]
        record = {
            "time": event.time,
            "party": str(event.party),
            "kind": event.kind,
            "tag": event.tag,
            "action": event.action,
            "payload": payload,
        }
        stream.write(json.dumps(record) + "\n")
        count += 1
    return count
