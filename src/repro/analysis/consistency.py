"""Weaker register consistency conditions: safety and regularity.

Lamport's hierarchy (paper, Section 1): *safe* < *regular* < *atomic*.
The library's protocols target atomicity (checked by
:mod:`repro.analysis.linearizability`); these weaker checkers serve two
purposes: validating ablation variants that trade consistency or
liveness for cost, and diagnosing *how badly* a broken history fails
(a history can violate atomicity while still being regular).

Definitions on a history with unique write values:

* **safe** — a read concurrent with no write returns the value of the
  latest preceding write; a concurrent read may return *any* written (or
  initial) value;
* **regular** — every read returns either the value of some latest
  preceding write or of some write concurrent with the read.

"Latest preceding write" is any write ``w`` that completed before the
read began such that no other write falls entirely between ``w`` and the
read.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set

from repro.analysis.linearizability import (
    INITIAL_WRITE_OID,
    KIND_READ,
    KIND_WRITE,
    HistoryOp,
)
from repro.common.errors import AtomicityViolation


class ConsistencyViolation(AtomicityViolation):
    """A history fails the requested (safe/regular) condition."""


def _split(operations: Sequence[HistoryOp], initial_value: bytes):
    writes: Dict[bytes, HistoryOp] = {}
    reads: List[HistoryOp] = []
    initial = HistoryOp(kind=KIND_WRITE, oid=INITIAL_WRITE_OID,
                        value=initial_value)
    for operation in operations:
        if operation.kind == KIND_WRITE:
            if operation.value in writes or operation.value == initial_value:
                raise ValueError("consistency checking requires unique "
                                 "write values")
            writes[operation.value] = operation
        elif operation.kind == KIND_READ:
            reads.append(operation)
        else:
            raise ValueError(f"unknown operation kind {operation.kind!r}")
    return initial, writes, reads


def _concurrent(a: HistoryOp, b: HistoryOp) -> bool:
    return not a.precedes(b) and not b.precedes(a)


def _allowed_latest(initial: HistoryOp, writes, read: HistoryOp) -> Set[str]:
    """Writes that qualify as a 'latest preceding write' of ``read``."""
    preceding = [write for write in writes.values()
                 if write.precedes(read)]
    allowed = set()
    for write in preceding:
        superseded = any(other is not write and write.precedes(other)
                         and other.precedes(read) for other in preceding)
        if not superseded:
            allowed.add(write.oid)
    if not any(write.precedes(read) for write in writes.values()):
        allowed.add(initial.oid)
    return allowed


def check_regularity(operations: Sequence[HistoryOp],
                     initial_value: bytes = b"") -> None:
    """Assert the history is regular; raises
    :class:`ConsistencyViolation` otherwise."""
    initial, writes, reads = _split(operations, initial_value)
    for read in reads:
        if read.value == initial_value:
            owner = initial
        elif read.value in writes:
            owner = writes[read.value]
        else:
            raise ConsistencyViolation(
                f"read {read.oid} returned a never-written value")
        if owner is initial:
            if any(write.precedes(read) for write in writes.values()):
                raise ConsistencyViolation(
                    f"read {read.oid} returned the initial value after "
                    f"a write completed")
            continue
        allowed = _allowed_latest(initial, writes, read)
        if owner.oid in allowed or _concurrent(owner, read):
            continue
        raise ConsistencyViolation(
            f"read {read.oid} returned {owner.oid}, which is neither a "
            f"latest preceding nor a concurrent write")


def check_safety(operations: Sequence[HistoryOp],
                 initial_value: bytes = b"") -> None:
    """Assert the history is safe; raises
    :class:`ConsistencyViolation` otherwise.

    Reads concurrent with any write are unconstrained beyond returning
    *some* written (or initial) value.
    """
    initial, writes, reads = _split(operations, initial_value)
    for read in reads:
        known = read.value == initial_value or read.value in writes
        if not known:
            raise ConsistencyViolation(
                f"read {read.oid} returned a never-written value")
        if any(_concurrent(write, read) for write in writes.values()):
            continue  # concurrent with a write: anything written is fine
        allowed = _allowed_latest(initial, writes, read)
        owner_oid = initial.oid if read.value == initial_value \
            else writes[read.value].oid
        if owner_oid not in allowed:
            raise ConsistencyViolation(
                f"uncontended read {read.oid} returned {owner_oid}, not "
                f"a latest preceding write")
