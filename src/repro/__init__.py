"""repro — Optimal Resilience for Erasure-Coded Byzantine Distributed Storage.

A complete Python implementation of Cachin & Tessaro's DSN 2006 paper:
multi-writer multi-reader *atomic register* simulation over ``n`` servers
of which up to ``t < n/3`` may be Byzantine (optimal), tolerating an
arbitrary number of Byzantine clients, storing values erasure-coded
(``~ |F|/k`` per server instead of ``|F|``), with *non-skipping
timestamps* built from threshold signatures.

Quick use::

    from repro import SystemConfig, build_cluster

    cluster = build_cluster(SystemConfig(n=4, t=1), protocol="atomic_ns",
                            num_clients=2)
    cluster.write(1, "reg", "w1", b"hello")
    assert cluster.read(2, "reg", "r1").result == b"hello"

Package map (see DESIGN.md for the full inventory):

* :mod:`repro.core` — Protocols Atomic and AtomicNS (the contribution);
* :mod:`repro.avid`, :mod:`repro.broadcast` — verifiable information
  dispersal and Bracha reliable broadcast substrates;
* :mod:`repro.erasure`, :mod:`repro.crypto` — Reed-Solomon coding, hash
  commitments, Shoup threshold signatures;
* :mod:`repro.net` — the asynchronous Byzantine network simulator;
* :mod:`repro.baselines` — Martin et al., Bazzi-Ding, Goodson et al.;
* :mod:`repro.faults` — Byzantine server/client attack library;
* :mod:`repro.analysis` — linearizability checking, complexity model;
* :mod:`repro.experiments` — the evaluation harness (tables T1-T2,
  figures F1-F8).
"""

from repro.cluster import Cluster, build_cluster
from repro.config import SystemConfig
from repro.core.atomic import AtomicClient, AtomicServer
from repro.core.atomic_ns import AtomicNSClient, AtomicNSServer
from repro.core.register import OperationHandle
from repro.core.timestamps import Timestamp
from repro.net.schedulers import (
    FifoScheduler,
    PartitionScheduler,
    PriorityScheduler,
    RandomScheduler,
    SlowPartiesScheduler,
)
from repro.net.simulator import Simulator

__version__ = "1.0.0"

__all__ = [
    "Cluster",
    "build_cluster",
    "SystemConfig",
    "AtomicClient",
    "AtomicServer",
    "AtomicNSClient",
    "AtomicNSServer",
    "OperationHandle",
    "Timestamp",
    "FifoScheduler",
    "PartitionScheduler",
    "PriorityScheduler",
    "RandomScheduler",
    "SlowPartiesScheduler",
    "Simulator",
    "__version__",
]
