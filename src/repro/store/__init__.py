"""Application layer: a BFT object store as an array of atomic registers."""

from repro.store.blobstore import (
    DEFAULT_CHUNK_SIZE,
    BlobNotFound,
    BlobStat,
    BlobStore,
    BlobStoreError,
    ConcurrentUpdate,
)

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "BlobNotFound",
    "BlobStat",
    "BlobStore",
    "BlobStoreError",
    "ConcurrentUpdate",
]
