"""A Byzantine fault-tolerant object (blob) store over atomic registers.

The paper's introduction motivates the register abstraction with
networked storage systems (NAS, object storage, SAN): "a complete storage
system can be modeled as an array of these registers."  This module is
that array put to work — a chunked object store in which every chunk and
every manifest is one atomic register of a cluster:

* ``put(name, data)`` splits the blob into fixed-size chunks, writes each
  chunk to its own register, then writes a *manifest* register recording
  the chunk count, total size, and per-chunk digests.  Because the
  manifest write begins only after every chunk write completed, any
  reader that sees the manifest also sees the chunks (atomic registers
  compose by real-time order).
* ``get(name)`` reads the manifest, fetches the chunks, and verifies each
  against its digest; a digest mismatch means a concurrent ``put``
  overwrote a chunk after this manifest was read, so ``get`` retries with
  a fresh manifest (bounded retries, then :class:`ConcurrentUpdate`).
* Objects are versioned by the writer identity + a local sequence number,
  so concurrent ``put``s to one name linearize like register writes:
  last manifest wins, and every ``get`` returns some complete version.

Everything Byzantine-tolerant about the registers is inherited: up to
``t < n/3`` corrupted servers, Byzantine clients unable to store
inconsistent chunks, erasure-coded per-server storage.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Optional

from repro.cluster import Cluster
from repro.common.errors import ReproError
from repro.common.serialization import decode, encode
from repro.crypto.hashing import hash_bytes

DEFAULT_CHUNK_SIZE = 16 * 1024

#: Manifest wire format version (future-proofing the layout).
_MANIFEST_VERSION = 1


class BlobStoreError(ReproError):
    """Base error of the blob store layer."""


class BlobNotFound(BlobStoreError):
    """``get``/``stat`` on a name that has no (non-deleted) manifest."""


class ConcurrentUpdate(BlobStoreError):
    """``get`` kept losing races against concurrent ``put``s."""


@dataclass(frozen=True)
class BlobStat:
    """Metadata of a stored blob."""

    name: str
    size: int
    chunk_count: int
    version: str


class BlobStore:
    """Chunked object store bound to one client of a register cluster.

    Several ``BlobStore`` instances (one per client) may operate on the
    same cluster concurrently; names are shared, operations linearize.
    """

    def __init__(self, cluster: Cluster, client_index: int,
                 chunk_size: int = DEFAULT_CHUNK_SIZE,
                 namespace: str = "blob"):
        if chunk_size < 1:
            raise BlobStoreError("chunk size must be positive")
        self._cluster = cluster
        self._client_index = client_index
        self._chunk_size = chunk_size
        self._namespace = namespace
        self._sequence = itertools.count()

    # -- tags and versions --------------------------------------------------

    def _manifest_tag(self, name: str) -> str:
        return f"{self._namespace}/{name}/manifest"

    def _chunk_tag(self, name: str, index: int) -> str:
        return f"{self._namespace}/{name}/chunk{index}"

    def _next_oid(self, verb: str) -> str:
        return f"{verb}-c{self._client_index}-{next(self._sequence)}"

    # -- operations -------------------------------------------------------------

    def put(self, name: str, data: bytes) -> BlobStat:
        """Store ``data`` under ``name`` (overwrites previous versions)."""
        version = self._next_oid("v")
        chunks = [data[offset:offset + self._chunk_size]
                  for offset in range(0, len(data), self._chunk_size)]
        if not chunks:
            chunks = [b""]
        digests: List[bytes] = []
        for index, chunk in enumerate(chunks):
            # Chunk payloads are version-framed so two versions of one
            # chunk never collide byte-for-byte (unique write values).
            framed = encode((version, chunk))
            digests.append(hash_bytes(framed))
            self._cluster.write(self._client_index,
                                self._chunk_tag(name, index),
                                self._next_oid("put"), framed)
        manifest = encode((_MANIFEST_VERSION, version, len(data),
                           len(chunks), digests, False))
        self._cluster.write(self._client_index, self._manifest_tag(name),
                            self._next_oid("put"), manifest)
        return BlobStat(name=name, size=len(data),
                        chunk_count=len(chunks), version=version)

    def delete(self, name: str) -> None:
        """Delete ``name`` by writing a tombstone manifest."""
        version = self._next_oid("v")
        manifest = encode((_MANIFEST_VERSION, version, 0, 0, [], True))
        self._cluster.write(self._client_index, self._manifest_tag(name),
                            self._next_oid("del"), manifest)

    def _read_manifest(self, name: str):
        handle = self._cluster.read(self._client_index,
                                    self._manifest_tag(name),
                                    self._next_oid("get"))
        if not handle.result:
            return None  # initial register value: never written
        try:
            record = decode(handle.result)
        except Exception as exc:
            raise BlobStoreError(f"corrupt manifest for {name!r}") from exc
        if not (isinstance(record, tuple) and len(record) == 6
                and record[0] == _MANIFEST_VERSION):
            raise BlobStoreError(f"unknown manifest layout for {name!r}")
        return record

    def stat(self, name: str) -> BlobStat:
        """Metadata of the current version of ``name``."""
        record = self._read_manifest(name)
        if record is None or record[5]:
            raise BlobNotFound(name)
        _, version, size, chunk_count, _, _ = record
        return BlobStat(name=name, size=size, chunk_count=chunk_count,
                        version=version)

    def exists(self, name: str) -> bool:
        """Whether a non-deleted version of ``name`` is stored."""
        record = self._read_manifest(name)
        return record is not None and not record[5]

    def get(self, name: str, max_attempts: int = 8) -> bytes:
        """Fetch the blob stored under ``name``.

        Retries when a concurrent ``put`` overwrites chunks between the
        manifest read and the chunk reads; raises
        :class:`ConcurrentUpdate` after ``max_attempts`` lost races.
        """
        for _ in range(max_attempts):
            record = self._read_manifest(name)
            if record is None or record[5]:
                raise BlobNotFound(name)
            _, version, size, chunk_count, digests, _ = record
            chunks = self._read_chunks(name, version, chunk_count, digests)
            if chunks is None:
                continue  # lost a race: refetch the manifest
            data = b"".join(chunks)
            if len(data) != size:
                raise BlobStoreError(
                    f"manifest/chunk size mismatch for {name!r}")
            return data
        raise ConcurrentUpdate(
            f"get({name!r}) lost {max_attempts} races against "
            f"concurrent puts")

    def _read_chunks(self, name: str, version: str, chunk_count: int,
                     digests) -> Optional[List[bytes]]:
        chunks: List[bytes] = []
        for index in range(chunk_count):
            handle = self._cluster.read(self._client_index,
                                        self._chunk_tag(name, index),
                                        self._next_oid("get"))
            framed = handle.result
            if framed is None or hash_bytes(framed) != digests[index]:
                return None  # overwritten by a newer version mid-read
            chunk_version, chunk = decode(framed)
            if chunk_version != version:
                return None
            chunks.append(chunk)
        return chunks
