"""Cryptographic tools: hashing, Merkle trees, and threshold signatures.

These are the primitives of Section 2.2 of the paper: a collision-resistant
hash function and a non-interactive ``(n, t)``-threshold signature scheme
(Shoup's RSA-based construction, plus a fast ideal-functionality backend
for large-scale simulations).
"""

from repro.crypto.hashing import (
    DIGEST_BITS,
    DIGEST_SIZE,
    hash_bytes,
    hash_int,
    hash_many,
    hash_vector,
)
from repro.crypto.merkle import (
    MerkleProof,
    MerkleTree,
    merkle_root,
    verify_merkle_proof,
)
from repro.crypto.threshold import (
    IdealThresholdScheme,
    ShoupThresholdScheme,
    SignatureShare,
    ThresholdScheme,
    ThresholdSignature,
    make_scheme,
)

__all__ = [
    "DIGEST_BITS",
    "DIGEST_SIZE",
    "hash_bytes",
    "hash_int",
    "hash_many",
    "hash_vector",
    "MerkleProof",
    "MerkleTree",
    "merkle_root",
    "verify_merkle_proof",
    "IdealThresholdScheme",
    "ShoupThresholdScheme",
    "SignatureShare",
    "ThresholdScheme",
    "ThresholdSignature",
    "make_scheme",
]
