"""Non-interactive ``(n, t)``-threshold signatures.

The paper (Section 2.2) requires a non-interactive threshold signature
scheme with five algorithms — ``generate``, ``sign``, ``verify-share``,
``combine``, ``verify`` — satisfying *robustness* (t+1 valid shares always
combine into a valid signature) and *non-forgeability* (no signature on a
message never signed by an honest server).  It cites Shoup's practical
RSA-based scheme [26] as an instantiation.

This module provides two interchangeable backends:

:class:`ShoupThresholdScheme`
    A complete pure-Python implementation of Shoup's scheme: safe-prime RSA
    modulus, signing exponent shared with a degree-``t`` polynomial over
    ``Z_m`` (``m`` the order of the squares subgroup), signature shares
    ``x^{2·Δ·s_j}`` with non-interactive discrete-log-equality validity
    proofs (Fiat–Shamir), and share combining via integer Lagrange
    interpolation in the exponent.

:class:`IdealThresholdScheme`
    A fast ideal-functionality backend for large simulations.  It enforces
    robustness and non-forgeability *by construction*: shares are MACs
    under per-server keys derivable only through the dealing, and a
    combined signature can only be produced by presenting ``t+1`` valid
    shares from distinct servers to :meth:`combine`.  Byzantine parties in
    the simulator hold only their own key shares and the public API, which
    is exactly the power the paper's computationally-bounded adversary has.
    (See DESIGN.md §5 for why this substitution preserves behaviour.)

Both backends share the interface of :class:`ThresholdScheme`, so protocols
are written once and benchmarks can compare the two (experiment F8).
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Any, Iterable, Optional, Sequence

from repro.common.errors import (
    ConfigurationError,
    DealingError,
    InvalidShare,
    InvalidSignature,
)
from repro.common.serialization import encode, register_wire_type
from repro.crypto.numtheory import (
    extended_gcd,
    factorial,
    lagrange_coefficient,
    mod_inverse,
)
from repro.crypto.rsa import RsaModulus, generate_modulus, precomputed_modulus

_CHALLENGE_BITS = 256


# ---------------------------------------------------------------------------
# Wire types
# ---------------------------------------------------------------------------

@register_wire_type
@dataclass(frozen=True)
class SignatureShare:
    """A signature share ``µ_j`` produced by server ``P_j``.

    ``value`` is the share itself; ``proof`` carries the backend-specific
    validity proof (``(c, z)`` for Shoup, empty for the ideal backend).
    """

    signer: int
    value: bytes
    proof: tuple

    def size_bytes(self) -> int:
        """Wire size of this share (the `S` of the complexity model)."""
        return len(encode(self))


@register_wire_type
@dataclass(frozen=True)
class ThresholdSignature:
    """A combined threshold signature ``σ``."""

    value: bytes

    def size_bytes(self) -> int:
        """Wire size of this signature."""
        return len(encode(self))


def _int_to_bytes(value: int) -> bytes:
    length = max(1, (value.bit_length() + 7) // 8)
    return value.to_bytes(length, "big")


def _bytes_to_int(data: bytes) -> int:
    return int.from_bytes(data, "big")


def _hash_to_int(*parts: bytes) -> int:
    state = hashlib.sha256()
    for part in parts:
        state.update(len(part).to_bytes(8, "big"))
        state.update(part)
    return _bytes_to_int(state.digest())


# ---------------------------------------------------------------------------
# Scheme interface
# ---------------------------------------------------------------------------

class ThresholdScheme:
    """Interface of a dealt ``(n, t)``-threshold signature scheme.

    An instance represents the output of the trusted dealer's ``generate``
    run: it knows the public key, all verification keys, and hands each
    server its private share via :meth:`private_share`.  Messages may be
    any canonically-serializable value (they are encoded before signing).
    """

    n: int
    t: int

    def private_share(self, j: int) -> Any:
        """Return server ``P_j``'s private key share ``SK_j`` (1-based)."""
        raise NotImplementedError

    def sign(self, message: Any, j: int) -> SignatureShare:
        """Produce ``P_j``'s signature share ``µ_j`` on ``message``."""
        raise NotImplementedError

    def verify_share(self, message: Any, share: SignatureShare) -> bool:
        """Check a share against ``P_share.signer``'s verification key."""
        raise NotImplementedError

    def combine(self, message: Any,
                shares: Iterable[SignatureShare]) -> ThresholdSignature:
        """Combine ``t+1`` valid shares from distinct servers into ``σ``.

        Raises :class:`InvalidShare` if fewer than ``t+1`` distinct valid
        shares are supplied (invalid shares are skipped, which is the
        robustness guarantee: honest shares always suffice).
        """
        raise NotImplementedError

    def verify(self, message: Any, signature: ThresholdSignature) -> bool:
        """Check a combined signature against the public key."""
        raise NotImplementedError

    def _check_quorum(
            self, message: Any,
            shares: Iterable[SignatureShare]) -> list:
        """Filter to valid shares from distinct signers; enforce ``t+1``."""
        seen: set = set()
        valid = []
        for share in shares:
            if share.signer in seen or not 1 <= share.signer <= self.n:
                continue
            if self.verify_share(message, share):
                seen.add(share.signer)
                valid.append(share)
        if len(valid) < self.t + 1:
            raise InvalidShare(
                f"combine needs {self.t + 1} valid shares from distinct "
                f"servers, got {len(valid)}")
        return valid


def _validate_n_t(n: int, t: int) -> None:
    if n < 1:
        raise ConfigurationError("need at least one server")
    if not 0 <= t < n:
        raise ConfigurationError(f"threshold t={t} must satisfy 0 <= t < n={n}")


# ---------------------------------------------------------------------------
# Shoup's RSA threshold signature scheme
# ---------------------------------------------------------------------------

class ShoupThresholdScheme(ThresholdScheme):
    """Shoup's practical RSA threshold signature scheme (EUROCRYPT 2000).

    Parameters
    ----------
    n, t:
        Group size and corruption threshold; ``t + 1`` shares combine.
    modulus:
        A safe-prime :class:`RsaModulus`.  Defaults to the precomputed
        512-bit-primes modulus; pass ``generate_modulus(bits, rng)`` for a
        fresh one.
    rng:
        Source of dealer randomness (polynomial coefficients, the
        verification base ``v``, and proof nonces).
    """

    def __init__(self, n: int, t: int, modulus: Optional[RsaModulus] = None,
                 rng: Optional[random.Random] = None):
        _validate_n_t(n, t)
        self.n = n
        self.t = t
        rng = rng or random.Random(0x5406)
        self._rng = rng
        mod = modulus or precomputed_modulus(256)
        self._N = mod.n
        m = mod.m
        self._e = 65537
        if n >= self._e:
            raise ConfigurationError("group size must be below e = 65537")
        d = mod_inverse(self._e, m)
        # Secret-share d with a random degree-t polynomial over Z_m.
        coefficients = [d] + [rng.randrange(m) for _ in range(t)]
        self._shares = {}
        for j in range(1, n + 1):
            value = 0
            for power, coefficient in enumerate(coefficients):
                value = (value + coefficient * pow(j, power, m)) % m
            self._shares[j] = value
        # Verification base: a random square generates the squares w.h.p.
        self._v = pow(rng.randrange(2, self._N - 1), 2, self._N)
        self._vk = {j: pow(self._v, s, self._N)
                    for j, s in self._shares.items()}
        self._delta = factorial(n)

    # -- key access -----------------------------------------------------

    @property
    def public_key(self) -> tuple:
        """``(N, e, v)`` plus the verification keys, as the dealer outputs."""
        return (self._N, self._e, self._v, dict(self._vk))

    def private_share(self, j: int) -> int:
        if j not in self._shares:
            raise DealingError(f"no share dealt to server {j}")
        return self._shares[j]

    # -- hashing into Z_N -----------------------------------------------

    def _fdh(self, message: Any) -> int:
        """Full-domain hash of the canonical message encoding into Z_N*."""
        data = encode(message)
        bits = self._N.bit_length() + 64
        blocks = []
        counter = 0
        while len(blocks) * 32 * 8 < bits:
            blocks.append(hashlib.sha256(
                counter.to_bytes(4, "big") + data).digest())
            counter += 1
        x = _bytes_to_int(b"".join(blocks)) % self._N
        return x if x > 1 else 2

    # -- the five algorithms ---------------------------------------------

    def sign(self, message: Any, j: int) -> SignatureShare:
        s_j = self.private_share(j)
        N = self._N
        x = self._fdh(message)
        x_i = pow(x, 2 * self._delta * s_j, N)
        # Fiat-Shamir proof of dlog equality:
        #   log_v(v_j) == log_{x~}(x_i^2)  with  x~ = x^{4*delta}.
        x_tilde = pow(x, 4 * self._delta, N)
        bound = 1 << (N.bit_length() + 2 * _CHALLENGE_BITS)
        r = self._rng.randrange(bound)
        v_prime = pow(self._v, r, N)
        x_prime = pow(x_tilde, r, N)
        c = self._challenge(x_tilde, j, x_i, v_prime, x_prime)
        z = s_j * c + r
        return SignatureShare(
            signer=j,
            value=_int_to_bytes(x_i),
            proof=(_int_to_bytes(c), _int_to_bytes(z)),
        )

    def _challenge(self, x_tilde: int, j: int, x_i: int,
                   v_prime: int, x_prime: int) -> int:
        return _hash_to_int(
            _int_to_bytes(self._v),
            _int_to_bytes(x_tilde),
            _int_to_bytes(self._vk[j]),
            _int_to_bytes(pow(x_i, 2, self._N)),
            _int_to_bytes(v_prime),
            _int_to_bytes(x_prime),
        ) % (1 << _CHALLENGE_BITS)

    def verify_share(self, message: Any, share: SignatureShare) -> bool:
        if not 1 <= share.signer <= self.n or len(share.proof) != 2:
            return False
        N = self._N
        try:
            x_i = _bytes_to_int(share.value) % N
            c = _bytes_to_int(share.proof[0])
            z = _bytes_to_int(share.proof[1])
        except (TypeError, ValueError):
            return False
        if x_i <= 0:
            return False
        x = self._fdh(message)
        x_tilde = pow(x, 4 * self._delta, N)
        v_j = self._vk[share.signer]
        try:
            v_prime = pow(self._v, z, N) * mod_inverse(pow(v_j, c, N), N) % N
            x_prime = (pow(x_tilde, z, N) *
                       mod_inverse(pow(x_i, 2 * c, N), N) % N)
        except ValueError:
            return False  # non-invertible garbage: Byzantine share
        return c == self._challenge(x_tilde, share.signer, x_i,
                                    v_prime, x_prime)

    def combine(self, message: Any,
                shares: Iterable[SignatureShare]) -> ThresholdSignature:
        valid = self._check_quorum(message, shares)
        subset = [share.signer for share in valid[: self.t + 1]]
        N = self._N
        w = 1
        for share in valid[: self.t + 1]:
            coefficient = lagrange_coefficient(self._delta, subset,
                                               share.signer)
            x_i = _bytes_to_int(share.value) % N
            exponent = 2 * coefficient
            if exponent >= 0:
                w = w * pow(x_i, exponent, N) % N
            else:
                w = w * mod_inverse(pow(x_i, -exponent, N), N) % N
        # w^e == x^{e'} with e' = 4*delta^2; since gcd(e, e') == 1 we can
        # extract an e-th root of x from w and x.
        e_prime = 4 * self._delta * self._delta
        g, a, b = extended_gcd(e_prime, self._e)
        if g != 1:
            raise ConfigurationError("gcd(e', e) != 1; invalid parameters")
        x = self._fdh(message)
        y = 1
        y = y * (pow(w, a, N) if a >= 0
                 else mod_inverse(pow(w, -a, N), N)) % N
        y = y * (pow(x, b, N) if b >= 0
                 else mod_inverse(pow(x, -b, N), N)) % N
        signature = ThresholdSignature(value=_int_to_bytes(y))
        if not self.verify(message, signature):
            raise InvalidSignature("combined signature failed verification")
        return signature

    def verify(self, message: Any, signature: ThresholdSignature) -> bool:
        if not isinstance(signature, ThresholdSignature):
            return False
        try:
            y = _bytes_to_int(signature.value) % self._N
        except (TypeError, ValueError):
            return False
        return pow(y, self._e, self._N) == self._fdh(message)


# ---------------------------------------------------------------------------
# Ideal-functionality backend
# ---------------------------------------------------------------------------

class IdealThresholdScheme(ThresholdScheme):
    """Ideal threshold-signature functionality for fast simulations.

    Behaviourally indistinguishable from a secure scheme at the protocol
    level: a share is valid iff it was computed with ``P_j``'s dealt key
    share, and a signature verifies iff it came out of a :meth:`combine`
    call that was handed ``t + 1`` valid shares from distinct servers.
    The per-message signing keys live inside this object — the modeled
    adversary interacts with it only through the five API calls (and its
    own corrupted servers' shares), mirroring the computationally-bounded
    adversary of the paper.
    """

    #: Pad share MACs to a realistic share size?  Shares here are 32-byte
    #: MACs; the complexity model parameterizes share size separately.
    def __init__(self, n: int, t: int, seed: int = 0x5406):
        _validate_n_t(n, t)
        self.n = n
        self.t = t
        self._master = hashlib.sha256(
            b"ideal-threshold" + seed.to_bytes(8, "big")).digest()
        self._share_keys = {
            j: hashlib.sha256(self._master + j.to_bytes(4, "big")).digest()
            for j in range(1, n + 1)
        }

    def private_share(self, j: int) -> bytes:
        if j not in self._share_keys:
            raise DealingError(f"no share dealt to server {j}")
        return self._share_keys[j]

    def _mac(self, key: bytes, message: Any) -> bytes:
        return hashlib.sha256(key + encode(message)).digest()

    def sign(self, message: Any, j: int) -> SignatureShare:
        key = self.private_share(j)
        return SignatureShare(signer=j, value=self._mac(key, message),
                              proof=())

    def verify_share(self, message: Any, share: SignatureShare) -> bool:
        if not 1 <= share.signer <= self.n:
            return False
        expected = self._mac(self._share_keys[share.signer], message)
        return share.value == expected

    def combine(self, message: Any,
                shares: Iterable[SignatureShare]) -> ThresholdSignature:
        self._check_quorum(message, shares)
        return ThresholdSignature(
            value=self._mac(self._master + b"sig", message))

    def verify(self, message: Any, signature: ThresholdSignature) -> bool:
        if not isinstance(signature, ThresholdSignature):
            return False
        return signature.value == self._mac(self._master + b"sig", message)


def make_scheme(backend: str, n: int, t: int,
                rng: Optional[random.Random] = None,
                prime_bits: int = 256) -> ThresholdScheme:
    """Factory: build a threshold scheme by backend name.

    ``backend`` is ``"ideal"`` (default for simulations) or ``"shoup"``.
    """
    if backend == "ideal":
        seed = rng.getrandbits(62) if rng is not None else 0x5406
        return IdealThresholdScheme(n, t, seed=seed)
    if backend == "shoup":
        return ShoupThresholdScheme(
            n, t, modulus=precomputed_modulus(prime_bits), rng=rng)
    raise ConfigurationError(f"unknown threshold backend {backend!r}")
