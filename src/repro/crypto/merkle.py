"""Merkle hash trees with inclusion proofs.

The Disperse protocol's communication complexity has an ``O(n^3 |H|)`` term
when every message carries the full hash vector ``D``.  The paper notes this
"can be reduced to ``n^2 log n |H|`` by using hash trees instead of hash
vectors"; this module provides those hash trees.  A sender commits to the
blocks with a single root; each block travels with a ``log n``-size
inclusion proof instead of the whole vector.

Construction notes:

* Leaf and internal nodes use distinct domain-separation prefixes, so a
  proof for an internal node can never be passed off as a leaf (classical
  second-preimage attack on naive Merkle trees).
* Odd nodes at any level are promoted unchanged to the next level (no
  duplication), which avoids the CVE-2012-2459-style duplicate-leaf
  ambiguity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.common.errors import ReproError
from repro.common.lru import LruCache
from repro.common.serialization import register_wire_type
from repro.crypto.hashing import hash_bytes

_LEAF_PREFIX = b"\x00"
_NODE_PREFIX = b"\x01"

#: Built tree levels memoized by leaf-tuple content: every server of a
#: dispersal builds the tree over the same block vector, and each
#: ``proof`` call in the seed rebuilt it from scratch.  Levels are
#: immutable once built (the tree only reads them), so cached instances
#: share them.  Deterministic insertion-ordered LRU; unhashable leaves
#: (e.g. ``bytearray``) bypass the cache.
_LEVELS_CACHE = LruCache(capacity=128)


def _leaf_hash(data: bytes) -> bytes:
    return hash_bytes(_LEAF_PREFIX + data)


def _node_hash(left: bytes, right: bytes) -> bytes:
    return hash_bytes(_NODE_PREFIX + left + right)


@register_wire_type
@dataclass(frozen=True)
class MerkleProof:
    """Inclusion proof for one leaf of a Merkle tree.

    ``path`` lists sibling hashes from the leaf level up; ``directions[i]``
    is ``True`` when the proven node is the *right* child at level ``i``
    (i.e. the sibling is on the left).  Levels where the node was promoted
    without a sibling contribute no path entry.
    """

    index: int
    leaf_count: int
    path: tuple
    directions: tuple

    def __post_init__(self) -> None:
        if len(self.path) != len(self.directions):
            raise ReproError("malformed Merkle proof")


class MerkleTree:
    """A Merkle tree over a fixed sequence of byte-string leaves."""

    def __init__(self, leaves: Sequence[bytes]):
        if not leaves:
            raise ReproError("Merkle tree requires at least one leaf")
        self._leaf_count = len(leaves)
        key = tuple(leaves)
        try:
            cached = _LEVELS_CACHE.get(key)
        except TypeError:  # unhashable leaves: build without caching
            key, cached = None, None
        if cached is not None:
            self._levels: list[list[bytes]] = cached
            return
        # _levels[0] is the leaf-hash level; _levels[-1] is [root].
        self._levels = [[_leaf_hash(leaf) for leaf in leaves]]
        while len(self._levels[-1]) > 1:
            below = self._levels[-1]
            level = [
                _node_hash(below[i], below[i + 1])
                for i in range(0, len(below) - 1, 2)
            ]
            if len(below) % 2:
                level.append(below[-1])
            self._levels.append(level)
        if key is not None:
            _LEVELS_CACHE.put(key, self._levels)

    @property
    def root(self) -> bytes:
        """The tree root committing to all leaves."""
        return self._levels[-1][0]

    @property
    def leaf_count(self) -> int:
        return self._leaf_count

    def proof(self, index: int) -> MerkleProof:
        """Return the inclusion proof for the leaf at ``index`` (0-based)."""
        if not 0 <= index < self._leaf_count:
            raise IndexError(f"leaf index {index} out of range")
        path: list[bytes] = []
        directions: list[bool] = []
        position = index
        for level in self._levels[:-1]:
            sibling = position ^ 1
            if sibling < len(level):
                path.append(level[sibling])
                directions.append(bool(position & 1))
            position //= 2
        return MerkleProof(
            index=index,
            leaf_count=self._leaf_count,
            path=tuple(path),
            directions=tuple(directions),
        )


def verify_merkle_proof(root: bytes, leaf: bytes, proof: MerkleProof) -> bool:
    """Check that ``leaf`` is the ``proof.index``-th leaf under ``root``.

    Returns ``False`` (never raises) on any mismatch, so callers can treat
    failures as Byzantine input.
    """
    if not 0 <= proof.index < proof.leaf_count:
        return False
    # Recompute the per-level widths to know where promoted nodes occur.
    widths = [proof.leaf_count]
    while widths[-1] > 1:
        widths.append((widths[-1] + 1) // 2)
    node = _leaf_hash(leaf)
    position = proof.index
    cursor = 0
    for width in widths[:-1]:
        sibling = position ^ 1
        if sibling < width:
            if cursor >= len(proof.path):
                return False
            is_right = proof.directions[cursor]
            if is_right != bool(position & 1):
                return False
            sibling_hash = proof.path[cursor]
            if not isinstance(sibling_hash, bytes):
                return False
            cursor += 1
            if is_right:
                node = _node_hash(sibling_hash, node)
            else:
                node = _node_hash(node, sibling_hash)
        position //= 2
    return cursor == len(proof.path) and node == root


def merkle_root(leaves: Sequence[bytes]) -> bytes:
    """Convenience: the root of the Merkle tree over ``leaves``."""
    return MerkleTree(leaves).root
