"""Block commitments: hash vectors and their Merkle-tree optimization.

Protocol Disperse commits a writer to the encoded blocks ``[F_1..F_n]`` so
that every server and reader can validate an individual block.  The paper
presents the commitment as the *hash vector* ``D = [H(F_1)..H(F_n)]`` and
notes that hash trees reduce the ``n^3 |H|`` communication term to
``n^2 log n |H|``.  Both options implement the same interface here, so the
register protocols are agnostic and experiments can compare them.

A commitment must be a hashable, canonically-serializable value (it is used
to group quorum messages); a *witness* is per-block data a verifier needs
besides the block itself (empty for hash vectors, an inclusion proof for
Merkle trees).
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

from repro.common.errors import ConfigurationError
from repro.crypto.hashing import hash_bytes
from repro.crypto.merkle import MerkleProof, MerkleTree, verify_merkle_proof

Commitment = Any
Witness = Any


class CommitmentScheme:
    """Interface: commit to ``n`` blocks; verify one ``(index, block)``."""

    name = "abstract"

    def __init__(self, n: int):
        if n < 1:
            raise ConfigurationError("commitments need at least one block")
        self.n = n

    def commit(self, blocks: Sequence[bytes]) -> Tuple[Commitment, List[Witness]]:
        """Return ``(commitment, witnesses)`` with one witness per block."""
        raise NotImplementedError

    def verify(self, commitment: Commitment, index: int, block: bytes,
               witness: Witness) -> bool:
        """Check that ``block`` is the ``index``-th (1-based, as the paper
        indexes servers) committed block.  Never raises on bad input."""
        raise NotImplementedError


class VectorCommitment(CommitmentScheme):
    """The paper's hash vector ``D = [H(F_1), ..., H(F_n)]``.

    The commitment is the full tuple of digests; no per-block witness is
    needed.  Size grows linearly in ``n``.
    """

    name = "vector"

    def commit(self, blocks: Sequence[bytes]) -> Tuple[Commitment, List[Witness]]:
        if len(blocks) != self.n:
            raise ConfigurationError(
                f"expected {self.n} blocks, got {len(blocks)}")
        return tuple(hash_bytes(block) for block in blocks), [None] * self.n

    def verify(self, commitment: Commitment, index: int, block: bytes,
               witness: Witness) -> bool:
        if not isinstance(commitment, tuple) or len(commitment) != self.n:
            return False
        if not 1 <= index <= self.n or not isinstance(block, bytes):
            return False
        return commitment[index - 1] == hash_bytes(block)


class MerkleCommitment(CommitmentScheme):
    """Hash-tree commitment: a single root plus per-block inclusion proofs.

    This is the optimization the paper invokes for the improved
    ``O(n |F| + n^2 log n |H|)`` dispersal communication bound.
    """

    name = "merkle"

    def commit(self, blocks: Sequence[bytes]) -> Tuple[Commitment, List[Witness]]:
        if len(blocks) != self.n:
            raise ConfigurationError(
                f"expected {self.n} blocks, got {len(blocks)}")
        tree = MerkleTree(blocks)
        return tree.root, [tree.proof(i) for i in range(self.n)]

    def verify(self, commitment: Commitment, index: int, block: bytes,
               witness: Witness) -> bool:
        if not isinstance(commitment, bytes) or not isinstance(block, bytes):
            return False
        if not isinstance(witness, MerkleProof):
            return False
        if not 1 <= index <= self.n:
            return False
        if witness.index != index - 1 or witness.leaf_count != self.n:
            return False
        return verify_merkle_proof(commitment, block, witness)


def make_commitment_scheme(name: str, n: int) -> CommitmentScheme:
    """Factory: ``"vector"`` (paper's Figures 1-3) or ``"merkle"``."""
    if name == "vector":
        return VectorCommitment(n)
    if name == "merkle":
        return MerkleCommitment(n)
    raise ConfigurationError(f"unknown commitment scheme {name!r}")
