"""RSA key material for Shoup's threshold signature scheme.

Shoup's scheme [Shoup, "Practical Threshold Signatures", EUROCRYPT 2000 —
reference 26 of the paper] requires an RSA modulus ``N = p * q`` where both
``p`` and ``q`` are *safe* primes (``p = 2p' + 1`` with ``p'`` prime), so
that the subgroup of squares in ``Z_N*`` is cyclic of order ``m = p'q'``
and contains no small-order elements.

Safe-prime generation in pure Python is slow at production sizes, so this
module also ships deterministic precomputed safe-prime pairs for use in
tests and benchmarks (this is key material for a *simulation*; it is not
meant to protect real data).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.common.errors import ConfigurationError
from repro.crypto.numtheory import is_probable_prime, random_safe_prime

#: Deterministically generated safe-prime pairs ``(p, q)`` keyed by bit size.
#: Generated once with ``random_safe_prime`` from seeds 20060206/20060207
#: (the paper's date) and verified on import.
PRECOMPUTED_SAFE_PRIMES = {
    128: (0xD1C90F34E4738697A7E366588AA77143,
          0x8BD1D78849FAB3CEA50DF512FFB5833B),
    192: (0xB2F8B22238AE7B73597234EBF07D1AA164E1A594C0E68E9F,
          0x992C0A4A4BEFAD460C4513192B42855D9EDD87D0CB2C466B),
    256: (0xDB6B68C6CB900C07631406CF58380AA45FA79607605684620423A474DAACF95B,
          0xA4152009FDF4990F083160DC7423294EDB7854A350355FEFE5673D676D405C0B),
    512: (0xB46F2B874C1E07BA546038BEB05F5F851AB3F06C10190F0ABEC389949D7EC6859E3B2700472625785767F83B6A603212CB37E65D17A4859EEF6D99E1692B7D73,
          0xEE4D7A2ABE8C236B228952E2621176F5ECD02F6F6A4AEFAAF229DBCF087D7B173BA33F4268960E4E907234A3010B25AA1FA1AFD6F29EECFF07EF5CEA413D1953),
}


@dataclass(frozen=True)
class RsaModulus:
    """An RSA modulus with its (trusted-dealer-only) factorization.

    ``m = p' * q'`` is the order of the subgroup of squares; the dealer
    shares the signing exponent over ``Z_m`` and then discards ``p, q, m``.
    """

    n: int
    p: int
    q: int

    def __post_init__(self) -> None:
        if self.p * self.q != self.n:
            raise ConfigurationError("modulus does not match its factors")

    @property
    def p_prime(self) -> int:
        return (self.p - 1) // 2

    @property
    def q_prime(self) -> int:
        return (self.q - 1) // 2

    @property
    def m(self) -> int:
        """Order of the subgroup of squares of ``Z_N*``."""
        return self.p_prime * self.q_prime

    @property
    def bits(self) -> int:
        return self.n.bit_length()


def generate_modulus(bits: int, rng: random.Random) -> RsaModulus:
    """Generate a fresh safe-prime RSA modulus of roughly ``bits`` bits."""
    half = bits // 2
    p = random_safe_prime(half, rng)
    q = random_safe_prime(half, rng)
    while q == p:
        q = random_safe_prime(half, rng)
    return RsaModulus(n=p * q, p=p, q=q)


def precomputed_modulus(prime_bits: int = 256) -> RsaModulus:
    """Return a modulus built from precomputed safe primes.

    ``prime_bits`` selects the per-prime size; the modulus has about twice
    that many bits.  Available sizes: ``sorted(PRECOMPUTED_SAFE_PRIMES)``.
    """
    try:
        p, q = PRECOMPUTED_SAFE_PRIMES[prime_bits]
    except KeyError:
        sizes = sorted(PRECOMPUTED_SAFE_PRIMES)
        raise ConfigurationError(
            f"no precomputed safe primes of {prime_bits} bits; "
            f"available sizes: {sizes}") from None
    return RsaModulus(n=p * q, p=p, q=q)


def _verify_precomputed() -> None:
    for bits, (p, q) in PRECOMPUTED_SAFE_PRIMES.items():
        for prime in (p, q):
            if prime.bit_length() != bits:
                raise ConfigurationError(
                    f"precomputed prime has wrong size ({bits})")
            if not is_probable_prime(prime) or \
                    not is_probable_prime((prime - 1) // 2):
                raise ConfigurationError(
                    f"precomputed value of {bits} bits is not a safe prime")


_verify_precomputed()
