"""Collision-resistant hashing.

The paper models a collision-resistant hash function ``H : {0,1}* -> {0,1}^h``
and writes ``H`` for the bit size of its range (SHA-1 with ``H = 160`` in the
paper; we use SHA-256, so ``H = 256`` by default).  Protocols treat the hash
as an opaque function; the digest size is a parameter of the complexity
model (:mod:`repro.analysis.complexity`).
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Sequence

from repro.common.lru import LruCache, memoize_unary

#: Digest size in bytes of the library hash function.
DIGEST_SIZE = 32

#: Cross-checksums memoized by block-vector content: Disperse hashes the
#: same ``n``-block vector once per server, and readers re-derive it per
#: quorum.  Deterministic insertion-ordered LRU (see
#: :mod:`repro.common.lru`); unhashable inputs bypass the cache.
_VECTOR_CACHE = LruCache(capacity=256)

#: Digest size in bits (the paper's ``|H|``).
DIGEST_BITS = DIGEST_SIZE * 8


@memoize_unary(capacity=1024)
def hash_bytes(data: bytes) -> bytes:
    """Return the collision-resistant hash of ``data`` (SHA-256).

    Memoized by content: quorum protocols re-hash the same blocks at
    every verifying server (cross-checksum checks, commitment
    verifications), and ``bytes`` objects cache their own hash, so
    repeat lookups cost one dict probe.
    """
    return hashlib.sha256(data).digest()


def hash_many(parts: Iterable[bytes]) -> bytes:
    """Hash a sequence of byte strings with unambiguous framing.

    Each part is length-prefixed before hashing, so ``hash_many([a, b])``
    and ``hash_many([a + b])`` differ — concatenation cannot create
    collisions across part boundaries.
    """
    state = hashlib.sha256()
    for part in parts:
        state.update(len(part).to_bytes(8, "big"))
        state.update(part)
    return state.digest()


def hash_vector(blocks: Sequence[bytes]) -> list[bytes]:
    """Return the hash vector ``D = [H(F_1), ..., H(F_n)]`` of the blocks.

    This is the cross-checksum the Disperse protocol broadcasts so that
    readers can validate individual erasure-code blocks.

    Results are memoized by content; a fresh list is returned per call so
    callers may mutate it freely.
    """
    key = tuple(blocks)
    try:
        cached = _VECTOR_CACHE.get(key)
    except TypeError:  # mutable blocks (e.g. bytearray): compute directly
        return [hash_bytes(block) for block in blocks]
    if cached is None:
        cached = tuple(hash_bytes(block) for block in blocks)
        _VECTOR_CACHE.put(key, cached)
    return list(cached)


def hash_int(value: int) -> bytes:
    """Hash an integer via its canonical two's-complement encoding."""
    length = (value.bit_length() + 8) // 8
    return hash_bytes(value.to_bytes(length, "big", signed=True))
