"""Number-theoretic utilities for the threshold-RSA backend.

Pure-Python primality testing (Miller–Rabin with deterministic bases for
small inputs), prime and safe-prime generation from a seeded RNG, modular
inverses, and integer Lagrange coefficients.  Everything is deterministic
given the caller's :class:`random.Random` instance, which keeps protocol
runs and tests reproducible.
"""

from __future__ import annotations

import math
import random
from typing import Optional, Sequence

# Deterministic Miller-Rabin witness set: correct for all n < 3.317e24.
_DETERMINISTIC_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)
_DETERMINISTIC_LIMIT = 3_317_044_064_679_887_385_961_981

_SMALL_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139, 149,
    151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199, 211, 223, 227, 229,
)


def _miller_rabin(n: int, witness: int) -> bool:
    """Return ``False`` if ``witness`` proves ``n`` composite."""
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    x = pow(witness % n, d, n)
    if x in (0, 1, n - 1):
        return True
    for _ in range(r - 1):
        x = x * x % n
        if x == n - 1:
            return True
    return False


def is_probable_prime(n: int, rng: Optional[random.Random] = None,
                      rounds: int = 32) -> bool:
    """Miller–Rabin primality test.

    Deterministic (and exact) for ``n`` below ~3.3e24; otherwise uses
    ``rounds`` random witnesses from ``rng`` (error probability at most
    ``4**-rounds``).
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    if n < _DETERMINISTIC_LIMIT:
        witnesses: Sequence[int] = _DETERMINISTIC_WITNESSES
    else:
        rng = rng or random.Random(n)
        witnesses = [rng.randrange(2, n - 1) for _ in range(rounds)]
    return all(_miller_rabin(n, w) for w in witnesses)


def random_prime(bits: int, rng: random.Random) -> int:
    """Return a random prime with exactly ``bits`` bits."""
    if bits < 2:
        raise ValueError("primes need at least 2 bits")
    while True:
        candidate = rng.getrandbits(bits) | (1 << (bits - 1)) | 1
        if is_probable_prime(candidate, rng):
            return candidate


def random_safe_prime(bits: int, rng: random.Random) -> int:
    """Return a random safe prime ``p`` (``p`` and ``(p-1)/2`` both prime).

    Safe primes are sparse; this is the slow step of RSA threshold key
    generation.  Test fixtures use the precomputed pairs in
    :data:`repro.crypto.rsa.PRECOMPUTED_SAFE_PRIMES`.
    """
    while True:
        q = rng.getrandbits(bits - 1) | (1 << (bits - 2)) | 1
        if not is_probable_prime(q, rng):
            continue
        p = 2 * q + 1
        if is_probable_prime(p, rng):
            return p


def mod_inverse(a: int, modulus: int) -> int:
    """Return ``a**-1 mod modulus``; raises ``ValueError`` if not coprime."""
    g, x, _ = extended_gcd(a % modulus, modulus)
    if g != 1:
        raise ValueError(f"{a} is not invertible modulo {modulus}")
    return x % modulus


def extended_gcd(a: int, b: int) -> tuple:
    """Return ``(g, x, y)`` with ``a*x + b*y == g == gcd(a, b)``."""
    old_r, r = a, b
    old_x, x = 1, 0
    old_y, y = 0, 1
    while r:
        quotient = old_r // r
        old_r, r = r, old_r - quotient * r
        old_x, x = x, old_x - quotient * x
        old_y, y = y, old_y - quotient * y
    return old_r, old_x, old_y


def lagrange_coefficient(delta: int, subset: Sequence[int], i: int,
                         x: int = 0) -> int:
    """Integer Lagrange coefficient ``delta * prod (x - j) / (i - j)``.

    With ``delta = n!`` the quotient is guaranteed to be an integer for any
    subset of ``{1..n}`` (Shoup's trick for interpolating in the exponent
    without knowing the group order).
    """
    numerator = delta
    denominator = 1
    for j in subset:
        if j == i:
            continue
        numerator *= x - j
        denominator *= i - j
    quotient, remainder = divmod(numerator, denominator)
    if remainder:
        raise ValueError("Lagrange coefficient is not integral; "
                         "delta must be a multiple of n!")
    return quotient


def factorial(n: int) -> int:
    """``n!`` — the ``delta`` used throughout Shoup's scheme."""
    return math.factorial(n)
