"""Arithmetic in the finite field GF(2^8).

The ``(n, k)`` erasure code (paper, Section 2.3) is instantiated as a
Reed–Solomon code over GF(2^8) with the standard primitive polynomial
``x^8 + x^4 + x^3 + x^2 + 1`` (0x11d) and generator 2.  Field elements are
Python ints in ``[0, 255]``; bulk operations over data blocks use the
exported multiplication table with numpy.
"""

from __future__ import annotations

from typing import List, Sequence

#: Primitive polynomial for GF(2^8).
PRIMITIVE_POLY = 0x11D

#: Field order.
ORDER = 256


def _build_tables() -> tuple:
    exp = [0] * 512
    log = [0] * 256
    value = 1
    for power in range(255):
        exp[power] = value
        log[value] = power
        value <<= 1
        if value & 0x100:
            value ^= PRIMITIVE_POLY
    for power in range(255, 512):
        exp[power] = exp[power - 255]
    return exp, log


EXP_TABLE, LOG_TABLE = _build_tables()


def gf_add(a: int, b: int) -> int:
    """Addition in GF(2^8) (bitwise XOR; same as subtraction)."""
    return a ^ b


def gf_mul(a: int, b: int) -> int:
    """Multiplication in GF(2^8)."""
    if a == 0 or b == 0:
        return 0
    return EXP_TABLE[LOG_TABLE[a] + LOG_TABLE[b]]


def gf_div(a: int, b: int) -> int:
    """Division in GF(2^8); raises ``ZeroDivisionError`` on ``b == 0``."""
    if b == 0:
        raise ZeroDivisionError("division by zero in GF(2^8)")
    if a == 0:
        return 0
    return EXP_TABLE[LOG_TABLE[a] - LOG_TABLE[b] + 255]


def gf_inv(a: int) -> int:
    """Multiplicative inverse in GF(2^8)."""
    if a == 0:
        raise ZeroDivisionError("zero has no inverse in GF(2^8)")
    return EXP_TABLE[255 - LOG_TABLE[a]]


def gf_pow(a: int, exponent: int) -> int:
    """Exponentiation in GF(2^8) (negative exponents allowed for a != 0)."""
    if a == 0:
        if exponent < 0:
            raise ZeroDivisionError("zero has no inverse in GF(2^8)")
        return 1 if exponent == 0 else 0
    power = (LOG_TABLE[a] * exponent) % 255
    return EXP_TABLE[power]


# ---------------------------------------------------------------------------
# Matrices over GF(2^8), represented as lists of row lists.
# ---------------------------------------------------------------------------

Matrix = List[List[int]]


def matrix_multiply(a: Matrix, b: Matrix) -> Matrix:
    """Matrix product over GF(2^8)."""
    rows, inner, cols = len(a), len(b), len(b[0])
    if any(len(row) != inner for row in a):
        raise ValueError("matrix dimensions do not match")
    result = [[0] * cols for _ in range(rows)]
    for i in range(rows):
        row = a[i]
        out = result[i]
        for s in range(inner):
            coefficient = row[s]
            if coefficient == 0:
                continue
            b_row = b[s]
            for j in range(cols):
                out[j] ^= gf_mul(coefficient, b_row[j])
    return result


def identity_matrix(size: int) -> Matrix:
    """The ``size x size`` identity matrix."""
    return [[1 if i == j else 0 for j in range(size)] for i in range(size)]


def matrix_invert(matrix: Matrix) -> Matrix:
    """Invert a square matrix over GF(2^8) by Gauss–Jordan elimination.

    Raises ``ValueError`` if the matrix is singular.
    """
    size = len(matrix)
    if any(len(row) != size for row in matrix):
        raise ValueError("matrix is not square")
    work = [list(row) for row in matrix]
    inverse = identity_matrix(size)
    for col in range(size):
        pivot_row = next(
            (r for r in range(col, size) if work[r][col] != 0), None)
        if pivot_row is None:
            raise ValueError("matrix is singular over GF(2^8)")
        work[col], work[pivot_row] = work[pivot_row], work[col]
        inverse[col], inverse[pivot_row] = inverse[pivot_row], inverse[col]
        pivot_inv = gf_inv(work[col][col])
        work[col] = [gf_mul(pivot_inv, value) for value in work[col]]
        inverse[col] = [gf_mul(pivot_inv, value) for value in inverse[col]]
        for row in range(size):
            if row == col or work[row][col] == 0:
                continue
            factor = work[row][col]
            work[row] = [value ^ gf_mul(factor, pivot)
                         for value, pivot in zip(work[row], work[col])]
            inverse[row] = [value ^ gf_mul(factor, pivot)
                            for value, pivot in zip(inverse[row],
                                                    inverse[col])]
    return inverse


def vandermonde_matrix(rows: int, cols: int) -> Matrix:
    """The ``rows x cols`` Vandermonde matrix ``V[i][j] = i^j`` over GF(2^8).

    Any ``cols`` distinct rows are linearly independent as long as
    ``rows <= 255``, which is what makes every ``k``-subset of encoded
    blocks decodable.
    """
    if rows > ORDER - 1:
        raise ValueError("GF(2^8) Vandermonde supports at most 255 rows")
    return [[gf_pow(i, j) for j in range(cols)] for i in range(rows)]


def mul_row(coefficient: int, data: Sequence[int]) -> list:
    """Multiply every byte of ``data`` by ``coefficient`` (scalar path)."""
    if coefficient == 0:
        return [0] * len(data)
    log_c = LOG_TABLE[coefficient]
    exp = EXP_TABLE
    log = LOG_TABLE
    return [0 if b == 0 else exp[log_c + log[b]] for b in data]
