"""Systematic ``(n, k)`` Reed–Solomon over GF(2^16): clusters beyond 255.

Same construction as :class:`repro.erasure.reed_solomon.ReedSolomonCode`
(Vandermonde made systematic), but with 16-bit symbols, so ``n`` may
reach 65535.  Blocks are byte strings of even length; bulk arithmetic is
vectorized with numpy over ``uint16`` views when available (log/exp table
lookups), with a pure-Python fallback.

The hot-path structure mirrors the GF(2^8) class: decode subsets compile
into cached plans (deterministic insertion-ordered LRU), present data
rows pass through untouched, and only the missing rows are solved via an
``m x m`` inversion composed into one ``m x k`` matrix.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.errors import ConfigurationError, DecodingError
from repro.common.lru import LruCache
from repro.erasure import gf65536
from repro.erasure.gf65536 import (
    Matrix,
    matrix_invert,
    matrix_multiply,
    vandermonde_matrix,
)

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is a declared dependency
    _np = None

_NP_TABLES = None

_PLAN_CACHE_CAPACITY = 128


def _np_tables():
    """Numpy views of the exp/log tables (built on first bulk use)."""
    global _NP_TABLES
    if _NP_TABLES is None:
        exp, log = gf65536._tables()
        _NP_TABLES = (_np.array(exp, dtype=_np.uint32),
                      _np.array(log, dtype=_np.uint32))
    return _NP_TABLES


class _DecodePlan16:
    """Compiled decoder for one chosen index tuple (see the GF(2^8)
    twin's :class:`~repro.erasure.reed_solomon._DecodePlan`)."""

    __slots__ = ("chosen", "known", "missing", "matrix")

    def __init__(self, chosen: Tuple[int, ...], known: Tuple[int, ...],
                 missing: Tuple[int, ...],
                 matrix: Optional[Matrix]) -> None:
        self.chosen = chosen
        self.known = known
        self.missing = missing
        self.matrix = matrix


def _as_bytes(block) -> bytes:
    return block if type(block) is bytes else bytes(block)


class ReedSolomonCode16:
    """A systematic ``(n, k)`` Reed-Solomon code with 16-bit symbols.

    ``encode_blocks``/``decode_blocks`` mirror the GF(2^8) class; block
    byte lengths must be even (one symbol = two bytes).
    """

    def __init__(self, n: int, k: int, use_numpy: bool = True):
        if not 1 <= k <= n:
            raise ConfigurationError(f"require 1 <= k <= n, got n={n} k={k}")
        if n > gf65536.ORDER - 1:
            raise ConfigurationError(
                "GF(2^16) Reed-Solomon supports n <= 65535")
        self.n = n
        self.k = k
        self._use_numpy = bool(use_numpy and _np is not None)
        vandermonde = vandermonde_matrix(n, k)
        top_inverse = matrix_invert([row[:] for row in vandermonde[:k]])
        self._generator: Matrix = matrix_multiply(vandermonde, top_inverse)
        self._parity_rows: Matrix = [row[:] for row in self._generator[k:]]
        self._plan_cache = LruCache(_PLAN_CACHE_CAPACITY)

    @property
    def generator_matrix(self) -> Matrix:
        """The systematic ``n x k`` generator matrix (copy)."""
        return [row[:] for row in self._generator]

    def encode_blocks(self, data_blocks: Sequence[bytes]) -> List[bytes]:
        """Encode ``k`` equal even-length data blocks into ``n`` blocks."""
        if len(data_blocks) != self.k:
            raise ConfigurationError(
                f"encode_blocks expects {self.k} data blocks, "
                f"got {len(data_blocks)}")
        lengths = {len(block) for block in data_blocks}
        if len(lengths) != 1:
            raise ConfigurationError("data blocks must have equal length")
        if lengths.pop() % 2:
            raise ConfigurationError(
                "GF(2^16) blocks must have even byte length")
        data = [_as_bytes(block) for block in data_blocks]
        # Systematic fast path: only the parity rows need arithmetic.
        return data + self._matvec(self._parity_rows, data)

    def _choose_indices(self, blocks: Dict[int, bytes]) -> Tuple[int, ...]:
        """Validate and pick the ``k`` decode indices (lowest valid win);
        extras are discarded without sorting or length checks."""
        valid = [index for index in blocks if 0 <= index < self.n]
        if len(valid) < self.k:
            raise DecodingError(
                f"need {self.k} blocks to decode, got {len(valid)}")
        if len(valid) == self.k:
            chosen = sorted(valid)
        else:
            chosen = heapq.nsmallest(self.k, valid)
        lengths = {len(blocks[index]) for index in chosen}
        if len(lengths) != 1:
            raise DecodingError("blocks must have equal length")
        if lengths.pop() % 2:
            raise DecodingError("GF(2^16) blocks must have even length")
        return tuple(chosen)

    def _build_plan(self, chosen: Tuple[int, ...]) -> _DecodePlan16:
        """Compile the partial-systematic solve for one index subset."""
        k = self.k
        known = tuple(index for index in chosen if index < k)
        if len(known) == k:
            return _DecodePlan16(chosen, known, (), None)
        parity = [index for index in chosen if index >= k]
        present = set(known)
        missing = tuple(j for j in range(k) if j not in present)
        generator = self._generator
        b_matrix = [[generator[p][j] for j in missing] for p in parity]
        try:
            b_inverse = matrix_invert(b_matrix)
        except ValueError as exc:  # pragma: no cover - cannot happen for RS
            raise DecodingError(str(exc)) from exc
        # Composed m x k matrix over [known..., parity...] supplied blocks
        # (same algebra as the GF(2^8) twin).
        m = len(missing)
        matrix: Matrix = []
        for r in range(m):
            row = []
            for j in known:
                acc = 0
                for x in range(m):
                    acc ^= gf65536.gf_mul(b_inverse[r][x],
                                          generator[parity[x]][j])
                row.append(acc)
            row.extend(b_inverse[r])
            matrix.append(row)
        return _DecodePlan16(chosen, known, missing, matrix)

    def decode_blocks(self, blocks: Dict[int, bytes]) -> List[bytes]:
        """Recover the ``k`` data blocks from any ``k`` indexed blocks."""
        chosen = self._choose_indices(blocks)
        plan = self._plan_cache.get_or_compute(
            chosen, lambda: self._build_plan(chosen))
        if not plan.missing:
            return [_as_bytes(blocks[index]) for index in chosen]
        supplied = [_as_bytes(blocks[index]) for index in chosen]
        solved = self._matvec(plan.matrix, supplied)
        out: List[bytes] = [b""] * self.k
        for position, index in enumerate(plan.known):
            out[index] = supplied[position]
        for position, index in enumerate(plan.missing):
            out[index] = solved[position]
        return out

    def reconstruct_all(self, blocks: Dict[int, bytes]) -> List[bytes]:
        """Recover all ``n`` blocks from any ``k``; a complete set is
        returned as supplied (nothing to reconstruct)."""
        if len(blocks) >= self.n and all(
                index in blocks for index in range(self.n)):
            return [_as_bytes(blocks[index]) for index in range(self.n)]
        return self.encode_blocks(self.decode_blocks(blocks))

    # -- symbol-level arithmetic ----------------------------------------------

    def _matvec(self, matrix: Matrix,
                blocks: Sequence[bytes]) -> List[bytes]:
        if not matrix:
            return []
        if self._use_numpy:
            return self._matvec_numpy(matrix, blocks)
        return self._matvec_python(matrix, blocks)

    def _matvec_numpy(self, matrix: Matrix,
                      blocks: Sequence[bytes]) -> List[bytes]:
        exp, log = _np_tables()
        data = _np.frombuffer(b"".join(blocks), dtype=">u2")
        data = data.reshape(len(blocks), -1).astype(_np.uint32)
        log_data = log[data]
        nonzero = data != 0
        out: List[bytes] = []
        for row in matrix:
            accumulator = _np.zeros(data.shape[1], dtype=_np.uint32)
            for j, coefficient in enumerate(row):
                if coefficient == 0:
                    continue
                if coefficient == 1:
                    accumulator ^= data[j]
                    continue
                log_c = int(log[coefficient])
                accumulator ^= _np.where(
                    nonzero[j], exp[log_data[j] + log_c], 0)
            out.append(accumulator.astype(">u2").tobytes())
        return out

    def _matvec_python(self, matrix: Matrix,
                       blocks: Sequence[bytes]) -> List[bytes]:
        words = [
            [int.from_bytes(block[i:i + 2], "big")
             for i in range(0, len(block), 2)]
            for block in blocks
        ]
        out: List[bytes] = []
        for row in matrix:
            accumulator = [0] * len(words[0])
            for coefficient, symbols in zip(row, words):
                if coefficient == 0:
                    continue
                for position, symbol in enumerate(symbols):
                    accumulator[position] ^= gf65536.gf_mul(coefficient,
                                                            symbol)
            out.append(b"".join(symbol.to_bytes(2, "big")
                                for symbol in accumulator))
        return out
