"""Systematic ``(n, k)`` Reed–Solomon over GF(2^16): clusters beyond 255.

Same construction as :class:`repro.erasure.reed_solomon.ReedSolomonCode`
(Vandermonde made systematic), but with 16-bit symbols, so ``n`` may
reach 65535.  Blocks are byte strings of even length; bulk arithmetic is
vectorized with numpy over ``uint16`` views when available (log/exp table
lookups), with a pure-Python fallback.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.common.errors import ConfigurationError, DecodingError
from repro.erasure import gf65536
from repro.erasure.gf65536 import (
    Matrix,
    matrix_invert,
    matrix_multiply,
    vandermonde_matrix,
)

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is a declared dependency
    _np = None

_NP_TABLES = None


def _np_tables():
    """Numpy views of the exp/log tables (built on first bulk use)."""
    global _NP_TABLES
    if _NP_TABLES is None:
        exp, log = gf65536._tables()
        _NP_TABLES = (_np.array(exp, dtype=_np.uint32),
                      _np.array(log, dtype=_np.uint32))
    return _NP_TABLES


class ReedSolomonCode16:
    """A systematic ``(n, k)`` Reed-Solomon code with 16-bit symbols.

    ``encode_blocks``/``decode_blocks`` mirror the GF(2^8) class; block
    byte lengths must be even (one symbol = two bytes).
    """

    def __init__(self, n: int, k: int, use_numpy: bool = True):
        if not 1 <= k <= n:
            raise ConfigurationError(f"require 1 <= k <= n, got n={n} k={k}")
        if n > gf65536.ORDER - 1:
            raise ConfigurationError(
                "GF(2^16) Reed-Solomon supports n <= 65535")
        self.n = n
        self.k = k
        self._use_numpy = bool(use_numpy and _np is not None)
        vandermonde = vandermonde_matrix(n, k)
        top_inverse = matrix_invert([row[:] for row in vandermonde[:k]])
        self._generator: Matrix = matrix_multiply(vandermonde, top_inverse)

    @property
    def generator_matrix(self) -> Matrix:
        """The systematic ``n x k`` generator matrix (copy)."""
        return [row[:] for row in self._generator]

    def encode_blocks(self, data_blocks: Sequence[bytes]) -> List[bytes]:
        """Encode ``k`` equal even-length data blocks into ``n`` blocks."""
        if len(data_blocks) != self.k:
            raise ConfigurationError(
                f"encode_blocks expects {self.k} data blocks, "
                f"got {len(data_blocks)}")
        lengths = {len(block) for block in data_blocks}
        if len(lengths) != 1:
            raise ConfigurationError("data blocks must have equal length")
        if lengths.pop() % 2:
            raise ConfigurationError(
                "GF(2^16) blocks must have even byte length")
        return self._matvec(self._generator, data_blocks)

    def decode_blocks(self, blocks: Dict[int, bytes]) -> List[bytes]:
        """Recover the ``k`` data blocks from any ``k`` indexed blocks."""
        usable = sorted(index for index in blocks if 0 <= index < self.n)
        if len(usable) < self.k:
            raise DecodingError(
                f"need {self.k} blocks to decode, got {len(usable)}")
        chosen = usable[: self.k]
        lengths = {len(blocks[index]) for index in chosen}
        if len(lengths) != 1:
            raise DecodingError("blocks must have equal length")
        if lengths.pop() % 2:
            raise DecodingError("GF(2^16) blocks must have even length")
        if all(index < self.k for index in chosen):
            return [bytes(blocks[index]) for index in chosen]
        submatrix = [self._generator[index][:] for index in chosen]
        inverse = matrix_invert(submatrix)
        return self._matvec(inverse, [blocks[index] for index in chosen])

    # -- symbol-level arithmetic ----------------------------------------------

    def _matvec(self, matrix: Matrix,
                blocks: Sequence[bytes]) -> List[bytes]:
        if self._use_numpy:
            return self._matvec_numpy(matrix, blocks)
        return self._matvec_python(matrix, blocks)

    def _matvec_numpy(self, matrix: Matrix,
                      blocks: Sequence[bytes]) -> List[bytes]:
        exp, log = _np_tables()
        data = _np.frombuffer(b"".join(blocks), dtype=">u2")
        data = data.reshape(len(blocks), -1).astype(_np.uint32)
        log_data = log[data]
        nonzero = data != 0
        out: List[bytes] = []
        for row in matrix:
            accumulator = _np.zeros(data.shape[1], dtype=_np.uint32)
            for coefficient, block_log, block_nonzero in zip(
                    row, log_data, nonzero):
                if coefficient == 0:
                    continue
                log_c = int(log[coefficient])
                product = _np.where(
                    block_nonzero, exp[block_log + log_c], 0)
                accumulator ^= product
            out.append(accumulator.astype(">u2").tobytes())
        return out

    def _matvec_python(self, matrix: Matrix,
                       blocks: Sequence[bytes]) -> List[bytes]:
        words = [
            [int.from_bytes(block[i:i + 2], "big")
             for i in range(0, len(block), 2)]
            for block in blocks
        ]
        out: List[bytes] = []
        for row in matrix:
            accumulator = [0] * len(words[0])
            for coefficient, symbols in zip(row, words):
                if coefficient == 0:
                    continue
                for position, symbol in enumerate(symbols):
                    accumulator[position] ^= gf65536.gf_mul(coefficient,
                                                            symbol)
            out.append(b"".join(symbol.to_bytes(2, "big")
                                for symbol in accumulator))
        return out
