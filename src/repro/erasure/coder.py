"""Value-level erasure coding: framing, padding, encode, decode.

The protocols store arbitrary byte-string *values* ``F``.  This module
turns the block-level :class:`~repro.erasure.reed_solomon.ReedSolomonCode`
into the paper's value-level interface:

* ``encode(F)`` produces the vector ``[F_1, ..., F_n]`` where each block
  has ``ceil((|F| + header) / k)`` bytes — the ``|F_j| ~ |F| / k`` storage
  saving that motivates information dispersal;
* ``decode({(j, F_j)})`` reconstructs ``F`` from any ``k`` blocks.

Framing: the value is prefixed with its 8-byte big-endian length and
zero-padded to a multiple of ``k``, so decoding is unambiguous for every
value length including zero.

Both directions carry a small value-keyed memo (deterministic
insertion-ordered :class:`~repro.common.lru.LruCache`): protocols
re-encode the same value at every server and re-decode the same block
set at every reader quorum, so repeat calls with identical content are
dictionary hits.  Only successful results are memoized — validation
errors always re-raise.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.common.errors import ConfigurationError, DecodingError
from repro.common.lru import LruCache
from repro.erasure.reed_solomon import ReedSolomonCode
from repro.erasure.reed_solomon16 import ReedSolomonCode16

_LENGTH_HEADER = 8

#: Entries per coder for the value-level encode/decode memos.  Sized for
#: the working set of a simulation run (distinct values in flight), not
#: for bulk archival workloads.
_MEMO_CAPACITY = 64


class ErasureCoder:
    """An ``(n, k)`` erasure code over whole byte-string values.

    This is the object the register protocols hold; ``k <= n - t`` is the
    paper's constraint so that the blocks held by honest servers always
    suffice to reconstruct (Theorem 2 allows any ``1 <= k <= n - t``).

    ``field`` selects the symbol field: ``"gf256"`` (n <= 255),
    ``"gf65536"`` (n <= 65535), or ``"auto"`` (default — the smallest
    field that fits ``n``).
    """

    def __init__(self, n: int, k: int, field: str = "auto"):
        if field == "auto":
            field = "gf256" if n <= 255 else "gf65536"
        if field == "gf256":
            self._code = ReedSolomonCode(n, k)
            self._symbol_bytes = 1
        elif field == "gf65536":
            self._code = ReedSolomonCode16(n, k)
            self._symbol_bytes = 2
        else:
            raise ConfigurationError(f"unknown erasure field {field!r}")
        self.field = field
        self._encode_memo = LruCache(_MEMO_CAPACITY)
        self._decode_memo = LruCache(_MEMO_CAPACITY)

    @property
    def n(self) -> int:
        return self._code.n

    @property
    def k(self) -> int:
        return self._code.k

    def block_length(self, value_length: int) -> int:
        """Byte length of each block for a value of ``value_length`` bytes."""
        padded = value_length + _LENGTH_HEADER
        length = (padded + self.k - 1) // self.k
        # Round up to whole symbols (2 bytes in GF(2^16)).
        remainder = length % self._symbol_bytes
        if remainder:
            length += self._symbol_bytes - remainder
        return length

    def encode(self, value: bytes) -> List[bytes]:
        """Encode ``value`` into ``n`` blocks, any ``k`` of which decode."""
        if not isinstance(value, (bytes, bytearray, memoryview)):
            raise ConfigurationError("values must be byte strings")
        value = bytes(value)
        cached = self._encode_memo.get(value)
        if cached is not None:
            return list(cached)
        framed = len(value).to_bytes(_LENGTH_HEADER, "big") + value
        block_length = self.block_length(len(value))
        total = block_length * self.k
        if len(framed) < total:  # ljust always copies; pad only if needed
            framed = framed.ljust(total, b"\x00")
        data_blocks = [framed[i * block_length:(i + 1) * block_length]
                       for i in range(self.k)]
        blocks = self._code.encode_blocks(data_blocks)
        self._encode_memo.put(value, tuple(blocks))
        return blocks

    def decode(self, blocks: Iterable[Tuple[int, bytes]]) -> bytes:
        """Reconstruct the value from ``(index, block)`` pairs (1-based
        indices ``j`` as in the paper; any ``k`` distinct indices work).

        Raises :class:`DecodingError` on insufficient, duplicate-index, or
        malformed input.
        """
        by_index: Dict[int, bytes] = {}
        for index, block in blocks:
            if not 1 <= index <= self.n:
                raise DecodingError(f"block index {index} out of range")
            zero_based = index - 1
            data = block if type(block) is bytes else bytes(block)
            previous = by_index.get(zero_based)
            if previous is not None and previous != data:
                raise DecodingError(
                    f"conflicting blocks supplied for index {index}")
            by_index[zero_based] = data
        key = tuple(sorted(by_index.items()))
        cached = self._decode_memo.get(key)
        if cached is not None:
            return cached
        data_blocks = self._code.decode_blocks(by_index)
        framed = b"".join(data_blocks)
        length = int.from_bytes(framed[:_LENGTH_HEADER], "big")
        if length > len(framed) - _LENGTH_HEADER:
            raise DecodingError("corrupt framing: length exceeds payload")
        value = framed[_LENGTH_HEADER:_LENGTH_HEADER + length]
        self._decode_memo.put(key, value)
        return value

    def storage_blowup(self, value_length: int) -> float:
        """Measured storage blow-up ``n * |F_j| / |F|`` for this coder."""
        if value_length <= 0:
            raise ConfigurationError("value length must be positive")
        return self.n * self.block_length(value_length) / value_length
