"""Systematic ``(n, k)`` Reed–Solomon erasure code over GF(2^8).

This is the ``(n, k)``-erasure code ``C`` of Section 2.3: ``encode``
produces ``n`` blocks of ``|F| / k`` bytes each, and ``decode``
reconstructs the value from *any* ``k`` blocks with their indices.

Construction: take the ``n x k`` Vandermonde matrix and right-multiply by
the inverse of its top ``k x k`` square, yielding a systematic generator
matrix (identity on top) in which every ``k``-row subset is invertible.
Bulk block arithmetic is vectorized with numpy lookup tables; a pure-Python
path is kept for environments without numpy and as a cross-check in tests.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.common.errors import ConfigurationError, DecodingError
from repro.erasure import gf256
from repro.erasure.gf256 import (
    Matrix,
    matrix_invert,
    matrix_multiply,
    vandermonde_matrix,
)

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is a declared dependency
    _np = None

if _np is not None:
    # _MUL_TABLE[a, b] == gf_mul(a, b); rows are used as coefficient LUTs.
    _MUL_TABLE = _np.zeros((256, 256), dtype=_np.uint8)
    for _a in range(256):
        for _b in range(256):
            _MUL_TABLE[_a, _b] = gf256.gf_mul(_a, _b)


class ReedSolomonCode:
    """A systematic ``(n, k)`` Reed–Solomon code over bytes.

    ``encode`` maps ``k`` equal-length data blocks to ``n`` blocks whose
    first ``k`` entries are the data itself; ``decode`` recovers the data
    blocks from any ``k`` of the ``n``.

    Parameters
    ----------
    n:
        Total number of blocks (at most 255).
    k:
        Number of blocks sufficient for reconstruction (``1 <= k <= n``).
    use_numpy:
        Vectorize block arithmetic with numpy (default when available).
    """

    def __init__(self, n: int, k: int, use_numpy: bool = True):
        if not 1 <= k <= n:
            raise ConfigurationError(f"require 1 <= k <= n, got n={n} k={k}")
        if n > 255:
            raise ConfigurationError("GF(2^8) Reed-Solomon supports n <= 255")
        self.n = n
        self.k = k
        self._use_numpy = bool(use_numpy and _np is not None)
        vandermonde = vandermonde_matrix(n, k)
        top_inverse = matrix_invert([row[:] for row in vandermonde[:k]])
        self._generator: Matrix = matrix_multiply(vandermonde, top_inverse)

    @property
    def generator_matrix(self) -> Matrix:
        """The systematic ``n x k`` generator matrix (row ``j`` makes block
        ``j``; the top ``k`` rows are the identity)."""
        return [row[:] for row in self._generator]

    # -- encoding ---------------------------------------------------------

    def encode_blocks(self, data_blocks: Sequence[bytes]) -> List[bytes]:
        """Encode ``k`` equal-length data blocks into ``n`` blocks."""
        if len(data_blocks) != self.k:
            raise ConfigurationError(
                f"encode_blocks expects {self.k} data blocks, "
                f"got {len(data_blocks)}")
        lengths = {len(block) for block in data_blocks}
        if len(lengths) != 1:
            raise ConfigurationError("data blocks must have equal length")
        return self._matvec(self._generator, data_blocks)

    # -- decoding ---------------------------------------------------------

    def decode_blocks(self, blocks: Dict[int, bytes]) -> List[bytes]:
        """Recover the ``k`` data blocks from ``{index: block}`` pairs.

        ``blocks`` must contain at least ``k`` entries with distinct
        indices in ``[0, n)``; extras are ignored deterministically
        (lowest indices win).  Raises :class:`DecodingError` otherwise.
        """
        usable = sorted(index for index in blocks if 0 <= index < self.n)
        if len(usable) < self.k:
            raise DecodingError(
                f"need {self.k} blocks to decode, got {len(usable)}")
        chosen = usable[: self.k]
        lengths = {len(blocks[index]) for index in chosen}
        if len(lengths) != 1:
            raise DecodingError("blocks must have equal length")
        if all(index < self.k for index in chosen):
            # All-systematic fast path: the data blocks are present.
            return [bytes(blocks[index]) for index in chosen]
        submatrix = [self._generator[index][:] for index in chosen]
        try:
            inverse = matrix_invert(submatrix)
        except ValueError as exc:  # pragma: no cover - cannot happen for RS
            raise DecodingError(str(exc)) from exc
        return self._matvec(inverse, [blocks[index] for index in chosen])

    def reconstruct_all(self, blocks: Dict[int, bytes]) -> List[bytes]:
        """Recover all ``n`` blocks (data + parity) from any ``k``."""
        return self.encode_blocks(self.decode_blocks(blocks))

    # -- block arithmetic ---------------------------------------------------

    def _matvec(self, matrix: Matrix,
                blocks: Sequence[bytes]) -> List[bytes]:
        """Multiply ``matrix`` by the column vector of byte blocks."""
        if self._use_numpy:
            data = _np.frombuffer(b"".join(blocks), dtype=_np.uint8)
            data = data.reshape(len(blocks), -1)
            out = []
            for row in matrix:
                accumulator = _np.zeros(data.shape[1], dtype=_np.uint8)
                for coefficient, block_row in zip(row, data):
                    if coefficient:
                        accumulator ^= _MUL_TABLE[coefficient][block_row]
                out.append(accumulator.tobytes())
            return out
        length = len(blocks[0])
        out = []
        for row in matrix:
            accumulator = [0] * length
            for coefficient, block in zip(row, blocks):
                if coefficient == 0:
                    continue
                product = gf256.mul_row(coefficient, block)
                accumulator = [a ^ p for a, p in zip(accumulator, product)]
            out.append(bytes(accumulator))
        return out
