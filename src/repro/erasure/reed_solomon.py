"""Systematic ``(n, k)`` Reed–Solomon erasure code over GF(2^8).

This is the ``(n, k)``-erasure code ``C`` of Section 2.3: ``encode``
produces ``n`` blocks of ``|F| / k`` bytes each, and ``decode``
reconstructs the value from *any* ``k`` blocks with their indices.

Construction: take the ``n x k`` Vandermonde matrix and right-multiply by
the inverse of its top ``k x k`` square, yielding a systematic generator
matrix (identity on top) in which every ``k``-row subset is invertible.
Bulk block arithmetic is vectorized with numpy lookup tables; a pure-Python
path is kept for environments without numpy and as a cross-check in tests.

Hot-path design (the decode kernel dominates the F1/F2/F3 sweeps):

* **Decode plans.**  Decoding from a given index subset always performs
  the same linear algebra, and sweeps decode from the *same* few subsets
  thousands of times.  ``decode_blocks`` therefore compiles the chosen
  index tuple into a :class:`_DecodePlan` — which data rows are present,
  which are missing, and the solve matrix mapping the supplied blocks
  directly to the missing rows — and memoizes it in a deterministic,
  insertion-ordered :class:`~repro.common.lru.LruCache`.
* **Partial-systematic solve.**  Present data rows are returned as-is;
  only the ``m`` missing data rows are solved for, via an ``m x m``
  inversion (not ``k x k``) composed with the parity coefficients into a
  single ``m x k`` matrix, so the per-decode matvec work drops from
  ``k^2`` to ``m * k`` coefficient-block products.
* **Batched matvec.**  One call computes every output row: the blocks
  are joined into a single ``(k, L)`` uint8 view and each coefficient
  applies as one table gather (``np.take``), with 0/1 coefficients
  short-circuited to skips/XORs.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.errors import ConfigurationError, DecodingError
from repro.common.lru import LruCache
from repro.erasure import gf256
from repro.erasure.gf256 import (
    Matrix,
    matrix_invert,
    matrix_multiply,
    vandermonde_matrix,
)

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is a declared dependency
    _np = None

if _np is not None:
    # _MUL_TABLE[a, b] == gf_mul(a, b); rows are used as coefficient LUTs.
    _MUL_TABLE = _np.zeros((256, 256), dtype=_np.uint8)
    for _a in range(256):
        for _b in range(256):
            _MUL_TABLE[_a, _b] = gf256.gf_mul(_a, _b)

#: Decode plans cached per code instance: chosen k-subsets recur
#: constantly across sweeps, and 128 distinct subsets comfortably covers
#: every experiment in the repository.
_PLAN_CACHE_CAPACITY = 128


class _DecodePlan:
    """Compiled decoder for one chosen index tuple.

    ``known`` are the chosen systematic indices (data rows supplied
    directly); ``missing`` are the data rows to solve for; ``matrix`` is
    the composed ``m x k`` solve matrix applied to the supplied blocks
    (ordered by ascending chosen index, i.e. known rows then parity
    rows).  ``matrix`` is ``None`` for the all-systematic plan.
    """

    __slots__ = ("chosen", "known", "missing", "matrix", "matrix_np")

    def __init__(self, chosen: Tuple[int, ...], known: Tuple[int, ...],
                 missing: Tuple[int, ...], matrix: Optional[Matrix],
                 matrix_np) -> None:
        self.chosen = chosen
        self.known = known
        self.missing = missing
        self.matrix = matrix
        self.matrix_np = matrix_np


def _as_bytes(block) -> bytes:
    return block if type(block) is bytes else bytes(block)


class ReedSolomonCode:
    """A systematic ``(n, k)`` Reed–Solomon code over bytes.

    ``encode`` maps ``k`` equal-length data blocks to ``n`` blocks whose
    first ``k`` entries are the data itself; ``decode`` recovers the data
    blocks from any ``k`` of the ``n``.

    Parameters
    ----------
    n:
        Total number of blocks (at most 255).
    k:
        Number of blocks sufficient for reconstruction (``1 <= k <= n``).
    use_numpy:
        Vectorize block arithmetic with numpy (default when available).
    """

    def __init__(self, n: int, k: int, use_numpy: bool = True):
        if not 1 <= k <= n:
            raise ConfigurationError(f"require 1 <= k <= n, got n={n} k={k}")
        if n > 255:
            raise ConfigurationError("GF(2^8) Reed-Solomon supports n <= 255")
        self.n = n
        self.k = k
        self._use_numpy = bool(use_numpy and _np is not None)
        vandermonde = vandermonde_matrix(n, k)
        top_inverse = matrix_invert([row[:] for row in vandermonde[:k]])
        self._generator: Matrix = matrix_multiply(vandermonde, top_inverse)
        #: Parity rows only (rows ``k..n-1``): the systematic top rows
        #: are the identity, so encoding never multiplies by them.
        self._parity_rows: Matrix = [row[:] for row in self._generator[k:]]
        self._plan_cache = LruCache(_PLAN_CACHE_CAPACITY)

    @property
    def generator_matrix(self) -> Matrix:
        """The systematic ``n x k`` generator matrix (row ``j`` makes block
        ``j``; the top ``k`` rows are the identity)."""
        return [row[:] for row in self._generator]

    # -- encoding ---------------------------------------------------------

    def encode_blocks(self, data_blocks: Sequence[bytes]) -> List[bytes]:
        """Encode ``k`` equal-length data blocks into ``n`` blocks."""
        if len(data_blocks) != self.k:
            raise ConfigurationError(
                f"encode_blocks expects {self.k} data blocks, "
                f"got {len(data_blocks)}")
        lengths = {len(block) for block in data_blocks}
        if len(lengths) != 1:
            raise ConfigurationError("data blocks must have equal length")
        data = [_as_bytes(block) for block in data_blocks]
        # Systematic fast path: the first k output blocks *are* the data;
        # only the parity rows need arithmetic.
        return data + self._matvec(self._parity_rows, data)

    # -- decoding ---------------------------------------------------------

    def _choose_indices(self, blocks: Dict[int, bytes]) -> Tuple[int, ...]:
        """Validate and pick the ``k`` decode indices (lowest valid win).

        Extras beyond the chosen ``k`` are ignored without being sorted
        or length-checked — only the blocks actually decoded are
        validated.
        """
        valid = [index for index in blocks if 0 <= index < self.n]
        if len(valid) < self.k:
            raise DecodingError(
                f"need {self.k} blocks to decode, got {len(valid)}")
        if len(valid) == self.k:
            chosen = sorted(valid)
        else:
            chosen = heapq.nsmallest(self.k, valid)
        lengths = {len(blocks[index]) for index in chosen}
        if len(lengths) != 1:
            raise DecodingError("blocks must have equal length")
        return tuple(chosen)

    def _build_plan(self, chosen: Tuple[int, ...]) -> _DecodePlan:
        """Compile the solve for one index subset (see class docstring)."""
        k = self.k
        known = tuple(index for index in chosen if index < k)
        if len(known) == k:
            return _DecodePlan(chosen, known, (), None, None)
        parity = [index for index in chosen if index >= k]
        present = set(known)
        missing = tuple(j for j in range(k) if j not in present)
        generator = self._generator
        # Solve B x = rhs where B is the parity coefficients over the
        # missing columns; every k-row subset of the generator is
        # invertible, and with unit rows eliminated that reduces to B.
        b_matrix = [[generator[p][j] for j in missing] for p in parity]
        try:
            b_inverse = matrix_invert(b_matrix)
        except ValueError as exc:  # pragma: no cover - cannot happen for RS
            raise DecodingError(str(exc)) from exc
        # Compose into one m x k matrix over the supplied blocks
        # [known..., parity...]: rhs_p = block_p + sum_j G[p][j] block_j,
        # so missing = (Binv C) known + Binv parity.
        m = len(missing)
        matrix: Matrix = []
        for r in range(m):
            row = []
            for j in known:
                acc = 0
                for x in range(m):
                    acc ^= gf256.gf_mul(b_inverse[r][x],
                                        generator[parity[x]][j])
                row.append(acc)
            row.extend(b_inverse[r])
            matrix.append(row)
        matrix_np = _np.array(matrix, dtype=_np.uint8) \
            if self._use_numpy else None
        return _DecodePlan(chosen, known, missing, matrix, matrix_np)

    def decode_blocks(self, blocks: Dict[int, bytes]) -> List[bytes]:
        """Recover the ``k`` data blocks from ``{index: block}`` pairs.

        ``blocks`` must contain at least ``k`` entries with distinct
        indices in ``[0, n)``; extras are ignored deterministically
        (lowest indices win).  Raises :class:`DecodingError` otherwise.
        """
        chosen = self._choose_indices(blocks)
        plan = self._plan_cache.get_or_compute(
            chosen, lambda: self._build_plan(chosen))
        if not plan.missing:
            # All-systematic fast path: the data blocks are present.
            return [_as_bytes(blocks[index]) for index in chosen]
        supplied = [_as_bytes(blocks[index]) for index in chosen]
        solved = self._matvec(plan.matrix, supplied,
                              matrix_np=plan.matrix_np)
        out: List[bytes] = [b""] * self.k
        for position, index in enumerate(plan.known):
            out[index] = supplied[position]
        for position, index in enumerate(plan.missing):
            out[index] = solved[position]
        return out

    def reconstruct_all(self, blocks: Dict[int, bytes]) -> List[bytes]:
        """Recover all ``n`` blocks (data + parity) from any ``k``.

        When every one of the ``n`` blocks is supplied there is nothing
        to reconstruct: the blocks are returned as given (protocols
        validate block integrity against the cross-checksum before
        reconstructing, so a full set is a consistent codeword).
        """
        if len(blocks) >= self.n and all(
                index in blocks for index in range(self.n)):
            return [_as_bytes(blocks[index]) for index in range(self.n)]
        return self.encode_blocks(self.decode_blocks(blocks))

    # -- block arithmetic ---------------------------------------------------

    def _matvec(self, matrix: Matrix, blocks: Sequence[bytes],
                matrix_np=None) -> List[bytes]:
        """Multiply ``matrix`` by the column vector of byte blocks.

        All output rows are produced in one call over a single ``(k, L)``
        view of the blocks; each nonzero coefficient is one table gather
        (0 skips, 1 XORs the block directly).
        """
        if not matrix:
            return []
        if self._use_numpy:
            return self._matvec_numpy(matrix, blocks)
        length = len(blocks[0])
        out = []
        for row in matrix:
            accumulator = [0] * length
            for coefficient, block in zip(row, blocks):
                if coefficient == 0:
                    continue
                product = gf256.mul_row(coefficient, block)
                accumulator = [a ^ p for a, p in zip(accumulator, product)]
            out.append(bytes(accumulator))
        return out

    def _matvec_numpy(self, matrix: Matrix,
                      blocks: Sequence[bytes]) -> List[bytes]:
        data = _np.frombuffer(b"".join(blocks), dtype=_np.uint8)
        data = data.reshape(len(blocks), -1)
        out = []
        for row in matrix:
            accumulator = None
            for j, coefficient in enumerate(row):
                if coefficient == 0:
                    continue
                if coefficient == 1:
                    term = data[j]
                else:
                    term = _np.take(_MUL_TABLE[coefficient], data[j])
                if accumulator is None:
                    # First term: own a mutable buffer (a bare data[j]
                    # view must not be XORed into).
                    accumulator = term.copy() if coefficient == 1 else term
                else:
                    accumulator ^= term
            if accumulator is None:
                accumulator = _np.zeros(data.shape[1], dtype=_np.uint8)
            out.append(accumulator.tobytes())
        return out
