"""Information dispersal substrate: GF(2^8) Reed–Solomon erasure coding.

Implements the ``(n, k)``-erasure code of Section 2.3 of the paper: any
``k`` of the ``n`` encoded blocks reconstruct the value, and each block has
roughly ``|F| / k`` bytes.
"""

from repro.erasure.coder import ErasureCoder
from repro.erasure.reed_solomon import ReedSolomonCode

__all__ = ["ErasureCoder", "ReedSolomonCode"]
