"""Declarative taint registry: sources, sanitizers, and sinks.

The taint model mirrors the paper's safety argument: every value that
arrives from another party (erasure-coded blocks, timestamps,
cross-checksums, operation identifiers) is Byzantine-controlled until it
passes a verification step.  The registry names the three kinds of
program points the flow engine anchors on:

* **sources** — where Byzantine bytes enter: message-handler payload
  parameters (discovered from ``on(mtype, handler)`` registrations),
  ``where=`` predicate parameters, inbox queries, ``condition_quorum``
  results, and decode/unwrap helpers listed in :data:`SOURCE_CALLS`;
* **sanitizers** — verification calls that cleanse their arguments:
  commitment/Merkle/signature checks, structural validators, and
  ``isinstance``-style type guards (the latter are built into the
  engine, not listed here);
* **sinks** — where cleansed data is required: protocol state writes,
  erasure decoding, operation completion, re-broadcast to other
  parties, and dispatch into an inner process.

Registering a new sanitizer is one line in :data:`DEFAULT_SANITIZERS`
(see ``docs/LINTING.md``).  Entries are matched by the *terminal* name
of the call (``verify`` matches both ``scheme.verify`` and
``self.scheme.verify``), which keeps the registry resilient to how the
checker object is spelled at the call site.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, Tuple

#: Calls whose result is Byzantine-controlled regardless of arguments —
#: wire decoding and envelope unwrapping helpers.
SOURCE_CALLS: Tuple[str, ...] = (
    "from_wire",
    "unwrap",
    "decode_envelope",
)

#: Receive-site calls whose (yielded) results are collections of
#: messages with Byzantine payloads.  ``where=`` predicates that
#: validate payload fields (see the engine's validator analysis) mark
#: the admitted messages as sanitized.
CONDITION_CALLS: Tuple[str, ...] = ("condition_quorum", "condition_message")

#: Inbox query methods (must be called on an ``inbox`` receiver).
INBOX_QUERY_CALLS: Tuple[str, ...] = ("messages", "first_per_sender")


@dataclass(frozen=True)
class Sanitizer:
    """One verification call the engine trusts.

    ``cleanses`` lists the positional argument indices (0-based, after
    any implicit ``self`` of the *call site* is stripped — i.e. plain
    call-argument positions) whose values are considered verified once
    the call appears in a guard.  ``None`` cleanses every argument.
    ``receiver=True`` additionally cleanses the object the method is
    called on (``entry.well_formed()`` cleanses ``entry``).
    """

    name: str
    cleanses: Tuple[int, ...] = None  # type: ignore[assignment]
    receiver: bool = False


#: The verification vocabulary of this reproduction.  Commitment
#: schemes (``scheme.verify(commitment, index, block, witness)``),
#: threshold signatures (``scheme.verify(message, signature)`` /
#: ``verify_share``), Merkle proofs, the AtomicNS timestamp-signature
#: check, and the kv envelope's structural validator.
DEFAULT_SANITIZERS: Tuple[Sanitizer, ...] = (
    Sanitizer("verify"),
    Sanitizer("verify_share"),
    Sanitizer("verify_merkle_proof"),
    Sanitizer("check_cross_checksum"),
    Sanitizer("timestamp_signature_valid"),
    # AtomicMd's read-side block check: verifies the fetched message's
    # block against the quorum-agreed cross-checksum (cleanses the
    # message argument only — the commitment is already agreed).
    Sanitizer("block_valid", cleanses=(0,)),
    Sanitizer("well_formed", cleanses=(), receiver=True),
)

#: A call whose name matches this pattern *looks like* a verification
#: helper; if it guards tainted data but is neither registered above
#: nor resolvable to a validating function, the engine emits
#: ``taint-unknown-sanitizer`` (and optimistically cleanses) so the
#: registry gap is visible instead of producing downstream noise.
SANITIZERISH_RE = re.compile(
    r"(^|_)(verify|verif|validate|valid|check|well_formed)(_|$|[a-z])")

#: Send-style sinks: the index of the first *payload* argument.
#: Everything from that position on crosses the wire to other parties,
#: so forwarding unverified Byzantine data re-broadcasts it.
#: (Recipient/tag/mtype positions are routing metadata and exempt.)
SEND_SINKS: Dict[str, int] = {
    "send": 3,
    "send_to_servers": 2,
    "r_broadcast": 2,
    "disperse": 2,
}

#: Erasure-decode sinks: feeding unverified blocks to the decoder is
#: exactly the poisonous-write vector of the paper's Section 5.
DECODE_SINKS: Tuple[str, ...] = ("decode", "decode_blocks",
                                 "reconstruct_all")

#: Operation-completion sinks: values returned to the register's
#: clients must have passed the cross-checksum / commitment check.
COMPLETION_SINKS: Tuple[str, ...] = ("_finish_read", "_done", "_deliver",
                                     "_complete")

#: Dispatch sinks: injecting a reconstructed message into another
#: process's receive path.
DISPATCH_SINKS: Tuple[str, ...] = ("receive",)

#: Builtin-ish calls whose results are shape metadata, not payload
#: content — they never carry taint forward.
CLEAN_RESULT_CALLS: Tuple[str, ...] = (
    "len", "isinstance", "issubclass", "bool", "type", "callable",
    "hasattr", "range", "enumerate",
)


@dataclass(frozen=True)
class TaintRegistry:
    """The full source/sanitizer/sink configuration of one run."""

    sanitizers: Tuple[Sanitizer, ...] = DEFAULT_SANITIZERS
    source_calls: Tuple[str, ...] = SOURCE_CALLS

    def sanitizer(self, name: str) -> Sanitizer:
        """The registered sanitizer for terminal name ``name``, or
        ``None``."""
        for entry in self.sanitizers:
            if entry.name == name:
                return entry
        return None

    def is_sanitizer(self, name: str) -> bool:
        """Whether ``name`` is a registered sanitizer."""
        return self.sanitizer(name) is not None


DEFAULT_REGISTRY = TaintRegistry()
