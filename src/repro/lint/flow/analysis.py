"""The interprocedural taint-flow engine behind the ``taint`` pack.

Per module, the engine

1. builds a function index (module functions plus methods, keyed by
   terminal name) and discovers the *taint roots*: message handlers
   registered via ``on(mtype, handler)`` and ``where=`` predicates —
   their message parameter carries a Byzantine-controlled payload;
2. runs a statement-ordered abstract interpretation over every
   function: names are tracked through one of four taint states
   (``CLEAN``, ``CARRIER`` — a message whose ``.payload`` is tainted,
   ``CARRIER_LIST`` — a collection of carriers, ``TAINTED``), and
   propagate through assignments, tuple unpacking, containers,
   comprehensions, and returns;
3. cleanses names at verification guards: registered sanitizer calls,
   ``isinstance`` checks, equality pins against trusted values, and
   calls resolved (bounded depth) to *validating* helpers;
4. follows taint through direct intra-package calls using per-parameter
   function summaries — "does parameter ``i`` flow to a sink, and does
   it flow to the return value (per tuple slot)?" — bounded at
   :data:`MAX_SUMMARY_DEPTH` with a conservative fallback, so deep or
   recursive call chains degrade to "tainted" rather than silence.

Deliberate scope limits (documented in ``docs/LINTING.md``): mutations
through method calls (``state.buf.append(x)``) are not state-write
sinks, routing metadata (``message.sender`` / ``.tag`` / ``.mtype``)
is trusted channel information, and a sanitizer result stored in a
variable and tested later (``ok = verify(...); if ok:``) is not
recognized as a guard — verify inline or restructure.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro.lint.astutil import terminal_name
from repro.lint.engine import ModuleInfo, Project
from repro.lint.findings import Finding
from repro.lint.flow.registry import (
    CLEAN_RESULT_CALLS,
    COMPLETION_SINKS,
    CONDITION_CALLS,
    DECODE_SINKS,
    DISPATCH_SINKS,
    INBOX_QUERY_CALLS,
    SANITIZERISH_RE,
    SEND_SINKS,
    TaintRegistry,
)

RULE_UNVERIFIED_SINK = "taint-unverified-sink"
RULE_UNKNOWN_SANITIZER = "taint-unknown-sanitizer"
RULE_DEAD_SANITIZER = "taint-dead-sanitizer"

#: Taint states.  ``CARRIER`` is a message object: reading ``.payload``
#: off it yields ``TAINTED``; its other attributes (sender, tag, depth)
#: are channel metadata and stay clean.
CLEAN = 0
CARRIER = 1
CARRIER_LIST = 2
TAINTED = 3

#: Summary recursion bound: beyond this depth unresolved flows degrade
#: to the conservative "returns tainted, no sink attribution" summary.
MAX_SUMMARY_DEPTH = 3

_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


def _element_taint(taint: int) -> int:
    """Taint of one element drawn from a value of taint ``taint``."""
    if taint == CARRIER_LIST:
        return CARRIER
    if taint == TAINTED:
        return TAINTED
    return CLEAN


def _param_names(func: ast.AST) -> List[str]:
    args = func.args
    return [a.arg for a in args.posonlyargs + args.args]


@dataclass
class FuncSummary:
    """Effect of calling a function with one tainted parameter.

    ``returns`` is either a bool (scalar: the return value is tainted)
    or a tuple of bools (per tuple slot, when every value-returning
    ``return`` statement is a tuple literal of one common length).
    ``sinks`` lists ``(line, description)`` pairs for sinks the
    parameter reaches inside the callee without sanitization.
    """

    returns: Union[bool, Tuple[bool, ...]] = False
    sinks: List[Tuple[int, str]] = field(default_factory=list)

    def returns_any(self) -> bool:
        """Whether any return slot carries taint."""
        if isinstance(self.returns, tuple):
            return any(self.returns)
        return bool(self.returns)


CONSERVATIVE_SUMMARY = FuncSummary(returns=True, sinks=[])


class FlowContext:
    """Cross-module state shared by all per-function analyses."""

    def __init__(self, project: Project, registry: TaintRegistry,
                 in_scope=None):
        self.project = project
        self.registry = registry
        #: dotted-name predicate: modules outside the taint scope still
        #: propagate return taint through summaries, but sinks inside
        #: them are not reported (e.g. ``repro.common`` memo caches are
        #: not protocol state).
        self.in_scope = in_scope if in_scope is not None \
            else (lambda dotted: True)
        self._index: Dict[str, Dict[str, List[ast.AST]]] = {}
        self._handlers: Dict[str, Set[str]] = {}
        self._summaries: Dict[Tuple[int, int], FuncSummary] = {}
        self._in_flight: Set[Tuple[int, int]] = set()
        self._validators: Dict[int, bool] = {}

    # -- function indexing --------------------------------------------------

    def functions(self, module: ModuleInfo) -> Dict[str, List[ast.AST]]:
        """Module functions and methods keyed by (terminal) name.

        Nested defs are excluded — they are closures analyzed inline by
        their parent — so call resolution only ever lands on functions
        reachable by name from outside.
        """
        cached = self._index.get(module.dotted)
        if cached is None:
            cached = {}
            for node in module.tree.body:
                self._index_def(node, cached)
                if isinstance(node, ast.ClassDef):
                    for item in node.body:
                        self._index_def(item, cached)
            self._index[module.dotted] = cached
        return cached

    @staticmethod
    def _index_def(node: ast.AST, table: Dict[str, List[ast.AST]]) -> None:
        if isinstance(node, _FUNC_NODES):
            table.setdefault(node.name, []).append(node)

    def handler_names(self, module: ModuleInfo) -> Set[str]:
        """Functions registered as message handlers via ``on(mtype, f)``."""
        cached = self._handlers.get(module.dotted)
        if cached is None:
            cached = set()
            for node in ast.walk(module.tree):
                if (isinstance(node, ast.Call)
                        and terminal_name(node.func) == "on"
                        and len(node.args) == 2):
                    name = terminal_name(node.args[1])
                    if name is not None:
                        cached.add(name)
            self._handlers[module.dotted] = cached
        return cached

    def resolve(self, module: ModuleInfo,
                name: str) -> List[Tuple[ModuleInfo, ast.AST]]:
        """Resolve a called name to candidate defs: the module's own
        functions first, then explicit ``from X import name`` bindings
        into other scanned modules."""
        own = self.functions(module).get(name)
        if own:
            return [(module, node) for node in own]
        from repro.lint.astutil import module_imports

        out: List[Tuple[ModuleInfo, ast.AST]] = []
        for local, source, source_name in module_imports(module.tree):
            if local != name:
                continue
            other = self.project.by_dotted.get(source)
            if other is None:
                continue
            for node in self.functions(other).get(source_name, ()):
                out.append((other, node))
        return out

    # -- summaries ----------------------------------------------------------

    def summary(self, module: ModuleInfo, func: ast.AST,
                param_index: int) -> FuncSummary:
        """Effect of taint entering ``func`` at ``param_index``.

        Cycles and chains deeper than :data:`MAX_SUMMARY_DEPTH` return
        the conservative summary (taint propagates, no sink claims), so
        the engine over-approximates rather than misses flows — and
        never fabricates a sink finding it cannot attribute.
        """
        key = (id(func), param_index)
        cached = self._summaries.get(key)
        if cached is not None:
            return cached
        if key in self._in_flight or len(self._in_flight) >= \
                MAX_SUMMARY_DEPTH:
            return CONSERVATIVE_SUMMARY
        params = _param_names(func)
        if param_index >= len(params):
            return CONSERVATIVE_SUMMARY
        self._in_flight.add(key)
        try:
            seeds = {params[param_index]: TAINTED}
            analysis = FunctionAnalysis(self, module, func, seeds,
                                        summary_mode=True)
            analysis.run()
            sinks = analysis.sink_hits if self.in_scope(module.dotted) \
                else []
            summary = FuncSummary(returns=analysis.return_taint(),
                                  sinks=sinks)
        finally:
            self._in_flight.discard(key)
        self._summaries[key] = summary
        return summary

    # -- validator classification ------------------------------------------

    def is_validator(self, module: ModuleInfo, func: ast.AST,
                     depth: int = 0) -> bool:
        """Whether a predicate *validates* the values it admits.

        A validator contains, on data derived from its parameters, at
        least one of: an ``isinstance`` check, a registered sanitizer
        call, or an equality pin against a value the caller controls.
        Bare ``len(...)`` shape checks do not qualify — tuple arity
        says nothing about field contents.  Calls to other functions
        are followed (bounded) so helpers like ``_valid_ts_reply``
        classify through one level of indirection.
        """
        cached = self._validators.get(id(func))
        if cached is not None:
            return cached
        if depth > 2:
            return False
        self._validators[id(func)] = False  # cycle guard
        derived = self._param_derived_names(func)
        result = self._body_validates(module, func, derived, depth)
        self._validators[id(func)] = result
        return result

    @staticmethod
    def _param_derived_names(func: ast.AST) -> Set[str]:
        if isinstance(func, ast.Lambda):
            names = {a.arg for a in func.args.args}
        else:
            names = set(_param_names(func))
        body = func.body if isinstance(func.body, list) else [func.body]
        for node in body:
            for stmt in ast.walk(node):
                if isinstance(stmt, ast.Assign) and any(
                        isinstance(leaf, ast.Name) and leaf.id in names
                        for target in [stmt.value]
                        for leaf in ast.walk(target)):
                    for target in stmt.targets:
                        for leaf in ast.walk(target):
                            if isinstance(leaf, ast.Name):
                                names.add(leaf.id)
        return names

    def _body_validates(self, module: ModuleInfo, func: ast.AST,
                        derived: Set[str], depth: int) -> bool:
        def touches_param(node: ast.AST) -> bool:
            return any(isinstance(leaf, ast.Name) and leaf.id in derived
                       for leaf in ast.walk(node))

        body = func.body if isinstance(func.body, list) else [func.body]
        for node in body:
            for expr in ast.walk(node):
                if isinstance(expr, ast.Call):
                    name = terminal_name(expr.func)
                    if name == "isinstance" and expr.args and \
                            touches_param(expr.args[0]):
                        return True
                    if name is not None and name != "len" and \
                            self.registry.is_sanitizer(name) and \
                            touches_param(expr):
                        return True
                    if name is not None and touches_param(expr):
                        for other, resolved in self.resolve(module, name):
                            if self.is_validator(other, resolved,
                                                 depth + 1):
                                return True
                elif isinstance(expr, ast.Compare):
                    if any(isinstance(op, (ast.Eq, ast.NotEq))
                           for op in expr.ops):
                        sides = [expr.left] + list(expr.comparators)
                        for side in sides:
                            if touches_param(side) and not (
                                    isinstance(side, ast.Call)
                                    and terminal_name(side.func) == "len"):
                                return True
        return False


class FunctionAnalysis:
    """Statement-ordered taint interpretation of one function body."""

    def __init__(self, ctx: FlowContext, module: ModuleInfo,
                 func: ast.AST, seeds: Dict[str, int],
                 summary_mode: bool = False,
                 outer_env: Optional[Dict[str, int]] = None,
                 outer_roots: Optional[Set[str]] = None):
        self.ctx = ctx
        self.module = module
        self.func = func
        self.summary_mode = summary_mode
        self.env: Dict[str, int] = dict(outer_env or {})
        #: names aliasing protocol instance state (writes are sinks)
        self.state_roots: Set[str] = set(outer_roots or ()) | {"self"}
        params = _param_names(func) if not isinstance(func, ast.Lambda) \
            else [a.arg for a in func.args.args]
        for param in params:
            self.env[param] = seeds.get(param, CLEAN)
            if summary_mode:
                # In summary mode, parameters alias caller state: a
                # write into them is a state write at the call site.
                self.state_roots.add(param)
        self.findings: List[Finding] = []
        self.sink_hits: List[Tuple[int, str]] = []
        self._returns: List[Tuple[ast.expr, int]] = []
        self._predicate_names: Set[str] = set()
        #: per-tuple-slot taint for names bound to multi-value returns
        #: (``parsed = self._gossip(m)`` then ``a, b, c = parsed``), so
        #: slot precision survives one level of variable indirection.
        self.slots: Dict[str, Tuple[bool, ...]] = {}

    # -- entry points -------------------------------------------------------

    def run(self) -> None:
        """Interpret the function body, populating findings/sink hits."""
        body = self.func.body
        if isinstance(body, list):
            self._collect_predicate_names(body)
            self._process_body(body)
        else:  # Lambda
            self._eval(body)

    def return_taint(self) -> Union[bool, Tuple[bool, ...]]:
        """Aggregate return taint (per tuple slot when possible)."""
        slot_lists: List[List[bool]] = []
        scalar = False
        for expr, taint in self._returns:
            if isinstance(expr, ast.Tuple):
                slots = [self._eval_readonly(e) > CLEAN
                         for e in expr.elts]
                slot_lists.append(slots)
            elif expr is not None:
                scalar = scalar or taint > CLEAN
        if slot_lists and not scalar and len(
                {len(slots) for slots in slot_lists}) == 1:
            width = len(slot_lists[0])
            return tuple(any(slots[i] for slots in slot_lists)
                         for i in range(width))
        for slots in slot_lists:
            scalar = scalar or any(slots)
        return scalar

    def _finding(self, line: int, message: str,
                 rule: str = RULE_UNVERIFIED_SINK,
                 severity: str = "error") -> None:
        if self.summary_mode:
            if rule == RULE_UNVERIFIED_SINK:
                self.sink_hits.append((line, message))
            return
        self.findings.append(Finding(
            rule=rule, path=self.module.display_path, line=line,
            message=message, severity=severity))

    def _collect_predicate_names(self, body: Sequence[ast.stmt]) -> None:
        """Names of nested defs referenced as ``where=`` predicates —
        their message parameter is Byzantine-controlled."""
        for node in body:
            for expr in ast.walk(node):
                if isinstance(expr, ast.Call):
                    for kw in expr.keywords:
                        if kw.arg == "where" and isinstance(kw.value,
                                                           ast.Name):
                            self._predicate_names.add(kw.value.id)

    # -- statements ---------------------------------------------------------

    def _process_body(self, stmts: Sequence[ast.stmt]) -> None:
        for stmt in stmts:
            self._process_stmt(stmt)

    def _process_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            taint = self._eval(stmt.value)
            for target in stmt.targets:
                self._assign(target, taint, stmt.value, stmt.lineno)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                taint = self._eval(stmt.value)
                self._assign(stmt.target, taint, stmt.value, stmt.lineno)
        elif isinstance(stmt, ast.AugAssign):
            taint = self._eval(stmt.value)
            if isinstance(stmt.target, ast.Name):
                merged = max(taint,
                             self.env.get(stmt.target.id, CLEAN))
                self.env[stmt.target.id] = merged
            else:
                self._assign(stmt.target, taint, stmt.value, stmt.lineno)
        elif isinstance(stmt, ast.Expr):
            self._process_expr_stmt(stmt)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                taint = self._eval(stmt.value)
                self._returns.append((stmt.value, taint))
        elif isinstance(stmt, (ast.If, ast.While)):
            self._guard(stmt.test)
            self._process_body(stmt.body)
            self._process_body(stmt.orelse)
        elif isinstance(stmt, ast.Assert):
            self._guard(stmt.test)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            taint = self._eval(stmt.iter)
            self._assign(stmt.target, _element_taint(taint), None,
                         stmt.lineno)
            self._process_body(stmt.body)
            self._process_body(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                taint = self._eval(item.context_expr)
                if item.optional_vars is not None:
                    self._assign(item.optional_vars, taint,
                                 item.context_expr, stmt.lineno)
            self._process_body(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._process_body(stmt.body)
            for handler in stmt.handlers:
                self._process_body(handler.body)
            self._process_body(stmt.orelse)
            self._process_body(stmt.finalbody)
        elif isinstance(stmt, _FUNC_NODES):
            self._process_nested(stmt)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self._eval(stmt.exc)
        elif isinstance(stmt, (ast.Delete, ast.Global, ast.Nonlocal,
                               ast.Pass, ast.Break, ast.Continue,
                               ast.Import, ast.ImportFrom,
                               ast.ClassDef)):
            pass
        else:
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._eval(child)

    def _process_expr_stmt(self, stmt: ast.Expr) -> None:
        value = stmt.value
        if isinstance(value, ast.Call):
            name = terminal_name(value.func)
            sanitizer = (self.ctx.registry.sanitizer(name)
                         if name is not None else None)
            if sanitizer is not None:
                # The verification verdict is computed and discarded:
                # nothing downstream is actually protected by it.
                self._finding(
                    stmt.lineno,
                    f"result of sanitizer '{name}()' is discarded — the "
                    "verification gates nothing; use it in a guard or "
                    "remove the call",
                    rule=RULE_DEAD_SANITIZER, severity="warning")
                # Evaluate arguments for sink checks, but do NOT
                # cleanse: a dead check sanitizes nothing.
                for arg in value.args:
                    self._eval(arg)
                return
        self._eval(value)

    def _process_nested(self, func: ast.AST) -> None:
        """Closures run with the enclosing bindings; a nested def used
        as a ``where=`` predicate gets a Byzantine message parameter."""
        seeds: Dict[str, int] = {}
        if func.name in self._predicate_names or \
                func.name in self.ctx.handler_names(self.module):
            params = _param_names(func)
            message_param = params[1] if params[:1] == ["self"] \
                else (params[0] if params else None)
            if message_param is not None:
                seeds[message_param] = CARRIER
        nested = FunctionAnalysis(
            self.ctx, self.module, func, seeds,
            summary_mode=self.summary_mode,
            outer_env=self.env, outer_roots=self.state_roots)
        nested.run()
        self.findings.extend(nested.findings)
        self.sink_hits.extend(nested.sink_hits)
        # Yielded-check closures (``yield check``) feed their returns to
        # the enclosing thread; surface their taint through the def name.
        self.env[func.name] = CLEAN

    # -- assignment and state-write sinks -----------------------------------

    def _assign(self, target: ast.expr, taint, value: Optional[ast.expr],
                lineno: int) -> None:
        if isinstance(target, ast.Name):
            self.slots.pop(target.id, None)
            if isinstance(taint, tuple):  # per-slot summary result
                self.slots[target.id] = taint
                taint = TAINTED if any(taint) else CLEAN
            self.env[target.id] = taint
            if value is not None and self._is_state_rooted(value):
                self.state_roots.add(target.id)
            return
        if isinstance(target, ast.Starred):
            self._assign(target.value, taint, None, lineno)
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            elements = target.elts
            if isinstance(value, ast.Tuple) and \
                    len(value.elts) == len(elements):
                for element, sub in zip(elements, value.elts):
                    self._assign(element, self._eval_readonly(sub), sub,
                                 lineno)
                return
            if not isinstance(taint, tuple) and \
                    isinstance(value, ast.Name):
                stored = self.slots.get(value.id)
                if stored is not None and len(stored) == len(elements):
                    taint = stored
            if isinstance(taint, tuple) and len(taint) == len(elements):
                for element, slot in zip(elements, taint):
                    self._assign(element, TAINTED if slot else CLEAN,
                                 None, lineno)
                return
            if isinstance(taint, tuple):
                taint = TAINTED if any(taint) else CLEAN
            for element in elements:
                self._assign(element, _element_taint(taint) if
                             taint in (CARRIER_LIST,) else
                             (TAINTED if taint in (TAINTED, CARRIER)
                              else CLEAN), None, lineno)
            return
        # Attribute / Subscript target: a write into protocol state.
        if isinstance(taint, tuple):
            taint = TAINTED if any(taint) else CLEAN
        root = self._root_name(target)
        if root is not None and root in self.state_roots and \
                taint in (TAINTED, CARRIER):
            self._finding(
                lineno,
                "byzantine payload data is written into protocol state "
                f"('{ast.unparse(target)}') without sanitization — "
                "verify or type-check it first")

    @staticmethod
    def _root_name(node: ast.AST) -> Optional[str]:
        while isinstance(node, (ast.Attribute, ast.Subscript)):
            node = node.value
        if isinstance(node, ast.Name):
            return node.id
        return None

    def _is_state_rooted(self, node: ast.AST) -> bool:
        """Whether an expression aliases protocol instance state: an
        attribute chain or accessor call rooted at ``self`` (or at a
        name already known to be state)."""
        if isinstance(node, ast.Call):
            return self._is_state_rooted(node.func)
        root = self._root_name(node)
        return root is not None and root in self.state_roots

    # -- guards and cleansing ----------------------------------------------

    def _guard(self, test: ast.expr) -> None:
        if isinstance(test, ast.BoolOp):
            for value in test.values:
                self._guard(value)
            return
        if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            self._guard(test.operand)
            return
        if isinstance(test, ast.Call):
            self._guard_call(test)
            return
        if isinstance(test, ast.Compare):
            self._eval(test.left)
            for comparator in test.comparators:
                self._eval(comparator)
            if any(isinstance(op, (ast.Eq, ast.NotEq, ast.In))
                   for op in test.ops):
                # Equality pins a value against something the caller
                # controls (an oid, a round number): cleanse names.
                sides = [test.left] + list(test.comparators)
                tainted_sides = [s for s in sides if isinstance(s, ast.Name)
                                 and self.env.get(s.id, CLEAN) == TAINTED]
                clean_sides = [s for s in sides
                               if self._eval_readonly(s) == CLEAN]
                if tainted_sides and clean_sides:
                    for side in tainted_sides:
                        self.env[side.id] = CLEAN
            return
        self._eval(test)

    def _guard_call(self, call: ast.Call) -> None:
        name = terminal_name(call.func)
        arg_taints = [self._eval(arg) for arg in call.args]
        for kw in call.keywords:
            self._eval(kw.value)
        if name is None:
            return
        if name == "isinstance" and call.args:
            self._cleanse_expr(call.args[0])
            return
        sanitizer = self.ctx.registry.sanitizer(name)
        if sanitizer is not None:
            positions = sanitizer.cleanses
            for index, arg in enumerate(call.args):
                if positions is None or index in positions:
                    self._cleanse_expr(arg)
            if sanitizer.receiver and isinstance(call.func, ast.Attribute):
                self._cleanse_expr(call.func.value)
            return
        has_taint = any(t > CLEAN for t in arg_taints)
        if not has_taint:
            return
        resolved = self.ctx.resolve(self.module, name)
        if any(self.ctx.is_validator(mod, fn) for mod, fn in resolved):
            for arg in call.args:
                self._cleanse_expr(arg)
            return
        if not resolved and SANITIZERISH_RE.search(name):
            self._finding(
                call.lineno,
                f"'{name}()' guards byzantine data but is not a "
                "registered sanitizer — register it in "
                "repro.lint.flow.registry (with the argument positions "
                "it cleanses) or rename it",
                rule=RULE_UNKNOWN_SANITIZER, severity="warning")
            for arg in call.args:
                self._cleanse_expr(arg)

    def _cleanse_expr(self, node: ast.expr) -> None:
        if isinstance(node, ast.Name):
            self.env[node.id] = CLEAN

    # -- expressions --------------------------------------------------------

    def _eval_readonly(self, node: ast.expr) -> int:
        """Taint of an already-processed expression (no re-checking of
        sinks, so repeated evaluation cannot duplicate findings)."""
        return self._eval(node, check_sinks=False)

    def _eval(self, node: ast.expr, check_sinks: bool = True) -> int:
        if node is None:
            return CLEAN
        if isinstance(node, ast.Name):
            return self.env.get(node.id, CLEAN)
        if isinstance(node, ast.Attribute):
            base = self._eval(node.value, check_sinks)
            if base == CARRIER:
                return TAINTED if node.attr == "payload" else CLEAN
            if base == TAINTED:
                return TAINTED
            return CLEAN
        if isinstance(node, ast.Subscript):
            base = self._eval(node.value, check_sinks)
            self._eval(node.slice, check_sinks)
            return _element_taint(base) if base == CARRIER_LIST else \
                (TAINTED if base == TAINTED else CLEAN)
        if isinstance(node, ast.Call):
            return self._eval_call(node, check_sinks)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            taints = [self._eval(e, check_sinks) for e in node.elts]
            if any(t in (TAINTED, CARRIER, CARRIER_LIST)
                   for t in taints):
                if all(t in (CARRIER, CLEAN) for t in taints) and \
                        any(t == CARRIER for t in taints):
                    return CARRIER_LIST
                return TAINTED
            return CLEAN
        if isinstance(node, ast.Dict):
            taints = [self._eval(v, check_sinks)
                      for v in list(node.keys) + list(node.values)
                      if v is not None]
            return TAINTED if any(t > CLEAN for t in taints) else CLEAN
        if isinstance(node, ast.BinOp):
            left = self._eval(node.left, check_sinks)
            right = self._eval(node.right, check_sinks)
            return TAINTED if TAINTED in (left, right) else CLEAN
        if isinstance(node, ast.BoolOp):
            for value in node.values:
                self._eval(value, check_sinks)
            return CLEAN
        if isinstance(node, ast.Compare):
            self._eval(node.left, check_sinks)
            for comparator in node.comparators:
                self._eval(comparator, check_sinks)
            return CLEAN
        if isinstance(node, ast.UnaryOp):
            taint = self._eval(node.operand, check_sinks)
            return CLEAN if isinstance(node.op, ast.Not) else taint
        if isinstance(node, ast.IfExp):
            self._eval(node.test, check_sinks)
            return max(self._eval(node.body, check_sinks),
                       self._eval(node.orelse, check_sinks))
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                             ast.DictComp)):
            return self._eval_comprehension(node, check_sinks)
        if isinstance(node, (ast.Yield, ast.YieldFrom, ast.Await)):
            return self._eval_yield(node, check_sinks)
        if isinstance(node, ast.Starred):
            return self._eval(node.value, check_sinks)
        if isinstance(node, ast.FormattedValue):
            return self._eval(node.value, check_sinks)
        if isinstance(node, ast.JoinedStr):
            taints = [self._eval(v, check_sinks) for v in node.values]
            return TAINTED if any(t > CLEAN for t in taints) else CLEAN
        if isinstance(node, ast.Lambda):
            return CLEAN
        if isinstance(node, ast.NamedExpr):
            taint = self._eval(node.value, check_sinks)
            self._assign(node.target, taint, node.value, node.lineno)
            return taint
        if isinstance(node, ast.Slice):
            for part in (node.lower, node.upper, node.step):
                if part is not None:
                    self._eval(part, check_sinks)
            return CLEAN
        return CLEAN

    def _eval_comprehension(self, node: ast.expr,
                            check_sinks: bool) -> int:
        saved = dict(self.env)
        try:
            for generator in node.generators:
                iter_taint = self._eval(generator.iter, check_sinks)
                self._assign(generator.target, _element_taint(iter_taint),
                             None, node.lineno)
                for condition in generator.ifs:
                    self._guard(condition)
            if isinstance(node, ast.DictComp):
                taint = max(self._eval(node.key, check_sinks),
                            self._eval(node.value, check_sinks))
            else:
                taint = self._eval(node.elt, check_sinks)
            if taint == CARRIER:
                return CARRIER_LIST
            return TAINTED if taint > CLEAN else CLEAN
        finally:
            self.env = saved

    def _eval_yield(self, node: ast.expr, check_sinks: bool) -> int:
        """``yield <condition>`` hands control to the scheduler and
        resumes with the condition's result: a collection of messages
        from other parties, sanitized only when the ``where=``
        predicate validates payloads.  Yields of locally-built check
        closures resume with whatever the closure returned — those
        closures are analyzed inline, so their own sinks are covered,
        and their results are treated as clean here."""
        inner = getattr(node, "value", None)
        if inner is None:
            return CLEAN
        if isinstance(inner, ast.Call):
            name = terminal_name(inner.func)
            if name in CONDITION_CALLS:
                self._eval_call(inner, check_sinks)
                return CLEAN if self._where_validates(inner) \
                    else CARRIER_LIST
        return self._eval(inner, check_sinks)

    def _where_validates(self, call: ast.Call) -> bool:
        for kw in call.keywords:
            if kw.arg != "where":
                continue
            predicate = kw.value
            if isinstance(predicate, ast.Lambda):
                return self.ctx.is_validator(self.module, predicate)
            name = terminal_name(predicate)
            if name is None:
                return False
            local = self._local_def(name)
            if local is not None:
                return self.ctx.is_validator(self.module, local)
            resolved = self.ctx.resolve(self.module, name)
            return any(self.ctx.is_validator(mod, fn)
                       for mod, fn in resolved)
        return False

    def _local_def(self, name: str) -> Optional[ast.AST]:
        for stmt in ast.walk(self.func):
            if isinstance(stmt, _FUNC_NODES) and stmt.name == name:
                return stmt
        return None

    # -- calls and call-site sinks ------------------------------------------

    def _eval_call(self, call: ast.Call, check_sinks: bool = True) -> int:
        name = terminal_name(call.func)
        receiver_taint = CLEAN
        if isinstance(call.func, ast.Attribute):
            receiver_taint = self._eval(call.func.value, check_sinks)
        arg_taints = [self._eval(arg, check_sinks) for arg in call.args]
        kw_taints = {kw.arg: self._eval(kw.value, check_sinks)
                     for kw in call.keywords}

        if check_sinks and name is not None:
            self._check_sinks(call, name, arg_taints, kw_taints)

        if name is None:
            return TAINTED if any(t > CLEAN for t in arg_taints) else CLEAN
        if name in CLEAN_RESULT_CALLS:
            return CLEAN
        if name in self.ctx.registry.source_calls:
            return TAINTED
        if self.ctx.registry.is_sanitizer(name):
            return CLEAN  # a boolean verdict
        if name in INBOX_QUERY_CALLS and \
                isinstance(call.func, ast.Attribute) and \
                terminal_name(call.func.value) == "inbox":
            return CLEAN if self._where_validates(call) else CARRIER_LIST
        if name in CONDITION_CALLS:
            return CLEAN  # the condition object; taint appears at yield

        any_taint = any(t > CLEAN for t in arg_taints) or \
            any(t > CLEAN for t in kw_taints.values())

        resolved = self.ctx.resolve(self.module, name)
        if resolved and (any_taint or receiver_taint == CLEAN):
            return self._apply_summaries(call, name, resolved, arg_taints,
                                         kw_taints, check_sinks)

        if receiver_taint == TAINTED:
            return TAINTED
        if receiver_taint == CARRIER_LIST:
            return CARRIER_LIST
        return TAINTED if any_taint else CLEAN

    def _apply_summaries(self, call: ast.Call, name: str,
                         resolved, arg_taints, kw_taints,
                         check_sinks: bool) -> Union[int, tuple]:
        """Follow taint through a resolved intra-package call."""
        returns: Union[bool, Tuple[bool, ...]] = False
        for target_module, func in resolved:
            params = _param_names(func)
            offset = 1 if params[:1] == ["self"] and \
                isinstance(call.func, ast.Attribute) else 0
            tainted_params: List[int] = []
            for index, taint in enumerate(arg_taints):
                if taint > CLEAN:
                    tainted_params.append(index + offset)
            for kw_name, taint in kw_taints.items():
                if taint > CLEAN and kw_name in params:
                    tainted_params.append(params.index(kw_name))
            for param_index in tainted_params:
                summary = self.ctx.summary(target_module, func,
                                           param_index)
                if check_sinks:
                    for sink_line, description in summary.sinks:
                        self._finding(
                            call.lineno,
                            f"byzantine data flows into '{name}()' "
                            f"({target_module.dotted}:{sink_line}), "
                            f"where it reaches a sink unsanitized: "
                            f"{description}")
                returns = self._merge_returns(returns, summary.returns)
        if isinstance(returns, tuple):
            return returns
        return TAINTED if returns else CLEAN

    @staticmethod
    def _merge_returns(left, right):
        if isinstance(left, tuple) and isinstance(right, tuple) and \
                len(left) == len(right):
            return tuple(a or b for a, b in zip(left, right))
        if left is False:
            return right
        if right is False:
            return left
        if isinstance(left, tuple):
            left = any(left)
        if isinstance(right, tuple):
            right = any(right)
        return left or right

    def _check_sinks(self, call: ast.Call, name: str,
                     arg_taints: List[int],
                     kw_taints: Dict[str, int]) -> None:
        payload_start = SEND_SINKS.get(name)
        if payload_start is not None and len(call.args) > payload_start:
            for index in range(payload_start, len(call.args)):
                if arg_taints[index] > CLEAN:
                    self._finding(
                        call.args[index].lineno,
                        "byzantine payload data is re-sent to other "
                        f"parties via '{name}()' without sanitization "
                        f"(argument {index})")
                    return
        if name in DECODE_SINKS:
            if any(t > CLEAN for t in arg_taints) or \
                    any(t > CLEAN for t in kw_taints.values()):
                self._finding(
                    call.lineno,
                    "unverified blocks reach the erasure decoder via "
                    f"'{name}()' — check them against the commitment "
                    "(cross-checksum / Merkle proof) first")
            return
        if name in COMPLETION_SINKS or name in DISPATCH_SINKS:
            if any(t > CLEAN for t in arg_taints) or \
                    any(t > CLEAN for t in kw_taints.values()):
                kind = ("completes a client operation"
                        if name in COMPLETION_SINKS
                        else "is dispatched into a process")
                self._finding(
                    call.lineno,
                    f"byzantine payload data {kind} via '{name}()' "
                    "without sanitization")


def analyze_module(ctx: FlowContext,
                   module: ModuleInfo) -> Iterable[Finding]:
    """Entry analysis of every function in ``module``.

    Handlers (and ``where=`` predicates) get a Byzantine message
    parameter; everything else starts clean and only picks up taint
    from inbox queries, condition yields, and registered source calls.
    """
    handler_names = ctx.handler_names(module)
    predicate_names: Set[str] = set()
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Call):
            for kw in node.keywords:
                if kw.arg == "where" and isinstance(kw.value, ast.Name):
                    predicate_names.add(kw.value.id)

    findings: List[Finding] = []
    seen: Set[Tuple[str, int, str]] = set()

    def entry_functions():
        for node in module.tree.body:
            if isinstance(node, _FUNC_NODES):
                yield node
            elif isinstance(node, ast.ClassDef):
                for item in node.body:
                    if isinstance(item, _FUNC_NODES):
                        yield item

    for func in entry_functions():
        seeds: Dict[str, int] = {}
        if func.name in handler_names or func.name in predicate_names:
            params = _param_names(func)
            message_param = params[1] if params[:1] == ["self"] \
                else (params[0] if params else None)
            if message_param is not None:
                seeds[message_param] = CARRIER
        analysis = FunctionAnalysis(ctx, module, func, seeds)
        analysis.run()
        for finding in analysis.findings:
            key = (finding.rule, finding.line, finding.message)
            if key not in seen:
                seen.add(key)
                findings.append(finding)
    return findings
