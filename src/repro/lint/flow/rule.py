"""The ``taint`` rule pack: Byzantine payload flow tracking.

Wraps the flow engine (:mod:`repro.lint.flow.analysis`) as an ordinary
:class:`repro.lint.engine.Rule`, so findings go through the standard
waiver/report pipeline and the pack participates in ``--rules``
filtering and ``--list-rules`` like every other pack.
"""

from __future__ import annotations

from typing import Iterable, Tuple

from repro.lint.config import LintConfig
from repro.lint.engine import Project
from repro.lint.findings import Finding
from repro.lint.flow.analysis import (
    RULE_DEAD_SANITIZER,
    RULE_UNKNOWN_SANITIZER,
    RULE_UNVERIFIED_SINK,
    FlowContext,
    analyze_module,
)
from repro.lint.flow.registry import DEFAULT_REGISTRY, TaintRegistry


class TaintFlowRule:
    """Interprocedural taint tracking from Byzantine inputs to sinks."""

    pack = "taint"
    rule_ids: Tuple[str, ...] = (
        RULE_UNVERIFIED_SINK,
        RULE_UNKNOWN_SANITIZER,
        RULE_DEAD_SANITIZER,
    )

    def __init__(self, registry: TaintRegistry = DEFAULT_REGISTRY):
        self.registry = registry

    def run(self, project: Project,
            config: LintConfig) -> Iterable[Finding]:
        """Analyze every in-scope module and yield taint findings."""
        ctx = FlowContext(project, self.registry,
                          in_scope=lambda dotted:
                          config.in_scope(self.pack, dotted))
        for module in project.scoped(self.pack, config):
            yield from analyze_module(ctx, module)
