"""Interprocedural taint-flow analysis for Byzantine inputs.

See :mod:`repro.lint.flow.registry` for the source/sanitizer/sink
model and :mod:`repro.lint.flow.analysis` for the engine itself.
"""

from repro.lint.flow.registry import (
    DEFAULT_REGISTRY,
    DEFAULT_SANITIZERS,
    Sanitizer,
    TaintRegistry,
)
from repro.lint.flow.rule import TaintFlowRule

__all__ = [
    "DEFAULT_REGISTRY",
    "DEFAULT_SANITIZERS",
    "Sanitizer",
    "TaintRegistry",
    "TaintFlowRule",
]
