"""Command-line front end for :mod:`repro.lint`.

Invoked as ``python -m repro.lint``, via the ``repro-lint`` console
script, or through ``repro lint`` (see :mod:`repro.cli`).  Exit code 0
means zero unwaived findings.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.lint.engine import RULE_WAIVER_DEAD, run_lint
from repro.lint.findings import LintReport
from repro.lint.rules import all_rules


def default_target() -> Path:
    """The installed ``repro`` package — what ``repro-lint`` with no
    arguments scans."""
    import repro

    return Path(repro.__file__).resolve().parent


def build_parser(prog: str = "repro-lint") -> argparse.ArgumentParser:
    """Standalone argument parser for the ``repro-lint`` script."""
    parser = argparse.ArgumentParser(
        prog=prog,
        description=("Protocol-aware static analysis: determinism, "
                     "quorum arithmetic, wire-registry and handler "
                     "completeness, and Byzantine taint flow."))
    add_lint_arguments(parser)
    return parser


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach lint options to ``parser`` (shared with ``repro lint``)."""
    parser.add_argument(
        "paths", nargs="*", type=Path,
        help="files or package roots to scan (default: the installed "
             "repro package)")
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)")
    parser.add_argument(
        "--rules", default=None,
        help="comma-separated rule packs or rule ids to run "
             "(default: all)")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list available rule packs and rule ids, then exit")
    parser.add_argument(
        "--show-waived", action="store_true",
        help="include waived findings in the text report")
    parser.add_argument(
        "--sarif", type=Path, default=None, metavar="FILE",
        help="additionally write the report as SARIF 2.1.0 to FILE")
    parser.add_argument(
        "--baseline", type=Path, default=None, metavar="FILE",
        help="gate against a baseline snapshot: exit nonzero only for "
             "findings not recorded in FILE")
    parser.add_argument(
        "--write-baseline", type=Path, default=None, metavar="FILE",
        help="write the current active findings as a baseline "
             "snapshot to FILE and exit 0")
    parser.add_argument(
        "--cache", type=Path, default=None, metavar="DIR",
        help="incremental cache directory: replay the previous report "
             "when no scanned file changed")


def list_rules() -> str:
    """Human-readable listing of rule packs and their rule ids."""
    lines: List[str] = []
    for rule in all_rules():
        lines.append(f"{rule.pack}: {', '.join(rule.rule_ids)}")
    lines.append(f"engine: {RULE_WAIVER_DEAD}")
    return "\n".join(lines)


def render_text(report: LintReport, show_waived: bool = False) -> str:
    """Text report: one line per finding plus a summary line."""
    lines: List[str] = []
    for finding in report.findings:
        if finding.waived and not show_waived:
            continue
        lines.append(finding.render())
    lines.append(
        f"{len(report.active)} finding(s), {len(report.waived)} waived, "
        f"{report.modules_checked} module(s) checked")
    return "\n".join(lines)


def run_from_args(args: argparse.Namespace) -> int:
    """Execute a lint run from parsed arguments; returns exit code."""
    if args.list_rules:
        print(list_rules())
        return 0
    paths: Sequence[Path] = args.paths or [default_target()]
    only = None
    if args.rules:
        only = {part.strip() for part in args.rules.split(",")
                if part.strip()}
        known = {RULE_WAIVER_DEAD}
        for rule in all_rules():
            known.add(rule.pack)
            known.update(rule.rule_ids)
        unknown = sorted(only - known)
        if unknown:
            print(f"repro-lint: unknown rule(s): {', '.join(unknown)} "
                  f"(see --list-rules)", file=sys.stderr)
            return 2
    try:
        report = run_lint(paths, only=only,
                          cache_dir=getattr(args, "cache", None))
    except FileNotFoundError as exc:
        print(f"repro-lint: {exc}", file=sys.stderr)
        return 2
    if getattr(args, "sarif", None) is not None:
        from repro.lint.sarif import render_sarif

        args.sarif.parent.mkdir(parents=True, exist_ok=True)
        args.sarif.write_text(render_sarif(report), encoding="utf-8")
    if getattr(args, "write_baseline", None) is not None:
        from repro.lint.baseline import write_baseline

        write_baseline(report, args.write_baseline)
        print(f"repro-lint: baseline written to {args.write_baseline} "
              f"({len(report.active)} finding(s))")
        return 0
    if getattr(args, "baseline", None) is not None:
        from repro.lint.baseline import apply_baseline

        try:
            fresh, exit_code = apply_baseline(report, args.baseline)
        except FileNotFoundError as exc:
            print(f"repro-lint: {exc}", file=sys.stderr)
            return 2
        for finding in fresh:
            print(finding.render())
        print(f"{len(fresh)} new finding(s) beyond baseline, "
              f"{len(report.active)} active total, "
              f"{report.modules_checked} module(s) checked")
        return exit_code
    if args.format == "json":
        print(json.dumps(report.to_json(), indent=2, sort_keys=True))
    else:
        print(render_text(report, show_waived=args.show_waived))
    return report.exit_code


def main(argv: Optional[Sequence[str]] = None) -> int:
    """``repro-lint`` console-script entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return run_from_args(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
