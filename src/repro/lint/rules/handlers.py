"""Handler-completeness rule pack.

Every message type string that is ever sent must have a receive site
somewhere — an ``on(mtype, ...)`` dispatch registration, a
``condition_quorum``/``condition_message`` wait, or a direct inbox
query — and every receive site must correspond to a message that some
process actually sends.  A sent-but-unhandled message silently
disappears into inboxes (a liveness bug waiting for a schedule that
exposes it); a handled-but-never-sent type is dead dispatch code or a
typo in a tag string.

* ``handler-unhandled`` — a send site whose message type has no
  receive site anywhere in scope.
* ``handler-orphan`` — a receive site whose message type is never
  sent.

Message types resolve module-qualified: a ``MSG_SEND`` constant means
whatever *that* module (or its explicit import) binds it to, so
``avid-send`` and ``rbc-send`` never alias.  One level of send-wrapper
indirection is followed: a helper whose parameter flows into the
``mtype`` position (e.g. ``_broadcast(mtype, ...)``) contributes the
resolved constants from its call sites.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.lint.astutil import str_constant, terminal_name
from repro.lint.config import LintConfig
from repro.lint.engine import ModuleInfo, Project
from repro.lint.findings import Finding

RULE_UNHANDLED = "handler-unhandled"
RULE_ORPHAN = "handler-orphan"

#: mtype argument index per send-style callable.
_SEND_MTYPE_INDEX = {"send": 2, "send_to_servers": 1}
#: mtype argument index per receive-site callable.
_RECEIVE_MTYPE_INDEX = {
    "on": 0,
    "condition_quorum": 1,
    "condition_message": 1,
    "messages": 1,
    "first_per_sender": 1,
    "senders": 1,
    "count_distinct": 1,
}
#: Inbox query methods additionally require an ``inbox`` receiver so
#: unrelated ``.messages(...)`` calls do not register receive sites.
_INBOX_ONLY = {"messages", "first_per_sender", "senders", "count_distinct"}


@dataclass(frozen=True)
class _Site:
    mtype: str
    module: str
    line: int


def _resolve_mtype(node: ast.expr,
                   constants: Dict[str, str]) -> Optional[str]:
    literal = str_constant(node)
    if literal is not None:
        return literal
    name = terminal_name(node)
    if name is not None:
        return constants.get(name)
    return None


def _mtype_arg(call: ast.Call, index: int,
               keyword: str = "mtype") -> Optional[ast.expr]:
    if len(call.args) > index:
        return call.args[index]
    for kw in call.keywords:
        if kw.arg == keyword:
            return kw.value
    return None


def _param_names(func: ast.AST) -> List[str]:
    args = func.args
    names = [a.arg for a in args.posonlyargs + args.args]
    if names and names[0] in {"self", "cls"}:
        names = names[1:]
    return names


class HandlerCompletenessRule:
    """Match every sent message type with a receive site, and back."""

    pack = "handlers"
    rule_ids: Tuple[str, ...] = (RULE_UNHANDLED, RULE_ORPHAN)

    def run(self, project: Project,
            config: LintConfig) -> Iterable[Finding]:
        """Yield handler-completeness findings over the scoped modules."""
        scope = project.scoped(self.pack, config)
        sends: List[_Site] = []
        receives: List[_Site] = []
        #: wrapper function name -> index (excluding self) of the
        #: parameter that flows into an mtype position.
        wrappers: Dict[str, int] = {}

        for module in scope:
            self._collect(module, sends, receives, wrappers)
        for module in scope:
            self._collect_wrapper_calls(module, wrappers, sends)

        sent_types = {s.mtype for s in sends}
        received_types = {r.mtype for r in receives}
        module_paths = {m.dotted: m.display_path for m in scope}

        for site in sends:
            if site.mtype not in received_types:
                yield Finding(
                    rule=RULE_UNHANDLED,
                    path=module_paths[site.module],
                    line=site.line,
                    message=(
                        f"message type '{site.mtype}' is sent here but "
                        "has no dispatch arm or wait condition anywhere"))
        for site in receives:
            if site.mtype not in sent_types:
                yield Finding(
                    rule=RULE_ORPHAN,
                    path=module_paths[site.module],
                    line=site.line,
                    message=(
                        f"message type '{site.mtype}' has a receive site "
                        "here but no process ever sends it"))

    def _collect(self, module: ModuleInfo, sends: List[_Site],
                 receives: List[_Site],
                 wrappers: Dict[str, int]) -> None:
        param_stack: List[Tuple[str, List[str]]] = []

        def visit(node: ast.AST) -> None:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                param_stack.append((node.name, _param_names(node)))
                for child in ast.iter_child_nodes(node):
                    visit(child)
                param_stack.pop()
                return
            if isinstance(node, ast.Call):
                self._visit_call(module, node, param_stack, sends,
                                 receives, wrappers)
            for child in ast.iter_child_nodes(node):
                visit(child)

        visit(module.tree)

    def _visit_call(self, module: ModuleInfo, node: ast.Call,
                    param_stack: List[Tuple[str, List[str]]],
                    sends: List[_Site], receives: List[_Site],
                    wrappers: Dict[str, int]) -> None:
        fname = terminal_name(node.func)
        if (fname in _SEND_MTYPE_INDEX
                and isinstance(node.func, ast.Attribute)):
            arg = _mtype_arg(node, _SEND_MTYPE_INDEX[fname])
            if arg is None:
                return
            mtype = _resolve_mtype(arg, module.constants)
            if mtype is not None:
                sends.append(_Site(mtype, module.dotted, node.lineno))
            elif isinstance(arg, ast.Name) and param_stack:
                func_name, params = param_stack[-1]
                if (arg.id in params
                        and func_name not in _SEND_MTYPE_INDEX):
                    wrappers[func_name] = params.index(arg.id)
        elif fname in _RECEIVE_MTYPE_INDEX:
            if fname in _INBOX_ONLY:
                receiver = (node.func.value
                            if isinstance(node.func, ast.Attribute)
                            else None)
                if receiver is None or terminal_name(receiver) != "inbox":
                    return
            arg = _mtype_arg(node, _RECEIVE_MTYPE_INDEX[fname])
            if arg is None:
                return
            mtype = _resolve_mtype(arg, module.constants)
            if mtype is not None:
                receives.append(_Site(mtype, module.dotted, node.lineno))

    def _collect_wrapper_calls(self, module: ModuleInfo,
                               wrappers: Dict[str, int],
                               sends: List[_Site]) -> None:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            fname = terminal_name(node.func)
            if fname not in wrappers:
                continue
            index = wrappers[fname]
            if len(node.args) <= index:
                continue
            mtype = _resolve_mtype(node.args[index], module.constants)
            if mtype is not None:
                sends.append(_Site(mtype, module.dotted, node.lineno))
