"""Wire-registry rule pack.

The canonical serialization layer (:mod:`repro.common.serialization`)
measures communication complexity by encoding payloads; a dataclass
that crosses the wire without a ``@register_wire_type`` registration
fails to encode (or worse, is silently measured wrong), and a
registered type nothing references is dead weight in the registry.

* ``wire-unregistered`` — a dataclass constructed inside a
  ``send``/``send_to_servers`` payload, or matched with
  ``isinstance(<payload expr>, Cls)``, that carries no
  ``@register_wire_type`` decoration.
* ``wire-dead`` — a ``@register_wire_type``-registered class with no
  references outside its defining module (severity ``warning``).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.lint.astutil import (
    contains_name,
    iter_functions,
    single_assignment_table,
    terminal_name,
)
from repro.lint.config import LintConfig
from repro.lint.engine import ModuleInfo, Project
from repro.lint.findings import Finding

RULE_UNREGISTERED = "wire-unregistered"
RULE_DEAD = "wire-dead"

_DATACLASS_DECORATORS = {"dataclass"}
_REGISTER_DECORATORS = {"register_wire_type"}
#: Payload argument start index per send-style callable.
_SEND_PAYLOAD_START = {"send": 3, "send_to_servers": 2}


@dataclass
class _DataclassDef:
    name: str
    module: str
    line: int
    registered: bool
    register_line: int = 0


@dataclass
class _Usage:
    name: str
    module: str
    line: int
    context: str
    imports: Dict[str, str] = field(default_factory=dict)


def _decorator_terminal(decorator: ast.expr) -> Optional[str]:
    if isinstance(decorator, ast.Call):
        decorator = decorator.func
    return terminal_name(decorator)


def _collect_dataclasses(module: ModuleInfo) -> List[_DataclassDef]:
    defs: List[_DataclassDef] = []
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        names = [_decorator_terminal(d) for d in node.decorator_list]
        if not any(n in _DATACLASS_DECORATORS for n in names):
            continue
        registered = any(n in _REGISTER_DECORATORS for n in names)
        register_line = node.lineno
        defs.append(_DataclassDef(
            name=node.name, module=module.dotted, line=node.lineno,
            registered=registered, register_line=register_line))
    # Functional registration: register_wire_type(Cls) at module level.
    by_name = {d.name: d for d in defs}
    for node in ast.walk(module.tree):
        if (isinstance(node, ast.Call)
                and terminal_name(node.func) in _REGISTER_DECORATORS
                and node.args and isinstance(node.args[0], ast.Name)):
            target = by_name.get(node.args[0].id)
            if target is not None:
                target.registered = True
                target.register_line = node.lineno
    return defs


def _class_imports(module: ModuleInfo) -> Dict[str, str]:
    """Local name -> source module for ``from X import Cls`` bindings."""
    table: Dict[str, str] = {}
    for node in ast.walk(module.tree):
        if isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for alias in node.names:
                if alias.name != "*":
                    table[alias.asname or alias.name] = node.module
    return table


def _payload_class_refs(node: ast.expr,
                        locals_table: Dict[str, ast.expr]) -> Iterator[
                            Tuple[str, ast.expr]]:
    """Class names plausibly instantiated inside a payload expression."""
    if isinstance(node, (ast.Tuple, ast.List)):
        for elt in node.elts:
            yield from _payload_class_refs(elt, locals_table)
        return
    if isinstance(node, ast.Starred):
        yield from _payload_class_refs(node.value, locals_table)
        return
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id[:1].isupper():
            yield (node.func.id, node)
        return
    if isinstance(node, ast.Name) and node.id in locals_table:
        value = locals_table[node.id]
        if (isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id[:1].isupper()):
            yield (value.func.id, node)


def _collect_usages(module: ModuleInfo) -> List[_Usage]:
    usages: List[_Usage] = []
    imports = _class_imports(module)

    def add(name: str, node: ast.AST, context: str) -> None:
        usages.append(_Usage(name=name, module=module.dotted,
                             line=getattr(node, "lineno", 1),
                             context=context, imports=imports))

    for func in iter_functions(module.tree):
        locals_table = single_assignment_table(func)
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            fname = terminal_name(node.func)
            if (fname in _SEND_PAYLOAD_START
                    and isinstance(node.func, ast.Attribute)):
                start = _SEND_PAYLOAD_START[fname]
                for arg in node.args[start:]:
                    for cls, at in _payload_class_refs(arg, locals_table):
                        add(cls, at, "payload")
            elif (fname == "isinstance" and len(node.args) == 2
                  and contains_name(node.args[0], "payload")):
                classes = node.args[1]
                elts = (classes.elts
                        if isinstance(classes, ast.Tuple) else [classes])
                for elt in elts:
                    name = terminal_name(elt)
                    if name and name[:1].isupper():
                        add(name, node, "isinstance")
    return usages


def _reference_modules(project: Project, cls: _DataclassDef,
                       scope: List[ModuleInfo]) -> Set[str]:
    """Modules other than the defining one that mention the class name."""
    refs: Set[str] = set()
    for module in scope:
        if module.dotted == cls.module:
            continue
        for node in ast.walk(module.tree):
            if ((isinstance(node, ast.Name) and node.id == cls.name)
                    or (isinstance(node, ast.Attribute)
                        and node.attr == cls.name)
                    or (isinstance(node, ast.alias)
                        and node.name.split(".")[-1] == cls.name)):
                refs.add(module.dotted)
                break
    return refs


class WireRegistryRule:
    """Cross-check payload dataclasses against the wire-type registry."""

    pack = "wire"
    rule_ids: Tuple[str, ...] = (RULE_UNREGISTERED, RULE_DEAD)

    def run(self, project: Project,
            config: LintConfig) -> Iterable[Finding]:
        """Yield wire-registry findings over the scoped modules."""
        scope = project.scoped(self.pack, config)
        defs: List[_DataclassDef] = []
        usages: List[_Usage] = []
        for module in scope:
            defs.extend(_collect_dataclasses(module))
            usages.extend(_collect_usages(module))

        by_name: Dict[str, List[_DataclassDef]] = {}
        for d in defs:
            by_name.setdefault(d.name, []).append(d)

        module_paths = {m.dotted: m.display_path for m in scope}

        for usage in usages:
            candidates = by_name.get(usage.name, [])
            resolved = self._resolve_usage(usage, candidates)
            if resolved is None or resolved.registered:
                continue
            yield Finding(
                rule=RULE_UNREGISTERED,
                path=module_paths[usage.module],
                line=usage.line,
                message=(
                    f"dataclass '{usage.name}' (defined in "
                    f"{resolved.module}) is used as a message payload "
                    "but is not registered with register_wire_type"))

        used_names = {u.name for u in usages}
        for d in defs:
            if not d.registered:
                continue
            if d.name in used_names:
                continue
            if _reference_modules(project, d, scope):
                continue
            yield Finding(
                rule=RULE_DEAD,
                path=module_paths[d.module],
                line=d.line,
                severity="warning",
                message=(
                    f"wire type '{d.name}' is registered but never "
                    "referenced outside its defining module; remove the "
                    "registration or the class"))

    @staticmethod
    def _resolve_usage(usage: _Usage,
                       candidates: List[_DataclassDef]) -> Optional[
                           _DataclassDef]:
        if not candidates:
            return None
        for candidate in candidates:
            if candidate.module == usage.module:
                return candidate
        source = usage.imports.get(usage.name)
        if source is not None:
            for candidate in candidates:
                if candidate.module == source:
                    return candidate
        if len(candidates) == 1:
            return candidates[0]
        return None
