"""Rule packs for :mod:`repro.lint`.

Each pack is a class implementing :class:`repro.lint.engine.Rule`.
:func:`all_rules` is the default registry used by the runner; add new
packs here (see ``docs/LINTING.md`` for a walkthrough).
"""

from __future__ import annotations

from typing import List

from repro.lint.engine import Rule
from repro.lint.flow.rule import TaintFlowRule
from repro.lint.rules.determinism import DeterminismRule
from repro.lint.rules.handlers import HandlerCompletenessRule
from repro.lint.rules.quorum import QuorumArithmeticRule
from repro.lint.rules.wire_registry import WireRegistryRule

__all__ = [
    "DeterminismRule",
    "HandlerCompletenessRule",
    "QuorumArithmeticRule",
    "TaintFlowRule",
    "WireRegistryRule",
    "all_rules",
]


def all_rules() -> List[Rule]:
    """The default rule registry, in deterministic order."""
    return [
        DeterminismRule(),
        QuorumArithmeticRule(),
        WireRegistryRule(),
        HandlerCompletenessRule(),
        TaintFlowRule(),
    ]
