"""Quorum-arithmetic rule pack.

Threshold expressions are extracted from wait sites —
``condition_quorum(tag, mtype, count)`` calls and comparisons whose
threshold side is built from the protocol symbols ``n``, ``t``, ``k``
(plus the derived ``quorum = n - t``, ``ready_amplify = t + 1``,
``deliver_quorum = 2t + 1``) — and checked symbolically over every
valid configuration with ``n > 3t`` and ``1 <= k <= n - t``
(paper, Section 2):

* ``quorum-literal`` — a bare integer literal where a threshold
  expression is expected; literals silently break for other ``(n, t)``.
* ``quorum-unreachable`` — a wait threshold exceeding ``n - t``: the
  ``t`` Byzantine servers can refuse to answer, so the wait can block
  forever in some valid configuration.
* ``quorum-intersection`` — a quorum-sized wait whose two instances
  may intersect in fewer than ``t + 1`` parties in some valid
  configuration, so two quorums need not share an honest party and
  reads can miss the latest timestamp (the classic off-by-one,
  e.g. ``n - t - 1``).

A comparison is only treated as a wait when exactly one side resolves
symbolically — ``config.n <= 4 * config.t`` resilience preconditions
(both sides symbolic) and plain index arithmetic (no symbols) are
skipped.  Locals assigned exactly once propagate
(``quorum = self.config.quorum`` then ``len(acks) >= quorum``), while
counters with multiple assignments stay opaque.
"""

from __future__ import annotations

import ast
import itertools
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.lint.astutil import (
    int_constant,
    iter_functions,
    locally_bound_names,
    single_assignment_table,
    terminal_name,
)
from repro.lint.config import LintConfig
from repro.lint.engine import ModuleInfo, Project
from repro.lint.findings import Finding

RULE_LITERAL = "quorum-literal"
RULE_UNREACHABLE = "quorum-unreachable"
RULE_INTERSECTION = "quorum-intersection"

#: Symbol table: terminal attribute/name -> evaluator over (n, t, k).
_SYMBOLS: Dict[str, Callable[[int, int, int], int]] = {
    "n": lambda n, t, k: n,
    "num_servers": lambda n, t, k: n,
    "t": lambda n, t, k: t,
    "f": lambda n, t, k: t,
    "num_faulty": lambda n, t, k: t,
    "k": lambda n, t, k: k,
    "quorum": lambda n, t, k: n - t,
    "ready_amplify": lambda n, t, k: t + 1,
    "deliver_quorum": lambda n, t, k: 2 * t + 1,
}

#: Canonical thresholds that are correct by construction under n > 3t.
_CANONICAL: Tuple[Tuple[str, Callable[[int, int, int], int]], ...] = (
    ("n - t", lambda n, t, k: n - t),
    ("t + 1", lambda n, t, k: t + 1),
    ("2t + 1", lambda n, t, k: 2 * t + 1),
    ("k", lambda n, t, k: k),
    ("n", lambda n, t, k: n),
    ("1", lambda n, t, k: 1),
)


def _sample_grid() -> List[Tuple[int, int, int]]:
    """Valid ``(n, t, k)`` configurations: ``n > 3t``, ``1 <= k <= n - t``.

    ``t`` starts at 1: with no faults every positive wait is
    satisfiable and threshold mistakes are invisible, so degenerate
    ``t = 0`` systems would only produce noise verdicts.
    """
    samples: List[Tuple[int, int, int]] = []
    for t, extra in itertools.product(range(1, 5), range(1, 6)):
        n = 3 * t + extra
        quorum = n - t
        for k in {1, max(1, quorum // 2), quorum}:
            samples.append((n, t, k))
    return samples


_GRID = _sample_grid()


class _Resolved:
    """A threshold expression resolved to an evaluator over (n, t, k)."""

    __slots__ = ("evaluate", "has_symbol", "is_literal")

    def __init__(self, evaluate: Callable[[int, int, int], int],
                 has_symbol: bool, is_literal: bool = False) -> None:
        self.evaluate = evaluate
        self.has_symbol = has_symbol
        self.is_literal = is_literal


def _resolve(node: ast.expr, locals_table: Dict[str, ast.expr],
             bound: Dict[str, bool],
             depth: int = 0) -> Optional[_Resolved]:
    """Resolve an expression into a symbolic evaluator, or ``None``."""
    if depth > 8:
        return None
    value = int_constant(node)
    if value is not None:
        return _Resolved(lambda n, t, k, v=value: v,
                         has_symbol=False, is_literal=True)
    if isinstance(node, ast.Name):
        if node.id in locals_table:
            # One level of single-assignment propagation, with the
            # binding removed to cut self-referential chains.
            inner = {key: expr for key, expr in locals_table.items()
                     if key != node.id}
            resolved = _resolve(locals_table[node.id], inner, bound,
                                depth + 1)
            if resolved is not None:
                return resolved
        if node.id in bound:
            # A shadowing local (loop var, parameter) is not the
            # protocol symbol of the same name.
            return None
    name = terminal_name(node)
    if name in _SYMBOLS:
        return _Resolved(_SYMBOLS[name], has_symbol=True)
    if isinstance(node, ast.BinOp):
        left = _resolve(node.left, locals_table, bound, depth + 1)
        right = _resolve(node.right, locals_table, bound, depth + 1)
        if left is None or right is None:
            return None
        op = node.op
        if isinstance(op, ast.Add):
            combine = lambda a, b: a + b  # noqa: E731
        elif isinstance(op, ast.Sub):
            combine = lambda a, b: a - b  # noqa: E731
        elif isinstance(op, ast.Mult):
            combine = lambda a, b: a * b  # noqa: E731
        elif isinstance(op, ast.FloorDiv):
            combine = lambda a, b: a // b if b else 0  # noqa: E731
        else:
            return None
        le, re_ = left.evaluate, right.evaluate
        return _Resolved(
            lambda n, t, k: combine(le(n, t, k), re_(n, t, k)),
            has_symbol=left.has_symbol or right.has_symbol)
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner_r = _resolve(node.operand, locals_table, bound, depth + 1)
        if inner_r is None:
            return None
        ie = inner_r.evaluate
        return _Resolved(lambda n, t, k: -ie(n, t, k),
                         has_symbol=inner_r.has_symbol,
                         is_literal=inner_r.is_literal)
    return None


def _is_canonical(resolved: _Resolved) -> bool:
    return any(
        all(resolved.evaluate(n, t, k) == canon(n, t, k)
            for (n, t, k) in _GRID)
        for _, canon in _CANONICAL)


def _check_threshold(resolved: _Resolved) -> Optional[Tuple[str, str]]:
    """Classify a symbolic threshold; ``None`` means it is sound."""
    if _is_canonical(resolved):
        return None
    for (n, t, k) in _GRID:
        value = resolved.evaluate(n, t, k)
        if value > n - t:
            return (
                RULE_UNREACHABLE,
                f"threshold evaluates to {value} > n - t = {n - t} at "
                f"n={n}, t={t}: the n - t honest parties alone can never "
                "satisfy this wait")
    for (n, t, k) in _GRID:
        value = resolved.evaluate(n, t, k)
        if value < 1:
            return (
                RULE_UNREACHABLE,
                f"threshold evaluates to {value} < 1 at n={n}, t={t}")
    for (n, t, k) in _GRID:
        value = resolved.evaluate(n, t, k)
        # Non-canonical thresholds must behave like quorums: two waits
        # of this size must always share at least t + 1 parties, so
        # any two satisfied waits share an honest one.  Canonical
        # sub-quorum witnesses (t + 1, k, 1) were accepted above.
        if 2 * value - n < t + 1:
            return (
                RULE_INTERSECTION,
                f"two waits of size {value} intersect in only "
                f"{max(0, 2 * value - n)} < t + 1 = {t + 1} parties at "
                f"n={n}, t={t}; quorums must intersect in at least t + 1 "
                "so any two share an honest party")
    return None


class QuorumArithmeticRule:
    """Check wait thresholds against the ``n > 3t`` resilience model."""

    pack = "quorum"
    rule_ids: Tuple[str, ...] = (
        RULE_LITERAL, RULE_UNREACHABLE, RULE_INTERSECTION)

    def run(self, project: Project,
            config: LintConfig) -> Iterable[Finding]:
        """Yield quorum-arithmetic findings over the scoped modules."""
        for module in project.scoped(self.pack, config):
            yield from self._check_module(module)

    def _check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        for func in iter_functions(module.tree):
            locals_table = single_assignment_table(func)
            bound = locally_bound_names(func)
            seen: Set[int] = set()
            for node in ast.walk(func):
                if id(node) in seen:
                    continue
                if isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)) and node is not func:
                    # Nested defs are visited as their own functions.
                    for inner in ast.walk(node):
                        seen.add(id(inner))
                    continue
                if isinstance(node, ast.Call):
                    yield from self._check_condition_quorum(
                        module, node, locals_table, bound)
                elif isinstance(node, ast.Compare):
                    yield from self._check_compare(
                        module, node, locals_table, bound)

    def _check_condition_quorum(
            self, module: ModuleInfo, node: ast.Call,
            locals_table: Dict[str, ast.expr],
            bound: Dict[str, bool]) -> Iterator[Finding]:
        if terminal_name(node.func) != "condition_quorum":
            return
        count: Optional[ast.expr] = None
        if len(node.args) >= 3:
            count = node.args[2]
        else:
            for kw in node.keywords:
                if kw.arg == "count":
                    count = kw.value
        if count is None:
            return
        resolved = _resolve(count, locals_table, bound)
        if resolved is None:
            return
        if resolved.is_literal and not resolved.has_symbol:
            yield self._finding(
                module, count, RULE_LITERAL,
                "bare integer literal as a quorum count; derive the "
                "threshold from SystemConfig (n, t, k)")
            return
        if not resolved.has_symbol:
            return
        verdict = _check_threshold(resolved)
        if verdict is not None:
            rule, message = verdict
            yield self._finding(module, count, rule, message)

    def _check_compare(
            self, module: ModuleInfo, node: ast.Compare,
            locals_table: Dict[str, ast.expr],
            bound: Dict[str, bool]) -> Iterator[Finding]:
        if len(node.ops) != 1 or len(node.comparators) != 1:
            return
        if not isinstance(node.ops[0], (ast.Gt, ast.GtE, ast.Lt, ast.LtE)):
            return
        left = _resolve(node.left, locals_table, bound)
        right = _resolve(node.comparators[0], locals_table, bound)
        left_sym = left is not None and left.has_symbol
        right_sym = right is not None and right.has_symbol
        # Exactly one symbolic side = a wait comparing a count against
        # a threshold.  Both symbolic = a configuration precondition
        # (e.g. n <= 4t guards); neither = ordinary arithmetic.
        if left_sym == right_sym:
            return
        threshold = left if left_sym else right
        other = right if left_sym else left
        if other is not None and other.is_literal:
            # Constant-vs-threshold comparisons are config checks, not
            # waits over message counts.
            return
        assert threshold is not None
        verdict = _check_threshold(threshold)
        if verdict is not None:
            rule, message = verdict
            node_at = node.left if left_sym else node.comparators[0]
            yield self._finding(module, node_at, rule, message)

    @staticmethod
    def _finding(module: ModuleInfo, node: ast.AST, rule: str,
                 message: str) -> Finding:
        return Finding(rule=rule, path=module.display_path,
                       line=getattr(node, "lineno", 1), message=message)
