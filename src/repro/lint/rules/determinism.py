"""Determinism rule pack.

The simulator replays protocol runs under a logical clock and seeded
adversarial schedulers; any entropy source, wall-clock read, or
iteration order that varies between interpreter runs breaks replay and
invalidates every scheduling experiment.  This pack flags:

* ``det-entropy`` — OS/global randomness: ``secrets``/``uuid``
  imports, ``os.urandom``, module-level ``random.<fn>()`` calls,
  unseeded ``random.Random()`` (seeded ``random.Random(seed)`` is the
  sanctioned idiom and stays legal).
* ``det-wallclock`` — real-time reads: ``import time``,
  ``time.time``/``monotonic``/``perf_counter`` family,
  ``datetime.now``/``utcnow``/``today``.
* ``det-set-order`` — iteration over ``set``/``frozenset`` values
  (literals, comprehensions, constructor calls, or locals/attributes
  annotated or assigned as sets) in ``for`` loops, comprehensions, or
  order-materialising calls (``list``/``tuple``/``enumerate``)
  without ``sorted(...)``.
* ``det-id-order`` — ordering derived from interpreter identity:
  ``id(...)`` anywhere, or ``sorted``/``min``/``max`` keyed on
  ``id``/``hash``.
* ``det-cache-order`` — memoization through ``functools.lru_cache`` /
  ``functools.cache``: those hang hidden state off module-level
  functions (so a "fresh" component silently reuses a previous run's
  cache) and their eviction bookkeeping is not replayable state.  The
  sanctioned alternative is :class:`repro.common.lru.LruCache` —
  insertion-ordered by language guarantee, explicitly owned by the
  component that uses it, and therefore deterministic; the rule
  exempts ``repro.common.lru`` itself, where that cache lives.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, Optional, Set, Tuple

from repro.lint.astutil import dotted_name, terminal_name
from repro.lint.config import LintConfig
from repro.lint.engine import ModuleInfo, Project
from repro.lint.findings import Finding

RULE_ENTROPY = "det-entropy"
RULE_WALLCLOCK = "det-wallclock"
RULE_SET_ORDER = "det-set-order"
RULE_ID_ORDER = "det-id-order"
RULE_CACHE_ORDER = "det-cache-order"

#: ``functools`` memoizers with hidden, non-replayable cache state.
_FUNCTOOLS_CACHES = {"lru_cache", "cache"}
#: Modules exempt from ``det-cache-order``: the sanctioned
#: insertion-ordered cache implementation itself.
_SANCTIONED_CACHE_MODULES = {"repro.common.lru"}

_ENTROPY_MODULES = {"secrets", "uuid"}
_WALLCLOCK_MODULES = {"time"}
_GLOBAL_RNG_FNS = {
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "getrandbits", "seed", "betavariate", "gauss",
    "normalvariate", "triangular", "expovariate",
}
_WALLCLOCK_CALLS = {
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "time.process_time_ns", "time.clock_gettime",
}
_WALLCLOCK_METHODS = {"now", "utcnow", "today"}
_ENTROPY_CALLS = {"os.urandom", "os.getrandom", "uuid.uuid1", "uuid.uuid4"}
_SET_ANNOTATIONS = {"set", "frozenset", "Set", "FrozenSet", "MutableSet"}
_ORDER_MATERIALISERS = {"list", "tuple", "enumerate"}


def _annotation_is_set(node: Optional[ast.expr]) -> bool:
    if node is None:
        return False
    if isinstance(node, ast.Subscript):
        node = node.value
    name = terminal_name(node)
    return name in _SET_ANNOTATIONS


def _is_set_constructor(node: ast.AST) -> bool:
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in {"set", "frozenset"})


class _SetTracker:
    """Names and attributes known to hold sets within one module."""

    def __init__(self, tree: ast.Module) -> None:
        self.set_attrs: Set[str] = set()
        self.set_locals: Set[Tuple[int, str]] = set()
        self._collect(tree)

    def _collect(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.AnnAssign):
                if not _annotation_is_set(node.annotation):
                    continue
                if isinstance(node.target, ast.Attribute):
                    self.set_attrs.add(node.target.attr)
                elif isinstance(node.target, ast.Name):
                    self.set_attrs.add(node.target.id)
            elif isinstance(node, ast.Assign):
                if not (_is_set_constructor(node.value)
                        or isinstance(node.value, (ast.Set, ast.SetComp))):
                    continue
                for target in node.targets:
                    if isinstance(target, ast.Attribute):
                        self.set_attrs.add(target.attr)
                    elif isinstance(target, ast.Name):
                        self.set_attrs.add(target.id)

    def is_set_expr(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if _is_set_constructor(node):
            return True
        if isinstance(node, ast.Name):
            return node.id in self.set_attrs
        if isinstance(node, ast.Attribute):
            return node.attr in self.set_attrs
        if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
            return (self.is_set_expr(node.left)
                    or self.is_set_expr(node.right))
        return False


class DeterminismRule:
    """Flag nondeterminism hazards in protocol modules."""

    pack = "determinism"
    rule_ids: Tuple[str, ...] = (
        RULE_ENTROPY, RULE_WALLCLOCK, RULE_SET_ORDER, RULE_ID_ORDER,
        RULE_CACHE_ORDER)

    def run(self, project: Project,
            config: LintConfig) -> Iterable[Finding]:
        """Yield determinism findings over the scoped modules."""
        for module in project.scoped(self.pack, config):
            yield from self._check_module(module)

    def _check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        tracker = _SetTracker(module.tree)
        tainted_names: Dict[str, str] = {}
        check_caches = module.dotted not in _SANCTIONED_CACHE_MODULES
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                yield from self._check_import(module, node)
            elif isinstance(node, ast.ImportFrom):
                yield from self._check_import_from(
                    module, node, tainted_names, check_caches)
            elif check_caches and isinstance(node, ast.Attribute):
                if dotted_name(node) in ("functools.lru_cache",
                                         "functools.cache"):
                    yield self._finding(
                        module, node, RULE_CACHE_ORDER,
                        f"{dotted_name(node)} keeps hidden cache state "
                        "with non-replayable eviction; use the "
                        "insertion-ordered repro.common.lru.LruCache")
            elif isinstance(node, ast.Call):
                yield from self._check_call(module, node, tainted_names)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                if tracker.is_set_expr(node.iter):
                    yield self._finding(
                        module, node.iter, RULE_SET_ORDER,
                        "iteration over an unordered set; wrap the "
                        "iterable in sorted(...)")
            elif isinstance(node, ast.comprehension):
                if tracker.is_set_expr(node.iter):
                    yield self._finding(
                        module, node.iter, RULE_SET_ORDER,
                        "comprehension over an unordered set; wrap the "
                        "iterable in sorted(...)")
        yield from self._check_materialisers(module, tracker)

    def _check_import(self, module: ModuleInfo,
                      node: ast.Import) -> Iterator[Finding]:
        for alias in node.names:
            top = alias.name.split(".")[0]
            if top in _ENTROPY_MODULES:
                yield self._finding(
                    module, node, RULE_ENTROPY,
                    f"import of entropy module '{alias.name}' in a "
                    "protocol module")
            elif top in _WALLCLOCK_MODULES:
                yield self._finding(
                    module, node, RULE_WALLCLOCK,
                    f"import of wall-clock module '{alias.name}'; use "
                    "the simulator's logical clock")

    def _check_import_from(self, module: ModuleInfo, node: ast.ImportFrom,
                           tainted: Dict[str, str],
                           check_caches: bool = True) -> Iterator[Finding]:
        source = (node.module or "").split(".")[0]
        for alias in node.names:
            local = alias.asname or alias.name
            if (check_caches and source == "functools"
                    and alias.name in _FUNCTOOLS_CACHES):
                tainted[local] = RULE_CACHE_ORDER
                yield self._finding(
                    module, node, RULE_CACHE_ORDER,
                    f"import of functools.{alias.name}: hidden cache "
                    "state with non-replayable eviction; use the "
                    "insertion-ordered repro.common.lru.LruCache")
            elif source in _ENTROPY_MODULES:
                tainted[local] = RULE_ENTROPY
                yield self._finding(
                    module, node, RULE_ENTROPY,
                    f"import of '{alias.name}' from entropy module "
                    f"'{node.module}'")
            elif source in _WALLCLOCK_MODULES:
                tainted[local] = RULE_WALLCLOCK
                yield self._finding(
                    module, node, RULE_WALLCLOCK,
                    f"import of '{alias.name}' from wall-clock module "
                    f"'{node.module}'")
            elif source == "os" and alias.name in {"urandom", "getrandom"}:
                tainted[local] = RULE_ENTROPY
                yield self._finding(
                    module, node, RULE_ENTROPY,
                    f"import of os.{alias.name}")
            elif source == "random" and alias.name != "Random":
                tainted[local] = RULE_ENTROPY
                yield self._finding(
                    module, node, RULE_ENTROPY,
                    f"import of 'random.{alias.name}'; only seeded "
                    "random.Random instances are deterministic")

    def _check_call(self, module: ModuleInfo, node: ast.Call,
                    tainted: Dict[str, str]) -> Iterator[Finding]:
        dotted = dotted_name(node.func)
        term = terminal_name(node.func)
        if dotted in _ENTROPY_CALLS:
            yield self._finding(module, node, RULE_ENTROPY,
                                f"call to {dotted}()")
        elif dotted in _WALLCLOCK_CALLS:
            yield self._finding(
                module, node, RULE_WALLCLOCK,
                f"call to {dotted}(); use the simulator's logical clock")
        elif (isinstance(node.func, ast.Attribute)
              and node.func.attr in _WALLCLOCK_METHODS
              and terminal_name(node.func.value) in {"datetime", "date"}):
            yield self._finding(
                module, node, RULE_WALLCLOCK,
                f"call to {dotted or node.func.attr}(); wall-clock "
                "timestamps are nondeterministic")
        elif dotted == "random.SystemRandom":
            yield self._finding(module, node, RULE_ENTROPY,
                                "random.SystemRandom draws OS entropy")
        elif dotted == "random.Random" and not node.args and not node.keywords:
            yield self._finding(
                module, node, RULE_ENTROPY,
                "unseeded random.Random(); pass an explicit seed")
        elif (isinstance(node.func, ast.Attribute)
              and isinstance(node.func.value, ast.Name)
              and node.func.value.id == "random"
              and node.func.attr in _GLOBAL_RNG_FNS):
            yield self._finding(
                module, node, RULE_ENTROPY,
                f"call to the process-global RNG random.{node.func.attr}(); "
                "use a seeded random.Random instance")
        elif isinstance(node.func, ast.Name) and node.func.id in tainted:
            yield self._finding(
                module, node, tainted[node.func.id],
                f"call to nondeterministic import '{node.func.id}'")
        elif isinstance(node.func, ast.Name) and node.func.id == "id":
            yield self._finding(
                module, node, RULE_ID_ORDER,
                "id() depends on interpreter memory layout")
        elif (isinstance(node.func, ast.Name)
              and node.func.id in {"sorted", "min", "max"}):
            yield from self._check_sort_key(module, node)

    def _check_sort_key(self, module: ModuleInfo,
                        node: ast.Call) -> Iterator[Finding]:
        for kw in node.keywords:
            if kw.arg != "key":
                continue
            key = kw.value
            if isinstance(key, ast.Name) and key.id in {"id", "hash"}:
                yield self._finding(
                    module, node, RULE_ID_ORDER,
                    f"ordering keyed on {key.id}() is interpreter-dependent")
            elif isinstance(key, ast.Lambda):
                for leaf in ast.walk(key.body):
                    if (isinstance(leaf, ast.Call)
                            and isinstance(leaf.func, ast.Name)
                            and leaf.func.id in {"id", "hash"}):
                        yield self._finding(
                            module, node, RULE_ID_ORDER,
                            f"ordering keyed on {leaf.func.id}() is "
                            "interpreter-dependent")
                        break

    def _check_materialisers(self, module: ModuleInfo,
                             tracker: _SetTracker) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id in _ORDER_MATERIALISERS
                    and node.args):
                continue
            if tracker.is_set_expr(node.args[0]):
                yield self._finding(
                    module, node, RULE_SET_ORDER,
                    f"{node.func.id}() over an unordered set fixes an "
                    "arbitrary order; wrap the set in sorted(...)")

    @staticmethod
    def _finding(module: ModuleInfo, node: ast.AST, rule: str,
                 message: str) -> Finding:
        return Finding(rule=rule, path=module.display_path,
                       line=getattr(node, "lineno", 1), message=message)
