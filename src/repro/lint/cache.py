"""On-disk incremental cache for ``repro lint``.

Rules are cross-module (wire registry, handler completeness, taint
summaries follow calls between files), so per-file result caching is
unsound: a change in one module can create findings in another.  The
cache therefore keys the *whole run* — the sorted ``(dotted name,
content hash)`` pairs of every scanned file, the rule selection, and a
cache-format version — and replays the full report only when nothing
changed at all.  That is exactly the tier-1 hot case: the gate test
and the CLI lint the same unmodified tree several times per session.

A stale entry is never served (any edit changes its file's content
hash, which changes the key); writes keep a single entry per cache
directory so the directory cannot grow without bound.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Iterable, Optional, Tuple

from repro.lint.findings import Finding, LintReport

#: Bump when the report schema or any rule semantics change, so stale
#: formats miss instead of deserializing garbage.
CACHE_VERSION = 2

_PREFIX = "lint-"


def file_digest(path: Path) -> str:
    """SHA-256 hex digest of the file's bytes (the cache-key input)."""
    return hashlib.sha256(path.read_bytes()).hexdigest()


def cache_key(entries: Iterable[Tuple[str, str]],
              rule_names: Iterable[str]) -> str:
    """Digest of the full run identity.

    ``entries`` are ``(dotted name, content hash)`` pairs for every
    scanned file; ``rule_names`` is the effective rule selection
    (pack names), so ``--rules taint`` and a full run cache separately.
    """
    basis = {
        "version": CACHE_VERSION,
        "files": sorted(entries),
        "rules": sorted(rule_names),
    }
    encoded = json.dumps(basis, sort_keys=True).encode("utf-8")
    return hashlib.sha256(encoded).hexdigest()


def _entry_path(directory: Path, key: str) -> Path:
    return directory / f"{_PREFIX}{key}.json"


def load(directory: Path, key: str) -> Optional[LintReport]:
    """The cached report for ``key``, or ``None`` on miss/corruption."""
    path = _entry_path(directory, key)
    if not path.exists():
        return None
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
        if document.get("version") != CACHE_VERSION:
            return None
        return LintReport(
            findings=[Finding.from_json(f)
                      for f in document["findings"]],
            modules_checked=int(document["modules_checked"]),
            rules_run=tuple(document["rules_run"]),
            from_cache=True,
        )
    except (ValueError, KeyError, TypeError, OSError):
        return None


def store(directory: Path, key: str, report: LintReport) -> None:
    """Persist ``report`` under ``key``, evicting other entries."""
    directory.mkdir(parents=True, exist_ok=True)
    document = {
        "version": CACHE_VERSION,
        "findings": [f.to_json() for f in report.findings],
        "modules_checked": report.modules_checked,
        "rules_run": list(report.rules_run),
    }
    path = _entry_path(directory, key)
    for stale in directory.glob(f"{_PREFIX}*.json"):
        if stale != path:
            try:
                stale.unlink()
            except OSError:  # pragma: no cover - concurrent cleanup
                pass
    path.write_text(json.dumps(document, sort_keys=True) + "\n",
                    encoding="utf-8")
