"""Shared AST helpers for :mod:`repro.lint` rule packs.

Everything here operates on :mod:`ast` trees only — scanned code is
never imported, so violation fixtures are safe to lint and the tier-1
gate has no side effects.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple


def dotted_name(node: ast.AST) -> Optional[str]:
    """Render ``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def terminal_name(node: ast.AST) -> Optional[str]:
    """The last segment of a Name/Attribute chain (``c`` in ``a.b.c``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def call_name(call: ast.Call) -> Optional[str]:
    """The terminal function name of a call, e.g. ``send`` for
    ``self.process.send(...)``."""
    return terminal_name(call.func)


def str_constant(node: ast.AST) -> Optional[str]:
    """The value of a string literal, else ``None``."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def int_constant(node: ast.AST) -> Optional[int]:
    """The value of a non-bool integer literal, else ``None``."""
    if (isinstance(node, ast.Constant)
            and isinstance(node.value, int)
            and not isinstance(node.value, bool)):
        return node.value
    return None


def iter_functions(tree: ast.Module) -> Iterator[ast.AST]:
    """Every function/async-function definition in the module."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def module_string_constants(tree: ast.Module) -> Dict[str, str]:
    """Module-level ``NAME = "literal"`` assignments.

    This is how protocol modules declare message types
    (``MSG_ECHO = "avid-echo"``); rules use the table to resolve
    ``Name``/``Attribute`` references back to tag strings.
    """
    table: Dict[str, str] = {}
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            value = str_constant(stmt.value)
            if isinstance(target, ast.Name) and value is not None:
                table[target.id] = value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            value = str_constant(stmt.value)
            if isinstance(stmt.target, ast.Name) and value is not None:
                table[stmt.target.id] = value
    return table


def module_imports(tree: ast.Module) -> List[Tuple[str, str, str]]:
    """``from X import Y as Z`` bindings as ``(local, source_module,
    source_name)`` triples.  Star imports are ignored."""
    out: List[Tuple[str, str, str]] = []
    for stmt in ast.walk(tree):
        if isinstance(stmt, ast.ImportFrom) and stmt.module and stmt.level == 0:
            for alias in stmt.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                out.append((local, stmt.module, alias.name))
    return out


def single_assignment_table(func: ast.AST) -> Dict[str, ast.expr]:
    """Locals assigned exactly once in ``func`` (including nested
    defs), mapped to their value expression.

    Variables with multiple assignments, augmented assignments, or
    loop-target bindings resolve to nothing — this deliberately keeps
    counters (``missing = 0; missing += 1``) unresolvable so quorum
    rules treat them as count sides, not thresholds.
    """
    counts: Dict[str, int] = {}
    values: Dict[str, ast.expr] = {}

    def bump(name: str, value: Optional[ast.expr]) -> None:
        counts[name] = counts.get(name, 0) + 1
        if value is not None:
            values[name] = value

    for node in ast.walk(func):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    bump(target.id, node.value)
                else:
                    for leaf in ast.walk(target):
                        if isinstance(leaf, ast.Name):
                            bump(leaf.id, None)
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name):
                bump(node.target.id, node.value)
        elif isinstance(node, ast.AugAssign):
            if isinstance(node.target, ast.Name):
                bump(node.target.id, None)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            for leaf in ast.walk(node.target):
                if isinstance(leaf, ast.Name):
                    bump(leaf.id, None)
        elif isinstance(node, ast.withitem) and node.optional_vars:
            for leaf in ast.walk(node.optional_vars):
                if isinstance(leaf, ast.Name):
                    bump(leaf.id, None)
        elif isinstance(node, ast.comprehension):
            for leaf in ast.walk(node.target):
                if isinstance(leaf, ast.Name):
                    bump(leaf.id, None)

    return {name: expr for name, expr in values.items()
            if counts.get(name) == 1}


def locally_bound_names(func: ast.AST) -> Dict[str, bool]:
    """Every name bound inside ``func`` (params, assignments, loop
    targets, comprehension targets), mapped to ``True``.  Used to stop
    symbol resolution from treating a shadowing local (``for k in
    d:``) as a protocol symbol."""
    bound: Dict[str, bool] = {}
    for node in ast.walk(func):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = node.args
            for arg in (args.posonlyargs + args.args + args.kwonlyargs):
                bound[arg.arg] = True
            if args.vararg:
                bound[args.vararg.arg] = True
            if args.kwarg:
                bound[args.kwarg.arg] = True
        elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for target in targets:
                for leaf in ast.walk(target):
                    if isinstance(leaf, ast.Name):
                        bound[leaf.id] = True
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            for leaf in ast.walk(node.target):
                if isinstance(leaf, ast.Name):
                    bound[leaf.id] = True
        elif isinstance(node, ast.comprehension):
            for leaf in ast.walk(node.target):
                if isinstance(leaf, ast.Name):
                    bound[leaf.id] = True
        elif isinstance(node, ast.withitem) and node.optional_vars:
            for leaf in ast.walk(node.optional_vars):
                if isinstance(leaf, ast.Name):
                    bound[leaf.id] = True
    return bound


def contains_name(node: ast.AST, identifier: str) -> bool:
    """Whether any Name or Attribute leaf in ``node`` is ``identifier``."""
    for leaf in ast.walk(node):
        if isinstance(leaf, ast.Name) and leaf.id == identifier:
            return True
        if isinstance(leaf, ast.Attribute) and leaf.attr == identifier:
            return True
    return False
