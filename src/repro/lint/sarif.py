"""SARIF 2.1.0 export for :mod:`repro.lint` reports.

SARIF (Static Analysis Results Interchange Format) is the
machine-readable format CI platforms ingest for code-scanning
annotations.  The export here is deliberately minimal — one run, one
result per finding, waived findings carried as suppressed results —
and deterministic: findings are already sorted by
:meth:`repro.lint.findings.Finding.sort_key` and the JSON is dumped
with sorted keys, so the file is byte-stable across runs.

Each result carries the same ``partialFingerprints`` value the
``--baseline`` gate uses (see :mod:`repro.lint.baseline`), so baseline
tooling and SARIF consumers agree on finding identity.
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.lint.baseline import fingerprint
from repro.lint.findings import Finding, LintReport

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/"
                "sarif-spec/master/Schemata/sarif-schema-2.1.0.json")

#: repro.lint severities -> SARIF result levels
_LEVELS = {"error": "error", "warning": "warning"}


def _result(finding: Finding) -> Dict[str, object]:
    result: Dict[str, object] = {
        "ruleId": finding.rule,
        "level": _LEVELS.get(finding.severity, "warning"),
        "message": {"text": finding.message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {"uri": finding.path},
                "region": {"startLine": finding.line},
            },
        }],
        "partialFingerprints": {
            "reproLint/v1": fingerprint(finding),
        },
    }
    if finding.waived:
        # Inline ``# lint: disable=`` waivers map to in-source
        # suppressions, so CI dashboards show them as reviewed.
        result["suppressions"] = [{"kind": "inSource"}]
    return result


def to_sarif(report: LintReport,
             tool_name: str = "repro-lint") -> Dict[str, object]:
    """The SARIF document for ``report`` as a JSON-ready dict."""
    rule_ids = sorted({f.rule for f in report.findings})
    rules: List[Dict[str, object]] = [
        {"id": rule_id} for rule_id in rule_ids]
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": tool_name,
                    "informationUri":
                        "https://example.invalid/repro-lint",
                    "rules": rules,
                },
            },
            "results": [_result(f) for f in report.findings],
        }],
    }


def render_sarif(report: LintReport) -> str:
    """The SARIF document as deterministic, indented JSON text."""
    return json.dumps(to_sarif(report), indent=2, sort_keys=True) + "\n"
