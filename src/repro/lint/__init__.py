"""Protocol-aware static analysis for the reproduction (``repro.lint``).

The correctness of this reproduction rests on properties the Python type
system cannot see:

* **determinism** — every protocol module must be free of entropy,
  wall-clock reads, and unordered-collection iteration, or the
  simulator's logical clock (and every adversarial-scheduler experiment)
  is meaningless;
* **quorum arithmetic** — every wait threshold must be consistent with
  the optimal-resilience assumption ``n > 3t`` (paper, Section 2):
  reachable by the ``n - t`` honest parties and, for quorums, pairwise
  intersecting in at least ``t + 1`` parties;
* **wire-registry completeness** — every dataclass that crosses the wire
  must be registered with
  :func:`repro.common.serialization.register_wire_type`, or the
  communication-complexity metrics silently diverge from the paper's
  bit-length definition;
* **handler completeness** — every message type that is ever sent must
  have a receive site (a handler or a wait condition) somewhere, and
  vice versa;
* **Byzantine taint flow** — every ``Message.payload`` field is
  adversary-controlled until it passes a verification step
  (commitment / Merkle / signature check, ``isinstance`` guard); the
  ``taint`` pack tracks payload data interprocedurally to protocol
  state writes, erasure decoding, operation completion, and re-sends
  (see :mod:`repro.lint.flow`).

Supporting machinery: SARIF 2.1.0 export (:mod:`repro.lint.sarif`),
baseline snapshots that gate CI on *new* findings only
(:mod:`repro.lint.baseline`), a whole-run incremental cache keyed by
file content hashes (:mod:`repro.lint.cache`), and dead-waiver
detection (``waiver-dead``) on full runs.

The framework is purely AST-based (scanned code is never imported) and
pluggable: see :class:`repro.lint.engine.Rule` and ``docs/LINTING.md``.
Run it as ``python -m repro.lint src/repro``, via the ``repro-lint``
console script, or as ``python -m repro.cli lint``.  Findings can be
waived per line with ``# lint: disable=<rule-id>`` comments.
"""

from __future__ import annotations

from repro.lint.config import LintConfig
from repro.lint.engine import (
    RULE_WAIVER_DEAD,
    Finding,
    LintReport,
    ModuleInfo,
    Project,
    Rule,
    run_lint,
)
from repro.lint.rules import all_rules

__all__ = [
    "Finding",
    "LintConfig",
    "LintReport",
    "ModuleInfo",
    "Project",
    "RULE_WAIVER_DEAD",
    "Rule",
    "all_rules",
    "run_lint",
]
