"""Per-rule module scoping for :mod:`repro.lint`.

Protocol-correctness rules (determinism, quorum arithmetic, handler
completeness) only make sense on protocol modules; running the
determinism pack on the workload generator, which seeds RNGs on
purpose, would be noise.  Scoping is expressed as dotted-module-name
prefixes and only applies to modules inside the ``repro`` package:
modules scanned from anywhere else (e.g. test fixtures with seeded
violations) are always in scope, so fixtures exercise every rule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

#: Protocol modules: the paper's actual storage/broadcast/agreement
#: logic plus the simulator substrate it runs on.  The observability
#: plane (``repro.obs``, including the health/SLO/time-series layer in
#: ``repro.obs.health``/``slo``/``timeseries``) is held to the same
#: determinism bar — its only wall-clock reads live in
#: ``repro.obs.clock`` behind explicit waivers.
PROTOCOL_PREFIXES: Tuple[str, ...] = (
    "repro.core",
    "repro.avid",
    "repro.broadcast",
    "repro.agreement",
    "repro.net",
    "repro.baselines",
    "repro.faults",
    "repro.obs",
    # The chaos plane interposes on the protocol hot path and promises
    # bit-for-bit replay, so it is held to the same determinism and
    # handler-completeness bar as the protocols it perturbs.
    "repro.chaos",
    # The kv plane multiplexes protocol instances over the wire and
    # must keep shard maps, batching, and retries deterministic.
    "repro.kv",
    # The repair plane re-disperses blocks and swaps fleet members on
    # live clusters; its scheduling (task order, replacement points)
    # must replay bit-for-bit like everything else on the hot path.
    "repro.repair",
)

#: Extra modules held to the determinism bar beyond the protocol core:
#: the erasure/crypto kernels and the shared primitives they memoize
#: through.  Their hot-path caches must stay deterministic (seeded runs
#: replay identically), which is exactly what ``det-cache-order``
#: checks — the sanctioned :mod:`repro.common.lru` cache is exempted
#: inside the rule itself, not by scope carve-outs.
DETERMINISM_EXTRA_PREFIXES: Tuple[str, ...] = (
    "repro.erasure",
    "repro.crypto",
    "repro.common",
)

#: Packages where Byzantine payload data must be sanitized before it
#: reaches protocol state, the erasure decoder, client completion, or
#: the wire — the taint pack's scope.  Baselines and faults are
#: excluded on purpose: fault injectors *produce* Byzantine data, and
#: the crash-only baselines skip verification by design.
TAINT_PREFIXES: Tuple[str, ...] = (
    "repro.core",
    "repro.avid",
    "repro.broadcast",
    "repro.kv",
    # Repair reconstructs values from server-supplied blocks and writes
    # them back to protocol state — classic taint territory.
    "repro.repair",
)

#: Default scope per rule pack.  An empty tuple means "every module".
DEFAULT_SCOPES: Dict[str, Tuple[str, ...]] = {
    "determinism": PROTOCOL_PREFIXES + DETERMINISM_EXTRA_PREFIXES,
    "quorum": PROTOCOL_PREFIXES,
    "handlers": PROTOCOL_PREFIXES,
    "wire": (),
    "taint": TAINT_PREFIXES,
}


@dataclass
class LintConfig:
    """Scoping configuration handed to every rule.

    ``scopes`` maps a rule-pack name to dotted-module prefixes the pack
    applies to.  Scoping is only enforced for ``repro.*`` modules (see
    module docstring); pass ``scope_all_packages=True`` to enforce it
    everywhere.
    """

    scopes: Dict[str, Tuple[str, ...]] = field(
        default_factory=lambda: dict(DEFAULT_SCOPES))
    scope_all_packages: bool = False

    def in_scope(self, pack: str, dotted: str) -> bool:
        """Whether a rule pack applies to module ``dotted``."""
        if dotted.startswith("repro.lint"):
            # The linter does not lint itself with protocol rules.
            return pack == "wire"
        if not self.scope_all_packages and not (
                dotted == "repro" or dotted.startswith("repro.")):
            return True
        prefixes = self.scopes.get(pack, ())
        if not prefixes:
            return True
        return any(dotted == p or dotted.startswith(p + ".")
                   for p in prefixes)
