"""Baseline snapshots: gate ``repro lint`` on *new* findings only.

A baseline file records a fingerprint per known active finding, so a
tree with accepted pre-existing findings can still gate CI: a run
fails only when it produces a finding whose fingerprint is not in the
baseline (or more occurrences of a known fingerprint than the baseline
recorded).  Fixed findings never fail the gate — the baseline is a
ratchet, re-written with ``--write-baseline`` as debt is paid down.

Fingerprints deliberately exclude line numbers: inserting a line above
a known finding must not make it "new".  They normalize the path to
its ``src/``-relative form so the same tree checked out at different
roots (or scanned via an absolute path) produces identical
fingerprints — which also makes them safe to embed in SARIF
``partialFingerprints``.
"""

from __future__ import annotations

import hashlib
import json
from collections import Counter
from pathlib import Path
from typing import Dict, List, Tuple

from repro.lint.findings import Finding, LintReport

BASELINE_VERSION = 1


def normalized_path(path: str) -> str:
    """Checkout-independent form of a finding path: relative to the
    last ``src`` component when one is present, else the bare path
    with OS separators normalized."""
    parts = Path(path).parts
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "src":
            return "/".join(parts[index + 1:])
    return "/".join(parts)


def fingerprint(finding: Finding) -> str:
    """Stable identity of a finding across runs and line drift."""
    basis = "|".join((normalized_path(finding.path), finding.rule,
                      finding.message))
    return hashlib.sha256(basis.encode("utf-8")).hexdigest()


def snapshot(report: LintReport) -> Dict[str, object]:
    """The baseline document for ``report``'s *active* findings.

    Waived findings are excluded: they are already accepted in-source
    and un-waiving one should surface it as new.
    """
    counts = Counter(fingerprint(f) for f in report.active)
    return {
        "version": BASELINE_VERSION,
        "findings": {
            digest: {"count": count}
            for digest, count in sorted(counts.items())
        },
    }


def write_baseline(report: LintReport, path: Path) -> None:
    """Serialize :func:`snapshot` of ``report`` to ``path`` as JSON."""
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(snapshot(report), indent=2, sort_keys=True) + "\n",
        encoding="utf-8")


def load_baseline(path: Path) -> Dict[str, int]:
    """Fingerprint -> accepted occurrence count."""
    document = json.loads(path.read_text(encoding="utf-8"))
    findings = document.get("findings", {})
    return {digest: int(entry.get("count", 1))
            for digest, entry in findings.items()}


def new_findings(report: LintReport,
                 baseline: Dict[str, int]) -> List[Finding]:
    """Active findings beyond what the baseline accepts.

    Occurrences of one fingerprint are matched in report order: with a
    baseline count of 2 and 3 occurrences, the third is new.
    """
    seen: Counter = Counter()
    fresh: List[Finding] = []
    for finding in report.active:
        digest = fingerprint(finding)
        seen[digest] += 1
        if seen[digest] > baseline.get(digest, 0):
            fresh.append(finding)
    return fresh


def apply_baseline(report: LintReport,
                   path: Path) -> Tuple[List[Finding], int]:
    """Gate ``report`` against the baseline at ``path``.

    Returns ``(new, exit_code)``: the findings not covered by the
    baseline and the resulting exit code (0 when everything active is
    baselined, 1 otherwise).
    """
    baseline = load_baseline(path)
    fresh = new_findings(report, baseline)
    return fresh, (1 if fresh else 0)
