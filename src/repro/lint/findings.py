"""Finding and report types for :mod:`repro.lint`."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class Finding:
    """A single lint finding anchored to a file and line.

    ``rule`` is the stable rule identifier (e.g. ``det-entropy``,
    ``quorum-intersection``), ``severity`` is ``"error"`` or
    ``"warning"``, and ``waived`` records whether an inline
    ``# lint: disable=<rule>`` comment suppressed the finding.
    """

    rule: str
    path: str
    line: int
    message: str
    severity: str = "error"
    waived: bool = False

    def sort_key(self) -> Tuple[str, int, str, str, str, bool]:
        """Stable total ordering: path, line, rule id, then the
        remaining fields — so text/JSON/SARIF diffs are byte-stable
        across runs and Python versions even when one line carries
        several findings of the same rule."""
        return (self.path, self.line, self.rule, self.message,
                self.severity, self.waived)

    def render(self) -> str:
        """One-line ``path:line: severity: [rule] message`` form."""
        suffix = "  [waived]" if self.waived else ""
        return (f"{self.path}:{self.line}: {self.severity}: "
                f"[{self.rule}] {self.message}{suffix}")

    def to_json(self) -> Dict[str, object]:
        """JSON-serializable form of the finding."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "severity": self.severity,
            "waived": self.waived,
        }

    @classmethod
    def from_json(cls, data: Dict[str, object]) -> "Finding":
        """Inverse of :meth:`to_json` (used by the on-disk cache)."""
        return cls(
            rule=str(data["rule"]),
            path=str(data["path"]),
            line=int(data["line"]),
            message=str(data["message"]),
            severity=str(data.get("severity", "error")),
            waived=bool(data.get("waived", False)),
        )


@dataclass
class LintReport:
    """Outcome of a lint run: all findings plus scan statistics."""

    findings: List[Finding] = field(default_factory=list)
    modules_checked: int = 0
    rules_run: Tuple[str, ...] = ()
    #: whether this report was served from the incremental cache
    from_cache: bool = False

    @property
    def active(self) -> List[Finding]:
        """Findings not suppressed by a waiver comment."""
        return [f for f in self.findings if not f.waived]

    @property
    def waived(self) -> List[Finding]:
        return [f for f in self.findings if f.waived]

    @property
    def exit_code(self) -> int:
        return 1 if self.active else 0

    def to_json(self) -> Dict[str, object]:
        """JSON-serializable form of the whole report."""
        return {
            "modules_checked": self.modules_checked,
            "rules_run": list(self.rules_run),
            "active": len(self.active),
            "waived": len(self.waived),
            "findings": [f.to_json() for f in self.findings],
        }
