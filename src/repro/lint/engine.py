"""Lint engine: module discovery, waiver parsing, and rule dispatch.

The engine parses every scanned file into a :class:`ModuleInfo`
(AST + source + per-line waivers), bundles them into a
:class:`Project` with cross-module constant resolution, and runs each
registered :class:`Rule` over the project.  Rules see the whole
project, so cross-module checks (wire registry, handler completeness)
are ordinary rules rather than special cases.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Protocol, Sequence, Set, Tuple

from repro.lint.astutil import module_imports, module_string_constants
from repro.lint.config import LintConfig
from repro.lint.findings import Finding, LintReport

_WAIVER_RE = re.compile(r"#\s*lint:\s*disable=([A-Za-z0-9_\-]+(?:\s*,\s*[A-Za-z0-9_\-]+)*)")


@dataclass
class ModuleInfo:
    """A parsed source module: path, dotted name, AST, and waivers."""

    path: Path
    dotted: str
    tree: ast.Module
    source_lines: List[str]
    waivers: Dict[int, Set[str]] = field(default_factory=dict)
    constants: Dict[str, str] = field(default_factory=dict)

    @property
    def display_path(self) -> str:
        return str(self.path)

    def waived_rules(self, line: int) -> Set[str]:
        """Waivers covering ``line``: the line itself or, when the
        preceding line is a standalone waiver comment, that line."""
        rules = set(self.waivers.get(line, ()))
        prev = line - 1
        if prev in self.waivers:
            text = self.source_lines[prev - 1].strip()
            if text.startswith("#"):
                rules |= self.waivers[prev]
        return rules


class Rule(Protocol):
    """A pluggable lint rule.

    ``pack`` names the rule pack for scoping (``determinism``,
    ``quorum``, ``wire``, ``handlers``); ``rule_ids`` lists every
    finding identifier the rule can emit (used by ``--list-rules`` and
    ``--rules`` filtering); ``run`` yields findings over the whole
    project and must itself respect ``config.in_scope(pack, dotted)``.
    """

    pack: str
    rule_ids: Tuple[str, ...]

    def run(self, project: "Project",
            config: LintConfig) -> Iterable[Finding]:
        """Yield findings over the whole project."""
        ...  # pragma: no cover - protocol signature


@dataclass
class Project:
    """All scanned modules plus cross-module constant resolution."""

    modules: List[ModuleInfo]
    by_dotted: Dict[str, ModuleInfo] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.by_dotted = {m.dotted: m for m in self.modules}
        self._resolve_imported_constants()

    def _resolve_imported_constants(self) -> None:
        """Fold ``from mod import MSG_X [as Y]`` string constants into
        each importer's constant table, so tag references resolve
        module-qualified (two modules may both define ``MSG_SEND``
        with different strings)."""
        own: Dict[str, Dict[str, str]] = {
            m.dotted: dict(m.constants) for m in self.modules}
        for module in self.modules:
            for local, source, name in module_imports(module.tree):
                value = own.get(source, {}).get(name)
                if value is not None and local not in module.constants:
                    module.constants[local] = value

    def scoped(self, pack: str, config: LintConfig) -> List[ModuleInfo]:
        """The modules a rule pack applies to under ``config``."""
        return [m for m in self.modules if config.in_scope(pack, m.dotted)]


def _parse_waivers(source_lines: Sequence[str]) -> Dict[int, Set[str]]:
    waivers: Dict[int, Set[str]] = {}
    for lineno, text in enumerate(source_lines, start=1):
        match = _WAIVER_RE.search(text)
        if match:
            rules = {part.strip() for part in match.group(1).split(",")}
            waivers[lineno] = {r for r in rules if r}
    return waivers


def _dotted_for(path: Path, root: Path, package: Optional[str]) -> str:
    rel = path.relative_to(root)
    parts = list(rel.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts.pop()
    if package:
        parts.insert(0, package)
    return ".".join(parts) if parts else (package or path.stem)


def load_module(path: Path, dotted: Optional[str] = None) -> ModuleInfo:
    """Parse one file into a :class:`ModuleInfo`."""
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    lines = source.splitlines()
    info = ModuleInfo(
        path=path,
        dotted=dotted or path.stem,
        tree=tree,
        source_lines=lines,
        waivers=_parse_waivers(lines),
    )
    info.constants = module_string_constants(tree)
    return info


def discover_sources(
        paths: Sequence[Path]) -> List[Tuple[Path, Optional[str]]]:
    """Find every ``.py`` file under ``paths`` without parsing it.

    Returns ``(path, dotted name)`` pairs in deterministic (sorted)
    order.  Split from :func:`discover` so the incremental cache can
    hash file contents and decide on a hit *before* paying for any
    AST parse.
    """
    sources: List[Tuple[Path, Optional[str]]] = []
    seen: Set[Path] = set()
    for raw in paths:
        root = Path(raw)
        if root.is_file():
            if root.resolve() not in seen:
                seen.add(root.resolve())
                sources.append((root, None))
            continue
        if not root.is_dir():
            raise FileNotFoundError(f"no such file or directory: {root}")
        package = root.name if (root / "__init__.py").exists() else None
        for path in sorted(root.rglob("*.py")):
            resolved = path.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            sources.append((path, _dotted_for(path, root, package)))
    return sources


def discover(paths: Sequence[Path]) -> List[ModuleInfo]:
    """Find and parse every ``.py`` file under ``paths``.

    Directory roots that contain ``__init__.py`` are treated as
    packages, so ``src/repro`` yields dotted names like
    ``repro.core.atomic``.  Discovery order is sorted for
    deterministic output.
    """
    return [load_module(path, dotted)
            for path, dotted in discover_sources(paths)]


def _waiver_lines_for(module: ModuleInfo, line: int) -> List[int]:
    """The waiver-comment lines whose tokens cover ``line``: the line
    itself plus, when the preceding line is a standalone comment
    waiver, that line (mirrors :meth:`ModuleInfo.waived_rules`)."""
    lines = []
    if line in module.waivers:
        lines.append(line)
    prev = line - 1
    if prev in module.waivers and \
            module.source_lines[prev - 1].strip().startswith("#"):
        lines.append(prev)
    return lines


def _apply_waivers(module_index: Dict[str, ModuleInfo],
                   finding: Finding,
                   used: Set[Tuple[str, int, str]]) -> Finding:
    module = module_index.get(finding.path)
    if module is None:
        return finding
    waived = module.waived_rules(finding.line)
    if finding.rule in waived or "all" in waived:
        for waiver_line in _waiver_lines_for(module, finding.line):
            for token in module.waivers[waiver_line]:
                if token == finding.rule or token == "all":
                    used.add((module.dotted, waiver_line, token))
        return Finding(rule=finding.rule, path=finding.path,
                       line=finding.line, message=finding.message,
                       severity=finding.severity, waived=True)
    return finding


RULE_WAIVER_DEAD = "waiver-dead"


def _dead_waiver_findings(
        modules: Sequence[ModuleInfo],
        used: Set[Tuple[str, int, str]],
        known_ids: Set[str]) -> Iterable[Finding]:
    """One ``waiver-dead`` finding per waiver token that suppressed
    nothing in a full run.

    The meta-token ``waiver-dead`` itself is exempt (waiving the dead
    check is a reviewed decision, not debt), and tokens that are not
    rule ids at all get a distinct message so typos are obvious.
    """
    for module in modules:
        for line in sorted(module.waivers):
            for token in sorted(module.waivers[line]):
                if token == RULE_WAIVER_DEAD:
                    continue
                if (module.dotted, line, token) in used:
                    continue
                if token != "all" and token not in known_ids:
                    message = (f"waiver names unknown rule id '{token}' "
                               "(see --list-rules) — fix the id or "
                               "delete the comment")
                else:
                    message = (f"waiver '{token}' suppresses nothing — "
                               "the finding it covered is gone; delete "
                               "the comment")
                yield Finding(rule=RULE_WAIVER_DEAD,
                              path=module.display_path, line=line,
                              message=message, severity="warning")


def run_lint(paths: Sequence[Path],
             config: Optional[LintConfig] = None,
             rules: Optional[Sequence[Rule]] = None,
             only: Optional[Set[str]] = None,
             cache_dir: Optional[Path] = None) -> LintReport:
    """Lint ``paths`` and return a :class:`LintReport`.

    ``only`` restricts the run to rules whose pack name or any rule id
    matches; ``None`` runs everything.  Full runs additionally report
    ``waiver-dead`` for waiver comments that suppressed nothing —
    partial runs skip the check, since a waiver for an unselected rule
    is not dead, merely unexercised.

    ``cache_dir`` enables the whole-run incremental cache: when every
    scanned file's content hash and the rule selection match the
    stored entry, the cached report is returned without parsing a
    single file (``report.from_cache`` is then true).  The cache keys
    runs by file content and rule selection only, so callers passing a
    non-default ``config`` or ``rules`` should not pass ``cache_dir``.
    """
    from repro.lint import cache as lint_cache
    from repro.lint.rules import all_rules

    config = config or LintConfig()
    active_rules = list(rules) if rules is not None else all_rules()
    if only:
        active_rules = [
            r for r in active_rules
            if r.pack in only or any(rid in only for rid in r.rule_ids)]

    sources = discover_sources(paths)
    cache_key = None
    if cache_dir is not None:
        entries = [(dotted or path.stem, lint_cache.file_digest(path))
                   for path, dotted in sources]
        cache_key = lint_cache.cache_key(
            entries, [r.pack for r in active_rules])
        cached = lint_cache.load(cache_dir, cache_key)
        if cached is not None:
            return cached

    project = Project(modules=[load_module(path, dotted)
                               for path, dotted in sources])
    module_index = {m.display_path: m for m in project.modules}

    findings: List[Finding] = []
    seen: Set[Finding] = set()
    used_waivers: Set[Tuple[str, int, str]] = set()
    for rule in active_rules:
        for finding in rule.run(project, config):
            finding = _apply_waivers(module_index, finding, used_waivers)
            if finding not in seen:
                seen.add(finding)
                findings.append(finding)
    if only is None:
        known_ids: Set[str] = {r.pack for r in active_rules}
        for rule in active_rules:
            known_ids.update(rule.rule_ids)
        for finding in _dead_waiver_findings(project.modules,
                                             used_waivers, known_ids):
            finding = _apply_waivers(module_index, finding, used_waivers)
            if finding not in seen:
                seen.add(finding)
                findings.append(finding)
    findings.sort(key=Finding.sort_key)
    report = LintReport(
        findings=findings,
        modules_checked=len(project.modules),
        rules_run=tuple(r.pack for r in active_rules),
    )
    if cache_dir is not None and cache_key is not None:
        lint_cache.store(cache_dir, cache_key, report)
    return report
