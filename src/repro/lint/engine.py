"""Lint engine: module discovery, waiver parsing, and rule dispatch.

The engine parses every scanned file into a :class:`ModuleInfo`
(AST + source + per-line waivers), bundles them into a
:class:`Project` with cross-module constant resolution, and runs each
registered :class:`Rule` over the project.  Rules see the whole
project, so cross-module checks (wire registry, handler completeness)
are ordinary rules rather than special cases.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Protocol, Sequence, Set, Tuple

from repro.lint.astutil import module_imports, module_string_constants
from repro.lint.config import LintConfig
from repro.lint.findings import Finding, LintReport

_WAIVER_RE = re.compile(r"#\s*lint:\s*disable=([A-Za-z0-9_\-]+(?:\s*,\s*[A-Za-z0-9_\-]+)*)")


@dataclass
class ModuleInfo:
    """A parsed source module: path, dotted name, AST, and waivers."""

    path: Path
    dotted: str
    tree: ast.Module
    source_lines: List[str]
    waivers: Dict[int, Set[str]] = field(default_factory=dict)
    constants: Dict[str, str] = field(default_factory=dict)

    @property
    def display_path(self) -> str:
        return str(self.path)

    def waived_rules(self, line: int) -> Set[str]:
        """Waivers covering ``line``: the line itself or, when the
        preceding line is a standalone waiver comment, that line."""
        rules = set(self.waivers.get(line, ()))
        prev = line - 1
        if prev in self.waivers:
            text = self.source_lines[prev - 1].strip()
            if text.startswith("#"):
                rules |= self.waivers[prev]
        return rules


class Rule(Protocol):
    """A pluggable lint rule.

    ``pack`` names the rule pack for scoping (``determinism``,
    ``quorum``, ``wire``, ``handlers``); ``rule_ids`` lists every
    finding identifier the rule can emit (used by ``--list-rules`` and
    ``--rules`` filtering); ``run`` yields findings over the whole
    project and must itself respect ``config.in_scope(pack, dotted)``.
    """

    pack: str
    rule_ids: Tuple[str, ...]

    def run(self, project: "Project",
            config: LintConfig) -> Iterable[Finding]:
        """Yield findings over the whole project."""
        ...  # pragma: no cover - protocol signature


@dataclass
class Project:
    """All scanned modules plus cross-module constant resolution."""

    modules: List[ModuleInfo]
    by_dotted: Dict[str, ModuleInfo] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.by_dotted = {m.dotted: m for m in self.modules}
        self._resolve_imported_constants()

    def _resolve_imported_constants(self) -> None:
        """Fold ``from mod import MSG_X [as Y]`` string constants into
        each importer's constant table, so tag references resolve
        module-qualified (two modules may both define ``MSG_SEND``
        with different strings)."""
        own: Dict[str, Dict[str, str]] = {
            m.dotted: dict(m.constants) for m in self.modules}
        for module in self.modules:
            for local, source, name in module_imports(module.tree):
                value = own.get(source, {}).get(name)
                if value is not None and local not in module.constants:
                    module.constants[local] = value

    def scoped(self, pack: str, config: LintConfig) -> List[ModuleInfo]:
        """The modules a rule pack applies to under ``config``."""
        return [m for m in self.modules if config.in_scope(pack, m.dotted)]


def _parse_waivers(source_lines: Sequence[str]) -> Dict[int, Set[str]]:
    waivers: Dict[int, Set[str]] = {}
    for lineno, text in enumerate(source_lines, start=1):
        match = _WAIVER_RE.search(text)
        if match:
            rules = {part.strip() for part in match.group(1).split(",")}
            waivers[lineno] = {r for r in rules if r}
    return waivers


def _dotted_for(path: Path, root: Path, package: Optional[str]) -> str:
    rel = path.relative_to(root)
    parts = list(rel.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts.pop()
    if package:
        parts.insert(0, package)
    return ".".join(parts) if parts else (package or path.stem)


def load_module(path: Path, dotted: Optional[str] = None) -> ModuleInfo:
    """Parse one file into a :class:`ModuleInfo`."""
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    lines = source.splitlines()
    info = ModuleInfo(
        path=path,
        dotted=dotted or path.stem,
        tree=tree,
        source_lines=lines,
        waivers=_parse_waivers(lines),
    )
    info.constants = module_string_constants(tree)
    return info


def discover(paths: Sequence[Path]) -> List[ModuleInfo]:
    """Find and parse every ``.py`` file under ``paths``.

    Directory roots that contain ``__init__.py`` are treated as
    packages, so ``src/repro`` yields dotted names like
    ``repro.core.atomic``.  Discovery order is sorted for
    deterministic output.
    """
    modules: List[ModuleInfo] = []
    seen: Set[Path] = set()
    for raw in paths:
        root = Path(raw)
        if root.is_file():
            if root.resolve() not in seen:
                seen.add(root.resolve())
                modules.append(load_module(root))
            continue
        if not root.is_dir():
            raise FileNotFoundError(f"no such file or directory: {root}")
        package = root.name if (root / "__init__.py").exists() else None
        for path in sorted(root.rglob("*.py")):
            resolved = path.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            modules.append(
                load_module(path, _dotted_for(path, root, package)))
    return modules


def _apply_waivers(module_index: Dict[str, ModuleInfo],
                   finding: Finding) -> Finding:
    module = module_index.get(finding.path)
    if module is None:
        return finding
    waived = module.waived_rules(finding.line)
    if finding.rule in waived or "all" in waived:
        return Finding(rule=finding.rule, path=finding.path,
                       line=finding.line, message=finding.message,
                       severity=finding.severity, waived=True)
    return finding


def run_lint(paths: Sequence[Path],
             config: Optional[LintConfig] = None,
             rules: Optional[Sequence[Rule]] = None,
             only: Optional[Set[str]] = None) -> LintReport:
    """Lint ``paths`` and return a :class:`LintReport`.

    ``only`` restricts the run to rules whose pack name or any rule id
    matches; ``None`` runs everything.
    """
    from repro.lint.rules import all_rules

    config = config or LintConfig()
    active_rules = list(rules) if rules is not None else all_rules()
    if only:
        active_rules = [
            r for r in active_rules
            if r.pack in only or any(rid in only for rid in r.rule_ids)]
    project = Project(modules=discover(paths))
    module_index = {m.display_path: m for m in project.modules}

    findings: List[Finding] = []
    seen: Set[Finding] = set()
    for rule in active_rules:
        for finding in rule.run(project, config):
            finding = _apply_waivers(module_index, finding)
            if finding not in seen:
                seen.add(finding)
                findings.append(finding)
    findings.sort(key=Finding.sort_key)
    return LintReport(
        findings=findings,
        modules_checked=len(project.modules),
        rules_run=tuple(r.pack for r in active_rules),
    )
